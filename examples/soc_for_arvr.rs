//! Allocate a domain-specific SoC for an AR/VR edge-detection pipeline
//! under latency / power / area budgets — the FARSIGym workflow with the
//! distance-to-budget objective.
//!
//! ```sh
//! cargo run --release --example soc_for_arvr
//! ```

use archgym::agents::AntColony;
use archgym::core::prelude::*;
use archgym::soc::{SocEnv, SocWorkload};

fn main() {
    let workload = SocWorkload::EdgeDetection;
    let (lat, pow, area) = workload.budgets();
    let mut env = SocEnv::new(workload);
    println!(
        "FARSIGym: SoC for `{}` — budgets: {lat} ms, {pow} mW, {area} mm²\n",
        workload.name()
    );

    let mut aco = AntColony::with_defaults(env.space().clone(), 19);
    let run = SearchLoop::new(RunConfig::with_budget(3_000).batch(16)).run(&mut aco, &mut env);

    let distance = -run.best_reward;
    println!(
        "best allocation after {} samples: distance-to-budget = {distance:.4} \
         (0 means every budget met)",
        run.samples_used
    );
    println!(
        "  power {:.1} mW (budget {pow}) | latency {:.3} ms (budget {lat}) | area {:.2} mm² (budget {area})\n",
        run.best_observation[0], run.best_observation[1], run.best_observation[2]
    );
    println!("allocation:");
    for (name, value) in env.space().decode(&run.best_action).expect("valid action") {
        println!("  {name:<26} = {value}");
    }

    // Show the best-so-far convergence, ten checkpoints.
    let curve = run.best_so_far();
    println!("\nconvergence (distance-to-budget, lower is better):");
    for i in (0..curve.len()).step_by(curve.len() / 10) {
        println!("  after {:>5} samples: {:.4}", i + 1, -curve[i]);
    }
}
