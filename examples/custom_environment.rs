//! Bring your own cost model: wrap a custom simulator as an ArchGym
//! environment ("ArchitectureFoo" in the paper's Fig. 1) and every agent
//! works with it immediately.
//!
//! ```sh
//! cargo run --release --example custom_environment
//! ```
//!
//! The example implements a small set-associative cache cost model from
//! scratch *inside this file*, exposes its design space (size,
//! associativity, line size, replacement policy), and lets three agents
//! tune it for a synthetic access trace under an area constraint.

use archgym::agents::factory::{build_agent, AgentKind};
use archgym::core::prelude::*;
use rand::Rng;

/// A toy set-associative cache model: miss rate from a trace replay,
/// area and access energy from size/associativity heuristics.
struct CacheEnv {
    space: ParamSpace,
    trace: Vec<u64>,
    spec: RewardSpec,
}

impl CacheEnv {
    fn new(seed: u64) -> Self {
        let space = ParamSpace::builder()
            .pow2("CacheBytes", 1 << 10, 1 << 20) // 1 KiB .. 1 MiB
            .pow2("Associativity", 1, 16)
            .pow2("LineBytes", 16, 128)
            .categorical("Replacement", ["LRU", "FIFO", "Random"])
            .build()
            .expect("valid space");
        // Synthetic trace: loops over a few hot arrays plus random noise.
        let mut rng = archgym::core::seeded_rng(seed);
        let mut trace = Vec::with_capacity(20_000);
        let mut cursor = 0u64;
        for i in 0..20_000u64 {
            let addr = match i % 10 {
                0..=5 => {
                    cursor = (cursor + 64) % (192 << 10); // streaming over 192 KiB
                    cursor
                }
                6..=8 => (i * 7919) % (24 << 10), // hot 24 KiB region
                _ => rng.gen_range(0..(64 << 20)), // cold misses
            };
            trace.push(addr);
        }
        // Objective: minimize AMAT while staying under an area budget.
        let spec = RewardSpec::WeightedSum {
            weights: vec![(0, 1.0), (1, 2.0)], // amat + 2·area_mm2
        };
        CacheEnv { space, trace, spec }
    }

    fn simulate(&self, bytes: u64, ways: u64, line: u64, policy: &str) -> (f64, f64) {
        let sets = (bytes / line / ways).max(1);
        let mut tags: Vec<Vec<u64>> = vec![Vec::new(); sets as usize];
        let mut rng = archgym::core::seeded_rng(1);
        let mut misses = 0u64;
        for &addr in &self.trace {
            let block = addr / line;
            let set = (block % sets) as usize;
            let ways_in_set = &mut tags[set];
            if let Some(pos) = ways_in_set.iter().position(|&t| t == block) {
                if policy == "LRU" {
                    let tag = ways_in_set.remove(pos);
                    ways_in_set.push(tag);
                }
            } else {
                misses += 1;
                if (ways_in_set.len() as u64) >= ways {
                    match policy {
                        "Random" => {
                            let victim = rng.gen_range(0..ways_in_set.len());
                            ways_in_set.remove(victim);
                        }
                        _ => {
                            ways_in_set.remove(0); // FIFO & LRU both evict the head
                        }
                    }
                }
                ways_in_set.push(block);
            }
        }
        let miss_rate = misses as f64 / self.trace.len() as f64;
        // AMAT in cycles: hit cost grows with associativity; miss pays DRAM.
        let hit_cycles = 1.0 + (ways as f64).log2() * 0.3;
        let amat = hit_cycles + miss_rate * 120.0;
        // Area: SRAM bits plus tag/way overhead.
        let area_mm2 = bytes as f64 * 8.0 * 3.0e-7 * (1.0 + 0.05 * ways as f64);
        (amat, area_mm2)
    }
}

impl Environment for CacheEnv {
    fn name(&self) -> &str {
        "custom/cache"
    }
    fn space(&self) -> &ParamSpace {
        &self.space
    }
    fn observation_labels(&self) -> Vec<String> {
        vec!["amat_cycles".into(), "area_mm2".into()]
    }
    fn step(&mut self, action: &Action) -> StepResult {
        let int = |name: &str| self.space.decode_one(action, name).as_int().unwrap() as u64;
        let policy = self
            .space
            .decode_one(action, "Replacement")
            .as_cat()
            .unwrap()
            .to_owned();
        let (amat, area) = self.simulate(
            int("CacheBytes"),
            int("Associativity"),
            int("LineBytes"),
            &policy,
        );
        let observation = Observation::new(vec![amat, area]);
        let reward = self.spec.reward(&observation);
        StepResult::terminal(observation, reward)
    }
}

fn main() {
    println!(
        "Custom environment: a set-associative cache model defined in this example.\n\
         Design space: size × associativity × line × replacement = {} points\n",
        CacheEnv::new(7).space.cardinality()
    );
    println!(
        "{:<6} {:>12} {:>10} {:>10}  best design",
        "agent", "reward", "AMAT", "area mm²"
    );
    for kind in [AgentKind::Rw, AgentKind::Ga, AgentKind::Bo] {
        let mut env = CacheEnv::new(7);
        let mut agent = build_agent(kind, env.space(), &HyperMap::new(), 11).unwrap();
        let run = SearchLoop::new(RunConfig::with_budget(150).batch(8)).run(&mut agent, &mut env);
        let design = env
            .space()
            .decode(&run.best_action)
            .unwrap()
            .iter()
            .map(|(n, v)| format!("{n}={v}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "{:<6} {:>12.3} {:>10.2} {:>10.3}  {design}",
            kind.name(),
            run.best_reward,
            run.best_observation[0],
            run.best_observation[1]
        );
    }
    println!(
        "\nNo agent knows it is tuning a cache: the gym interface (action /\n\
         observation / reward) is the only contract — the paper's core design point."
    );
}
