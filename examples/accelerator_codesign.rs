//! Co-design an Eyeriss-like DNN accelerator for ResNet-50 with
//! Bayesian optimization, navigating around infeasible design points.
//!
//! ```sh
//! cargo run --release --example accelerator_codesign
//! ```

use archgym::accel::{AccelEnv, Objective};
use archgym::agents::BayesOpt;
use archgym::core::prelude::*;

fn main() {
    let target_ms = 15.0;
    let mut env = AccelEnv::new(archgym::models::resnet50(), Objective::latency(target_ms));
    println!(
        "TimeloopGym: designing an accelerator for {} (target {target_ms} ms end-to-end)\n\
         design space: {} dimensions, {:.2e} points\n",
        env.network().name(),
        env.space().len(),
        env.space().cardinality()
    );

    let mut bo = BayesOpt::with_defaults(env.space().clone(), 3);
    let run = SearchLoop::new(RunConfig::with_budget(400).batch(4)).run(&mut bo, &mut env);

    let feasible = run.dataset.filter_feasible().len();
    println!(
        "evaluated {} designs ({} feasible, {} infeasible)",
        run.samples_used,
        feasible,
        run.samples_used as usize - feasible
    );
    println!(
        "best design: latency {:.3} ms | energy {:.2} mJ | area {:.2} mm² | reward {:.2}\n",
        run.best_observation[0], run.best_observation[1], run.best_observation[2], run.best_reward
    );
    println!("best accelerator configuration:");
    for (name, value) in env.space().decode(&run.best_action).expect("valid action") {
        println!("  {name:<34} = {value}");
    }
}
