//! Multi-objective exploration: pool several agents' exploration of the
//! SoC space and extract the Pareto front of (power, latency, area) —
//! the artifact an architect negotiates budgets over.
//!
//! ```sh
//! cargo run --release --example pareto_explorer
//! ```

use archgym::agents::factory::{build_agent, AgentKind};
use archgym::core::pareto::dataset_pareto_front;
use archgym::core::prelude::*;
use archgym::soc::{SocEnv, SocWorkload};

fn main() {
    let workload = SocWorkload::SlamLite;
    let mut pool = Dataset::new();
    for kind in AgentKind::ALL {
        let mut env = SocEnv::new(workload);
        let mut agent = build_agent(kind, env.space(), &HyperMap::new(), 29).unwrap();
        let run = SearchLoop::new(RunConfig::with_budget(800)).run(&mut agent, &mut env);
        pool.merge(run.dataset);
    }
    let feasible = pool.filter_feasible().len();
    println!(
        "pooled {} evaluations of `{}` ({} feasible) from five agents",
        pool.len(),
        workload.name(),
        feasible
    );

    // All three SoC metrics are minimized, so the front needs no signs.
    let front = dataset_pareto_front(&pool, &[0, 1, 2]);
    println!(
        "\nPareto front over (power, latency, area): {} designs of {}\n",
        front.len(),
        feasible
    );
    println!(
        "{:>10} {:>12} {:>10}   allocation",
        "power mW", "latency ms", "area mm²"
    );
    let env = SocEnv::new(workload);
    let mut rows: Vec<&Transition> = front.iter().map(|&i| &pool.transitions()[i]).collect();
    rows.sort_by(|a, b| a.observation[0].partial_cmp(&b.observation[0]).unwrap());
    for t in rows.iter().take(12) {
        let design = env
            .space()
            .decode(&t.action)
            .unwrap()
            .iter()
            .filter(|(n, _)| ["PE_Type", "PE_Freq", "PE_Count", "Mem_Type"].contains(&n.as_str()))
            .map(|(n, v)| format!("{n}={v}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "{:>10.1} {:>12.3} {:>10.2}   {design}",
            t.observation[0], t.observation[1], t.observation[2]
        );
    }
    if front.len() > 12 {
        println!("... and {} more front designs", front.len() - 12);
    }
    let (lat, pow, area) = workload.budgets();
    println!(
        "\nbudgets for reference: {lat} ms, {pow} mW, {area} mm² — the front shows what\n\
         each budget relaxation would buy."
    );
}
