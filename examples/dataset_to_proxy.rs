//! From exploration logs to a fast proxy cost model — the paper's
//! Section 7 pipeline: run several agents, merge their standardized
//! trajectories, train a random-forest power model, and measure its
//! accuracy and speedup over the simulator.
//!
//! ```sh
//! cargo run --release --example dataset_to_proxy
//! ```

use archgym::agents::factory::{build_agent, AgentKind};
use archgym::core::prelude::*;
use archgym::dram::{DramEnv, DramWorkload, Objective};
use archgym::proxy::forest::ForestConfig;
use archgym::proxy::pipeline::{train_proxy_fixed, DatasetTiers};
use std::time::Instant;

const POWER: usize = 1; // DRAMGym observation index

fn main() {
    // 1. Explore: every agent logs through the same interface.
    let mut pool = Dataset::new();
    for kind in AgentKind::ALL {
        let mut env = DramEnv::new(DramWorkload::Random, Objective::low_power(1.0));
        let mut agent =
            build_agent(kind, env.space(), &HyperMap::new(), 23).expect("defaults are valid");
        let run = SearchLoop::new(RunConfig::with_budget(600)).run(&mut agent, &mut env);
        pool.merge(run.dataset);
    }
    println!("pooled dataset: {} transitions, composition:", pool.len());
    for (agent, count) in pool.composition() {
        println!("  {agent:<5} {count:>6}");
    }

    // 2. Build matched-size single-source vs diverse training sets.
    let mut rng = archgym::core::seeded_rng(7);
    let tiers = DatasetTiers::build(&pool, "aco", &[500], &mut rng).expect("aco data exists");
    let (_, single, diverse) = &tiers.tiers[0];

    // 3. Train a power proxy on each and evaluate on fresh designs.
    let mut env = DramEnv::new(DramWorkload::Random, Objective::low_power(1.0));
    let mut test = Dataset::new();
    let mut walker = archgym::core::agent::RandomWalker::new(env.space().clone(), 99);
    for action in walker.propose(300) {
        let result = env.step(&action);
        test.push(Transition::new(env.name(), "test", action, &result));
    }
    let cfg = ForestConfig::default();
    let p_single = train_proxy_fixed(single, POWER, &cfg, 1).expect("train single");
    let p_diverse = train_proxy_fixed(diverse, POWER, &cfg, 1).expect("train diverse");
    let r_single = p_single.report(&test).expect("report");
    let r_diverse = p_diverse.report(&test).expect("report");
    println!("\npower proxy on {} held-out designs:", test.len());
    println!(
        "  single-source (ACO): RMSE {:.4} W ({:.2}%), correlation {:.3}",
        r_single.rmse,
        r_single.relative_rmse * 100.0,
        r_single.correlation
    );
    println!(
        "  diverse (all agents): RMSE {:.4} W ({:.2}%), correlation {:.3}",
        r_diverse.rmse,
        r_diverse.relative_rmse * 100.0,
        r_diverse.correlation
    );

    // 4. Speedup: simulator step vs proxy prediction.
    let mut rng = archgym::core::seeded_rng(5);
    let actions: Vec<_> = (0..200).map(|_| env.space().sample(&mut rng)).collect();
    let t0 = Instant::now();
    let mut sink = 0.0;
    for a in &actions {
        sink += env.step(a).observation.get(POWER);
    }
    let sim = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    for a in &actions {
        sink += p_diverse.predict(a.as_slice());
    }
    let proxy = t1.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    println!(
        "\nspeedup: simulator {:.1} µs/eval vs proxy {:.2} µs/eval → {:.0}×",
        sim / 200.0 * 1e6,
        proxy / 200.0 * 1e6,
        sim / proxy.max(1e-12)
    );

    // 5. Persist the pooled dataset as the shareable artifact.
    let mut bytes = Vec::new();
    pool.write_jsonl(&mut bytes).expect("serialize");
    println!(
        "dataset artifact: {} transitions → {} KiB of JSON-lines",
        pool.len(),
        bytes.len() / 1024
    );
}
