//! Quickstart: plug a search agent into an ArchGym environment.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! We design a DRAM memory controller for a streaming trace with a 1 W
//! power target, first with pure random search, then with a genetic
//! algorithm, and compare what each finds.

use archgym::agents::GeneticAlgorithm;
use archgym::core::agent::RandomWalker;
use archgym::core::prelude::*;
use archgym::dram::{DramEnv, DramWorkload, Objective};

fn main() {
    let budget = 1_000;

    // An environment = cost model (DRAM controller simulator) + workload
    // (streaming memory trace) + objective (1 W power target).
    let make_env = || DramEnv::new(DramWorkload::Stream, Objective::low_power(1.0));

    // Agent 1: the random walker baseline.
    let mut env = make_env();
    let mut walker = RandomWalker::new(env.space().clone(), 42);
    let rw = SearchLoop::new(RunConfig::with_budget(budget)).run(&mut walker, &mut env);

    // Agent 2: a genetic algorithm with default hyperparameters.
    let mut env = make_env();
    let mut ga = GeneticAlgorithm::with_defaults(env.space().clone(), 42);
    let ga_run = SearchLoop::new(RunConfig::with_budget(budget).batch(32)).run(&mut ga, &mut env);

    println!(
        "DRAMGym, streaming trace, objective: {}",
        env.objective().name()
    );
    println!(
        "{:<8} {:>12} {:>12} {:>12}",
        "agent", "best reward", "power (W)", "latency (ns)"
    );
    for run in [&rw, &ga_run] {
        println!(
            "{:<8} {:>12.2} {:>12.3} {:>12.2}",
            run.agent, run.best_reward, run.best_observation[1], run.best_observation[0],
        );
    }

    // Decode the GA's best design back into named parameters.
    println!("\nBest GA design:");
    for (name, value) in env
        .space()
        .decode(&ga_run.best_action)
        .expect("valid action")
    {
        println!("  {name:<24} = {value}");
    }
}
