//! Search DNN mappings with GAMMA-style genetic operators vs a vanilla
//! GA — the comparison behind the paper's Fig. 6.
//!
//! ```sh
//! cargo run --release --example mapping_search
//! ```

use archgym::agents::ga::{GaOperators, GeneticAlgorithm};
use archgym::core::prelude::*;
use archgym::mapping::{MappingEnv, Objective};

fn main() {
    let net = archgym::models::resnet18();
    let layer = "stage2";
    let budget = 2_000;
    println!(
        "MaestroGym: mapping {}/{layer} for minimum runtime, {budget} samples per variant\n",
        net.name()
    );

    let variants = [
        ("GA-V1 (GAMMA: aging+growth+reorder)", GaOperators::all()),
        (
            "GA+RO (reordering only)",
            GaOperators {
                reordering: true,
                ..GaOperators::none()
            },
        ),
        ("GA-ArchGym (no domain operators)", GaOperators::none()),
    ];

    println!(
        "{:<38} {:>12} {:>14} {:>12}",
        "variant", "runtime ms", "GMACs/s", "energy mJ"
    );
    for (name, ops) in variants {
        let mut env =
            MappingEnv::for_layer(&net, layer, Objective::runtime()).expect("layer exists");
        let mut ga = GeneticAlgorithm::new(env.space().clone(), 32, 0.1, 0.8, 3, 2, ops, 8, 17);
        let run = SearchLoop::new(RunConfig::with_budget(budget).batch(32)).run(&mut ga, &mut env);
        println!(
            "{:<38} {:>12.4} {:>14.1} {:>12.3}",
            name, run.best_observation[0], run.best_observation[1], run.best_observation[2]
        );
        let mapping = env.space().decode(&run.best_action).expect("valid action");
        let order = mapping
            .iter()
            .find(|(n, _)| n == "LoopOrder")
            .map(|(_, v)| v.to_string())
            .unwrap_or_default();
        let pes = mapping
            .iter()
            .find(|(n, _)| n == "Num_PE")
            .map(|(_, v)| v.to_string())
            .unwrap_or_default();
        println!("    best mapping: loop order {order}, {pes} PEs");
    }

    println!(
        "\nThe paper's Fig. 6 takeaway: once each variant's hyperparameters are tuned,\n\
         domain-specific operators do not dominate — the vanilla ArchGym GA is competitive."
    );
}
