//! Design a low-power DRAM memory controller with all five agent
//! families and compare the architectures they converge to — the
//! workflow behind the paper's Table 4.
//!
//! ```sh
//! cargo run --release --example dram_controller_design
//! ```

use archgym::agents::factory::{build_agent, AgentKind};
use archgym::core::prelude::*;
use archgym::dram::{DramEnv, DramWorkload, Objective};

fn main() {
    let budget = 2_000;
    let target_w = 1.0;
    println!(
        "Designing a memory controller for a pointer-chasing trace, target {target_w} W, \
         {budget} simulator samples per agent.\n"
    );

    let mut designs = Vec::new();
    for kind in AgentKind::ALL {
        let mut env = DramEnv::new(DramWorkload::Random, Objective::low_power(target_w));
        let mut agent =
            build_agent(kind, env.space(), &HyperMap::new(), 7).expect("default hypers are valid");
        let run = SearchLoop::new(RunConfig::with_budget(budget)).run(&mut agent, &mut env);
        let params = env.space().decode(&run.best_action).expect("valid action");
        designs.push((kind, run, params));
    }

    // Transposed table, parameters as rows (like the paper's Table 4).
    print!("{:<24}", "Parameter");
    for (kind, _, _) in &designs {
        print!(" {:>14}", kind.name().to_uppercase());
    }
    println!();
    let names: Vec<String> = designs[0].2.iter().map(|(n, _)| n.clone()).collect();
    for name in &names {
        print!("{:<24}", name);
        for (_, _, params) in &designs {
            let value = params
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.to_string())
                .unwrap_or_default();
            print!(" {value:>14}");
        }
        println!();
    }
    print!("{:<24}", "Achieved power (W)");
    for (_, run, _) in &designs {
        print!(" {:>14.3}", run.best_observation[1]);
    }
    println!();

    let all_close = designs
        .iter()
        .all(|(_, run, _)| (run.best_observation[1] - target_w).abs() / target_w < 0.25);
    println!(
        "\nEvery agent within 25% of the {target_w} W goal: {all_close} \
         (the paper's 'at least one design per agent satisfies the target')"
    );
}
