//! Proxy-in-the-loop exploration (the paper's Section 8): swap the slow
//! simulator for a trained proxy *behind the same environment interface*,
//! let a sample-hungry agent explore freely, then validate the winners on
//! the real simulator. Also demonstrates the data-driven offline
//! optimizer, which spends almost no simulator samples at all.
//!
//! ```sh
//! cargo run --release --example proxy_in_the_loop
//! ```

use archgym::agents::factory::{build_agent, AgentKind};
use archgym::agents::Reinforce;
use archgym::core::env::Environment;
use archgym::core::prelude::*;
use archgym::dram::{DramEnv, DramWorkload, Objective};
use archgym::proxy::forest::ForestConfig;
use archgym::proxy::{OfflineOptimizer, ProxyEnv};

fn main() {
    let objective = Objective::low_power(1.0);
    let make_sim = || DramEnv::new(DramWorkload::Cloud1, objective.clone());

    // 1. Log a modest exploration budget on the true simulator.
    let mut pool = Dataset::new();
    for kind in AgentKind::ALL {
        let mut env = make_sim();
        let mut agent = build_agent(kind, env.space(), &HyperMap::new(), 13).unwrap();
        pool.merge(
            SearchLoop::new(RunConfig::with_budget(400))
                .run(&mut agent, &mut env)
                .dataset,
        );
    }
    println!("logged {} simulator transitions", pool.len());

    // 2. Train a proxy environment with the exact simulator interface.
    let sim = make_sim();
    let mut proxy_env = ProxyEnv::train(
        "dram/cloud-1",
        sim.space().clone(),
        sim.observation_labels(),
        &pool,
        objective.spec().clone(),
        &ForestConfig::default(),
        3,
    )
    .expect("proxy training");

    // 3. Let RL — sample-inefficient on the simulator — burn 50k cheap
    //    proxy samples.
    let mut rl = Reinforce::with_defaults(proxy_env.space().clone(), 7);
    let proxy_run =
        SearchLoop::new(RunConfig::with_budget(50_000).record(false)).run(&mut rl, &mut proxy_env);
    let mut sim = make_sim();
    let validated = sim.step(&proxy_run.best_action);
    println!(
        "\nRL on the proxy: 50k proxy samples in {:.2}s → validated power {:.3} W (reward {:.2})",
        proxy_run.wall_seconds,
        validated.observation.get(1),
        validated.reward
    );

    // 4. The offline optimizer: proxies + hill climbing, 24 simulator
    //    validations total.
    let mut offline = OfflineOptimizer::new(
        sim.space().clone(),
        pool,
        sim.observation_labels().len(),
        objective.spec().clone(),
        11,
    )
    .expect("offline optimizer");
    let mut sim = make_sim();
    let offline_run =
        SearchLoop::new(RunConfig::with_budget(24).batch(8)).run(&mut offline, &mut sim);
    println!(
        "offline optimizer: {} simulator samples → power {:.3} W (reward {:.2})",
        offline_run.samples_used, offline_run.best_observation[1], offline_run.best_reward
    );
}
