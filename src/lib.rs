//! # ArchGym
//!
//! An open-source gymnasium for machine-learning-assisted architecture
//! design space exploration — a Rust reproduction of *ArchGym* (Krishnan et
//! al., ISCA 2023).
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`core`] — gym abstractions: parameter spaces, environments, agents,
//!   search loops, trajectory datasets, sweeps, statistics.
//! * [`agents`] — the five search agents (random walker, genetic algorithm
//!   with GAMMA-style operators, ant colony optimization, Bayesian
//!   optimization, reinforcement learning).
//! * [`dram`] — DRAMGym: a DRAM memory-controller simulator environment.
//! * [`accel`] — TimeloopGym: an Eyeriss-like DNN accelerator cost model.
//! * [`soc`] — FARSIGym: an AR/VR SoC roofline model.
//! * [`mapping`] — MaestroGym: a data-centric DNN mapping cost model.
//! * [`proxy`] — random-forest proxy cost models trained from ArchGym
//!   datasets.
//!
//! # Quickstart
//!
//! ```
//! use archgym::core::prelude::*;
//! use archgym::agents::GeneticAlgorithm;
//! use archgym::dram::{DramEnv, DramWorkload, Objective as DramObjective};
//!
//! // Design a low-power DRAM memory controller for a streaming trace.
//! let mut env = DramEnv::new(DramWorkload::Stream, DramObjective::low_power(1.0));
//! let mut agent = GeneticAlgorithm::with_defaults(env.space().clone(), 42);
//! let result = SearchLoop::new(RunConfig::with_budget(512)).run(&mut agent, &mut env);
//! assert!(result.best_reward > 0.0);
//! ```

pub use archgym_accel as accel;
pub use archgym_agents as agents;
pub use archgym_core as core;
pub use archgym_dram as dram;
pub use archgym_mapping as mapping;
pub use archgym_models as models;
pub use archgym_proxy as proxy;
pub use archgym_soc as soc;
