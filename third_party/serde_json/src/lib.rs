//! Offline stand-in for `serde_json`; archgym's hand-rolled codec replaced
//! every runtime use, so only the crate name needs to resolve.

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
}
