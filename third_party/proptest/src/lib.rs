//! Offline stand-in for `proptest` that actually RUNS properties.
//!
//! Unlike a body-swallowing stub, this crate implements the exact
//! strategy subset archgym uses — integer/float ranges, `[class]{m,n}`
//! regex strings, `option::of`, `collection::{vec, btree_map}`,
//! `num::{f64, u64}::ANY`, `any::<T>()`, `prop_oneof!` — and a
//! deterministic seeded runner, so `proptest!` blocks execute their
//! bodies under plain `cargo test` with no network access.
//!
//! Differences from real proptest (documented, intentional):
//! - no shrinking: a failing case reports its generated inputs and
//!   replays deterministically (the seed is a hash of the test path),
//!   but is not minimized;
//! - `PROPTEST_CASES` overrides the per-block case count.

use std::fmt::Write as _;

/// Deterministic test RNG (splitmix64), seeded from the test path so
/// every run of a given test replays the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the fully qualified test name.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// 53 random bits in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }

    /// Uniform in [0, bound); bias is irrelevant at test scale.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A value generator. The `x in EXPR` bindings inside `proptest!`
/// require `EXPR` to implement this trait.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = u128::from(rng.next_u64()) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = u128::from(rng.next_u64()) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

/// String strategies are written as regex literals. This parses the
/// subset archgym uses: a sequence of `[class]` atoms (char ranges,
/// literals, `\` escapes; a trailing or leading `-` is literal), each
/// with an optional `{m}`, `{m,}` or `{m,n}` quantifier.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min + rng.below(atom.max - atom.min as u64 + 1) as usize;
            for _ in 0..n {
                let pick = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[pick]);
            }
        }
        out
    }
}

struct PatternAtom {
    chars: Vec<char>,
    min: usize,
    /// Inclusive upper repetition bound.
    max: u64,
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let mut atoms = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        let chars = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let c = it
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
                    match c {
                        ']' => break,
                        '\\' => {
                            let esc = it
                                .next()
                                .unwrap_or_else(|| panic!("dangling escape in {pattern:?}"));
                            set.push(esc);
                            prev = Some(esc);
                        }
                        '-' => {
                            // `a-z` range when between two chars, else literal.
                            match (prev, it.peek()) {
                                (Some(lo), Some(&hi)) if hi != ']' => {
                                    it.next();
                                    let hi = if hi == '\\' {
                                        it.next().unwrap_or_else(|| {
                                            panic!("dangling escape in {pattern:?}")
                                        })
                                    } else {
                                        hi
                                    };
                                    assert!(lo <= hi, "inverted range in {pattern:?}");
                                    // `lo` is already in the set; add the rest.
                                    for code in (lo as u32 + 1)..=(hi as u32) {
                                        set.push(char::from_u32(code).unwrap());
                                    }
                                    prev = None;
                                }
                                _ => {
                                    set.push('-');
                                    prev = Some('-');
                                }
                            }
                        }
                        other => {
                            set.push(other);
                            prev = Some(other);
                        }
                    }
                }
                assert!(!set.is_empty(), "empty class in {pattern:?}");
                set
            }
            '\\' => {
                let esc = it
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in {pattern:?}"));
                vec![esc]
            }
            other => vec![other],
        };
        // Optional quantifier.
        let (min, max) = if it.peek() == Some(&'{') {
            it.next();
            let mut spec = String::new();
            loop {
                let c = it
                    .next()
                    .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"));
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                None => {
                    let n: usize = spec.parse().expect("bad quantifier");
                    (n, n as u64)
                }
                Some((m, "")) => {
                    let m: usize = m.parse().expect("bad quantifier");
                    (m, m as u64 + 8)
                }
                Some((m, n)) => (
                    m.parse().expect("bad quantifier"),
                    n.parse().expect("bad quantifier"),
                ),
            }
        } else {
            (1, 1)
        };
        atoms.push(PatternAtom { chars, min, max });
    }
    atoms
}

/// `any::<T>()` — full-domain strategies for primitives.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Strategy::generate(&num::f64::ANY, rng)
    }
}

pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionOf<S>(S);

    impl<S: Strategy> Strategy for OptionOf<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // 1 in 4 None, close to real proptest's default weighting.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    pub fn of<S: Strategy>(strategy: S) -> OptionOf<S> {
        OptionOf(strategy)
    }
}

/// Collection size specs: `vec(elem, 1..100)`, `vec(elem, 3)`, ...
pub trait SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for core::ops::Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for core::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
    }
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeMap;

    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    pub struct BTreeMapStrategy<K, V, R> {
        key: K,
        value: V,
        size: R,
    }

    impl<K, V, R> Strategy for BTreeMapStrategy<K, V, R>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        R: SizeRange,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut map = BTreeMap::new();
            // Duplicate keys shrink the map; bounded retries keep the
            // generator total even for tiny key domains.
            for _ in 0..target.saturating_mul(8) {
                if map.len() >= target {
                    break;
                }
                map.insert(self.key.generate(rng), self.value.generate(rng));
            }
            map
        }
    }

    pub fn btree_map<K, V, R>(key: K, value: V, size: R) -> BTreeMapStrategy<K, V, R>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        R: SizeRange,
    {
        BTreeMapStrategy { key, value, size }
    }
}

pub mod num {
    pub mod f64 {
        use crate::{Strategy, TestRng};

        pub struct Any;
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> f64 {
                // 1 in 8 cases draw from the special-value corpus so
                // NaN/±inf/±0/subnormal paths are exercised every run.
                if rng.below(8) == 0 {
                    const SPECIAL: [f64; 9] = [
                        0.0,
                        -0.0,
                        f64::NAN,
                        f64::INFINITY,
                        f64::NEG_INFINITY,
                        f64::MIN,
                        f64::MAX,
                        f64::MIN_POSITIVE,
                        5e-324, // smallest subnormal
                    ];
                    SPECIAL[rng.below(SPECIAL.len() as u64) as usize]
                } else {
                    f64::from_bits(rng.next_u64())
                }
            }
        }
    }

    pub mod u64 {
        use crate::{Strategy, TestRng};

        pub struct Any;
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = u64;
            fn generate(&self, rng: &mut TestRng) -> u64 {
                rng.next_u64()
            }
        }
    }
}

/// Runner configuration; `prelude::*` exposes it for
/// `#![proptest_config(ProptestConfig::with_cases(N))]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

#[doc(hidden)]
pub mod test_runner {
    pub use super::{ProptestConfig, TestRng};

    /// `PROPTEST_CASES` overrides the per-block config.
    pub fn resolve_cases(config: &ProptestConfig) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(config.cases),
            Err(_) => config.cases,
        }
    }

    pub fn describe(args: &[(&str, String)]) -> String {
        let mut out = String::new();
        for (name, value) in args {
            let _ = super::write_arg(&mut out, name, value);
        }
        out
    }
}

fn write_arg(out: &mut String, name: &str, value: &str) -> std::fmt::Result {
    writeln!(out, "    {name} = {value}")
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    (@fns ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cases = $crate::test_runner::resolve_cases(&$cfg);
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cases {
                $(let $arg = $crate::Strategy::generate(&$strat, &mut __rng);)+
                let __desc = $crate::test_runner::describe(&[
                    $((stringify!($arg), format!("{:?}", $arg))),+
                ]);
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| { $body }),
                );
                if let Err(panic) = __outcome {
                    eprintln!(
                        "proptest {}::{} failed at case {}/{} with inputs:\n{}",
                        module_path!(),
                        stringify!($name),
                        __case + 1,
                        __cases,
                        __desc,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    (@fns ($cfg:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf(vec![
            $(Box::new({
                let s = $strategy;
                move |rng: &mut $crate::TestRng| $crate::Strategy::generate(&s, rng)
            }) as Box<dyn Fn(&mut $crate::TestRng) -> _>),+
        ])
    };
}

/// Uniformly picks one of several same-typed generators (`prop_oneof!`).
pub struct OneOf<T>(pub Vec<Box<dyn Fn(&mut TestRng) -> T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.0.len() as u64) as usize;
        (self.0[pick])(rng)
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod self_tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::generate(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = Strategy::generate(&(-50i64..50), &mut rng);
            assert!((-50..50).contains(&i));
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::for_test("regex");
        for _ in 0..500 {
            let s = Strategy::generate(&"[a-zA-Z0-9 _/.\"-]{0,24}", &mut rng);
            assert!(s.chars().count() <= 24);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " _/.\"-".contains(c)));
            let t = Strategy::generate(&"[ -~]{0,40}", &mut rng);
            assert!(t.chars().count() <= 40);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
            let u = Strategy::generate(&"[a-z_\"\\\\]{1,8}", &mut rng);
            assert!((1..=8).contains(&u.chars().count()));
            assert!(u
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '_' || c == '"' || c == '\\'));
        }
    }

    #[test]
    fn f64_any_hits_special_values() {
        let mut rng = TestRng::for_test("f64-any");
        let mut saw_nan = false;
        let mut saw_inf = false;
        for _ in 0..2000 {
            let v = Strategy::generate(&num::f64::ANY, &mut rng);
            saw_nan |= v.is_nan();
            saw_inf |= v.is_infinite();
        }
        assert!(saw_nan && saw_inf);
    }

    #[test]
    fn runner_is_deterministic_per_name() {
        let mut a = TestRng::for_test("same-name");
        let mut b = TestRng::for_test("same-name");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself must bind args, run bodies, and honor config.
        #[test]
        fn macro_executes_bodies(x in 0u64..100, v in collection::vec(0usize..10, 0..5)) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 10));
        }
    }
}
