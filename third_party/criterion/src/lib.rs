//! Offline stand-in for `criterion`: benches compile and run each body a
//! handful of times with no statistics (the real harness runs in CI).

use std::time::Duration;

pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<I: Into<String>, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        let _ = id.into();
        self
    }

    pub fn benchmark_group<I: Into<String>>(&mut self, name: I) -> BenchmarkGroup<'_> {
        let _ = name.into();
        BenchmarkGroup { _parent: self }
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn bench_function<I: Into<String>, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        let _ = id.into();
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

#[derive(Default)]
pub struct Bencher {}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..3 {
            black_box(f());
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
