//! Offline stand-in for `serde_derive`: both derives expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
