//! Offline stand-in for `serde`: derive macros expand to nothing; the
//! traits exist only so `use serde::{Deserialize, Serialize}` resolves.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
pub trait Deserialize<'de>: Sized {}
