//! Offline stand-in for `rand 0.8` exposing the API subset archgym uses.
//! Deterministic (splitmix64) but NOT stream-compatible with real StdRng.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    fn unit_f64(&mut self) -> f64 {
        // 53 random bits in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub trait Sample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! int_sample {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_sample!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Sample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Sample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.unit_f64()
    }
}

impl Sample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.unit_f64() as f32
    }
}

pub trait SampleRange<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
float_range!(f32, f64);

pub trait Rng: RngCore {
    fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_in(self)
    }
    fn gen_bool(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9E3779B97F4A7C15)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator (stream differs from real StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9E3779B97F4A7C15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    use super::RngCore;

    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn choose_mut<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Option<&mut Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }

        fn choose_mut<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Option<&mut T> {
            if self.is_empty() {
                None
            } else {
                let idx = (rng.next_u64() % self.len() as u64) as usize;
                Some(&mut self[idx])
            }
        }
    }
}

pub mod distributions {
    pub use super::{Sample as Distribution, SampleRange};
}
