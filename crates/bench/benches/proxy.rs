//! Criterion microbenchmarks for the proxy pipeline: random-forest
//! training and prediction — the costs behind the Fig. 12 speedup story.

use archgym_bench::fig10::{collect_pool, POWER_METRIC};
use archgym_bench::harness::Scale;
use archgym_proxy::forest::{ForestConfig, RandomForest};
use archgym_proxy::pipeline::train_proxy_fixed;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_proxy(c: &mut Criterion) {
    let pool = collect_pool(Scale::Smoke, 0).expect("dataset collection");
    let (xs, ys) = pool.features_targets(POWER_METRIC).expect("features");
    let proxy = train_proxy_fixed(&pool, POWER_METRIC, &ForestConfig::default(), 1)
        .expect("proxy training");

    let mut group = c.benchmark_group("proxy");
    group.sample_size(10);
    group.bench_function("fit_24_trees", |b| {
        b.iter(|| {
            black_box(
                RandomForest::fit(black_box(&xs), black_box(&ys), &ForestConfig::default(), 3)
                    .unwrap(),
            )
        })
    });
    group.bench_function("predict", |b| {
        b.iter(|| black_box(proxy.predict(black_box(&[1, 2, 3, 4, 0, 1, 2, 0, 1, 0]))))
    });
    group.finish();
}

criterion_group!(benches, bench_proxy);
criterion_main!(benches);
