//! **Fig. 12(a) (criterion)** — one simulator evaluation vs one proxy
//! prediction, head to head. The reported ratio is the speedup the
//! proxy cost model buys on this substrate.

use archgym_bench::fig10::{collect_pool, POWER_METRIC};
use archgym_bench::harness::Scale;
use archgym_core::env::Environment;
use archgym_core::seeded_rng;
use archgym_dram::{DramEnv, DramWorkload, Objective};
use archgym_proxy::forest::ForestConfig;
use archgym_proxy::pipeline::train_proxy_fixed;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn fig12_speedup(c: &mut Criterion) {
    let pool = collect_pool(Scale::Smoke, 0).expect("dataset collection");
    let proxy = train_proxy_fixed(&pool, POWER_METRIC, &ForestConfig::default(), 1)
        .expect("proxy training");
    let mut env = DramEnv::new(DramWorkload::Random, Objective::low_power(1.0));
    let mut rng = seeded_rng(21);
    let action = env.space().sample(&mut rng);

    let mut group = c.benchmark_group("fig12/per_evaluation");
    group.bench_function("simulator", |b| {
        b.iter(|| black_box(env.step(black_box(&action))))
    });
    group.bench_function("proxy", |b| {
        b.iter(|| black_box(proxy.predict(black_box(action.as_slice()))))
    });
    group.finish();
}

criterion_group!(benches, fig12_speedup);
criterion_main!(benches);
