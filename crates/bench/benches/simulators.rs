//! Criterion microbenchmarks for the four architecture cost models —
//! the per-evaluation costs every experiment in the paper multiplies by
//! its sample budget.

use archgym_core::env::Environment;
use archgym_core::seeded_rng;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_dram(c: &mut Criterion) {
    use archgym_dram::{DramEnv, DramWorkload, Objective};
    let mut group = c.benchmark_group("simulators/dram");
    for workload in DramWorkload::ALL {
        let mut env = DramEnv::new(workload, Objective::low_power(1.0));
        let mut rng = seeded_rng(1);
        let action = env.space().sample(&mut rng);
        group.bench_function(workload.name(), |b| {
            b.iter(|| black_box(env.step(black_box(&action))))
        });
    }
    group.finish();
}

fn bench_accel(c: &mut Criterion) {
    use archgym_accel::{AccelEnv, Objective};
    let mut group = c.benchmark_group("simulators/timeloop");
    for net in [archgym_models::alexnet(), archgym_models::resnet50()] {
        let name = net.name().to_owned();
        let mut env = AccelEnv::new(net, Objective::latency(5.0));
        let mut rng = seeded_rng(2);
        let action = env.space().sample(&mut rng);
        group.bench_function(&name, |b| {
            b.iter(|| black_box(env.step(black_box(&action))))
        });
    }
    group.finish();
}

fn bench_soc(c: &mut Criterion) {
    use archgym_soc::{SocEnv, SocWorkload};
    let mut group = c.benchmark_group("simulators/farsi");
    for workload in SocWorkload::ALL {
        let mut env = SocEnv::new(workload);
        let mut rng = seeded_rng(3);
        let action = env.space().sample(&mut rng);
        group.bench_function(workload.name(), |b| {
            b.iter(|| black_box(env.step(black_box(&action))))
        });
    }
    group.finish();
}

fn bench_mapping(c: &mut Criterion) {
    use archgym_mapping::{MappingEnv, Objective};
    let mut group = c.benchmark_group("simulators/maestro");
    let net = archgym_models::resnet18();
    let mut env = MappingEnv::for_layer(&net, "stage2", Objective::runtime()).unwrap();
    let mut rng = seeded_rng(4);
    let action = env.space().sample(&mut rng);
    group.bench_function("resnet18/stage2", |b| {
        b.iter(|| black_box(env.step(black_box(&action))))
    });
    group.finish();
}

criterion_group!(benches, bench_dram, bench_accel, bench_soc, bench_mapping);
criterion_main!(benches);
