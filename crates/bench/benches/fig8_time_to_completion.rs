//! **Fig. 8 (criterion)** — time-to-completion of each agent for a fixed
//! sample budget on DRAMGym and FARSIGym, measured by criterion rather
//! than a single wall-clock sample.

use archgym_agents::factory::{build_agent, AgentKind};
use archgym_core::agent::HyperMap;
use archgym_core::env::Environment;
use archgym_core::search::{RunConfig, SearchLoop};
use archgym_dram::{DramEnv, DramWorkload, Objective};
use archgym_soc::{SocEnv, SocWorkload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const BUDGET: u64 = 256;

fn bench_env<F>(c: &mut Criterion, label: &str, mut make_env: F)
where
    F: FnMut() -> Box<dyn Environment>,
{
    let mut group = c.benchmark_group(format!("fig8/{label}"));
    group.sample_size(10);
    for kind in AgentKind::ALL {
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let mut env = make_env();
                let mut agent = build_agent(kind, env.space(), &HyperMap::new(), 7).unwrap();
                let result = SearchLoop::new(RunConfig::with_budget(BUDGET).record(false))
                    .run(&mut agent, &mut env);
                black_box(result.best_reward)
            })
        });
    }
    group.finish();
}

fn fig8(c: &mut Criterion) {
    bench_env(c, "dram", || {
        Box::new(DramEnv::new(
            DramWorkload::Random,
            Objective::low_power(1.0),
        ))
    });
    bench_env(c, "farsi", || {
        Box::new(SocEnv::new(SocWorkload::AudioDecoder))
    });
}

criterion_group!(benches, fig8);
criterion_main!(benches);
