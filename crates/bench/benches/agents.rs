//! Criterion microbenchmarks for the five agents' propose/observe cost
//! on a DRAM-sized design space — the agent-side overhead Fig. 8's
//! time-to-completion differences come from.

use archgym_agents::factory::{build_agent, AgentKind};
use archgym_core::agent::HyperMap;
use archgym_core::env::{Observation, StepResult};
use archgym_dram::dram_space;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_propose_observe(c: &mut Criterion) {
    let mut group = c.benchmark_group("agents/propose_observe_16");
    for kind in AgentKind::ALL {
        let space = dram_space();
        let mut agent = build_agent(kind, &space, &HyperMap::new(), 11).unwrap();
        // Warm the agent so BO is past its initial design (the expensive
        // surrogate path is what matters).
        for _ in 0..4 {
            let batch = agent.propose(16);
            let results: Vec<(archgym_core::space::Action, StepResult)> = batch
                .into_iter()
                .enumerate()
                .map(|(i, a)| {
                    (
                        a,
                        StepResult::terminal(Observation::new(vec![30.0, 1.0, 20.0]), i as f64),
                    )
                })
                .collect();
            agent.observe(&results);
        }
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let batch = agent.propose(16);
                let results: Vec<(archgym_core::space::Action, StepResult)> = batch
                    .into_iter()
                    .enumerate()
                    .map(|(i, a)| {
                        (
                            a,
                            StepResult::terminal(Observation::new(vec![30.0, 1.0, 20.0]), i as f64),
                        )
                    })
                    .collect();
                agent.observe(black_box(&results));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_propose_observe);
criterion_main!(benches);
