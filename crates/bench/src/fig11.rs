//! **Fig. 11** — predicted vs actual power: correlation of the proxy
//! trained on a single-source dataset vs a diverse dataset.
//!
//! The paper's scatter plots show diverse-trained proxies hugging the
//! diagonal while single-source proxies decorrelate off their agent's
//! exploration manifold; we quantify the same with the Pearson
//! correlation on a uniform held-out set.

use crate::fig10::{collect_pool, uniform_test_set, POWER_METRIC};
use crate::harness::Scale;
use archgym_core::error::Result;
use archgym_core::seeded_rng;
use archgym_proxy::forest::ForestConfig;
use archgym_proxy::pipeline::{train_proxy_fixed, DatasetTiers};

/// The study output.
#[derive(Debug, Clone)]
pub struct Fig11Result {
    /// Correlation of the single-source (ACO-only) power proxy.
    pub single_correlation: f64,
    /// Correlation of the diverse power proxy.
    pub diverse_correlation: f64,
    /// RMSE of the single-source proxy.
    pub single_rmse: f64,
    /// RMSE of the diverse proxy.
    pub diverse_rmse: f64,
    /// Matched training-set size.
    pub train_size: usize,
}

/// Run the study at one matched dataset size, collecting the exploration
/// pool over `jobs` worker threads (`0` = every available core).
///
/// # Errors
///
/// Propagates dataset-collection and training failures.
pub fn run(scale: Scale, jobs: usize) -> Result<Fig11Result> {
    let pool = collect_pool(scale, jobs)?;
    let size = match scale {
        Scale::Smoke => 192,
        Scale::Default => 1_500,
        Scale::Full => 8_000,
    };
    let mut rng = seeded_rng(0xF11);
    let tiers = DatasetTiers::build(&pool, "aco", &[size], &mut rng)?;
    let (actual_size, single, diverse) = &tiers.tiers[0];
    let test = uniform_test_set(scale, 0x11E5);
    let config = ForestConfig::default();
    let single_report = train_proxy_fixed(single, POWER_METRIC, &config, 3)?.report(&test)?;
    let diverse_report = train_proxy_fixed(diverse, POWER_METRIC, &config, 3)?.report(&test)?;
    Ok(Fig11Result {
        single_correlation: single_report.correlation,
        diverse_correlation: diverse_report.correlation,
        single_rmse: single_report.rmse,
        diverse_rmse: diverse_report.rmse,
        train_size: *actual_size,
    })
}

/// Print the study.
pub fn print(result: &Fig11Result) {
    println!("\n=== Fig. 11 — predicted vs actual power (held-out designs) ===");
    println!(
        "{:<22} {:>14} {:>14}",
        "training set", "correlation", "RMSE (W)"
    );
    println!(
        "{:<22} {:>14.4} {:>14.5}",
        format!("single-source ({})", result.train_size),
        result.single_correlation,
        result.single_rmse
    );
    println!(
        "{:<22} {:>14.4} {:>14.5}",
        format!("diverse ({})", result.train_size),
        result.diverse_correlation,
        result.diverse_rmse
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diverse_training_correlates_at_least_as_well() {
        let result = run(Scale::Smoke, 0).unwrap();
        assert!(
            result.diverse_correlation > 0.5,
            "diverse proxy decorrelated: {}",
            result.diverse_correlation
        );
        assert!(
            result.diverse_correlation >= result.single_correlation - 0.1,
            "diversity hurt correlation: {} vs {}",
            result.diverse_correlation,
            result.single_correlation
        );
        print(&result);
    }
}
