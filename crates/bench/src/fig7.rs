//! **Fig. 7** — trade-offs under sample-efficiency constraints: mean
//! normalized reward of each agent on DRAMGym and TimeloopGym when the
//! simulator only grants {100, 1k, 10k, 100k} samples.
//!
//! The paper's shape: in the low-sample regime every simple algorithm
//! (even the random walker) is competitive while RL lags badly; with
//! large budgets RL improves drastically and the field converges.

use crate::harness::{lottery, LotterySpec, Scale};
use archgym_accel::{AccelEnv, Objective as AccelObjective};
use archgym_agents::factory::AgentKind;
use archgym_core::error::Result;
use archgym_core::sweep::mean_normalized_rewards;
use archgym_dram::{DramEnv, DramWorkload, Objective as DramObjective};

/// One (environment, budget) cell: normalized mean best reward per agent.
#[derive(Debug, Clone)]
pub struct BudgetCell {
    /// Environment label.
    pub env: &'static str,
    /// Sample budget.
    pub budget: u64,
    /// `(agent, mean normalized reward)` pairs, paper order.
    pub normalized: Vec<(String, f64)>,
}

impl BudgetCell {
    /// Normalized score of one agent.
    pub fn score(&self, agent: &str) -> Option<f64> {
        self.normalized
            .iter()
            .find(|(a, _)| a == agent)
            .map(|(_, v)| *v)
    }
}

/// The budgets of the study, scaled.
pub fn budgets(scale: Scale) -> Vec<u64> {
    match scale {
        Scale::Smoke => vec![64, 512],
        Scale::Default => vec![100, 1_000, 10_000],
        Scale::Full => vec![100, 1_000, 10_000, 100_000],
    }
}

/// Run the study, fanning sweeps out over `jobs` worker threads
/// (`0` = every available core).
///
/// # Errors
///
/// Propagates agent-construction failures.
pub fn run(scale: Scale, jobs: usize) -> Result<Vec<BudgetCell>> {
    let mut cells = Vec::new();
    let envs: Vec<&'static str> = match scale {
        Scale::Smoke => vec!["dram"],
        _ => vec!["dram", "timeloop"],
    };
    for env_label in envs {
        for &budget in &budgets(scale) {
            let spec = LotterySpec::new(scale).budget(budget).jobs(jobs);
            let mut sweeps = Vec::new();
            for kind in AgentKind::ALL {
                let sweep = match env_label {
                    "dram" => lottery(kind, &spec, || {
                        Box::new(DramEnv::new(
                            DramWorkload::Cloud1,
                            DramObjective::joint(
                                crate::fig4::latency_target_ns(DramWorkload::Cloud1),
                                1.0,
                            ),
                        ))
                    })?,
                    _ => lottery(kind, &spec, || {
                        Box::new(AccelEnv::new(
                            archgym_models::resnet18(),
                            AccelObjective::latency(8.0),
                        ))
                    })?,
                };
                sweeps.push(sweep);
            }
            cells.push(BudgetCell {
                env: env_label,
                budget,
                normalized: mean_normalized_rewards(&sweeps),
            });
        }
    }
    Ok(cells)
}

/// Print the figure as one row per (env, budget).
pub fn print(cells: &[BudgetCell]) {
    println!("\n=== Fig. 7 — mean normalized reward vs sample budget ===");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "env", "budget", "aco", "bo", "ga", "rl", "rw"
    );
    for cell in cells {
        print!("{:<10} {:>8}", cell.env, cell.budget);
        for agent in ["aco", "bo", "ga", "rl", "rw"] {
            print!(" {:>8.3}", cell.score(agent).unwrap_or(f64::NAN));
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_cells_for_each_budget() {
        let cells = run(Scale::Smoke, 0).unwrap();
        assert_eq!(cells.len(), 2);
        for cell in &cells {
            assert_eq!(cell.normalized.len(), 5);
            // Normalization: the best agent scores exactly 1.
            let max = cell
                .normalized
                .iter()
                .map(|(_, v)| *v)
                .fold(f64::NEG_INFINITY, f64::max);
            assert!((max - 1.0).abs() < 1e-9);
        }
        print(&cells);
    }

    #[test]
    fn rl_improves_with_budget() {
        // The qualitative Fig. 7 claim, at smoke scale: RL's normalized
        // score at the larger budget is at least its small-budget score
        // (allowing noise slack).
        let cells = run(Scale::Smoke, 0).unwrap();
        let small = cells[0].score("rl").unwrap();
        let large = cells[1].score("rl").unwrap();
        assert!(
            large >= small * 0.8,
            "RL did not improve with budget: {small} -> {large}"
        );
    }
}
