//! **Table 4** — the DRAM memory controllers each agent designs for a
//! low-power (1 W) target on a pointer-chasing (random-access) trace.
//!
//! The paper's observations: every agent finds *at least one* design
//! meeting the target, all keep `MaxActiveTransactions` minimal, and the
//! agents reach the target through different page-policy / scheduler /
//! buffer combinations.

use crate::harness::{lottery, LotterySpec, Scale};
use archgym_agents::factory::AgentKind;
use archgym_core::error::Result;
use archgym_core::space::ParamValue;
use archgym_dram::{dram_space, DramEnv, DramWorkload, Objective};

/// One agent's best design: parameter values plus achieved power.
#[derive(Debug, Clone)]
pub struct DesignRow {
    /// Agent family.
    pub agent: &'static str,
    /// `(parameter, value)` pairs in Fig. 3(a) order.
    pub parameters: Vec<(String, ParamValue)>,
    /// Achieved power in watts.
    pub power_w: f64,
    /// Achieved reward.
    pub reward: f64,
}

impl DesignRow {
    /// Look one parameter up by name.
    pub fn value(&self, name: &str) -> Option<&ParamValue> {
        self.parameters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }
}

/// Run the study: a lottery per agent on the random trace with the 1 W
/// target, keeping each agent's overall best design.
///
/// # Errors
///
/// Propagates agent-construction failures.
pub fn run(scale: Scale, jobs: usize) -> Result<Vec<DesignRow>> {
    let spec = LotterySpec::new(scale).jobs(jobs);
    let space = dram_space();
    let mut rows = Vec::new();
    for kind in AgentKind::ALL {
        let sweep = lottery(kind, &spec, || {
            Box::new(DramEnv::new(
                DramWorkload::Random,
                Objective::low_power(1.0),
            ))
        })?;
        let winner = sweep.winner();
        let parameters = space
            .decode(&winner.result.best_action)
            .expect("winning action fits the DRAM space");
        rows.push(DesignRow {
            agent: kind.name(),
            parameters,
            power_w: winner.result.best_observation[archgym_dram::env::metric::POWER],
            reward: winner.result.best_reward,
        });
    }
    Ok(rows)
}

/// Print the table transposed like the paper: parameters as rows, agents
/// as columns.
pub fn print(rows: &[DesignRow]) {
    println!("\n=== Table 4 — low-power (1 W target) DRAM controllers, pointer-chase trace ===");
    print!("{:<24}", "Parameter");
    for row in rows {
        print!(" {:>14}", row.agent.to_uppercase());
    }
    println!();
    if let Some(first) = rows.first() {
        for (name, _) in &first.parameters {
            print!("{:<24}", name);
            for row in rows {
                let value = row.value(name).map(|v| v.to_string()).unwrap_or_default();
                print!(" {:>14}", value);
            }
            println!();
        }
    }
    print!("{:<24}", "Achieved power (W)");
    for row in rows {
        print!(" {:>14.3}", row.power_w);
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_agent_designs_a_near_target_controller() {
        let rows = run(Scale::Smoke, 0).unwrap();
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert_eq!(row.parameters.len(), 10);
            // The paper's "at least one design satisfying the target":
            // at smoke scale allow a generous band around 1 W.
            assert!(
                (0.5..=1.6).contains(&row.power_w),
                "{} power {} W far from the 1 W goal",
                row.agent,
                row.power_w
            );
        }
        print(&rows);
    }

    #[test]
    fn design_rows_expose_parameters_by_name() {
        let rows = run(Scale::Smoke, 0).unwrap();
        for row in &rows {
            assert!(row.value("PagePolicy").is_some());
            assert!(row.value("MaxActiveTransactions").is_some());
            assert!(row.value("NotAParameter").is_none());
        }
    }
}
