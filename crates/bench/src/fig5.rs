//! **Fig. 5** — the hyperparameter lottery across all four simulators:
//! (a) DRAMGym on the streaming trace, (b) TimeloopGym designing an
//! Eyeriss-like accelerator for ResNet-50, (c) FARSIGym designing a SoC
//! for edge detection, and (d) MaestroGym mapping ResNet-18.
//!
//! For (b)–(d) the paper plots a *minimization* quantity (distance /
//! latency), so this harness also reports each panel in the paper's
//! native units.

use crate::harness::{lottery, print_summary_table, LotterySpec, Scale};
use archgym_accel::{AccelEnv, Objective as AccelObjective};
use archgym_agents::factory::AgentKind;
use archgym_core::error::Result;
use archgym_core::sweep::SweepSummary;
use archgym_dram::{DramEnv, DramWorkload, Objective as DramObjective};
use archgym_mapping::{MappingEnv, Objective as MappingObjective};
use archgym_soc::{SocEnv, SocWorkload};

/// One simulator panel of Fig. 5.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Panel label (`"dram"`, `"timeloop"`, `"farsi"`, `"maestro"`).
    pub simulator: &'static str,
    /// One sweep summary per agent family.
    pub summaries: Vec<SweepSummary>,
}

/// Which panels to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanelId {
    /// DRAMGym, streaming trace, low-power objective.
    Dram,
    /// TimeloopGym, ResNet-50, latency target.
    Timeloop,
    /// FARSIGym, edge detection, distance-to-budget.
    Farsi,
    /// MaestroGym, ResNet-18 stage-2 mapping, runtime minimization.
    Maestro,
}

impl PanelId {
    /// All four panels in paper order.
    pub const ALL: [PanelId; 4] = [
        PanelId::Dram,
        PanelId::Timeloop,
        PanelId::Farsi,
        PanelId::Maestro,
    ];
}

/// Run one panel, fanning sweeps out over `jobs` worker threads
/// (`0` = every available core).
///
/// # Errors
///
/// Propagates agent-construction failures.
pub fn run_panel(id: PanelId, scale: Scale, jobs: usize) -> Result<Panel> {
    let spec = LotterySpec::new(scale).jobs(jobs);
    let mut summaries = Vec::new();
    for kind in AgentKind::ALL {
        let sweep = match id {
            PanelId::Dram => lottery(kind, &spec, || {
                Box::new(DramEnv::new(
                    DramWorkload::Stream,
                    DramObjective::low_power(1.0),
                ))
            })?,
            PanelId::Timeloop => lottery(kind, &spec, || {
                Box::new(AccelEnv::new(
                    archgym_models::resnet50(),
                    AccelObjective::latency(15.0),
                ))
            })?,
            PanelId::Farsi => lottery(kind, &spec, || {
                Box::new(SocEnv::new(SocWorkload::EdgeDetection))
            })?,
            PanelId::Maestro => lottery(kind, &spec, || {
                let net = archgym_models::resnet18();
                Box::new(
                    MappingEnv::for_layer(&net, "stage2", MappingObjective::runtime())
                        .expect("stage2 exists"),
                )
            })?,
        };
        summaries.push(sweep.summary());
    }
    Ok(Panel {
        simulator: match id {
            PanelId::Dram => "dram",
            PanelId::Timeloop => "timeloop",
            PanelId::Farsi => "farsi",
            PanelId::Maestro => "maestro",
        },
        summaries,
    })
}

/// Run the full figure (at `Smoke` scale, only the DRAM and FARSI panels
/// to keep CI fast).
///
/// # Errors
///
/// Propagates agent-construction failures.
pub fn run(scale: Scale, jobs: usize) -> Result<Vec<Panel>> {
    let panels: &[PanelId] = match scale {
        Scale::Smoke => &[PanelId::Dram, PanelId::Farsi],
        _ => &PanelId::ALL,
    };
    panels
        .iter()
        .map(|&id| run_panel(id, scale, jobs))
        .collect()
}

/// Print the figure as tables, one per simulator panel.
pub fn print(panels: &[Panel]) {
    for panel in panels {
        print_summary_table(
            &format!("Fig. 5 — hyperparameter lottery on {}", panel.simulator),
            &panel.summaries,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_panels_cover_two_simulators() {
        let panels = run(Scale::Smoke, 0).unwrap();
        assert_eq!(panels.len(), 2);
        assert_eq!(panels[0].simulator, "dram");
        assert_eq!(panels[1].simulator, "farsi");
        for panel in &panels {
            assert_eq!(panel.summaries.len(), 5);
        }
        print(&panels);
    }

    #[test]
    fn maestro_panel_runs_at_smoke_scale() {
        let panel = run_panel(PanelId::Maestro, Scale::Smoke, 0).unwrap();
        assert_eq!(panel.simulator, "maestro");
        // Runtime minimization rewards are positive (1/x) for feasible
        // mappings; at least one agent must have found one.
        assert!(panel.summaries.iter().any(|s| s.stats.max > 0.0));
    }

    #[test]
    fn timeloop_panel_runs_at_smoke_scale() {
        let panel = run_panel(PanelId::Timeloop, Scale::Smoke, 0).unwrap();
        assert!(panel.summaries.iter().any(|s| s.stats.max > 0.0));
    }
}
