//! **Fig. 4** — the hyperparameter lottery on the DRAM memory controller:
//! best-reward distributions per agent across 4 memory traces × 3 target
//! objectives (low power, low latency, joint).
//!
//! The paper's headline numbers: up to ~90 % statistical spread
//! (interquartile range) across hyperparameter choices, and at least one
//! winning configuration per agent family.

use crate::harness::{lottery, print_summary_table, LotterySpec, Scale};
use archgym_agents::factory::AgentKind;
use archgym_core::error::Result;
use archgym_core::sweep::SweepSummary;
use archgym_dram::{DramEnv, DramWorkload, Objective};

/// One panel of Fig. 4: a workload × objective cell with one summary per
/// agent family.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Trace name.
    pub workload: &'static str,
    /// Objective name.
    pub objective: String,
    /// One sweep summary per agent (ACO, BO, GA, RL, RW).
    pub summaries: Vec<SweepSummary>,
}

impl Panel {
    /// The largest relative IQR spread across agents in this panel — the
    /// quantity behind the paper's "up to 90 % spread" claim.
    pub fn max_spread(&self) -> f64 {
        self.summaries
            .iter()
            .map(|s| s.stats.relative_spread())
            .fold(0.0, f64::max)
    }

    /// Whether every agent family found at least one design *meeting the
    /// target specification* within `tolerance` — the paper's "at least
    /// one winning ticket per agent" observation (a design is optimal as
    /// soon as it meets the user-defined target, Section 1).
    ///
    /// For the `target/|target − obs|` reward, a best reward of at least
    /// `1/tolerance` means the best design landed within `tolerance`
    /// (relative) of the target.
    pub fn every_agent_has_a_ticket(&self, tolerance: f64) -> bool {
        self.summaries
            .iter()
            .all(|s| s.stats.max >= 1.0 / tolerance)
    }
}

/// A reasonable mean-latency target for a workload — near, but above,
/// the trace's achievable floor, so meeting the target takes design
/// effort (high-locality streams can run near the row-hit floor; bursty
/// cloud blends queue).
pub fn latency_target_ns(workload: DramWorkload) -> f64 {
    match workload {
        // The streaming trace rides the row-hit floor (~19 ns); 22 ns
        // keeps the target inside the achievable band.
        DramWorkload::Stream => 22.0,
        DramWorkload::Random => 50.0,
        DramWorkload::Cloud1 => 250.0,
        DramWorkload::Cloud2 => 150.0,
    }
}

/// The objectives of Fig. 4 for one workload, with targets sized to the
/// simulator's achievable envelope.
pub fn objectives(workload: DramWorkload) -> Vec<Objective> {
    let latency = latency_target_ns(workload);
    vec![
        Objective::low_power(1.0),
        Objective::low_latency(latency),
        Objective::joint(latency, 1.0),
    ]
}

/// Run the Fig. 4 study. At `Smoke` scale only the first workload ×
/// objective cell runs. Sweeps fan out over `jobs` worker threads
/// (`0` = every available core) with deterministic results.
///
/// # Errors
///
/// Propagates agent-construction failures.
pub fn run(scale: Scale, jobs: usize) -> Result<Vec<Panel>> {
    let spec = LotterySpec::new(scale).jobs(jobs);
    let workloads: &[DramWorkload] = match scale {
        Scale::Smoke => &[DramWorkload::Stream],
        _ => &DramWorkload::ALL,
    };
    let mut panels = Vec::new();
    for &workload in workloads {
        let objectives = match scale {
            Scale::Smoke => objectives(workload).into_iter().take(1).collect::<Vec<_>>(),
            _ => objectives(workload),
        };
        for objective in &objectives {
            let mut summaries = Vec::new();
            for kind in AgentKind::ALL {
                let objective = objective.clone();
                let sweep = lottery(kind, &spec, || {
                    Box::new(DramEnv::new(workload, objective.clone()))
                })?;
                summaries.push(sweep.summary());
            }
            panels.push(Panel {
                workload: workload.name(),
                objective: objective.name().to_owned(),
                summaries,
            });
        }
    }
    Ok(panels)
}

/// Print the figure as tables, one per panel.
pub fn print(panels: &[Panel]) {
    for panel in panels {
        print_summary_table(
            &format!(
                "Fig. 4 — DRAMGym, trace={}, objective={}",
                panel.workload, panel.objective
            ),
            &panel.summaries,
        );
        println!(
            "max spread {:.1}% | every agent meets the target within 20%: {}",
            panel.max_spread() * 100.0,
            panel.every_agent_has_a_ticket(0.2)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_one_panel_with_all_agents() {
        let panels = run(Scale::Smoke, 0).unwrap();
        assert_eq!(panels.len(), 1);
        let panel = &panels[0];
        assert_eq!(panel.summaries.len(), 5);
        let agents: Vec<&str> = panel.summaries.iter().map(|s| s.agent.as_str()).collect();
        assert_eq!(agents, ["aco", "bo", "ga", "rl", "rw"]);
        assert!(panel.max_spread() >= 0.0);
        // Rewards must be positive for the target-ratio objective.
        assert!(panel.summaries.iter().all(|s| s.stats.max > 0.0));
        print(&panels);
    }
}
