//! Samples-to-target: how many simulator queries each agent needs before
//! it first meets the target specification — the paper's own definition
//! of search efficiency ("the number of requisite samples before reaching
//! an optimal solution", Section 2), reported directly instead of through
//! budget-sliced normalized rewards.

use crate::harness::Scale;
use archgym_agents::factory::{build_agent, default_grid, AgentKind};
use archgym_core::env::Environment;
use archgym_core::error::Result;
use archgym_core::search::{RunConfig, SearchLoop};
use archgym_dram::{DramEnv, DramWorkload, Objective};

/// One agent's samples-to-target distribution over its hyper sweep.
#[derive(Debug, Clone)]
pub struct EfficiencyRow {
    /// Agent family.
    pub agent: &'static str,
    /// Runs that reached the target, as `(samples_to_target)` values.
    pub reached: Vec<u64>,
    /// Number of runs that never reached it within the budget.
    pub missed: usize,
}

impl EfficiencyRow {
    /// Median samples-to-target among the runs that reached it.
    pub fn median(&self) -> Option<u64> {
        if self.reached.is_empty() {
            return None;
        }
        let mut sorted = self.reached.clone();
        sorted.sort_unstable();
        Some(sorted[sorted.len() / 2])
    }
}

/// Run the study: DRAM random trace, 1 W power target; a run "reaches the
/// target" when its reward crosses `1/tolerance` (within `tolerance` of
/// the target specification).
///
/// # Errors
///
/// Propagates agent-construction failures.
pub fn run(scale: Scale) -> Result<Vec<EfficiencyRow>> {
    let budget = match scale {
        Scale::Smoke => 256,
        Scale::Default => 2_000,
        Scale::Full => 20_000,
    };
    let tolerance = 0.05; // within 5% of the 1 W goal
    let threshold = 1.0 / tolerance;
    let mut rows = Vec::new();
    for kind in AgentKind::ALL {
        let mut reached = Vec::new();
        let mut missed = 0usize;
        for (i, hyper) in default_grid(kind).iter().take(scale.grid_cap()).enumerate() {
            let mut env = DramEnv::new(DramWorkload::Random, Objective::low_power(1.0));
            let mut agent = build_agent(kind, env.space(), &hyper, i as u64)?;
            let result = SearchLoop::new(RunConfig::with_budget(budget)).run(&mut agent, &mut env);
            match result.samples_to_reach(threshold) {
                Some(n) => reached.push(n),
                None => missed += 1,
            }
        }
        rows.push(EfficiencyRow {
            agent: kind.name(),
            reached,
            missed,
        });
    }
    Ok(rows)
}

/// Print the study.
pub fn print(rows: &[EfficiencyRow]) {
    println!("\n=== Samples to reach the 1 W target within 5% (DRAM, pointer-chase) ===");
    println!(
        "{:<6} {:>10} {:>8} {:>8}  per-run samples-to-target",
        "agent", "median", "reached", "missed"
    );
    for row in rows {
        let detail = row
            .reached
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "{:<6} {:>10} {:>8} {:>8}  {detail}",
            row.agent,
            row.median().map_or("—".into(), |m| m.to_string()),
            row.reached.len(),
            row.missed
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_study_reports_every_family() {
        let rows = run(Scale::Smoke).unwrap();
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert_eq!(row.reached.len() + row.missed, 2); // smoke grid cap
            for &n in &row.reached {
                assert!((1..=256).contains(&n));
            }
        }
        // At least one family reaches the target even at smoke budgets.
        assert!(rows.iter().any(|r| !r.reached.is_empty()));
        print(&rows);
    }
}
