//! Samples-to-target: how many simulator queries each agent needs before
//! it first meets the target specification — the paper's own definition
//! of search efficiency ("the number of requisite samples before reaching
//! an optimal solution", Section 2), reported directly instead of through
//! budget-sliced normalized rewards.
//!
//! [`run_proxy_study`] extends the question to the online screening
//! layer: with the same true-simulation budget, how many *true*
//! evaluations does a proxy-screened run need to first come within 1%
//! of the unscreened run's final best reward? The ratio of the two
//! counts is the proxy's sample-efficiency gain.

use crate::harness::Scale;
use archgym_accel::AccelEnv;
use archgym_agents::factory::{build_agent, default_grid, AgentKind};
use archgym_core::agent::HyperMap;
use archgym_core::env::Environment;
use archgym_core::error::Result;
use archgym_core::screen::ScreenPolicy;
use archgym_core::search::{RunConfig, SearchLoop};
use archgym_dram::{DramEnv, DramWorkload, Objective};

/// One agent's samples-to-target distribution over its hyper sweep.
#[derive(Debug, Clone)]
pub struct EfficiencyRow {
    /// Agent family.
    pub agent: &'static str,
    /// Runs that reached the target, as `(samples_to_target)` values.
    pub reached: Vec<u64>,
    /// Number of runs that never reached it within the budget.
    pub missed: usize,
}

impl EfficiencyRow {
    /// Median samples-to-target among the runs that reached it.
    pub fn median(&self) -> Option<u64> {
        if self.reached.is_empty() {
            return None;
        }
        let mut sorted = self.reached.clone();
        sorted.sort_unstable();
        Some(sorted[sorted.len() / 2])
    }
}

/// Run the study: DRAM random trace, 1 W power target; a run "reaches the
/// target" when its reward crosses `1/tolerance` (within `tolerance` of
/// the target specification).
///
/// # Errors
///
/// Propagates agent-construction failures.
pub fn run(scale: Scale) -> Result<Vec<EfficiencyRow>> {
    let budget = match scale {
        Scale::Smoke => 256,
        Scale::Default => 2_000,
        Scale::Full => 20_000,
    };
    let tolerance = 0.05; // within 5% of the 1 W goal
    let threshold = 1.0 / tolerance;
    let mut rows = Vec::new();
    for kind in AgentKind::ALL {
        let mut reached = Vec::new();
        let mut missed = 0usize;
        for (i, hyper) in default_grid(kind).iter().take(scale.grid_cap()).enumerate() {
            let mut env = DramEnv::new(DramWorkload::Random, Objective::low_power(1.0));
            let mut agent = build_agent(kind, env.space(), &hyper, i as u64)?;
            let result = SearchLoop::new(RunConfig::with_budget(budget)).run(&mut agent, &mut env);
            match result.samples_to_reach(threshold) {
                Some(n) => reached.push(n),
                None => missed += 1,
            }
        }
        rows.push(EfficiencyRow {
            agent: kind.name(),
            reached,
            missed,
        });
    }
    Ok(rows)
}

/// Print the study.
pub fn print(rows: &[EfficiencyRow]) {
    println!("\n=== Samples to reach the 1 W target within 5% (DRAM, pointer-chase) ===");
    println!(
        "{:<6} {:>10} {:>8} {:>8}  per-run samples-to-target",
        "agent", "median", "reached", "missed"
    );
    for row in rows {
        let detail = row
            .reached
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "{:<6} {:>10} {:>8} {:>8}  {detail}",
            row.agent,
            row.median().map_or("—".into(), |m| m.to_string()),
            row.reached.len(),
            row.missed
        );
    }
}

/// One seed's run on one side (proxy-off or proxy-on) of the study.
#[derive(Debug, Clone)]
pub struct ProxySeedPoint {
    /// Run seed.
    pub seed: u64,
    /// Final best reward within the shared true-eval budget.
    pub best: f64,
    /// True evaluations to first reach the row's shared target
    /// (`None` = never within the budget).
    pub to_target: Option<u64>,
}

/// One space's proxy study: both sides' per-seed points plus the shared
/// quality target they are measured against.
#[derive(Debug, Clone)]
pub struct ProxyStudyRow {
    /// Space label (`"dram"` or `"accel"`).
    pub space: &'static str,
    /// Agent family driving both runs.
    pub agent: &'static str,
    /// True-simulation budget shared by both runs.
    pub budget: u64,
    /// The shared quality bar: 99% of the *median* proxy-off final best.
    /// A per-seed bar would make every comparison hostage to that one
    /// baseline's spike luck; the median is what an unscreened search
    /// typically achieves.
    pub target: f64,
    /// Proxy-off runs, one per seed.
    pub baseline: Vec<ProxySeedPoint>,
    /// Proxy-on runs, one per seed.
    pub screened: Vec<ProxySeedPoint>,
}

/// Censored median of evals-to-target: runs that never reached it count
/// as slower than every run that did. `None` when the median itself
/// lands on a censored run.
fn censored_median(points: &[ProxySeedPoint]) -> Option<u64> {
    let mut v: Vec<Option<u64>> = points.iter().map(|p| p.to_target).collect();
    v.sort_by_key(|t| t.unwrap_or(u64::MAX));
    v[v.len() / 2]
}

fn median_best(points: &[ProxySeedPoint]) -> f64 {
    let mut v: Vec<f64> = points.iter().map(|p| p.best).collect();
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

impl ProxyStudyRow {
    /// Censored-median true evaluations the unscreened runs needed to
    /// reach the target.
    pub fn baseline_to_target(&self) -> Option<u64> {
        censored_median(&self.baseline)
    }

    /// Censored-median true evaluations the screened runs needed.
    pub fn screened_to_target(&self) -> Option<u64> {
        censored_median(&self.screened)
    }

    /// The headline "N× fewer true simulations to the same quality".
    pub fn savings(&self) -> Option<f64> {
        let base = self.baseline_to_target()? as f64;
        let screened = self.screened_to_target()? as f64;
        Some(base / screened)
    }

    /// Relative gap of the median screened final best below the median
    /// baseline final best (negative = screening ended up ahead).
    pub fn reward_gap(&self) -> f64 {
        let base = median_best(&self.baseline);
        (base - median_best(&self.screened)) / base.abs().max(1e-12)
    }
}

fn study_space<E>(
    space_label: &'static str,
    kind: AgentKind,
    budget: u64,
    policy: ScreenPolicy,
    forest: archgym_proxy::ForestConfig,
    seeds: &[u64],
    make_env: impl Fn() -> E,
) -> Result<ProxyStudyRow>
where
    E: Environment + Clone + Send,
{
    let space = make_env().space().clone();
    let config = RunConfig::with_budget(budget);
    let mut baseline_runs = Vec::new();
    for &seed in seeds {
        let mut agent = build_agent(kind, &space, &HyperMap::new(), seed)?;
        baseline_runs.push((
            seed,
            SearchLoop::new(config.clone()).run_pooled(&mut agent, make_env()),
        ));
    }
    let mut bests: Vec<f64> = baseline_runs.iter().map(|(_, r)| r.best_reward).collect();
    bests.sort_by(f64::total_cmp);
    let target = bests[bests.len() / 2] * 0.99;

    let baseline = baseline_runs
        .iter()
        .map(|(seed, r)| ProxySeedPoint {
            seed: *seed,
            best: r.best_reward,
            to_target: r.samples_to_reach(target),
        })
        .collect();
    let mut screened = Vec::new();
    for &seed in seeds {
        let mut agent = build_agent(kind, &space, &HyperMap::new(), seed)?;
        let mut screener = archgym_proxy::OnlineProxy::new(policy, forest, seed)?;
        let run = SearchLoop::new(config.clone()).run_screened_pooled(
            &mut agent,
            make_env(),
            &mut screener,
        );
        screened.push(ProxySeedPoint {
            seed,
            best: run.best_reward,
            to_target: run.samples_to_reach(target),
        });
    }
    Ok(ProxyStudyRow {
        space: space_label,
        agent: kind.name(),
        budget,
        target,
        baseline,
        screened,
    })
}

/// Run the proxy screening study on the DRAM and accelerator spaces.
///
/// Both runs of every pair get the *same* true-simulation budget; the
/// proxy's value shows up as how much earlier the screened run first
/// reaches within 1% of the unscreened run's final best.
///
/// # Errors
///
/// Propagates agent-construction and screener-construction failures.
pub fn run_proxy_study(scale: Scale) -> Result<Vec<ProxyStudyRow>> {
    let (dram_budget, accel_budget, warmup, seeds): (u64, u64, u64, Vec<u64>) = match scale {
        Scale::Smoke => (192, 128, 32, vec![1]),
        Scale::Default => (2_000, 1_200, 48, vec![1, 2, 3]),
        Scale::Full => (10_000, 6_000, 64, vec![1, 2, 3, 4, 5]),
    };
    // The shared shape: oversample aggressively, admit a thin
    // predicted-best slice, refit often enough to track the walker
    // across the space.
    let dram_policy = ScreenPolicy::default()
        .warmup(warmup)
        .oversample(8)
        .top_k(8)
        .refit_every(32)
        .revalidate_every(8);
    // The accelerator space is rugged (infeasibility cliffs at -1/-2
    // reward), so pure predicted-best admission gets trapped: lean on a
    // larger exploration slice and faster refits. Revalidation is kept
    // sparse — every revalidation admits a whole oversampled batch
    // unscreened, and on this space those 128-sample detours dominate
    // the screened run's budget long before drift ever shows up.
    let accel_policy = dram_policy
        .explore_frac(0.5)
        .refit_every(16)
        .revalidate_every(16);
    let accel_forest = archgym_proxy::online_forest_config();
    // Aspirational joint targets: no design reaches either target
    // exactly, so the reward surface stays smooth and uncapped and the
    // search genuinely needs its budget — a single-metric target on
    // these discrete spaces is hit exactly within a few dozen random
    // samples, which would make any screening gain unmeasurable.
    Ok(vec![
        study_space(
            "dram",
            AgentKind::Rw,
            dram_budget,
            dram_policy,
            archgym_proxy::online_forest_config(),
            &seeds,
            || DramEnv::extended(DramWorkload::Random, Objective::joint(100.0, 0.1)),
        )?,
        study_space(
            "accel",
            AgentKind::Rw,
            accel_budget,
            accel_policy,
            accel_forest,
            &seeds,
            || {
                AccelEnv::new(
                    archgym_models::alexnet(),
                    archgym_accel::Objective::energy(0.1),
                )
            },
        )?,
    ])
}

/// Print the proxy study.
pub fn print_proxy_study(rows: &[ProxyStudyRow]) {
    println!("\n=== True evaluations to reach 99% of the median proxy-off best ===");
    println!(
        "{:<7} {:<6} {:>8} {:>11} {:>12} {:>12} {:>9} {:>9}",
        "space", "agent", "budget", "target", "off evals", "on evals", "savings", "gap"
    );
    for row in rows {
        let cell = |v: Option<u64>| v.map_or("—".into(), |v| v.to_string());
        println!(
            "{:<7} {:<6} {:>8} {:>11.4} {:>12} {:>12} {:>9} {:>8.2}%",
            row.space,
            row.agent,
            row.budget,
            row.target,
            cell(row.baseline_to_target()),
            cell(row.screened_to_target()),
            row.savings().map_or("—".into(), |v| format!("{v:.1}x")),
            row.reward_gap() * 100.0
        );
        for (off, on) in row.baseline.iter().zip(&row.screened) {
            println!(
                "        seed {:>2}: off best {:.4} @ {:>5} evals | on best {:.4} @ {} evals",
                off.seed,
                off.best,
                cell(off.to_target),
                on.best,
                cell(on.to_target)
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_study_reports_every_family() {
        let rows = run(Scale::Smoke).unwrap();
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert_eq!(row.reached.len() + row.missed, 2); // smoke grid cap
            for &n in &row.reached {
                assert!((1..=256).contains(&n));
            }
        }
        // At least one family reaches the target even at smoke budgets.
        assert!(rows.iter().any(|r| !r.reached.is_empty()));
        print(&rows);
    }

    #[test]
    fn smoke_proxy_study_measures_both_spaces() {
        let rows = run_proxy_study(Scale::Smoke).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].space, "dram");
        assert_eq!(rows[1].space, "accel");
        for row in &rows {
            assert_eq!(row.baseline.len(), 1); // smoke: one seed
            assert_eq!(row.screened.len(), 1);
            // With one seed the median baseline best IS that run's best,
            // so the baseline reaches its own 99% bar by construction.
            let off = &row.baseline[0];
            assert!((1..=row.budget).contains(&off.to_target.unwrap()));
            assert!(off.best.is_finite() && row.screened[0].best.is_finite());
            // Reaching the target means within 1% of the median
            // proxy-off best, by definition of the target.
            if let Some(on) = row.screened[0].to_target {
                assert!((1..=row.budget).contains(&on));
            }
        }
        print_proxy_study(&rows);
    }
}
