//! **Figs. 9 & 10** — dataset aggregation and the proxy-model RMSE study.
//!
//! Fig. 9's pipeline: every agent's exploration on DRAMGym is logged
//! through the standardized interface and merged into one pool. Fig. 10
//! then builds dataset tiers of growing size, once sampling from a single
//! agent only ("ACO-only") and once blending all agents ("diverse"), and
//! trains a random-forest power proxy on each tier. The paper's claims:
//! RMSE falls with size, and at matched sizes diversity is worth up to
//! ~42× in RMSE.

use crate::harness::{lottery, LotterySpec, Scale};
use archgym_agents::factory::AgentKind;
use archgym_core::error::Result;
use archgym_core::seeded_rng;
use archgym_core::trajectory::Dataset;
use archgym_dram::{DramEnv, DramWorkload, Objective};
use archgym_proxy::forest::ForestConfig;
use archgym_proxy::pipeline::{train_proxy_fixed, DatasetTiers};

/// DRAMGym observation index of the power metric.
pub const POWER_METRIC: usize = archgym_dram::env::metric::POWER;

/// Collect the pooled exploration dataset: every agent's lottery runs on
/// the DRAM random trace, with trajectory recording on (the Fig. 9
/// aggregation step). Sweeps fan out over `jobs` worker threads
/// (`0` = every available core).
///
/// # Errors
///
/// Propagates agent-construction failures.
pub fn collect_pool(scale: Scale, jobs: usize) -> Result<Dataset> {
    let spec = LotterySpec::new(scale).record(true).jobs(jobs);
    let mut pool = Dataset::new();
    for kind in AgentKind::ALL {
        let sweep = lottery(kind, &spec, || {
            Box::new(DramEnv::new(
                DramWorkload::Random,
                Objective::low_power(1.0),
            ))
        })?;
        pool.merge(sweep.merged_dataset());
    }
    Ok(pool)
}

/// Build a held-out test set from fresh uniform random designs, disjoint
/// from agent exploration.
pub fn uniform_test_set(scale: Scale, seed: u64) -> Dataset {
    use archgym_core::agent::{Agent, RandomWalker};
    use archgym_core::env::Environment;
    use archgym_core::trajectory::Transition;
    let n = match scale {
        Scale::Smoke => 128,
        Scale::Default => 512,
        Scale::Full => 2_048,
    };
    let mut env = DramEnv::new(DramWorkload::Random, Objective::low_power(1.0));
    let mut walker = RandomWalker::new(env.space().clone(), seed);
    let mut test = Dataset::new();
    for action in walker.propose(n) {
        let result = env.step(&action);
        test.push(Transition::new(env.name(), "test", action, &result));
    }
    test
}

/// One tier's results.
#[derive(Debug, Clone)]
pub struct TierResult {
    /// Requested tier size.
    pub size: usize,
    /// RMSE of the single-source (ACO-only) proxy.
    pub single_rmse: f64,
    /// RMSE of the diverse proxy.
    pub diverse_rmse: f64,
}

impl TierResult {
    /// How many times better the diverse dataset is at this size.
    pub fn diversity_gain(&self) -> f64 {
        self.single_rmse / self.diverse_rmse.max(f64::EPSILON)
    }
}

/// The whole study output.
#[derive(Debug, Clone)]
pub struct Fig10Result {
    /// Pool composition: agent → transition count (Fig. 10(a)).
    pub composition: Vec<(String, usize)>,
    /// Per-tier RMSE comparisons (Fig. 10(b)).
    pub tiers: Vec<TierResult>,
}

/// Run the study, collecting the pool over `jobs` worker threads
/// (`0` = every available core).
///
/// # Errors
///
/// Propagates dataset-collection and training failures.
pub fn run(scale: Scale, jobs: usize) -> Result<Fig10Result> {
    let pool = collect_pool(scale, jobs)?;
    let sizes: Vec<usize> = match scale {
        Scale::Smoke => vec![64, 192],
        Scale::Default => vec![200, 800, 3_000],
        Scale::Full => vec![500, 2_000, 8_000, 30_000],
    };
    let mut rng = seeded_rng(0xF16);
    let tiers_data = DatasetTiers::build(&pool, "aco", &sizes, &mut rng)?;
    let test = uniform_test_set(scale, 0x7E57);
    let mut tiers = Vec::new();
    for (size, single, diverse) in &tiers_data.tiers {
        let config = ForestConfig::default();
        let p_single = train_proxy_fixed(single, POWER_METRIC, &config, 5)?;
        let p_diverse = train_proxy_fixed(diverse, POWER_METRIC, &config, 5)?;
        tiers.push(TierResult {
            size: *size,
            single_rmse: p_single.report(&test)?.rmse,
            diverse_rmse: p_diverse.report(&test)?.rmse,
        });
    }
    Ok(Fig10Result {
        composition: pool.composition().into_iter().collect(),
        tiers,
    })
}

/// Print the study.
pub fn print(result: &Fig10Result) {
    println!("\n=== Fig. 10(a) — dataset composition (pooled from all agents) ===");
    for (agent, count) in &result.composition {
        println!("{agent:<6} {count:>8} transitions");
    }
    println!("\n=== Fig. 10(b) — power-proxy RMSE vs dataset size & diversity ===");
    println!(
        "{:>8} {:>16} {:>16} {:>10}",
        "size", "ACO-only RMSE", "diverse RMSE", "gain×"
    );
    for t in &result.tiers {
        println!(
            "{:>8} {:>16.5} {:>16.5} {:>10.2}",
            t.size,
            t.single_rmse,
            t.diverse_rmse,
            t.diversity_gain()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_study_shows_dataset_trends() {
        let result = run(Scale::Smoke, 0).unwrap();
        assert_eq!(result.tiers.len(), 2);
        // All five agents contributed to the pool.
        assert_eq!(result.composition.len(), 5);
        // RMSEs are finite and positive.
        for t in &result.tiers {
            assert!(t.single_rmse.is_finite() && t.single_rmse > 0.0);
            assert!(t.diverse_rmse.is_finite() && t.diverse_rmse > 0.0);
        }
        // Diversity does not hurt at the largest tier (the paper's claim
        // is a large *gain*; at smoke scale demand at least parity).
        let last = result.tiers.last().unwrap();
        assert!(
            last.diversity_gain() > 0.8,
            "diversity gain {} collapsed",
            last.diversity_gain()
        );
        print(&result);
    }
}
