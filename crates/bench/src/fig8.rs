//! **Fig. 8** — time to completion of each agent on DRAMGym and
//! FARSIGym for a fixed sample budget.
//!
//! The paper's caveat applies here too: wall-clock comparisons conflate
//! implementation effort with algorithmic merit (ACO's sequential
//! construction vs GA's batched evaluation, BO's cubic surrogate), which
//! is exactly why the paper prefers sample efficiency as the yardstick.

use crate::harness::Scale;
use archgym_agents::factory::{build_agent, AgentKind};
use archgym_core::agent::HyperMap;
use archgym_core::env::Environment;
use archgym_core::error::Result;
use archgym_core::search::{RunConfig, SearchLoop};
use archgym_dram::{DramEnv, DramWorkload, Objective};
use archgym_soc::{SocEnv, SocWorkload};

/// Wall-clock of one agent on one environment.
#[derive(Debug, Clone)]
pub struct Timing {
    /// Environment label.
    pub env: String,
    /// Agent family.
    pub agent: &'static str,
    /// Wall-clock seconds for the budgeted run.
    pub seconds: f64,
    /// Samples consumed.
    pub samples: u64,
}

/// Run the study with each agent's default hyperparameters.
///
/// # Errors
///
/// Propagates agent-construction failures.
pub fn run(scale: Scale) -> Result<Vec<Timing>> {
    let budget = match scale {
        Scale::Smoke => 128,
        Scale::Default => 2_000,
        Scale::Full => 10_000,
    };
    let mut timings = Vec::new();
    let mut envs: Vec<Box<dyn FnMut() -> Box<dyn Environment>>> = vec![
        Box::new(|| {
            Box::new(DramEnv::new(
                DramWorkload::Random,
                Objective::low_power(1.0),
            ))
        }),
        Box::new(|| Box::new(SocEnv::new(SocWorkload::AudioDecoder))),
    ];
    for make_env in envs.iter_mut() {
        for kind in AgentKind::ALL {
            let mut env = make_env();
            let mut agent = build_agent(kind, env.space(), &HyperMap::new(), 7)?;
            let result = SearchLoop::new(RunConfig::with_budget(budget).record(false))
                .run(&mut agent, &mut env);
            timings.push(Timing {
                env: env.name().to_owned(),
                agent: kind.name(),
                seconds: result.wall_seconds,
                samples: result.samples_used,
            });
        }
    }
    Ok(timings)
}

/// Print the figure as a table.
pub fn print(timings: &[Timing]) {
    println!("\n=== Fig. 8 — time to completion (fixed sample budget) ===");
    println!(
        "{:<22} {:<6} {:>12} {:>10}",
        "env", "agent", "seconds", "samples"
    );
    for t in timings {
        println!(
            "{:<22} {:<6} {:>12.4} {:>10}",
            t.env, t.agent, t.seconds, t.samples
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_times_every_agent_on_both_envs() {
        let timings = run(Scale::Smoke).unwrap();
        assert_eq!(timings.len(), 10);
        for t in &timings {
            assert!(t.seconds >= 0.0);
            assert_eq!(t.samples, 128, "{}/{} under-sampled", t.env, t.agent);
        }
        let envs: std::collections::BTreeSet<&str> =
            timings.iter().map(|t| t.env.as_str()).collect();
        assert_eq!(envs.len(), 2);
        print(&timings);
    }
}
