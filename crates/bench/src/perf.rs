//! `bench perf` — the workspace's performance trajectory.
//!
//! Times the layers this repo's throughput rests on, bottom to top:
//! the raw `MemoryController::simulate` inner loop (simulate-only), a
//! serial agent sweep, the same sweep fanned over worker threads
//! (sweep-parallel), the same sweep memoized through an
//! [`EvalCache`] (cached-sweep, cold then warm), and the online proxy
//! screening layer (`proxy/fit`, `proxy/predict`,
//! `proxy/screened-search`). The report embeds the
//! pre-optimization baseline measured before the hot-path rewrite so
//! every future run shows the trajectory, and is written to
//! `BENCH_perf.json` by the `bench` binary for CI artifact upload.
//!
//! The cached-sweep scenarios double as an end-to-end determinism
//! check: the run panics if cached results diverge from uncached ones.

use archgym_agents::factory::{build_agent, default_grid, race_roster, AgentKind};
use archgym_core::agent::HyperMap;
use archgym_core::cache::EvalCache;
use archgym_core::env::Environment;
use archgym_core::error::Result;
use archgym_core::executor::Executor;
use archgym_core::race::{Race, RaceLane};
use archgym_core::screen::ScreenPolicy;
use archgym_core::search::{RunConfig, RunResult, SearchLoop};
use archgym_core::seeded_rng;
use archgym_core::space::Action;
use archgym_core::sweep::{Sweep, SweepResult};
use archgym_core::telemetry::{PhaseSummary, Recorder};
use archgym_dram::controller::{ControllerConfig, MemoryController};
use archgym_dram::trace::generate;
use archgym_dram::{DramEnv, DramWorkload, Objective, TraceConfig};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Pre-optimization throughput of the simulate-only scenarios, measured
/// on this repo immediately before the PR 2 hot-path rewrite (single
/// core, release profile). Kept in the report so the speedup is visible
/// without digging through git history.
pub const BASELINE_SIMULATE_DEFAULT_PER_SEC: f64 = 13_000.0;
/// Pre-optimization throughput of the wide simulate-only scenario.
pub const BASELINE_SIMULATE_WIDE_PER_SEC: f64 = 670.0;

/// Ceiling on the live recorder's cost: a run with telemetry enabled
/// may take at most 5% longer than the identical run with the no-op
/// recorder. Enforced by [`gate`] in CI.
pub const TELEMETRY_OVERHEAD_LIMIT: f64 = 1.05;

/// One timed scenario.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scenario identifier, e.g. `"simulate-only/default"`.
    pub name: String,
    /// Work units completed (simulations or sweep runs).
    pub work_units: u64,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
    /// Work units per second.
    pub per_second: f64,
}

/// The full `bench perf` report.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Git revision this run measured (`"unknown"` unless the binary
    /// was told via `--rev=`).
    pub rev: String,
    /// Date of the run (`"unknown"` unless the binary was told via
    /// `--date=`).
    pub date: String,
    /// Hardware threads available on the machine that produced the
    /// numbers — parallel speedups are meaningless without it.
    pub cores: usize,
    /// Whether the quick (CI smoke) workload sizes were used.
    pub quick: bool,
    /// Worker threads used by the parallel scenario (`0` = all cores).
    pub jobs: usize,
    /// Every timed scenario, in execution order.
    pub scenarios: Vec<ScenarioResult>,
    /// Throughput ratio of the per-bank indexed scheduler over the
    /// retired linear-scan engine on the wide-buffer workload.
    pub scheduler_index_speedup: f64,
    /// Wall-clock speedup of the jobs=4 pooled batched run over the
    /// same run evaluated serially (≈1 on a single-core machine).
    pub batched_run_speedup: f64,
    /// Wall-clock speedup of the warm cached sweep over the uncached
    /// serial sweep (the acceptance metric: must exceed 2×).
    pub cached_sweep_speedup: f64,
    /// Cache hit rate over the cold+warm cached sweeps.
    pub cache_hit_rate: f64,
    /// Distinct design points the cache ended up holding.
    pub cache_entries: u64,
    /// Wall-clock ratio of the telemetry-on run over the telemetry-off
    /// run (best of several interleaved reps each). Gated at
    /// [`TELEMETRY_OVERHEAD_LIMIT`].
    pub telemetry_overhead: f64,
    /// Per-phase latency summaries from the telemetry-on run, straight
    /// from the run recorder rather than ad-hoc `Instant` bookkeeping.
    pub phases: Vec<(String, PhaseSummary)>,
}

impl PerfReport {
    /// Look up a scenario's throughput by name.
    pub fn per_second(&self, name: &str) -> Option<f64> {
        self.scenarios
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.per_second)
    }

    /// Serialize the report as JSON.
    ///
    /// Hand-rolled: every field is a number, bool or known-safe string,
    /// and hand-rolling keeps the binary independent of a JSON crate.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"bench\": \"perf\",");
        let _ = writeln!(out, "  \"rev\": \"{}\",", self.rev);
        let _ = writeln!(out, "  \"date\": \"{}\",", self.date);
        let _ = writeln!(out, "  \"cores\": {},", self.cores);
        let _ = writeln!(out, "  \"quick\": {},", self.quick);
        let _ = writeln!(out, "  \"jobs\": {},", self.jobs);
        out.push_str("  \"baseline\": {\n");
        let _ = writeln!(
            out,
            "    \"note\": \"pre-optimization throughput, measured before the hot-path rewrite\","
        );
        let _ = writeln!(
            out,
            "    \"simulate_default_per_sec\": {BASELINE_SIMULATE_DEFAULT_PER_SEC},"
        );
        let _ = writeln!(
            out,
            "    \"simulate_wide_per_sec\": {BASELINE_SIMULATE_WIDE_PER_SEC}"
        );
        out.push_str("  },\n");
        out.push_str("  \"scenarios\": [\n");
        for (i, s) in self.scenarios.iter().enumerate() {
            let comma = if i + 1 < self.scenarios.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"work_units\": {}, \"wall_seconds\": {:.6}, \"per_second\": {:.3}}}{comma}",
                s.name, s.work_units, s.wall_seconds, s.per_second
            );
        }
        out.push_str("  ],\n");
        out.push_str("  \"phases\": [\n");
        for (i, (name, p)) in self.phases.iter().enumerate() {
            let comma = if i + 1 < self.phases.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{name}\", \"count\": {}, \"total_ns\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}{comma}",
                p.count, p.total_ns, p.p50_ns, p.p95_ns, p.p99_ns, p.max_ns
            );
        }
        out.push_str("  ],\n");
        let _ = writeln!(
            out,
            "  \"telemetry_overhead\": {:.4},",
            self.telemetry_overhead
        );
        if let Some(current) = self.per_second("simulate-only/default") {
            let _ = writeln!(
                out,
                "  \"simulate_default_speedup_vs_baseline\": {:.3},",
                current / BASELINE_SIMULATE_DEFAULT_PER_SEC
            );
        }
        if let Some(current) = self.per_second("simulate-only/wide") {
            let _ = writeln!(
                out,
                "  \"simulate_wide_speedup_vs_baseline\": {:.3},",
                current / BASELINE_SIMULATE_WIDE_PER_SEC
            );
        }
        let _ = writeln!(
            out,
            "  \"scheduler_index_speedup\": {:.3},",
            self.scheduler_index_speedup
        );
        let _ = writeln!(
            out,
            "  \"batched_run_speedup\": {:.3},",
            self.batched_run_speedup
        );
        let _ = writeln!(
            out,
            "  \"cached_sweep_speedup\": {:.3},",
            self.cached_sweep_speedup
        );
        let _ = writeln!(out, "  \"cache_hit_rate\": {:.4},", self.cache_hit_rate);
        let _ = writeln!(out, "  \"cache_entries\": {}", self.cache_entries);
        out.push_str("}\n");
        out
    }
}

fn timed<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let start = Instant::now();
    let result = f();
    (start.elapsed().as_secs_f64().max(1e-9), result)
}

/// Run `batches × reps_per_batch` executions of `f`, timing each batch
/// separately, and return the best batch's per-rep seconds plus a
/// checksum accumulated across every execution.
///
/// One long timing window folds every noisy-neighbor burst and
/// scheduler interruption on shared hardware into the mean; the best of
/// several short batches is the standard robust estimator of the code's
/// own throughput (the telemetry-overhead scenario has measured
/// best-of-interleaved-reps for the same reason since it was added).
/// Every rep still executes, so checksum-based result validation keeps
/// its full coverage.
fn timed_batches(batches: u64, reps_per_batch: u64, mut f: impl FnMut() -> f64) -> (f64, f64) {
    let mut best = f64::MAX;
    let mut checksum = 0.0f64;
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..reps_per_batch {
            checksum += f();
        }
        let per_rep = start.elapsed().as_secs_f64().max(1e-9) / reps_per_batch as f64;
        best = best.min(per_rep);
    }
    (best, checksum)
}

/// Results must match point-for-point whether or not the cache served
/// them — anything else means the cache corrupted the search.
fn assert_equivalent(reference: &SweepResult, candidate: &SweepResult, label: &str) {
    assert_eq!(
        reference.points.len(),
        candidate.points.len(),
        "{label}: run count diverged"
    );
    for (r, c) in reference.points.iter().zip(&candidate.points) {
        assert!(
            r.hyper == c.hyper
                && r.seed == c.seed
                && r.result.best_reward == c.result.best_reward
                && r.result.best_action == c.result.best_action
                && r.result.samples_used == c.result.samples_used,
            "{label}: cached sweep diverged from uncached at hyper={} seed={}",
            r.hyper.summary(),
            r.seed
        );
    }
}

/// Run every scenario and assemble the report.
///
/// `quick` selects CI-smoke workload sizes; `jobs` is the worker-thread
/// count for the parallel scenario (`0` = every available core).
///
/// # Errors
///
/// Propagates agent-construction failures.
///
/// # Panics
///
/// Panics if the cached sweep's results diverge from the uncached ones.
pub fn run(quick: bool, jobs: usize) -> Result<PerfReport> {
    let mut scenarios = Vec::new();

    // --- simulate-only: the raw controller inner loop -----------------
    let default_trace = generate(
        DramWorkload::Cloud2,
        &TraceConfig::default(),
        &mut seeded_rng(0xD7A3),
    );
    let reps: u64 = if quick { 200 } else { 2_000 };
    let cfg = ControllerConfig::default();
    // The controller is built once outside the window: the scenario is
    // named simulate-only, so only `simulate` is on the clock.
    let controller = MemoryController::new(cfg.clone());
    let (per_rep, checksum) = timed_batches(10, reps / 10, || {
        controller.simulate(&default_trace).avg_latency_ns
    });
    assert!(checksum.is_finite());
    scenarios.push(ScenarioResult {
        name: "simulate-only/default".into(),
        work_units: reps,
        wall_seconds: per_rep * reps as f64,
        per_second: 1.0 / per_rep,
    });

    let wide_trace = generate(
        DramWorkload::Cloud2,
        &TraceConfig {
            length: 8_192,
            ..TraceConfig::default()
        },
        &mut seeded_rng(0xD7A3),
    );
    let wide_cfg = ControllerConfig {
        request_buffer_size: 8,
        max_active_transactions: 64,
        ..ControllerConfig::default()
    };
    // Warm both engines untimed so neither pays first-touch cache and
    // page-fault costs inside its timing window.
    for _ in 0..if quick { 2 } else { 10 } {
        let a = MemoryController::new(wide_cfg.clone()).simulate(&wide_trace);
        let b = MemoryController::new(wide_cfg.clone()).simulate_linear_scan(&wide_trace);
        assert_eq!(a, b, "engines diverged on the wide workload");
    }
    let reps: u64 = if quick { 30 } else { 300 };
    let wide_controller = MemoryController::new(wide_cfg.clone());
    let (per_rep, checksum) = timed_batches(10, reps / 10, || {
        wide_controller.simulate(&wide_trace).avg_latency_ns
    });
    assert!(checksum.is_finite());
    let wide_per_sec = 1.0 / per_rep;
    scenarios.push(ScenarioResult {
        name: "simulate-only/wide".into(),
        work_units: reps,
        wall_seconds: per_rep * reps as f64,
        per_second: wide_per_sec,
    });

    // Same workload through the retired O(buffer)-per-decision linear
    // scan, so the per-bank index's algorithmic win stays measured.
    let reps: u64 = if quick { 10 } else { 100 };
    let (per_rep, checksum) = timed_batches(5, reps / 5, || {
        wide_controller
            .simulate_linear_scan(&wide_trace)
            .avg_latency_ns
    });
    assert!(checksum.is_finite());
    let linear_per_sec = 1.0 / per_rep;
    scenarios.push(ScenarioResult {
        name: "simulate-only/wide-linear-scan".into(),
        work_units: reps,
        wall_seconds: per_rep * reps as f64,
        per_second: linear_per_sec,
    });
    let scheduler_index_speedup = wide_per_sec / linear_per_sec;

    // --- dram-engine: the SoA engine across access patterns -----------
    // Four traces spanning the engine's behavioral corners — streaming
    // (row-hit heavy), pointer-chase (row-miss heavy), mixed read/write
    // bursts, and a crafted same-bank alternating-row conflict storm
    // (every access closes the previous row). Work units are *requests*,
    // so per_second is honest request throughput, comparable across
    // traces of different lengths. New scenario names self-bootstrap
    // under the gate: with no baseline entry, the first recorded run
    // becomes the baseline.
    let conflict_trace: Vec<archgym_dram::MemoryRequest> = (0..TraceConfig::default().length)
        .map(|i| archgym_dram::MemoryRequest {
            arrival: i as u64 * 4,
            // Alternate between two rows of bank 0: offset 6 bits,
            // column 7 bits, bank 3 bits, row above — every request
            // conflicts with the previously open row.
            addr: ((i as u64) & 1) << (6 + 7 + 3),
            is_write: i % 3 == 0,
        })
        .collect();
    let engine_reps: u64 = if quick { 100 } else { 1_000 };
    for (label, trace) in [
        (
            "stream",
            generate(
                DramWorkload::Stream,
                &TraceConfig::default(),
                &mut seeded_rng(0xD7A3),
            ),
        ),
        (
            "random",
            generate(
                DramWorkload::Random,
                &TraceConfig::default(),
                &mut seeded_rng(0xD7A3),
            ),
        ),
        (
            "mixed",
            generate(
                DramWorkload::Cloud1,
                &TraceConfig::default(),
                &mut seeded_rng(0xD7A3),
            ),
        ),
        ("conflict", conflict_trace),
    ] {
        let (per_rep, checksum) = timed_batches(10, engine_reps / 10, || {
            controller.simulate(&trace).avg_latency_ns
        });
        assert!(checksum.is_finite());
        let requests = engine_reps * trace.len() as u64;
        let seconds = per_rep * engine_reps as f64;
        scenarios.push(ScenarioResult {
            name: format!("dram-engine/{label}"),
            work_units: requests,
            wall_seconds: seconds,
            per_second: requests as f64 / seconds,
        });
    }

    // --- batched-run: in-run parallel evaluation ----------------------
    // One GA run with auto batch (= its population) evaluated serially,
    // then fanned over a 4-replica EnvPool. Results must be
    // bit-identical; the wall-clock ratio is the pool's gain (≈1 on a
    // single-core machine — `cores` in the report says which).
    let run_budget: u64 = if quick { 96 } else { 600 };
    let batched_env = || DramEnv::new(DramWorkload::Stream, Objective::low_power(1.0));
    let batched_space = batched_env().space().clone();
    let run_batched = |batch_jobs: usize| -> Result<RunResult> {
        let mut agent = build_agent(AgentKind::Ga, &batched_space, &HyperMap::new(), 7)?;
        let config = RunConfig::with_budget(run_budget)
            .batch(0)
            .record(false)
            .jobs(batch_jobs);
        Ok(SearchLoop::new(config).run_pooled(&mut agent, batched_env()))
    };
    let (serial_run_seconds, serial_run) = timed(|| run_batched(1));
    let serial_run = serial_run?;
    scenarios.push(ScenarioResult {
        name: "batched-run/serial".into(),
        work_units: run_budget,
        wall_seconds: serial_run_seconds,
        per_second: run_budget as f64 / serial_run_seconds,
    });
    let (pooled_run_seconds, pooled_run) = timed(|| run_batched(4));
    let pooled_run = pooled_run?;
    assert!(
        serial_run.best_reward == pooled_run.best_reward
            && serial_run.best_action == pooled_run.best_action
            && serial_run.reward_history == pooled_run.reward_history,
        "batched-run/jobs4 diverged from the serial run"
    );
    scenarios.push(ScenarioResult {
        name: "batched-run/jobs4".into(),
        work_units: run_budget,
        wall_seconds: pooled_run_seconds,
        per_second: run_budget as f64 / pooled_run_seconds,
    });
    let batched_run_speedup = serial_run_seconds / pooled_run_seconds;

    // --- telemetry overhead: the recorder must be (nearly) free -------
    // The same GA run with the default no-op recorder and with a live
    // one. Reps are interleaved and the best of each side is kept, so a
    // transient load spike cannot charge one side only; phase timings
    // come from the recorder itself instead of ad-hoc `Instant` math.
    let overhead_budget: u64 = if quick { 96 } else { 400 };
    let run_observed = |rec: Option<Recorder>| -> Result<f64> {
        let mut agent = build_agent(AgentKind::Ga, &batched_space, &HyperMap::new(), 11)?;
        let mut driver = SearchLoop::new(
            RunConfig::with_budget(overhead_budget)
                .batch(0)
                .record(false),
        );
        if let Some(rec) = rec {
            driver = driver.with_telemetry(rec);
        }
        let (seconds, _) = timed(|| driver.run_pooled(&mut agent, batched_env()));
        Ok(seconds)
    };
    let live = Recorder::new();
    let (mut off_seconds, mut on_seconds) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..if quick { 3 } else { 5 } {
        off_seconds = off_seconds.min(run_observed(None)?);
        on_seconds = on_seconds.min(run_observed(Some(live.clone()))?);
    }
    scenarios.push(ScenarioResult {
        name: "telemetry/off".into(),
        work_units: overhead_budget,
        wall_seconds: off_seconds,
        per_second: overhead_budget as f64 / off_seconds,
    });
    scenarios.push(ScenarioResult {
        name: "telemetry/on".into(),
        work_units: overhead_budget,
        wall_seconds: on_seconds,
        per_second: overhead_budget as f64 / on_seconds,
    });
    let telemetry_overhead = on_seconds / off_seconds;
    let phases: Vec<(String, PhaseSummary)> = live
        .report()
        .map(|r| r.phases.into_iter().collect())
        .unwrap_or_default();

    // --- sweeps: serial, parallel, cached ------------------------------
    let kind = AgentKind::Ga;
    let budget: u64 = if quick { 48 } else { 300 };
    let assignments: Vec<HyperMap> = default_grid(kind)
        .iter()
        .take(if quick { 4 } else { 8 })
        .collect();
    let seeds: Vec<u64> = if quick { vec![1] } else { vec![1, 2] };
    let make_env = || DramEnv::new(DramWorkload::Stream, Objective::low_power(1.0));
    let space = make_env().space().clone();
    let run_sweep = |sweep_jobs: usize, cache: Option<Arc<EvalCache>>| -> Result<SweepResult> {
        let mut sweep = Sweep::new(RunConfig::with_budget(budget).record(false))
            .seeds(seeds.iter().copied())
            .jobs(sweep_jobs);
        if let Some(cache) = cache {
            sweep = sweep.cache(cache);
        }
        sweep.run_assignments(kind.name(), &assignments, make_env, |hyper, seed| {
            build_agent(kind, &space, hyper, seed)
        })
    };
    let runs = (assignments.len() * seeds.len()) as u64;

    let (serial_seconds, serial) = timed(|| run_sweep(1, None));
    let serial = serial?;
    scenarios.push(ScenarioResult {
        name: "sweep-serial".into(),
        work_units: runs,
        wall_seconds: serial_seconds,
        per_second: runs as f64 / serial_seconds,
    });

    let (parallel_seconds, parallel) = timed(|| run_sweep(jobs, None));
    assert_equivalent(&serial, &parallel?, "sweep-parallel");
    scenarios.push(ScenarioResult {
        name: "sweep-parallel".into(),
        work_units: runs,
        wall_seconds: parallel_seconds,
        per_second: runs as f64 / parallel_seconds,
    });

    let cache = Arc::new(EvalCache::new());
    let (cold_seconds, cold) = timed(|| run_sweep(1, Some(cache.clone())));
    assert_equivalent(&serial, &cold?, "cached-sweep/cold");
    scenarios.push(ScenarioResult {
        name: "cached-sweep/cold".into(),
        work_units: runs,
        wall_seconds: cold_seconds,
        per_second: runs as f64 / cold_seconds,
    });

    let (warm_seconds, warm) = timed(|| run_sweep(1, Some(cache.clone())));
    assert_equivalent(&serial, &warm?, "cached-sweep/warm");
    scenarios.push(ScenarioResult {
        name: "cached-sweep/warm".into(),
        work_units: runs,
        wall_seconds: warm_seconds,
        per_second: runs as f64 / warm_seconds,
    });

    // --- daemon load: the archgymd service under concurrent tenants ---
    // Boot an in-process daemon on an ephemeral port, then have several
    // client threads (one tenant each) submit small search jobs over
    // TCP and block on the watch stream until each job's `done` frame.
    // Reported two ways: end-to-end job throughput, and tail latency as
    // `daemon/p99` (per_second = 1 / p99 seconds, so the regression
    // gate's "lower per_second = worse" convention applies unchanged).
    let daemon_clients: usize = if quick { 3 } else { 6 };
    let jobs_per_client: usize = if quick { 2 } else { 4 };
    let daemon_budget: u64 = if quick { 48 } else { 200 };
    let daemon_state =
        std::env::temp_dir().join(format!("archgym-bench-daemon-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&daemon_state);
    let mut daemon_config = archgymd::server::DaemonConfig::new("127.0.0.1:0", &daemon_state);
    daemon_config.workers = 2; // pinned so numbers are comparable across machines
    daemon_config.quota.max_running_per_tenant = 2;
    daemon_config.quota.max_queued_per_tenant = 64;
    daemon_config.quota.queue_capacity = 256;
    let server = archgymd::server::Server::bind(daemon_config)?;
    let daemon_addr = server.local_addr().to_string();
    let daemon_thread = std::thread::spawn(move || server.run());
    let (daemon_seconds, latencies) = timed(|| -> Result<Vec<f64>> {
        let mut handles = Vec::new();
        for client_idx in 0..daemon_clients {
            let addr = daemon_addr.clone();
            handles.push(std::thread::spawn(move || -> Result<Vec<f64>> {
                let mut latencies = Vec::new();
                for job_idx in 0..jobs_per_client {
                    let start = Instant::now();
                    let mut spec = archgym_core::jobs::JobSpec::search(
                        "dram/stream",
                        "ga",
                        daemon_budget,
                        (client_idx * 31 + job_idx) as u64,
                    );
                    spec.objective = "power:1.0".into();
                    let submitted = archgymd::client::request_one(
                        &addr,
                        &archgymd::protocol::Request::Submit {
                            tenant: format!("tenant-{client_idx}"),
                            name: None,
                            spec,
                        },
                    )?;
                    let archgymd::protocol::Response::Accepted { job, .. } = submitted else {
                        return Err(archgym_core::error::ArchGymError::InvalidConfig(format!(
                            "daemon bench submit not accepted: {}",
                            submitted.to_line()
                        )));
                    };
                    let mut watcher = archgymd::client::Client::connect(&addr)?;
                    watcher.send(&archgymd::protocol::Request::Watch { job })?;
                    loop {
                        match watcher.recv()? {
                            Some(archgymd::protocol::Response::Done { .. }) | None => break,
                            Some(_) => {}
                        }
                    }
                    latencies.push(start.elapsed().as_secs_f64());
                }
                Ok(latencies)
            }));
        }
        let mut all = Vec::new();
        for handle in handles {
            all.extend(handle.join().expect("daemon bench client thread")?);
        }
        Ok(all)
    });
    let latencies = latencies?;
    let _ = archgymd::client::request_one(
        &daemon_addr,
        &archgymd::protocol::Request::Shutdown {
            drain: false,
            deadline_ms: 0,
        },
    );
    let _ = daemon_thread.join();
    let _ = std::fs::remove_dir_all(&daemon_state);
    let daemon_jobs = (daemon_clients * jobs_per_client) as u64;
    let mut sorted = latencies.clone();
    sorted.sort_by(f64::total_cmp);
    let p99_index = ((sorted.len() as f64 * 0.99).ceil() as usize).saturating_sub(1);
    let daemon_p99 = sorted[p99_index.min(sorted.len() - 1)].max(1e-9);
    scenarios.push(ScenarioResult {
        name: "daemon/throughput".into(),
        work_units: daemon_jobs,
        wall_seconds: daemon_seconds,
        per_second: daemon_jobs as f64 / daemon_seconds,
    });
    scenarios.push(ScenarioResult {
        name: "daemon/p99".into(),
        work_units: daemon_jobs,
        wall_seconds: daemon_p99,
        per_second: 1.0 / daemon_p99,
    });

    // --- proxy: the online surrogate screening layer ------------------
    // Its three costs, isolated then end-to-end: fitting the screening
    // forest from run-sized training data, flat-forest batch prediction
    // over an oversampled candidate set (the per-batch screening cost),
    // and a whole screened search. New names self-bootstrap under the
    // gate: the first recorded run becomes the baseline.
    let train_n: usize = if quick { 256 } else { 1_024 };
    let mut proxy_rng = seeded_rng(0x9F17);
    let mut xs: Vec<Vec<f64>> = Vec::with_capacity(train_n);
    let mut ys: Vec<f64> = Vec::with_capacity(train_n);
    for _ in 0..train_n {
        let action = batched_space.sample(&mut proxy_rng);
        let row: Vec<f64> = action.as_slice().iter().map(|&v| v as f64).collect();
        let y = row
            .iter()
            .enumerate()
            .map(|(i, v)| v * (i as f64 + 1.0))
            .sum::<f64>();
        xs.push(row);
        ys.push(y);
    }
    let fit_config = archgym_proxy::online_forest_config();
    let fit_reps: u64 = if quick { 6 } else { 30 };
    let (per_rep, checksum) = timed_batches(3, fit_reps / 3, || {
        archgym_proxy::RandomForest::fit(&xs, &ys, &fit_config, 42)
            .expect("proxy/fit: forest fit failed")
            .predict(&xs[0])
    });
    assert!(checksum.is_finite());
    scenarios.push(ScenarioResult {
        name: "proxy/fit".into(),
        work_units: fit_reps,
        wall_seconds: per_rep * fit_reps as f64,
        per_second: 1.0 / per_rep,
    });

    let forest = archgym_proxy::RandomForest::fit(&xs, &ys, &fit_config, 42)?;
    let flat = archgym_proxy::FlatForest::from_forest(&forest);
    let candidate_n: usize = if quick { 128 } else { 256 };
    let candidates: Vec<Action> = (0..candidate_n)
        .map(|_| batched_space.sample(&mut proxy_rng))
        .collect();
    let (mut means, mut vars, mut scratch) = (Vec::new(), Vec::new(), Vec::new());
    let predict_reps: u64 = if quick { 100 } else { 1_000 };
    let (per_rep, checksum) = timed_batches(10, predict_reps / 10, || {
        flat.predict_action_stats(&candidates, &mut means, &mut vars, &mut scratch);
        means[0]
    });
    assert!(checksum.is_finite());
    let predictions = predict_reps * candidate_n as u64;
    let predict_seconds = per_rep * predict_reps as f64;
    scenarios.push(ScenarioResult {
        name: "proxy/predict".into(),
        work_units: predictions,
        wall_seconds: predict_seconds,
        per_second: predictions as f64 / predict_seconds,
    });

    let screened_budget: u64 = if quick { 96 } else { 400 };
    let screen_policy = ScreenPolicy::default()
        .warmup(32)
        .oversample(4)
        .top_k(8)
        .refit_every(32)
        .revalidate_every(8);
    let (screened_seconds, screened) = timed(|| -> Result<RunResult> {
        let mut agent = build_agent(AgentKind::Ga, &batched_space, &HyperMap::new(), 13)?;
        let mut screener = archgym_proxy::OnlineProxy::with_defaults(screen_policy, 13)?;
        let config = RunConfig::with_budget(screened_budget)
            .batch(0)
            .record(false);
        Ok(SearchLoop::new(config).run_screened_pooled(&mut agent, batched_env(), &mut screener))
    });
    let screened = screened?;
    assert_eq!(
        screened.samples_used, screened_budget,
        "proxy/screened-search consumed the wrong true-sample budget"
    );
    scenarios.push(ScenarioResult {
        name: "proxy/screened-search".into(),
        work_units: screened_budget,
        wall_seconds: screened_seconds,
        per_second: screened_budget as f64 / screened_seconds,
    });

    // --- race: the successive-halving roster race ---------------------
    // A full `search --auto`-style race (one ticket per family, eta 3)
    // against the low-power DRAM objective, timed end to end. The run
    // must both spend its budget exactly and pass a fixed reward
    // target, so the scenario gates the racing layer's wall-clock-to-
    // target as well as its raw throughput. The name self-bootstraps
    // under the gate: the first recorded run becomes the baseline.
    let race_budget: u64 = if quick { 240 } else { 960 };
    let race_target = 900.0;
    let race_lanes = || -> Result<Vec<RaceLane>> {
        race_roster(1)
            .into_iter()
            .map(|entry| {
                Ok(RaceLane::new(
                    entry.name,
                    build_agent(entry.kind, &batched_space, &entry.hyper, 0)?,
                ))
            })
            .collect()
    };
    let race = Race::new(race_budget, 3).batch(8);
    let (race_seconds, race_result) =
        timed(|| -> Result<_> { race.run(race_lanes()?, batched_env()) });
    let race_result = race_result?;
    assert_eq!(
        race_result.samples_used, race_budget,
        "race consumed the wrong true-sample budget"
    );
    assert!(
        race_result.samples_to_reach(race_target).is_some(),
        "race never reached the target reward {race_target} (best {:.3})",
        race_result.best_reward
    );
    scenarios.push(ScenarioResult {
        name: "race/wall-to-target".into(),
        work_units: race_budget,
        wall_seconds: race_seconds,
        per_second: race_budget as f64 / race_seconds,
    });

    let stats = cache.stats();
    Ok(PerfReport {
        rev: "unknown".into(),
        date: "unknown".into(),
        cores: Executor::available_parallelism(),
        quick,
        jobs,
        scenarios,
        scheduler_index_speedup,
        batched_run_speedup,
        cached_sweep_speedup: serial_seconds / warm_seconds,
        cache_hit_rate: stats.hit_rate(),
        cache_entries: stats.entries,
        telemetry_overhead,
        phases,
    })
}

/// Append `entry` (one run's JSON object) to a history file's contents,
/// returning the new file body — always a JSON array of run objects.
///
/// Accepts three prior states: an existing history array (insert before
/// the closing bracket), a legacy single-object report (wrap both into
/// an array), or an empty/missing file (start a fresh array).
pub fn append_history(existing: &str, entry: &str) -> String {
    let old = existing.trim();
    let entry = entry.trim();
    if let Some(body) = old.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
        let body = body.trim().trim_end_matches(',').trim();
        if body.is_empty() {
            format!("[\n{entry}\n]\n")
        } else {
            format!("[\n{body},\n{entry}\n]\n")
        }
    } else if old.starts_with('{') {
        format!("[\n{old},\n{entry}\n]\n")
    } else {
        format!("[\n{entry}\n]\n")
    }
}

/// The most recent `per_second` recorded for `scenario` anywhere in a
/// report or history file (later entries win). Dependency-free by
/// design: the report's JSON is hand-rolled, so scanning it is safe.
pub fn last_per_second(json: &str, scenario: &str) -> Option<f64> {
    let needle = format!("\"name\": \"{scenario}\"");
    let mut latest = None;
    let mut from = 0;
    while let Some(pos) = json[from..].find(&needle) {
        let rest = &json[from + pos..];
        if let Some(field) = rest.find("\"per_second\": ") {
            let tail = &rest[field + 14..];
            let end = tail
                .find(|c: char| !c.is_ascii_digit() && c != '.')
                .unwrap_or(tail.len());
            if let Ok(v) = tail[..end].parse() {
                latest = Some(v);
            }
        }
        from += pos + needle.len();
    }
    latest
}

/// Compare a fresh report against a committed baseline file, returning
/// one message per regression. A scenario regresses when its throughput
/// falls below `1 - tolerance` of the baseline's most recent entry;
/// sweep-parallel is additionally held to sweep-serial from the *same*
/// run, so the chunked executor can never quietly lose to serial again.
pub fn gate(report: &PerfReport, baseline_json: &str, tolerance: f64) -> Vec<String> {
    let mut failures = Vec::new();
    let floor = 1.0 - tolerance;
    for scenario in [
        "simulate-only/default",
        "simulate-only/wide",
        "dram-engine/stream",
        "dram-engine/random",
        "dram-engine/mixed",
        "dram-engine/conflict",
        "daemon/throughput",
        "daemon/p99",
        "proxy/fit",
        "proxy/predict",
        "proxy/screened-search",
        "race/wall-to-target",
    ] {
        let (Some(base), Some(now)) = (
            last_per_second(baseline_json, scenario),
            report.per_second(scenario),
        ) else {
            continue;
        };
        if now < base * floor {
            failures.push(format!(
                "{scenario}: {now:.1}/s fell below {:.1}/s ({base:.1}/s baseline − {:.0}% tolerance)",
                base * floor,
                tolerance * 100.0
            ));
        }
    }
    if let (Some(serial), Some(parallel)) = (
        report.per_second("sweep-serial"),
        report.per_second("sweep-parallel"),
    ) {
        if parallel < serial * floor {
            failures.push(format!(
                "sweep-parallel: {parallel:.1}/s fell below {:.1}/s (sweep-serial {serial:.1}/s − {:.0}% tolerance)",
                serial * floor,
                tolerance * 100.0
            ));
        }
    }
    if report.telemetry_overhead > TELEMETRY_OVERHEAD_LIMIT {
        failures.push(format!(
            "telemetry: enabled recorder costs {:.1}% over the no-op path (limit {:.0}%)",
            (report.telemetry_overhead - 1.0) * 100.0,
            (TELEMETRY_OVERHEAD_LIMIT - 1.0) * 100.0
        ));
    }
    failures
}

/// Every scenario name appearing in a report or history file, in first
/// appearance order. Scenario records are the lines carrying a
/// `work_units` field (phase records carry `count` instead).
pub fn scenario_names(json: &str) -> Vec<String> {
    let mut names = Vec::new();
    for line in json.lines() {
        if !line.contains("\"work_units\"") {
            continue;
        }
        let Some(rest) = line.split("\"name\": \"").nth(1) else {
            continue;
        };
        let Some(name) = rest.split('"').next() else {
            continue;
        };
        if !names.iter().any(|n| n == name) {
            names.push(name.to_owned());
        }
    }
    names
}

/// A GitHub-flavored-markdown table comparing the most recent entry of
/// `baseline` against the most recent entry of `current`, one row per
/// scenario. Written into `$GITHUB_STEP_SUMMARY` by the CI perf gate.
pub fn delta_table(baseline: &str, current: &str) -> String {
    let mut out = String::from("| scenario | baseline /s | current /s | delta |\n");
    out.push_str("|---|---:|---:|---:|\n");
    let mut names = scenario_names(current);
    for name in scenario_names(baseline) {
        if !names.contains(&name) {
            names.push(name);
        }
    }
    for name in names {
        let base = last_per_second(baseline, &name);
        let now = last_per_second(current, &name);
        let cell = |v: Option<f64>| v.map_or("—".to_owned(), |v| format!("{v:.1}"));
        let delta = match (base, now) {
            (Some(base), Some(now)) if base > 0.0 => {
                format!("{:+.1}%", (now / base - 1.0) * 100.0)
            }
            (None, Some(_)) => "new".to_owned(),
            _ => "—".to_owned(),
        };
        let _ = writeln!(out, "| {name} | {} | {} | {delta} |", cell(base), cell(now));
    }
    out
}

/// Print the report as an aligned table plus the headline ratios.
pub fn print(report: &PerfReport) {
    println!("\n=== bench perf ===");
    println!(
        "rev {} | date {} | {} core(s)",
        report.rev, report.date, report.cores
    );
    println!(
        "{:<30} {:>12} {:>14} {:>14}",
        "scenario", "work units", "wall seconds", "per second"
    );
    for s in &report.scenarios {
        println!(
            "{:<30} {:>12} {:>14.4} {:>14.1}",
            s.name, s.work_units, s.wall_seconds, s.per_second
        );
    }
    println!(
        "per-bank indexed scheduler vs linear scan (wide): {:.2}x",
        report.scheduler_index_speedup
    );
    println!(
        "batched run jobs=4 vs serial: {:.2}x on {} core(s)",
        report.batched_run_speedup, report.cores
    );
    if let Some(current) = report.per_second("simulate-only/default") {
        println!(
            "simulate-only/default vs pre-optimization baseline: {:.2}x ({:.0}/s vs {:.0}/s)",
            current / BASELINE_SIMULATE_DEFAULT_PER_SEC,
            current,
            BASELINE_SIMULATE_DEFAULT_PER_SEC
        );
    }
    println!(
        "cached-sweep speedup (warm vs uncached serial): {:.1}x ({:.1}% hit rate, {} entries)",
        report.cached_sweep_speedup,
        report.cache_hit_rate * 100.0,
        report.cache_entries
    );
    println!(
        "telemetry overhead (recorder on vs off): {:+.2}% (limit {:+.0}%)",
        (report.telemetry_overhead - 1.0) * 100.0,
        (TELEMETRY_OVERHEAD_LIMIT - 1.0) * 100.0
    );
    if !report.phases.is_empty() {
        println!(
            "{:<16} {:>10} {:>14} {:>12} {:>12}",
            "phase", "count", "total ms", "p50 us", "p95 us"
        );
        for (name, p) in &report.phases {
            println!(
                "{:<16} {:>10} {:>14.3} {:>12.1} {:>12.1}",
                name,
                p.count,
                p.total_ns as f64 / 1e6,
                p.p50_ns as f64 / 1e3,
                p.p95_ns as f64 / 1e3
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_covers_every_scenario_and_speeds_up() {
        let report = run(true, 2).unwrap();
        let names: Vec<&str> = report.scenarios.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "simulate-only/default",
                "simulate-only/wide",
                "simulate-only/wide-linear-scan",
                "dram-engine/stream",
                "dram-engine/random",
                "dram-engine/mixed",
                "dram-engine/conflict",
                "batched-run/serial",
                "batched-run/jobs4",
                "telemetry/off",
                "telemetry/on",
                "sweep-serial",
                "sweep-parallel",
                "cached-sweep/cold",
                "cached-sweep/warm",
                "daemon/throughput",
                "daemon/p99",
                "proxy/fit",
                "proxy/predict",
                "proxy/screened-search",
                "race/wall-to-target"
            ]
        );
        assert!(report.scenarios.iter().all(|s| s.per_second > 0.0));
        assert!(report.cores >= 1);
        // The indexed scheduler must not lose to the linear scan it
        // replaced (timer noise allowance only).
        assert!(
            report.scheduler_index_speedup > 0.9,
            "indexed scheduler only {:.2}x of linear scan",
            report.scheduler_index_speedup
        );
        // With fan-out clamped to real hardware parallelism, a pooled
        // run on any machine is at worst the serial run plus pool
        // setup — it must no longer lose meaningfully to serial. The
        // bound is loose enough for debug-build timer noise on loaded
        // shared hardware but still far above the 0.785x the unclamped
        // executor used to cost.
        assert!(
            report.batched_run_speedup > 0.85,
            "pooled batched run only {:.2}x of serial",
            report.batched_run_speedup
        );
        // A warm cache answers every lookup without simulating; even on
        // a loaded single-core machine that dwarfs 2x.
        assert!(
            report.cached_sweep_speedup >= 2.0,
            "cached sweep only {:.2}x faster",
            report.cached_sweep_speedup
        );
        assert!(report.cache_hit_rate > 0.0);
        assert!(report.cache_entries > 0);
        // The recorder's accounting must cover the run it watched: the
        // evaluate phase fired once per batch, and simulate-level spans
        // once per sample.
        assert!(report.telemetry_overhead > 0.0);
        let phase = |name: &str| {
            report
                .phases
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, p)| *p)
        };
        assert!(phase("evaluate").is_some_and(|p| p.count > 0), "{report:?}");
        assert!(
            phase("simulate").is_some_and(|p| p.count > 0 && p.total_ns > 0),
            "{report:?}"
        );
    }

    fn sample_report() -> PerfReport {
        PerfReport {
            rev: "abc1234".into(),
            date: "2026-08-07".into(),
            cores: 1,
            quick: true,
            jobs: 2,
            scenarios: vec![ScenarioResult {
                name: "simulate-only/default".into(),
                work_units: 10,
                wall_seconds: 0.5,
                per_second: 20.0,
            }],
            scheduler_index_speedup: 3.5,
            batched_run_speedup: 1.0,
            cached_sweep_speedup: 5.0,
            cache_hit_rate: 0.75,
            cache_entries: 42,
            telemetry_overhead: 1.01,
            phases: vec![(
                "simulate".into(),
                PhaseSummary {
                    count: 10,
                    total_ns: 1_000,
                    p50_ns: 127,
                    p95_ns: 255,
                    p99_ns: 255,
                    max_ns: 200,
                },
            )],
        }
    }

    #[test]
    fn json_report_is_well_formed() {
        let json = sample_report().to_json();
        for needle in [
            "\"bench\": \"perf\"",
            "\"rev\": \"abc1234\"",
            "\"date\": \"2026-08-07\"",
            "\"cores\": 1",
            "\"baseline\"",
            "\"simulate_default_per_sec\"",
            "\"scenarios\"",
            "\"scheduler_index_speedup\": 3.500",
            "\"batched_run_speedup\": 1.000",
            "\"cached_sweep_speedup\": 5.000",
            "\"cache_entries\": 42",
            "\"telemetry_overhead\": 1.0100",
            "\"phases\"",
            "\"name\": \"simulate\", \"count\": 10",
            "\"simulate_default_speedup_vs_baseline\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // Balanced braces/brackets — a cheap structural check that
        // stays dependency-free under the offline stub build.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn history_grows_through_every_prior_state() {
        let entry = sample_report().to_json();
        // Empty file → fresh single-entry array.
        let first = append_history("", &entry);
        assert!(first.trim_start().starts_with('['));
        assert_eq!(first.matches("\"bench\": \"perf\"").count(), 1);
        // Legacy single-object report → wrapped two-entry array.
        let wrapped = append_history(&entry, &entry);
        assert!(wrapped.trim_start().starts_with('['));
        assert_eq!(wrapped.matches("\"bench\": \"perf\"").count(), 2);
        // Existing array → appended.
        let third = append_history(&wrapped, &entry);
        assert_eq!(third.matches("\"bench\": \"perf\"").count(), 3);
        assert_eq!(third.matches('[').count(), third.matches(']').count());
        assert_eq!(third.matches('{').count(), third.matches('}').count());
    }

    #[test]
    fn last_per_second_takes_the_newest_entry() {
        let history = r#"[
          {"scenarios": [{"name": "simulate-only/default", "work_units": 1, "wall_seconds": 1.0, "per_second": 100.0}]},
          {"scenarios": [{"name": "simulate-only/default", "work_units": 1, "wall_seconds": 1.0, "per_second": 250.5}]}
        ]"#;
        assert_eq!(
            last_per_second(history, "simulate-only/default"),
            Some(250.5)
        );
        assert_eq!(last_per_second(history, "simulate-only/wide"), None);
    }

    #[test]
    fn delta_table_compares_latest_entries() {
        let baseline = r#"[
          {"scenarios": [
            {"name": "simulate-only/default", "work_units": 1, "wall_seconds": 1.0, "per_second": 100.0},
            {"name": "daemon/p99", "work_units": 1, "wall_seconds": 0.5, "per_second": 2.0}
          ]}
        ]"#;
        let current = r#"[
          {"scenarios": [
            {"name": "simulate-only/default", "work_units": 1, "wall_seconds": 1.0, "per_second": 120.0},
            {"name": "daemon/throughput", "work_units": 6, "wall_seconds": 1.0, "per_second": 6.0}
          ]}
        ]"#;
        assert_eq!(
            scenario_names(current),
            vec!["simulate-only/default", "daemon/throughput"]
        );
        let table = delta_table(baseline, current);
        assert!(table.starts_with("| scenario |"), "{table}");
        assert!(
            table.contains("| simulate-only/default | 100.0 | 120.0 | +20.0% |"),
            "{table}"
        );
        assert!(
            table.contains("| daemon/throughput | — | 6.0 | new |"),
            "{table}"
        );
        // In the baseline but missing from the current run: no delta.
        assert!(table.contains("| daemon/p99 | 2.0 | — | — |"), "{table}");
    }

    #[test]
    fn gate_flags_only_real_regressions() {
        let mut report = sample_report();
        report.scenarios = vec![
            ScenarioResult {
                name: "simulate-only/default".into(),
                work_units: 1,
                wall_seconds: 1.0,
                per_second: 100.0,
            },
            ScenarioResult {
                name: "sweep-serial".into(),
                work_units: 1,
                wall_seconds: 1.0,
                per_second: 50.0,
            },
            ScenarioResult {
                name: "sweep-parallel".into(),
                work_units: 1,
                wall_seconds: 1.0,
                per_second: 48.0,
            },
        ];
        let baseline = |per_sec: f64| {
            format!(
                "[{{\"scenarios\": [{{\"name\": \"simulate-only/default\", \"per_second\": {per_sec}}}]}}]"
            )
        };
        // Within 30% tolerance: no failures (100 vs 120 baseline).
        assert!(gate(&report, &baseline(120.0), 0.3).is_empty());
        // Far below baseline: flagged.
        let failures = gate(&report, &baseline(200.0), 0.3);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("simulate-only/default"));
        // Parallel sweep collapsing against its own serial run: flagged
        // even when the baseline file never saw the scenario.
        report.scenarios[2].per_second = 10.0;
        let failures = gate(&report, &baseline(120.0), 0.3);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("sweep-parallel"));
    }

    #[test]
    fn gate_flags_expensive_telemetry() {
        let mut report = sample_report();
        report.scenarios.clear();
        assert!(gate(&report, "[]", 0.3).is_empty(), "1% overhead passes");
        report.telemetry_overhead = 1.2;
        let failures = gate(&report, "[]", 0.3);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("telemetry"), "{failures:?}");
    }
}
