//! `bench perf` — the workspace's performance trajectory.
//!
//! Times the layers this repo's throughput rests on, bottom to top:
//! the raw `MemoryController::simulate` inner loop (simulate-only), a
//! serial agent sweep, the same sweep fanned over worker threads
//! (sweep-parallel), and the same sweep memoized through an
//! [`EvalCache`] (cached-sweep, cold then warm). The report embeds the
//! pre-optimization baseline measured before the hot-path rewrite so
//! every future run shows the trajectory, and is written to
//! `BENCH_perf.json` by the `bench` binary for CI artifact upload.
//!
//! The cached-sweep scenarios double as an end-to-end determinism
//! check: the run panics if cached results diverge from uncached ones.

use archgym_agents::factory::{build_agent, default_grid, AgentKind};
use archgym_core::agent::HyperMap;
use archgym_core::cache::EvalCache;
use archgym_core::env::Environment;
use archgym_core::error::Result;
use archgym_core::search::RunConfig;
use archgym_core::seeded_rng;
use archgym_core::sweep::{Sweep, SweepResult};
use archgym_dram::controller::{ControllerConfig, MemoryController};
use archgym_dram::trace::generate;
use archgym_dram::{DramEnv, DramWorkload, Objective, TraceConfig};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Pre-optimization throughput of the simulate-only scenarios, measured
/// on this repo immediately before the PR 2 hot-path rewrite (single
/// core, release profile). Kept in the report so the speedup is visible
/// without digging through git history.
pub const BASELINE_SIMULATE_DEFAULT_PER_SEC: f64 = 13_000.0;
/// Pre-optimization throughput of the wide simulate-only scenario.
pub const BASELINE_SIMULATE_WIDE_PER_SEC: f64 = 670.0;

/// One timed scenario.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scenario identifier, e.g. `"simulate-only/default"`.
    pub name: String,
    /// Work units completed (simulations or sweep runs).
    pub work_units: u64,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
    /// Work units per second.
    pub per_second: f64,
}

/// The full `bench perf` report.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Whether the quick (CI smoke) workload sizes were used.
    pub quick: bool,
    /// Worker threads used by the parallel scenario (`0` = all cores).
    pub jobs: usize,
    /// Every timed scenario, in execution order.
    pub scenarios: Vec<ScenarioResult>,
    /// Wall-clock speedup of the warm cached sweep over the uncached
    /// serial sweep (the acceptance metric: must exceed 2×).
    pub cached_sweep_speedup: f64,
    /// Cache hit rate over the cold+warm cached sweeps.
    pub cache_hit_rate: f64,
    /// Distinct design points the cache ended up holding.
    pub cache_entries: u64,
}

impl PerfReport {
    /// Look up a scenario's throughput by name.
    pub fn per_second(&self, name: &str) -> Option<f64> {
        self.scenarios
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.per_second)
    }

    /// Serialize the report as JSON.
    ///
    /// Hand-rolled: every field is a number, bool or known-safe string,
    /// and hand-rolling keeps the binary independent of a JSON crate.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"bench\": \"perf\",");
        let _ = writeln!(out, "  \"quick\": {},", self.quick);
        let _ = writeln!(out, "  \"jobs\": {},", self.jobs);
        out.push_str("  \"baseline\": {\n");
        let _ = writeln!(
            out,
            "    \"note\": \"pre-optimization throughput, measured before the hot-path rewrite\","
        );
        let _ = writeln!(
            out,
            "    \"simulate_default_per_sec\": {BASELINE_SIMULATE_DEFAULT_PER_SEC},"
        );
        let _ = writeln!(
            out,
            "    \"simulate_wide_per_sec\": {BASELINE_SIMULATE_WIDE_PER_SEC}"
        );
        out.push_str("  },\n");
        out.push_str("  \"scenarios\": [\n");
        for (i, s) in self.scenarios.iter().enumerate() {
            let comma = if i + 1 < self.scenarios.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"work_units\": {}, \"wall_seconds\": {:.6}, \"per_second\": {:.3}}}{comma}",
                s.name, s.work_units, s.wall_seconds, s.per_second
            );
        }
        out.push_str("  ],\n");
        if let Some(current) = self.per_second("simulate-only/default") {
            let _ = writeln!(
                out,
                "  \"simulate_default_speedup_vs_baseline\": {:.3},",
                current / BASELINE_SIMULATE_DEFAULT_PER_SEC
            );
        }
        if let Some(current) = self.per_second("simulate-only/wide") {
            let _ = writeln!(
                out,
                "  \"simulate_wide_speedup_vs_baseline\": {:.3},",
                current / BASELINE_SIMULATE_WIDE_PER_SEC
            );
        }
        let _ = writeln!(
            out,
            "  \"cached_sweep_speedup\": {:.3},",
            self.cached_sweep_speedup
        );
        let _ = writeln!(out, "  \"cache_hit_rate\": {:.4},", self.cache_hit_rate);
        let _ = writeln!(out, "  \"cache_entries\": {}", self.cache_entries);
        out.push_str("}\n");
        out
    }
}

fn timed<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let start = Instant::now();
    let result = f();
    (start.elapsed().as_secs_f64().max(1e-9), result)
}

/// Results must match point-for-point whether or not the cache served
/// them — anything else means the cache corrupted the search.
fn assert_equivalent(reference: &SweepResult, candidate: &SweepResult, label: &str) {
    assert_eq!(
        reference.points.len(),
        candidate.points.len(),
        "{label}: run count diverged"
    );
    for (r, c) in reference.points.iter().zip(&candidate.points) {
        assert!(
            r.hyper == c.hyper
                && r.seed == c.seed
                && r.result.best_reward == c.result.best_reward
                && r.result.best_action == c.result.best_action
                && r.result.samples_used == c.result.samples_used,
            "{label}: cached sweep diverged from uncached at hyper={} seed={}",
            r.hyper.summary(),
            r.seed
        );
    }
}

/// Run every scenario and assemble the report.
///
/// `quick` selects CI-smoke workload sizes; `jobs` is the worker-thread
/// count for the parallel scenario (`0` = every available core).
///
/// # Errors
///
/// Propagates agent-construction failures.
///
/// # Panics
///
/// Panics if the cached sweep's results diverge from the uncached ones.
pub fn run(quick: bool, jobs: usize) -> Result<PerfReport> {
    let mut scenarios = Vec::new();

    // --- simulate-only: the raw controller inner loop -----------------
    let default_trace = generate(
        DramWorkload::Cloud2,
        &TraceConfig::default(),
        &mut seeded_rng(0xD7A3),
    );
    let reps: u64 = if quick { 200 } else { 2_000 };
    let cfg = ControllerConfig::default();
    let (seconds, checksum) = timed(|| {
        let mut sink = 0.0f64;
        for _ in 0..reps {
            sink += MemoryController::new(cfg.clone())
                .simulate(&default_trace)
                .avg_latency_ns;
        }
        sink
    });
    assert!(checksum.is_finite());
    scenarios.push(ScenarioResult {
        name: "simulate-only/default".into(),
        work_units: reps,
        wall_seconds: seconds,
        per_second: reps as f64 / seconds,
    });

    let wide_trace = generate(
        DramWorkload::Cloud2,
        &TraceConfig {
            length: 8_192,
            ..TraceConfig::default()
        },
        &mut seeded_rng(0xD7A3),
    );
    let wide_cfg = ControllerConfig {
        request_buffer_size: 8,
        max_active_transactions: 64,
        ..ControllerConfig::default()
    };
    let reps: u64 = if quick { 30 } else { 300 };
    let (seconds, checksum) = timed(|| {
        let mut sink = 0.0f64;
        for _ in 0..reps {
            sink += MemoryController::new(wide_cfg.clone())
                .simulate(&wide_trace)
                .avg_latency_ns;
        }
        sink
    });
    assert!(checksum.is_finite());
    scenarios.push(ScenarioResult {
        name: "simulate-only/wide".into(),
        work_units: reps,
        wall_seconds: seconds,
        per_second: reps as f64 / seconds,
    });

    // --- sweeps: serial, parallel, cached ------------------------------
    let kind = AgentKind::Ga;
    let budget: u64 = if quick { 48 } else { 300 };
    let assignments: Vec<HyperMap> = default_grid(kind)
        .iter()
        .take(if quick { 2 } else { 4 })
        .collect();
    let seeds: Vec<u64> = if quick { vec![1] } else { vec![1, 2] };
    let make_env = || DramEnv::new(DramWorkload::Stream, Objective::low_power(1.0));
    let space = make_env().space().clone();
    let run_sweep = |sweep_jobs: usize, cache: Option<Arc<EvalCache>>| -> Result<SweepResult> {
        let mut sweep = Sweep::new(RunConfig::with_budget(budget).record(false))
            .seeds(seeds.iter().copied())
            .jobs(sweep_jobs);
        if let Some(cache) = cache {
            sweep = sweep.cache(cache);
        }
        sweep.run_assignments(kind.name(), &assignments, make_env, |hyper, seed| {
            build_agent(kind, &space, hyper, seed)
        })
    };
    let runs = (assignments.len() * seeds.len()) as u64;

    let (serial_seconds, serial) = timed(|| run_sweep(1, None));
    let serial = serial?;
    scenarios.push(ScenarioResult {
        name: "sweep-serial".into(),
        work_units: runs,
        wall_seconds: serial_seconds,
        per_second: runs as f64 / serial_seconds,
    });

    let (parallel_seconds, parallel) = timed(|| run_sweep(jobs, None));
    assert_equivalent(&serial, &parallel?, "sweep-parallel");
    scenarios.push(ScenarioResult {
        name: "sweep-parallel".into(),
        work_units: runs,
        wall_seconds: parallel_seconds,
        per_second: runs as f64 / parallel_seconds,
    });

    let cache = Arc::new(EvalCache::new());
    let (cold_seconds, cold) = timed(|| run_sweep(1, Some(cache.clone())));
    assert_equivalent(&serial, &cold?, "cached-sweep/cold");
    scenarios.push(ScenarioResult {
        name: "cached-sweep/cold".into(),
        work_units: runs,
        wall_seconds: cold_seconds,
        per_second: runs as f64 / cold_seconds,
    });

    let (warm_seconds, warm) = timed(|| run_sweep(1, Some(cache.clone())));
    assert_equivalent(&serial, &warm?, "cached-sweep/warm");
    scenarios.push(ScenarioResult {
        name: "cached-sweep/warm".into(),
        work_units: runs,
        wall_seconds: warm_seconds,
        per_second: runs as f64 / warm_seconds,
    });

    let stats = cache.stats();
    Ok(PerfReport {
        quick,
        jobs,
        scenarios,
        cached_sweep_speedup: serial_seconds / warm_seconds,
        cache_hit_rate: stats.hit_rate(),
        cache_entries: stats.entries,
    })
}

/// Print the report as an aligned table plus the headline ratios.
pub fn print(report: &PerfReport) {
    println!("\n=== bench perf ===");
    println!(
        "{:<22} {:>12} {:>14} {:>14}",
        "scenario", "work units", "wall seconds", "per second"
    );
    for s in &report.scenarios {
        println!(
            "{:<22} {:>12} {:>14.4} {:>14.1}",
            s.name, s.work_units, s.wall_seconds, s.per_second
        );
    }
    if let Some(current) = report.per_second("simulate-only/default") {
        println!(
            "simulate-only/default vs pre-optimization baseline: {:.2}x ({:.0}/s vs {:.0}/s)",
            current / BASELINE_SIMULATE_DEFAULT_PER_SEC,
            current,
            BASELINE_SIMULATE_DEFAULT_PER_SEC
        );
    }
    println!(
        "cached-sweep speedup (warm vs uncached serial): {:.1}x ({:.1}% hit rate, {} entries)",
        report.cached_sweep_speedup,
        report.cache_hit_rate * 100.0,
        report.cache_entries
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_covers_every_scenario_and_speeds_up() {
        let report = run(true, 2).unwrap();
        let names: Vec<&str> = report.scenarios.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "simulate-only/default",
                "simulate-only/wide",
                "sweep-serial",
                "sweep-parallel",
                "cached-sweep/cold",
                "cached-sweep/warm"
            ]
        );
        assert!(report.scenarios.iter().all(|s| s.per_second > 0.0));
        // A warm cache answers every lookup without simulating; even on
        // a loaded single-core machine that dwarfs 2x.
        assert!(
            report.cached_sweep_speedup >= 2.0,
            "cached sweep only {:.2}x faster",
            report.cached_sweep_speedup
        );
        assert!(report.cache_hit_rate > 0.0);
        assert!(report.cache_entries > 0);
    }

    #[test]
    fn json_report_is_well_formed() {
        let report = PerfReport {
            quick: true,
            jobs: 2,
            scenarios: vec![ScenarioResult {
                name: "simulate-only/default".into(),
                work_units: 10,
                wall_seconds: 0.5,
                per_second: 20.0,
            }],
            cached_sweep_speedup: 5.0,
            cache_hit_rate: 0.75,
            cache_entries: 42,
        };
        let json = report.to_json();
        for needle in [
            "\"bench\": \"perf\"",
            "\"baseline\"",
            "\"simulate_default_per_sec\"",
            "\"scenarios\"",
            "\"cached_sweep_speedup\": 5.000",
            "\"cache_entries\": 42",
            "\"simulate_default_speedup_vs_baseline\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // Balanced braces/brackets — a cheap structural check that
        // stays dependency-free under the offline stub build.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
