//! # archgym-bench
//!
//! Experiment harnesses that regenerate **every table and figure** of the
//! ArchGym paper's evaluation (Section 6–7). Each experiment is a library
//! function (so integration tests can run it at smoke scale) plus a
//! binary that prints the same rows/series the paper reports:
//!
//! | Paper artifact | Library entry | Binary |
//! |---|---|---|
//! | Fig. 4 — hyperparameter lottery on DRAM (4 traces × 3 objectives) | [`fig4::run`] | `cargo run -p archgym-bench --release --bin fig4` |
//! | Fig. 5 — lottery across all four simulators | [`fig5::run`] | `--bin fig5` |
//! | Fig. 6 — GAMMA domain-specific-operator ablation | [`fig6::run`] | `--bin fig6` |
//! | Fig. 7 — mean normalized reward vs sample budget | [`fig7::run`] | `--bin fig7` |
//! | Fig. 8 — time-to-completion per agent | [`fig8::run`] | `--bin fig8` (+ criterion bench) |
//! | Table 4 — low-power DRAM controllers found per agent | [`table4::run`] | `--bin table4` |
//! | Figs. 9–10 — dataset aggregation & proxy RMSE vs size/diversity | [`fig10::run`] | `--bin fig10` |
//! | Fig. 11 — predicted-vs-actual correlation | [`fig11::run`] | `--bin fig11` |
//! | Fig. 12 — proxy speedup & RMSE table | [`fig12::run`] | `--bin fig12` (+ criterion bench) |
//!
//! Every harness takes a [`Scale`]: `Smoke` for CI, `Default` for a
//! laptop-minutes run, `Full` for a faithful (hours-long) sweep. The
//! sweep-style harnesses also take a `jobs` worker-thread count
//! (`--jobs=N` on the binaries; `0` = every available core) and fan
//! their independent runs over an `archgym_core::Executor` — results
//! are bit-identical at any thread count.
//!
//! Beyond the paper's artifacts, [`ablation`] isolates per-knob
//! sensitivity (one hyperparameter at a time; `--bin ablation`),
//! [`sample_efficiency`] reports samples-to-target directly
//! (`--bin sample_efficiency`), and [`perf`] times the workspace's own
//! hot paths — simulate-only, serial/parallel sweeps, and the
//! memoizing `EvalCache` — writing `BENCH_perf.json`
//! (`cargo run -p archgym-bench --release --bin bench -- perf`).

pub mod ablation;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod harness;
pub mod perf;
pub mod sample_efficiency;
pub mod table4;

pub use harness::{lottery, print_summary_table, LotterySpec, Scale};
