//! **Fig. 6** — effectiveness of GAMMA's domain-specific operators:
//! compare GA variants (GA-V1 = GAMMA with aging+growth+reordering,
//! GA+RO, GA+AG, GA+GR, and the operator-free "GA ArchGym") on the
//! MAESTRO mapping problem for ResNet-18 and VGG-16.
//!
//! The paper's finding: all variants are equally effective once tuned —
//! the vanilla ArchGym GA even edges out GAMMA — so operator machinery is
//! no substitute for hyperparameter diligence.

use crate::harness::Scale;
use archgym_agents::ga::{GaOperators, GeneticAlgorithm};
use archgym_core::env::Environment;
use archgym_core::error::Result;
use archgym_core::search::{RunConfig, SearchLoop};
use archgym_mapping::{env::metric, MappingEnv, Objective};
use archgym_models::Network;

/// A GA variant of the ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Variant {
    /// Display name (`"GA-V1"`, `"GA+RO"`, ...).
    pub name: &'static str,
    /// Operator set.
    pub operators: GaOperators,
}

/// The five variants in the paper's order.
pub fn variants() -> [Variant; 5] {
    [
        Variant {
            name: "GA-V1",
            operators: GaOperators::all(),
        },
        Variant {
            name: "GA+RO",
            operators: GaOperators {
                reordering: true,
                ..GaOperators::none()
            },
        },
        Variant {
            name: "GA+AG",
            operators: GaOperators {
                aging: true,
                ..GaOperators::none()
            },
        },
        Variant {
            name: "GA+GR",
            operators: GaOperators {
                growth: true,
                ..GaOperators::none()
            },
        },
        Variant {
            name: "GA-ArchGym",
            operators: GaOperators::none(),
        },
    ]
}

/// Best end-to-end model latency found by one variant (sum over layers
/// of the best mapped runtime, honoring repeats), with the per-run sweep
/// distribution.
#[derive(Debug, Clone)]
pub struct VariantResult {
    /// Variant label.
    pub variant: &'static str,
    /// Model name.
    pub model: String,
    /// Best total latency in milliseconds.
    pub best_latency_ms: f64,
    /// Total latencies across the hyperparameter sweep (one per run).
    pub sweep_latencies_ms: Vec<f64>,
}

/// The small mutation/crossover sweep applied to every variant (the
/// paper sweeps ~4000 configurations over two days; this is the scaled
/// grid).
fn hyper_points(scale: Scale) -> Vec<(f64, f64, usize)> {
    // (mutation_prob, crossover_prob, population)
    let full = vec![
        (0.05, 0.8, 16),
        (0.2, 0.8, 16),
        (0.05, 0.5, 32),
        (0.2, 0.95, 32),
        (0.1, 0.8, 24),
        (0.3, 0.6, 16),
    ];
    match scale {
        Scale::Smoke => full.into_iter().take(1).collect(),
        Scale::Default => full.into_iter().take(4).collect(),
        Scale::Full => full,
    }
}

/// Which layers to map per scale (all layers at `Full`).
fn layers_for(network: &Network, scale: Scale) -> Vec<&archgym_models::ConvLayer> {
    let all: Vec<&archgym_models::ConvLayer> = network.layers().iter().collect();
    match scale {
        Scale::Smoke => all.into_iter().take(2).collect(),
        Scale::Default => all.into_iter().take(4).collect(),
        Scale::Full => all,
    }
}

/// Run one variant on one model: per hyper point, map every selected
/// layer with a per-layer search and sum the best runtimes.
///
/// # Errors
///
/// Propagates environment construction failures.
pub fn run_variant(variant: Variant, network: &Network, scale: Scale) -> Result<VariantResult> {
    let budget_per_layer = match scale {
        Scale::Smoke => 96,
        Scale::Default => 600,
        Scale::Full => 4_000,
    };
    let mut sweep_latencies = Vec::new();
    for (seed, &(mutation, crossover, population)) in hyper_points(scale).iter().enumerate() {
        let mut total_ms = 0.0;
        let mut mapped_any = true;
        for layer in layers_for(network, scale) {
            let mut env = MappingEnv::new(network.name(), layer.clone(), Objective::runtime());
            let mut ga = GeneticAlgorithm::new(
                env.space().clone(),
                population,
                mutation,
                crossover,
                3,
                2,
                variant.operators,
                8,
                seed as u64 + 100,
            );
            let result = SearchLoop::new(
                RunConfig::with_budget(budget_per_layer)
                    .batch(population)
                    .record(false),
            )
            .run(&mut ga, &mut env);
            if result.best_reward <= 0.0 {
                mapped_any = false;
                break; // no feasible mapping found for this layer
            }
            total_ms += result.best_observation[metric::RUNTIME] * layer.repeat as f64;
        }
        if mapped_any {
            sweep_latencies.push(total_ms);
        }
    }
    let best = sweep_latencies
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    Ok(VariantResult {
        variant: variant.name,
        model: network.name().to_owned(),
        best_latency_ms: best,
        sweep_latencies_ms: sweep_latencies,
    })
}

/// Run the full ablation over both models.
///
/// # Errors
///
/// Propagates per-variant failures.
pub fn run(scale: Scale) -> Result<Vec<VariantResult>> {
    let models = match scale {
        Scale::Smoke => vec![archgym_models::resnet18()],
        _ => vec![archgym_models::resnet18(), archgym_models::vgg16()],
    };
    let mut results = Vec::new();
    for model in &models {
        for variant in variants() {
            results.push(run_variant(variant, model, scale)?);
        }
    }
    Ok(results)
}

/// Print the figure: best latency per variant per model.
pub fn print(results: &[VariantResult]) {
    println!("\n=== Fig. 6 — GAMMA operator ablation (MAESTRO mapping latency) ===");
    println!(
        "{:<10} {:<12} {:>16} {:>10}",
        "model", "variant", "best latency ms", "runs"
    );
    for r in results {
        println!(
            "{:<10} {:<12} {:>16.4} {:>10}",
            r.model,
            r.variant,
            r.best_latency_ms,
            r.sweep_latencies_ms.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_cover_all_operator_combinations_of_the_paper() {
        let v = variants();
        assert_eq!(v.len(), 5);
        assert_eq!(v[0].operators, GaOperators::all());
        assert_eq!(v[4].operators, GaOperators::none());
        assert!(v[1].operators.reordering && !v[1].operators.aging);
        assert!(v[2].operators.aging && !v[2].operators.growth);
        assert!(v[3].operators.growth && !v[3].operators.reordering);
    }

    #[test]
    fn smoke_ablation_finds_finite_latencies() {
        let results = run(Scale::Smoke).unwrap();
        assert_eq!(results.len(), 5); // one model × five variants
        for r in &results {
            assert!(
                r.best_latency_ms.is_finite() && r.best_latency_ms > 0.0,
                "{} found no feasible mapping",
                r.variant
            );
        }
        // The paper's point: variants land in the same ballpark. Allow a
        // generous factor at smoke scale.
        let best = results
            .iter()
            .map(|r| r.best_latency_ms)
            .fold(f64::INFINITY, f64::min);
        let worst = results
            .iter()
            .map(|r| r.best_latency_ms)
            .fold(0.0, f64::max);
        assert!(
            worst / best < 20.0,
            "variants diverged implausibly: best {best}, worst {worst}"
        );
        print(&results);
    }
}
