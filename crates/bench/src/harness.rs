//! Shared experiment plumbing: scales, capped lottery sweeps, tables.

use archgym_agents::factory::{build_agent, default_grid, AgentKind};
use archgym_core::agent::HyperMap;
use archgym_core::env::{CloneEnvironment, Environment};
use archgym_core::error::Result;
use archgym_core::search::{RetryPolicy, RunConfig};
use archgym_core::sweep::{Sweep, SweepResult, SweepSummary};

/// Experiment scale. The paper's studies span 21,600 experiments and
/// ~1.5 billion simulations on a cluster; `Full` approaches that
/// methodology faithfully, `Default` reproduces the *shapes* in minutes
/// on a laptop, `Smoke` keeps CI fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale: tiny budgets, 2 grid points, 1 seed.
    Smoke,
    /// Minutes-scale: the default for `cargo run --release`.
    Default,
    /// Faithful sweeps (expect hours).
    Full,
}

impl Scale {
    /// Parse `--scale=smoke|default|full` from `std::env::args`.
    pub fn from_args() -> Scale {
        for arg in std::env::args() {
            if let Some(value) = arg.strip_prefix("--scale=") {
                return match value {
                    "smoke" => Scale::Smoke,
                    "full" => Scale::Full,
                    _ => Scale::Default,
                };
            }
        }
        Scale::Default
    }

    /// Sample budget per search run.
    pub fn budget(&self) -> u64 {
        match self {
            Scale::Smoke => 128,
            Scale::Default => 1_000,
            Scale::Full => 10_000,
        }
    }

    /// Maximum hyperparameter assignments taken from each agent's grid.
    pub fn grid_cap(&self) -> usize {
        match self {
            Scale::Smoke => 2,
            Scale::Default => 9,
            Scale::Full => 27,
        }
    }

    /// Seeds per assignment.
    pub fn seeds(&self) -> Vec<u64> {
        match self {
            Scale::Smoke => vec![1],
            Scale::Default => vec![1, 2],
            Scale::Full => vec![1, 2, 3, 4],
        }
    }
}

/// Parse `--jobs=N` from `std::env::args`: the worker-thread count for
/// lottery sweeps. `0` (the default when the flag is absent) means every
/// available core.
pub fn jobs_from_args() -> usize {
    for arg in std::env::args() {
        if let Some(value) = arg.strip_prefix("--jobs=") {
            return value.parse().unwrap_or_else(|_| {
                eprintln!("warning: `--jobs={value}` is not an integer; using all cores");
                0
            });
        }
    }
    0
}

/// What a lottery sweep runs: one environment family at one scale.
#[derive(Debug, Clone, Copy)]
pub struct LotterySpec {
    /// Experiment scale.
    pub scale: Scale,
    /// Sample budget per run (defaults to `scale.budget()`).
    pub budget: u64,
    /// Batch size handed to agents per proposal round.
    pub batch: usize,
    /// Record trajectories (needed by the dataset experiments).
    pub record: bool,
    /// Worker threads for the sweep (`0` = every available core).
    pub jobs: usize,
    /// In-run batch-evaluation threads per search run (`1` = serial;
    /// composes with — and multiplies — the sweep-level `jobs`).
    pub batch_jobs: usize,
}

impl LotterySpec {
    /// The standard spec for a scale, running on every available core.
    pub fn new(scale: Scale) -> Self {
        LotterySpec {
            scale,
            budget: scale.budget(),
            batch: 16,
            record: false,
            jobs: 0,
            batch_jobs: 1,
        }
    }

    /// Override the budget, builder-style.
    pub fn budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Enable trajectory recording, builder-style.
    pub fn record(mut self, record: bool) -> Self {
        self.record = record;
        self
    }

    /// Override the worker-thread count, builder-style (`0` = every
    /// available core, `1` = serial).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Override the in-run batch-evaluation thread count, builder-style
    /// (`1` = serial evaluation inside each run).
    pub fn batch_jobs(mut self, batch_jobs: usize) -> Self {
        self.batch_jobs = batch_jobs;
        self
    }
}

/// Run the hyperparameter lottery for one agent family against an
/// environment factory: every (capped) grid assignment × every seed.
///
/// Runs are distributed over `spec.jobs` workers (all cores by default);
/// because every run is independently seeded and results are kept in grid
/// order, the result is bit-identical to a serial sweep regardless of
/// thread count.
///
/// # Errors
///
/// Propagates agent-construction failures.
pub fn lottery<F>(kind: AgentKind, spec: &LotterySpec, make_env: F) -> Result<SweepResult>
where
    F: Fn() -> Box<dyn CloneEnvironment> + Sync,
{
    let assignments: Vec<HyperMap> = default_grid(kind)
        .iter()
        .take(spec.scale.grid_cap())
        .collect();
    // Probe the space once so every worker can build agents without
    // re-deriving it from its own environment.
    let space = make_env().space().clone();
    let run_config = RunConfig {
        sample_budget: spec.budget,
        batch: spec.batch,
        record: spec.record,
        jobs: spec.batch_jobs,
        retry: RetryPolicy::default(),
    };
    Sweep::new(run_config)
        .seeds(spec.scale.seeds())
        .jobs(spec.jobs)
        .run_assignments(kind.name(), &assignments, make_env, |hyper, seed| {
            build_agent(kind, &space, hyper, seed)
        })
}

/// Render sweep summaries as the box-plot-style table the paper's Fig. 4
/// and Fig. 5 panels encode: min / Q1 / median / Q3 / max best reward per
/// agent, plus the relative IQR spread and the winning assignment.
pub fn print_summary_table(title: &str, summaries: &[SweepSummary]) {
    println!("\n=== {title} ===");
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>8}  winning ticket",
        "agent", "min", "q1", "median", "q3", "max", "spread%"
    );
    for s in summaries {
        println!(
            "{:<6} {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>8.1}  {}",
            s.agent,
            s.stats.min,
            s.stats.q1,
            s.stats.median,
            s.stats.q3,
            s.stats.max,
            s.stats.relative_spread() * 100.0,
            s.winning_hyper.summary()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archgym_core::toy::PeakEnv;

    #[test]
    fn scale_parameters_are_ordered() {
        assert!(Scale::Smoke.budget() < Scale::Default.budget());
        assert!(Scale::Default.budget() < Scale::Full.budget());
        assert!(Scale::Smoke.grid_cap() < Scale::Full.grid_cap());
        assert!(Scale::Smoke.seeds().len() <= Scale::Full.seeds().len());
    }

    #[test]
    fn lottery_runs_capped_grid_times_seeds() {
        let spec = LotterySpec::new(Scale::Smoke);
        let result = lottery(AgentKind::Rw, &spec, || {
            Box::new(PeakEnv::new(&[8, 8], vec![3, 5]))
        })
        .unwrap();
        assert_eq!(result.points.len(), 2); // grid cap 2 × 1 seed
        assert_eq!(result.env, "peak");
        assert!(result.summary().stats.max > 0.1);
    }

    #[test]
    fn lottery_is_deterministic_across_job_counts() {
        let run_at = |jobs: usize| {
            lottery(
                AgentKind::Ga,
                &LotterySpec::new(Scale::Smoke).jobs(jobs),
                || Box::new(PeakEnv::new(&[10, 10], vec![6, 2])),
            )
            .unwrap()
        };
        let serial = run_at(1);
        let parallel = run_at(4);
        assert_eq!(serial.points.len(), parallel.points.len());
        for (a, b) in serial.points.iter().zip(&parallel.points) {
            assert_eq!(a.hyper, b.hyper);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.result.best_reward, b.result.best_reward);
            assert_eq!(a.result.best_action, b.result.best_action);
            assert_eq!(a.result.samples_used, b.result.samples_used);
        }
    }

    #[test]
    fn lottery_is_deterministic_across_batch_job_counts() {
        let run_at = |batch_jobs: usize| {
            lottery(
                AgentKind::Ga,
                &LotterySpec::new(Scale::Smoke)
                    .jobs(1)
                    .batch_jobs(batch_jobs),
                || Box::new(PeakEnv::new(&[10, 10], vec![6, 2])),
            )
            .unwrap()
        };
        let serial = run_at(1);
        let pooled = run_at(4);
        assert_eq!(serial.points.len(), pooled.points.len());
        for (a, b) in serial.points.iter().zip(&pooled.points) {
            assert_eq!(a.result.best_reward, b.result.best_reward);
            assert_eq!(a.result.best_action, b.result.best_action);
            assert_eq!(a.result.reward_history, b.result.reward_history);
        }
    }

    #[test]
    fn lottery_works_for_every_family() {
        let spec = LotterySpec::new(Scale::Smoke);
        for kind in AgentKind::ALL {
            let result = lottery(kind, &spec, || Box::new(PeakEnv::new(&[6, 6], vec![2, 4])))
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert!(!result.points.is_empty());
            assert_eq!(result.agent, kind.name());
        }
    }

    #[test]
    fn print_summary_table_does_not_panic() {
        let spec = LotterySpec::new(Scale::Smoke);
        let result = lottery(AgentKind::Ga, &spec, || {
            Box::new(PeakEnv::new(&[5], vec![1]))
        })
        .unwrap();
        print_summary_table("smoke", &[result.summary()]);
    }
}
