//! Shared experiment plumbing: scales, capped lottery sweeps, tables.

use archgym_agents::factory::{build_agent, default_grid, AgentKind};
use archgym_core::agent::HyperMap;
use archgym_core::env::Environment;
use archgym_core::error::Result;
use archgym_core::search::{RunConfig, SearchLoop};
use archgym_core::sweep::{SweepPoint, SweepResult, SweepSummary};

/// Experiment scale. The paper's studies span 21,600 experiments and
/// ~1.5 billion simulations on a cluster; `Full` approaches that
/// methodology faithfully, `Default` reproduces the *shapes* in minutes
/// on a laptop, `Smoke` keeps CI fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale: tiny budgets, 2 grid points, 1 seed.
    Smoke,
    /// Minutes-scale: the default for `cargo run --release`.
    Default,
    /// Faithful sweeps (expect hours).
    Full,
}

impl Scale {
    /// Parse `--scale=smoke|default|full` from `std::env::args`.
    pub fn from_args() -> Scale {
        for arg in std::env::args() {
            if let Some(value) = arg.strip_prefix("--scale=") {
                return match value {
                    "smoke" => Scale::Smoke,
                    "full" => Scale::Full,
                    _ => Scale::Default,
                };
            }
        }
        Scale::Default
    }

    /// Sample budget per search run.
    pub fn budget(&self) -> u64 {
        match self {
            Scale::Smoke => 128,
            Scale::Default => 1_000,
            Scale::Full => 10_000,
        }
    }

    /// Maximum hyperparameter assignments taken from each agent's grid.
    pub fn grid_cap(&self) -> usize {
        match self {
            Scale::Smoke => 2,
            Scale::Default => 9,
            Scale::Full => 27,
        }
    }

    /// Seeds per assignment.
    pub fn seeds(&self) -> Vec<u64> {
        match self {
            Scale::Smoke => vec![1],
            Scale::Default => vec![1, 2],
            Scale::Full => vec![1, 2, 3, 4],
        }
    }
}

/// What a lottery sweep runs: one environment family at one scale.
#[derive(Debug, Clone, Copy)]
pub struct LotterySpec {
    /// Experiment scale.
    pub scale: Scale,
    /// Sample budget per run (defaults to `scale.budget()`).
    pub budget: u64,
    /// Batch size handed to agents per proposal round.
    pub batch: usize,
    /// Record trajectories (needed by the dataset experiments).
    pub record: bool,
}

impl LotterySpec {
    /// The standard spec for a scale.
    pub fn new(scale: Scale) -> Self {
        LotterySpec {
            scale,
            budget: scale.budget(),
            batch: 16,
            record: false,
        }
    }

    /// Override the budget, builder-style.
    pub fn budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Enable trajectory recording, builder-style.
    pub fn record(mut self, record: bool) -> Self {
        self.record = record;
        self
    }
}

/// Run the hyperparameter lottery for one agent family against an
/// environment factory: every (capped) grid assignment × every seed.
///
/// Runs are distributed over all available cores; because every run is
/// independently seeded, the result is bit-identical to a sequential
/// sweep regardless of thread count.
///
/// # Errors
///
/// Propagates agent-construction failures.
pub fn lottery<F>(kind: AgentKind, spec: &LotterySpec, make_env: F) -> Result<SweepResult>
where
    F: Fn() -> Box<dyn Environment> + Sync,
{
    let grid = default_grid(kind);
    let run_config = RunConfig {
        sample_budget: spec.budget,
        batch: spec.batch,
        record: spec.record,
    };
    let jobs: Vec<(HyperMap, u64)> = grid
        .iter()
        .take(spec.scale.grid_cap())
        .flat_map(|hyper| {
            spec.scale
                .seeds()
                .into_iter()
                .map(move |seed| (hyper.clone(), seed))
        })
        .collect();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(jobs.len().max(1));

    let run_one = |(hyper, seed): &(HyperMap, u64)| -> Result<(String, SweepPoint)> {
        let mut env = make_env();
        let env_name = env.name().to_owned();
        let mut agent = build_agent(kind, env.space(), hyper, *seed)?;
        let result = SearchLoop::new(run_config.clone()).run(&mut agent, &mut env);
        Ok((
            env_name,
            SweepPoint {
                hyper: hyper.clone(),
                seed: *seed,
                result,
            },
        ))
    };

    let outcomes: Vec<Result<(String, SweepPoint)>> = if workers <= 1 {
        jobs.iter().map(run_one).collect()
    } else {
        let mut slots: Vec<Option<Result<(String, SweepPoint)>>> = Vec::new();
        slots.resize_with(jobs.len(), || None);
        std::thread::scope(|scope| {
            for (job_chunk, slot_chunk) in jobs
                .chunks(jobs.len().div_ceil(workers))
                .zip(slots.chunks_mut(jobs.len().div_ceil(workers)))
            {
                let run_one = &run_one;
                scope.spawn(move || {
                    for (job, slot) in job_chunk.iter().zip(slot_chunk.iter_mut()) {
                        *slot = Some(run_one(job));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("worker filled every slot"))
            .collect()
    };

    let mut points = Vec::with_capacity(outcomes.len());
    let mut env_name = String::new();
    for outcome in outcomes {
        let (name, point) = outcome?;
        env_name = name;
        points.push(point);
    }
    Ok(SweepResult {
        agent: kind.name().to_owned(),
        env: env_name,
        points,
    })
}

/// Render sweep summaries as the box-plot-style table the paper's Fig. 4
/// and Fig. 5 panels encode: min / Q1 / median / Q3 / max best reward per
/// agent, plus the relative IQR spread and the winning assignment.
pub fn print_summary_table(title: &str, summaries: &[SweepSummary]) {
    println!("\n=== {title} ===");
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>8}  winning ticket",
        "agent", "min", "q1", "median", "q3", "max", "spread%"
    );
    for s in summaries {
        println!(
            "{:<6} {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>8.1}  {}",
            s.agent,
            s.stats.min,
            s.stats.q1,
            s.stats.median,
            s.stats.q3,
            s.stats.max,
            s.stats.relative_spread() * 100.0,
            s.winning_hyper.summary()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archgym_core::toy::PeakEnv;

    #[test]
    fn scale_parameters_are_ordered() {
        assert!(Scale::Smoke.budget() < Scale::Default.budget());
        assert!(Scale::Default.budget() < Scale::Full.budget());
        assert!(Scale::Smoke.grid_cap() < Scale::Full.grid_cap());
        assert!(Scale::Smoke.seeds().len() <= Scale::Full.seeds().len());
    }

    #[test]
    fn lottery_runs_capped_grid_times_seeds() {
        let spec = LotterySpec::new(Scale::Smoke);
        let result = lottery(AgentKind::Rw, &spec, || {
            Box::new(PeakEnv::new(&[8, 8], vec![3, 5]))
        })
        .unwrap();
        assert_eq!(result.points.len(), 2); // grid cap 2 × 1 seed
        assert_eq!(result.env, "peak");
        assert!(result.summary().stats.max > 0.1);
    }

    #[test]
    fn lottery_works_for_every_family() {
        let spec = LotterySpec::new(Scale::Smoke);
        for kind in AgentKind::ALL {
            let result = lottery(kind, &spec, || Box::new(PeakEnv::new(&[6, 6], vec![2, 4])))
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert!(!result.points.is_empty());
            assert_eq!(result.agent, kind.name());
        }
    }

    #[test]
    fn print_summary_table_does_not_panic() {
        let spec = LotterySpec::new(Scale::Smoke);
        let result = lottery(AgentKind::Ga, &spec, || {
            Box::new(PeakEnv::new(&[5], vec![1]))
        })
        .unwrap();
        print_summary_table("smoke", &[result.summary()]);
    }
}
