//! **Fig. 12** — (a) the speedup of the ML-based proxy cost model over
//! the simulator, and (b) the proxy RMSE table for the energy, power and
//! latency models, single-source vs diverse training data.
//!
//! The paper reports a ~2,000× speedup over the cycle-accurate DRAMSys
//! (a SystemC simulator); our transaction-level substitute is itself much
//! faster than DRAMSys, so the measured ratio is the honest equivalent on
//! this substrate — the qualitative claim (orders of magnitude) is what
//! transfers.

use crate::fig10::{collect_pool, uniform_test_set};
use crate::harness::Scale;
use archgym_core::env::Environment;
use archgym_core::error::Result;
use archgym_core::seeded_rng;
use archgym_dram::{DramEnv, DramWorkload, Objective};
use archgym_proxy::forest::ForestConfig;
use archgym_proxy::pipeline::{train_proxy_fixed, DatasetTiers, ProxyModel};
use std::time::Instant;

/// Metric rows of the Fig. 12(b) table.
pub const METRICS: [(&str, usize); 3] = [
    ("latency", archgym_dram::env::metric::LATENCY),
    ("power", archgym_dram::env::metric::POWER),
    ("energy", archgym_dram::env::metric::ENERGY),
];

/// One row of the RMSE table.
#[derive(Debug, Clone)]
pub struct RmseRow {
    /// Metric name.
    pub metric: &'static str,
    /// Single-source proxy RMSE (the paper's 0.4 / 0.61 / 0.567 column).
    pub single_rmse: f64,
    /// Diverse proxy RMSE (the paper's 2.8e-4 / 1.91e-3 / 4.15e-2 column).
    pub diverse_rmse: f64,
}

/// The study output.
#[derive(Debug, Clone)]
pub struct Fig12Result {
    /// Simulator seconds per evaluation (default trace length).
    pub simulator_s_per_eval: f64,
    /// Simulator seconds per evaluation on a 16× longer trace — the
    /// simulator cost scales with trace length, the proxy's does not,
    /// which is how the paper's ~2000× arises against cycle-accurate
    /// DRAMSys on production-length traces.
    pub simulator_s_per_eval_long: f64,
    /// Proxy seconds per evaluation.
    pub proxy_s_per_eval: f64,
    /// The speedup ratio at the default trace length (Fig. 12(a)).
    pub speedup: f64,
    /// The speedup ratio at the 16× trace length.
    pub speedup_long: f64,
    /// The RMSE table (Fig. 12(b)).
    pub rmse_rows: Vec<RmseRow>,
}

/// Measure the per-evaluation wall-clock of simulator vs proxy; returns
/// `(sim_s, sim_long_s, proxy_s)` where the second simulator measurement
/// uses a 16× longer trace (fewer evals, same per-eval normalization).
pub fn measure_speedup(proxy: &ProxyModel, evals: usize) -> (f64, f64, f64) {
    use archgym_dram::TraceConfig;
    let mut env = DramEnv::new(DramWorkload::Random, Objective::low_power(1.0));
    let mut rng = seeded_rng(0x5EED);
    let actions: Vec<_> = (0..evals).map(|_| env.space().sample(&mut rng)).collect();

    let t0 = Instant::now();
    let mut sink = 0.0;
    for action in &actions {
        sink += env.step(action).reward;
    }
    let sim_s = t0.elapsed().as_secs_f64() / evals as f64;

    let long_cfg = TraceConfig {
        length: TraceConfig::default().length * 16,
        ..TraceConfig::default()
    };
    let mut long_env =
        DramEnv::with_trace_config(DramWorkload::Random, Objective::low_power(1.0), &long_cfg);
    let long_evals = (evals / 8).max(4);
    let t1 = Instant::now();
    for action in actions.iter().take(long_evals) {
        sink += long_env.step(action).reward;
    }
    let sim_long_s = t1.elapsed().as_secs_f64() / long_evals as f64;

    let t2 = Instant::now();
    for action in &actions {
        sink += proxy.predict(action.as_slice());
    }
    let proxy_s = t2.elapsed().as_secs_f64() / evals as f64;
    std::hint::black_box(sink);
    (sim_s, sim_long_s, proxy_s)
}

/// Run the study, collecting the exploration pool over `jobs` worker
/// threads (`0` = every available core).
///
/// # Errors
///
/// Propagates dataset-collection and training failures.
pub fn run(scale: Scale, jobs: usize) -> Result<Fig12Result> {
    let pool = collect_pool(scale, jobs)?;
    let size = match scale {
        Scale::Smoke => 256,
        Scale::Default => 2_000,
        Scale::Full => 10_000,
    };
    let mut rng = seeded_rng(0xF12);
    let tiers = DatasetTiers::build(&pool, "aco", &[size], &mut rng)?;
    let (_, single, diverse) = &tiers.tiers[0];
    let test = uniform_test_set(scale, 0x12E5);
    let config = ForestConfig::default();

    let mut rmse_rows = Vec::new();
    let mut speed_proxy = None;
    for (name, metric) in METRICS {
        let p_single = train_proxy_fixed(single, metric, &config, 9)?;
        let p_diverse = train_proxy_fixed(diverse, metric, &config, 9)?;
        rmse_rows.push(RmseRow {
            metric: name,
            single_rmse: p_single.report(&test)?.rmse,
            diverse_rmse: p_diverse.report(&test)?.rmse,
        });
        if name == "power" {
            speed_proxy = Some(p_diverse);
        }
    }

    let evals = match scale {
        Scale::Smoke => 64,
        Scale::Default => 256,
        Scale::Full => 1_024,
    };
    let (sim_s, sim_long_s, proxy_s) =
        measure_speedup(speed_proxy.as_ref().expect("power proxy"), evals);
    Ok(Fig12Result {
        simulator_s_per_eval: sim_s,
        simulator_s_per_eval_long: sim_long_s,
        proxy_s_per_eval: proxy_s,
        speedup: sim_s / proxy_s.max(1e-12),
        speedup_long: sim_long_s / proxy_s.max(1e-12),
        rmse_rows,
    })
}

/// Print the study.
pub fn print(result: &Fig12Result) {
    println!("\n=== Fig. 12(a) — proxy cost model speedup over the simulator ===");
    println!(
        "simulator {:>12.3e} s/eval | proxy {:>12.3e} s/eval | speedup {:>10.0}×",
        result.simulator_s_per_eval, result.proxy_s_per_eval, result.speedup
    );
    println!(
        "16× trace {:>12.3e} s/eval | proxy {:>12.3e} s/eval | speedup {:>10.0}× \
         (simulator cost scales with trace length; the proxy's does not)",
        result.simulator_s_per_eval_long, result.proxy_s_per_eval, result.speedup_long
    );
    println!("\n=== Fig. 12(b) — proxy RMSE, single-source vs diverse ===");
    println!("{:<10} {:>16} {:>16}", "model", "single-source", "diverse");
    for row in &result.rmse_rows {
        println!(
            "{:<10} {:>16.5} {:>16.5}",
            row.metric, row.single_rmse, row.diverse_rmse
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_study_measures_speedup_and_rmse() {
        let result = run(Scale::Smoke, 0).unwrap();
        assert_eq!(result.rmse_rows.len(), 3);
        for row in &result.rmse_rows {
            assert!(row.single_rmse.is_finite() && row.single_rmse >= 0.0);
            assert!(row.diverse_rmse.is_finite() && row.diverse_rmse >= 0.0);
        }
        // The proxy must be several times faster than even this
        // transaction-level simulator (the paper quotes ~2000× against
        // cycle-accurate DRAMSys). The floor was 10× before the
        // structure-of-arrays engine made the simulator ~2× faster;
        // it now measures 11–16× on a quiet host, so 5× leaves
        // headroom for shared-host noise without masking a real
        // proxy regression.
        assert!(
            result.speedup > 5.0,
            "proxy speedup only {:.1}×",
            result.speedup
        );
        assert!(
            result.speedup_long > result.speedup * 2.0,
            "longer traces should widen the gap: {:.1}× vs {:.1}×",
            result.speedup_long,
            result.speedup
        );
        print(&result);
    }
}
