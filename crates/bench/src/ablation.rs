//! Per-hyperparameter ablations: vary one knob at a time while holding
//! the rest at defaults, for each agent family, on a fixed DRAM problem.
//!
//! Where Fig. 4 sweeps the *joint* grid and reports the spread, this
//! harness isolates how sensitive each algorithm is to each individual
//! knob — the per-axis view behind the design choices DESIGN.md calls
//! out (acquisition function for BO, mutation rate for GA, learning rate
//! for RL, evaporation for ACO, temperature for SA).

use crate::harness::Scale;
use archgym_agents::factory::{build_agent, default_grid, AgentKind};
use archgym_core::agent::{HyperMap, HyperValue};
use archgym_core::env::Environment;
use archgym_core::error::Result;
use archgym_core::search::{RunConfig, SearchLoop};
use archgym_dram::{DramEnv, DramWorkload, Objective};
use std::collections::BTreeMap;

/// One axis of one agent's ablation: the knob's values and the best
/// reward achieved at each (mean over seeds).
#[derive(Debug, Clone)]
pub struct AxisAblation {
    /// Agent family.
    pub agent: &'static str,
    /// The hyperparameter being varied.
    pub axis: String,
    /// `(value, mean best reward)` in grid order.
    pub points: Vec<(String, f64)>,
}

impl AxisAblation {
    /// Ratio of the best point to the worst point — how much this one
    /// knob alone is worth.
    pub fn sensitivity(&self) -> f64 {
        let best = self.points.iter().map(|(_, r)| *r).fold(f64::MIN, f64::max);
        let worst = self.points.iter().map(|(_, r)| *r).fold(f64::MAX, f64::min);
        if worst.abs() < f64::EPSILON {
            f64::INFINITY
        } else {
            best / worst
        }
    }
}

/// Collect the per-axis value lists from an agent's default grid.
fn axes_of(kind: AgentKind) -> BTreeMap<String, Vec<HyperValue>> {
    let grid = default_grid(kind);
    let mut axes: BTreeMap<String, Vec<HyperValue>> = BTreeMap::new();
    for assignment in grid.iter() {
        for (key, value) in assignment.iter() {
            let values = axes.entry(key.to_owned()).or_default();
            if !values.contains(value) {
                values.push(value.clone());
            }
        }
    }
    axes
}

/// Run the ablation study.
///
/// # Errors
///
/// Propagates agent-construction failures.
pub fn run(scale: Scale) -> Result<Vec<AxisAblation>> {
    let budget = match scale {
        Scale::Smoke => 128,
        Scale::Default => 1_000,
        Scale::Full => 5_000,
    };
    let seeds: &[u64] = match scale {
        Scale::Smoke => &[1],
        Scale::Default => &[1, 2, 3],
        Scale::Full => &[1, 2, 3, 4, 5],
    };
    let kinds: &[AgentKind] = match scale {
        Scale::Smoke => &[AgentKind::Ga, AgentKind::Sa],
        _ => &AgentKind::EXTENDED,
    };
    let mut out = Vec::new();
    for &kind in kinds {
        for (axis, values) in axes_of(kind) {
            let mut points = Vec::new();
            for value in values {
                let mut total = 0.0;
                for &seed in seeds {
                    let mut env = DramEnv::new(DramWorkload::Cloud1, Objective::low_power(1.0));
                    let hyper = HyperMap::new().with(&axis, value.clone());
                    let mut agent = build_agent(kind, env.space(), &hyper, seed)?;
                    let result = SearchLoop::new(RunConfig::with_budget(budget).record(false))
                        .run(&mut agent, &mut env);
                    total += result.best_reward;
                }
                points.push((value.to_string(), total / seeds.len() as f64));
            }
            out.push(AxisAblation {
                agent: kind.name(),
                axis,
                points,
            });
        }
    }
    Ok(out)
}

/// Print the ablation table.
pub fn print(results: &[AxisAblation]) {
    println!("\n=== Ablation — one knob at a time, DRAM cloud-1, 1 W target ===");
    println!(
        "{:<6} {:<16} {:>12}  per-value mean best reward",
        "agent", "axis", "sensitivity×"
    );
    for r in results {
        let values = r
            .points
            .iter()
            .map(|(v, reward)| format!("{v}→{reward:.1}"))
            .collect::<Vec<_>>()
            .join("  ");
        println!(
            "{:<6} {:<16} {:>12.2}  {values}",
            r.agent,
            r.axis,
            r.sensitivity()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_ablation_covers_each_axis_once() {
        let results = run(Scale::Smoke).unwrap();
        // GA has 3 axes, SA has 2.
        assert_eq!(results.len(), 5);
        for r in &results {
            assert!(r.points.len() >= 3, "{}:{} too few points", r.agent, r.axis);
            assert!(r.sensitivity() >= 1.0);
        }
        print(&results);
    }

    #[test]
    fn axes_match_the_default_grids() {
        let axes = axes_of(AgentKind::Bo);
        assert!(axes.contains_key("acquisition"));
        assert!(axes.contains_key("length_scale"));
        assert_eq!(axes["acquisition"].len(), 3);
    }
}
