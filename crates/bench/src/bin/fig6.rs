//! Regenerate the paper's fig6. Pass `--scale=smoke|default|full`.

use archgym_bench::harness::Scale;

fn main() {
    let scale = Scale::from_args();
    eprintln!("running fig6 at {scale:?} scale...");
    let result = archgym_bench::fig6::run(scale).expect("experiment failed");
    archgym_bench::fig6::print(&result);
}
