//! Per-hyperparameter ablation study. Pass `--scale=smoke|default|full`.

use archgym_bench::harness::Scale;

fn main() {
    let scale = Scale::from_args();
    eprintln!("running ablation at {scale:?} scale...");
    let result = archgym_bench::ablation::run(scale).expect("experiment failed");
    archgym_bench::ablation::print(&result);
}
