//! Regenerate the paper's fig8. Pass `--scale=smoke|default|full`.

use archgym_bench::harness::Scale;

fn main() {
    let scale = Scale::from_args();
    eprintln!("running fig8 at {scale:?} scale...");
    let result = archgym_bench::fig8::run(scale).expect("experiment failed");
    archgym_bench::fig8::print(&result);
}
