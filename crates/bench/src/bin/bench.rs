//! Workspace performance benchmarks. Usage:
//!
//! ```text
//! bench perf [--quick] [--jobs=N] [--out=PATH]
//! ```
//!
//! `perf` times simulate-only, sweep-serial, sweep-parallel, and
//! cached-sweep scenarios and writes the report to `BENCH_perf.json`
//! (override with `--out=`). `--quick` selects the CI smoke sizes;
//! `--jobs=N` sets the parallel scenario's worker count (0 = all
//! cores, the default).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(subcommand) = args.first() else {
        eprintln!("usage: bench perf [--quick] [--jobs=N] [--out=PATH]");
        return ExitCode::FAILURE;
    };
    if subcommand != "perf" {
        eprintln!("unknown subcommand `{subcommand}` (expected `perf`)");
        return ExitCode::FAILURE;
    }

    let quick = args.iter().any(|a| a == "--quick");
    let jobs = args
        .iter()
        .find_map(|a| a.strip_prefix("--jobs="))
        .map_or(0, |v| v.parse().expect("--jobs expects an integer"));
    let out = args
        .iter()
        .find_map(|a| a.strip_prefix("--out="))
        .unwrap_or("BENCH_perf.json")
        .to_owned();

    eprintln!("running bench perf (quick={quick}, jobs={jobs}; 0 = all cores)...");
    let report = archgym_bench::perf::run(quick, jobs).expect("bench perf failed");
    archgym_bench::perf::print(&report);
    std::fs::write(&out, report.to_json()).expect("failed to write report");
    println!("wrote {out}");
    ExitCode::SUCCESS
}
