//! Workspace performance benchmarks. Usage:
//!
//! ```text
//! bench perf [--quick] [--jobs=N] [--out=PATH] [--rev=SHA] [--date=YYYY-MM-DD] [--gate=PATH]
//! bench delta --baseline=PATH --current=PATH
//! ```
//!
//! `perf` times simulate-only (indexed and linear-scan schedulers),
//! batched-run (serial vs pooled), telemetry (recorder off vs on),
//! sweep-serial, sweep-parallel, cached-sweep, and daemon-load
//! scenarios, then **appends** the report to the history array in
//! `BENCH_perf.json` (override with `--out=`). `--quick` selects the
//! CI smoke sizes; `--jobs=N` sets the parallel scenario's worker
//! count (0 = all cores, the default). `--rev=`/`--date=` stamp the
//! entry so the history reads as a trajectory. `--gate=PATH` compares
//! the fresh numbers against the most recent entry in PATH with 30%
//! tolerance — and holds the live recorder to at most 5% overhead
//! over the no-op path — exiting nonzero on a regression.
//!
//! `delta` prints a markdown table comparing the newest entry of two
//! history files scenario by scenario (for CI step summaries).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(subcommand) = args.first() else {
        eprintln!("usage: bench perf [--quick] [--jobs=N] [--out=PATH] [--rev=SHA] [--date=DATE] [--gate=PATH]");
        eprintln!("       bench delta --baseline=PATH --current=PATH");
        return ExitCode::FAILURE;
    };
    if subcommand == "delta" {
        let flag = |prefix: &str| args.iter().find_map(|a| a.strip_prefix(prefix));
        let (Some(baseline), Some(current)) = (flag("--baseline="), flag("--current=")) else {
            eprintln!("usage: bench delta --baseline=PATH --current=PATH");
            return ExitCode::FAILURE;
        };
        let baseline = std::fs::read_to_string(baseline).expect("failed to read baseline history");
        let current = std::fs::read_to_string(current).expect("failed to read current history");
        print!("{}", archgym_bench::perf::delta_table(&baseline, &current));
        return ExitCode::SUCCESS;
    }
    if subcommand != "perf" {
        eprintln!("unknown subcommand `{subcommand}` (expected `perf` or `delta`)");
        return ExitCode::FAILURE;
    }

    let quick = args.iter().any(|a| a == "--quick");
    let jobs = args
        .iter()
        .find_map(|a| a.strip_prefix("--jobs="))
        .map_or(0, |v| v.parse().expect("--jobs expects an integer"));
    let flag = |prefix: &str| args.iter().find_map(|a| a.strip_prefix(prefix));
    let out = flag("--out=").unwrap_or("BENCH_perf.json").to_owned();

    eprintln!("running bench perf (quick={quick}, jobs={jobs}; 0 = all cores)...");
    let mut report = archgym_bench::perf::run(quick, jobs).expect("bench perf failed");
    if let Some(rev) = flag("--rev=") {
        report.rev = rev.to_owned();
    }
    if let Some(date) = flag("--date=") {
        report.date = date.to_owned();
    }
    archgym_bench::perf::print(&report);

    if let Some(gate_path) = flag("--gate=") {
        let baseline = std::fs::read_to_string(gate_path).expect("failed to read gate baseline");
        let failures = archgym_bench::perf::gate(&report, &baseline, 0.3);
        if !failures.is_empty() {
            for failure in &failures {
                eprintln!("perf regression: {failure}");
            }
            return ExitCode::FAILURE;
        }
        println!("perf gate passed against {gate_path} (30% tolerance)");
    }

    let existing = std::fs::read_to_string(&out).unwrap_or_default();
    let history = archgym_bench::perf::append_history(&existing, &report.to_json());
    std::fs::write(&out, history).expect("failed to write report");
    println!("appended run to {out}");
    ExitCode::SUCCESS
}
