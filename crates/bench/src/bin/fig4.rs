//! Regenerate the paper's fig4. Pass `--scale=smoke|default|full`.

use archgym_bench::harness::Scale;

fn main() {
    let scale = Scale::from_args();
    eprintln!("running fig4 at {scale:?} scale...");
    let result = archgym_bench::fig4::run(scale).expect("experiment failed");
    archgym_bench::fig4::print(&result);
}
