//! Regenerate the paper's fig12. Pass `--scale=smoke|default|full`.

use archgym_bench::harness::Scale;

fn main() {
    let scale = Scale::from_args();
    eprintln!("running fig12 at {scale:?} scale...");
    let result = archgym_bench::fig12::run(scale).expect("experiment failed");
    archgym_bench::fig12::print(&result);
}
