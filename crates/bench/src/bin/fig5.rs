//! Regenerate the paper's fig5. Pass `--scale=smoke|default|full`.

use archgym_bench::harness::Scale;

fn main() {
    let scale = Scale::from_args();
    eprintln!("running fig5 at {scale:?} scale...");
    let result = archgym_bench::fig5::run(scale).expect("experiment failed");
    archgym_bench::fig5::print(&result);
}
