//! Regenerate the paper's fig5. Pass `--scale=smoke|default|full` and `--jobs=N` (0 = all cores).

use archgym_bench::harness::{jobs_from_args, Scale};

fn main() {
    let scale = Scale::from_args();
    let jobs = jobs_from_args();
    eprintln!("running fig5 at {scale:?} scale ({jobs} jobs; 0 = all cores)...");
    let result = archgym_bench::fig5::run(scale, jobs).expect("experiment failed");
    archgym_bench::fig5::print(&result);
}
