//! Samples-to-target study. Pass `--scale=smoke|default|full`.

use archgym_bench::harness::Scale;

fn main() {
    let scale = Scale::from_args();
    eprintln!("running sample_efficiency at {scale:?} scale...");
    let result = archgym_bench::sample_efficiency::run(scale).expect("experiment failed");
    archgym_bench::sample_efficiency::print(&result);
}
