//! Samples-to-target study. Pass `--scale=smoke|default|full`;
//! `--proxy-only` skips straight to the proxy screening study.

use archgym_bench::harness::Scale;

fn main() {
    let scale = Scale::from_args();
    if !std::env::args().any(|a| a == "--proxy-only") {
        eprintln!("running sample_efficiency at {scale:?} scale...");
        let result = archgym_bench::sample_efficiency::run(scale).expect("experiment failed");
        archgym_bench::sample_efficiency::print(&result);
    }
    eprintln!("running the proxy screening study at {scale:?} scale...");
    let proxy = archgym_bench::sample_efficiency::run_proxy_study(scale).expect("study failed");
    archgym_bench::sample_efficiency::print_proxy_study(&proxy);
}
