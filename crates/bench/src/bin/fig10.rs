//! Regenerate the paper's fig10. Pass `--scale=smoke|default|full`.

use archgym_bench::harness::Scale;

fn main() {
    let scale = Scale::from_args();
    eprintln!("running fig10 at {scale:?} scale...");
    let result = archgym_bench::fig10::run(scale).expect("experiment failed");
    archgym_bench::fig10::print(&result);
}
