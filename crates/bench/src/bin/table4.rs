//! Regenerate the paper's table4. Pass `--scale=smoke|default|full` and `--jobs=N` (0 = all cores).

use archgym_bench::harness::{jobs_from_args, Scale};

fn main() {
    let scale = Scale::from_args();
    let jobs = jobs_from_args();
    eprintln!("running table4 at {scale:?} scale ({jobs} jobs; 0 = all cores)...");
    let result = archgym_bench::table4::run(scale, jobs).expect("experiment failed");
    archgym_bench::table4::print(&result);
}
