//! Regenerate the paper's table4. Pass `--scale=smoke|default|full`.

use archgym_bench::harness::Scale;

fn main() {
    let scale = Scale::from_args();
    eprintln!("running table4 at {scale:?} scale...");
    let result = archgym_bench::table4::run(scale).expect("experiment failed");
    archgym_bench::table4::print(&result);
}
