//! Regenerate the paper's fig7. Pass `--scale=smoke|default|full`.

use archgym_bench::harness::Scale;

fn main() {
    let scale = Scale::from_args();
    eprintln!("running fig7 at {scale:?} scale...");
    let result = archgym_bench::fig7::run(scale).expect("experiment failed");
    archgym_bench::fig7::print(&result);
}
