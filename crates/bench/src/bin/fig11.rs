//! Regenerate the paper's fig11. Pass `--scale=smoke|default|full`.

use archgym_bench::harness::Scale;

fn main() {
    let scale = Scale::from_args();
    eprintln!("running fig11 at {scale:?} scale...");
    let result = archgym_bench::fig11::run(scale).expect("experiment failed");
    archgym_bench::fig11::print(&result);
}
