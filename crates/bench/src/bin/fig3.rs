//! Regenerate the paper's Fig. 3: the four architecture design spaces,
//! their parameters, domains and total cardinalities.

use archgym_core::space::{ParamDomain, ParamSpace};

fn print_space(title: &str, space: &ParamSpace) {
    println!("\n=== Fig. 3 — {title} ===");
    println!("{:<34} {:<44} {:>8}", "Parameter", "Domain", "values");
    for p in space.params() {
        let domain = match p.domain() {
            ParamDomain::Int { min, max, step } => format!("({min}, {max}, {step})"),
            ParamDomain::Pow2 { min, max } => format!("({min}, {max}, 2^x)"),
            ParamDomain::Categorical { choices } => {
                let joined = choices.join(", ");
                if joined.len() > 42 {
                    format!("{}...", &joined[..39])
                } else {
                    joined
                }
            }
        };
        println!(
            "{:<34} {:<44} {:>8}",
            p.name(),
            domain,
            p.domain().cardinality()
        );
    }
    println!("total design points: {:.3e}", space.cardinality());
}

fn main() {
    print_space("(a) DRAM memory controller", &archgym_dram::dram_space());
    print_space(
        "(b) Eyeriss-like accelerator",
        &archgym_accel::accel_space(),
    );
    print_space("(c) system on-chip", &archgym_soc::soc_space());
    let net = archgym_models::vgg16();
    print_space(
        "(d) DNN mapping (VGG16 conv1_2)",
        &archgym_mapping::mapping_space(net.layer("conv1_2").unwrap()),
    );
}
