//! [`AccelEnv`] — the TimeloopGym environment.

use crate::arch::{accel_space, decode_config};
use crate::cost::evaluate_network;
use archgym_core::env::{Environment, Observation, StepResult};
use archgym_core::reward::RewardSpec;
use archgym_core::space::{Action, ParamSpace};
use archgym_models::Network;

/// Observation metric indices for TimeloopGym.
pub mod metric {
    /// End-to-end network latency in milliseconds.
    pub const LATENCY: usize = 0;
    /// Total energy in millijoules.
    pub const ENERGY: usize = 1;
    /// Accelerator area in mm².
    pub const AREA: usize = 2;
}

/// A TimeloopGym optimization objective.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    name: String,
    spec: RewardSpec,
}

impl Objective {
    /// Target an end-to-end latency of `ms`.
    pub fn latency(ms: f64) -> Self {
        Objective {
            name: format!("latency({ms}ms)"),
            spec: RewardSpec::TargetRatio {
                terms: vec![(metric::LATENCY, ms)],
            },
        }
    }

    /// Target a total energy of `mj` millijoules.
    pub fn energy(mj: f64) -> Self {
        Objective {
            name: format!("energy({mj}mJ)"),
            spec: RewardSpec::TargetRatio {
                terms: vec![(metric::ENERGY, mj)],
            },
        }
    }

    /// Target an area budget of `mm2`.
    pub fn area(mm2: f64) -> Self {
        Objective {
            name: format!("area({mm2}mm2)"),
            spec: RewardSpec::TargetRatio {
                terms: vec![(metric::AREA, mm2)],
            },
        }
    }

    /// Jointly target latency and energy.
    pub fn joint(latency_ms: f64, energy_mj: f64) -> Self {
        Objective {
            name: format!("joint({latency_ms}ms,{energy_mj}mJ)"),
            spec: RewardSpec::TargetRatio {
                terms: vec![(metric::LATENCY, latency_ms), (metric::ENERGY, energy_mj)],
            },
        }
    }

    /// The objective's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying reward formulation.
    pub fn spec(&self) -> &RewardSpec {
        &self.spec
    }
}

/// The TimeloopGym environment: one CNN workload + one objective.
///
/// Infeasible designs terminate with `feasible = false` and a negative
/// reward so agents learn to steer away (the observation is zeroed; the
/// paper's Section 1 calls out how such points complicate optimization).
#[derive(Debug, Clone)]
pub struct AccelEnv {
    space: ParamSpace,
    network: Network,
    objective: Objective,
    name: String,
}

impl AccelEnv {
    /// Create an environment evaluating `network` under `objective`.
    pub fn new(network: Network, objective: Objective) -> Self {
        let name = format!("timeloop/{}", network.name());
        AccelEnv {
            space: accel_space(),
            network,
            objective,
            name,
        }
    }

    /// The workload network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The optimization objective.
    pub fn objective(&self) -> &Objective {
        &self.objective
    }
}

impl Environment for AccelEnv {
    fn name(&self) -> &str {
        &self.name
    }

    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn observation_labels(&self) -> Vec<String> {
        vec!["latency_ms".into(), "energy_mj".into(), "area_mm2".into()]
    }

    fn step(&mut self, action: &Action) -> StepResult {
        let config = match decode_config(&self.space, action) {
            Ok(cfg) => cfg,
            Err(_) => {
                return StepResult::infeasible(Observation::new(vec![0.0; 3]), -2.0);
            }
        };
        match evaluate_network(&config, &self.network) {
            Ok(cost) => {
                let observation =
                    Observation::new(vec![cost.latency_ms, cost.energy_mj, cost.area_mm2]);
                let reward = self.objective.spec.reward(&observation);
                StepResult::terminal(observation, reward)
                    .with_info("utilization", cost.mean_utilization)
            }
            Err(_) => StepResult::infeasible(Observation::new(vec![0.0; 3]), -1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archgym_core::agent::RandomWalker;
    use archgym_core::search::{RunConfig, SearchLoop};
    use archgym_core::seeded_rng;

    #[test]
    fn step_reports_three_metrics() {
        let mut env = AccelEnv::new(archgym_models::resnet50(), Objective::latency(5.0));
        let mut rng = seeded_rng(1);
        // Sample until a feasible design appears (most are feasible).
        for _ in 0..100 {
            let action = env.space().sample(&mut rng);
            let result = env.step(&action);
            if result.feasible {
                assert_eq!(result.observation.len(), 3);
                assert!(result.reward > 0.0);
                assert!(result.observation.get(metric::AREA) > 0.0);
                return;
            }
        }
        panic!("no feasible design in 100 samples");
    }

    #[test]
    fn infeasible_designs_are_flagged_with_negative_reward() {
        let mut env = AccelEnv::new(archgym_models::vgg16(), Objective::latency(5.0));
        let mut rng = seeded_rng(2);
        let mut saw_infeasible = false;
        for _ in 0..300 {
            let action = env.space().sample(&mut rng);
            let result = env.step(&action);
            if !result.feasible {
                assert!(result.reward < 0.0);
                saw_infeasible = true;
                break;
            }
        }
        assert!(
            saw_infeasible,
            "the accelerator space should contain infeasible points"
        );
    }

    #[test]
    fn deterministic_evaluation() {
        let mut env = AccelEnv::new(archgym_models::alexnet(), Objective::energy(10.0));
        let mut rng = seeded_rng(3);
        let action = env.space().sample(&mut rng);
        assert_eq!(env.step(&action), env.step(&action));
    }

    #[test]
    fn random_search_finds_designs_near_latency_target() {
        let mut env = AccelEnv::new(archgym_models::resnet18(), Objective::latency(6.0));
        let mut agent = RandomWalker::new(env.space().clone(), 7);
        let result = SearchLoop::new(RunConfig::with_budget(60)).run(&mut agent, &mut env);
        assert!(
            result.best_reward > 1.0,
            "best reward {} too low",
            result.best_reward
        );
    }

    #[test]
    fn objective_names() {
        assert_eq!(Objective::latency(5.0).name(), "latency(5ms)");
        assert_eq!(Objective::area(20.0).name(), "area(20mm2)");
        assert!(Objective::joint(5.0, 10.0).name().starts_with("joint"));
    }

    #[test]
    fn env_name_includes_network() {
        let env = AccelEnv::new(archgym_models::resnet50(), Objective::latency(5.0));
        assert_eq!(env.name(), "timeloop/resnet50");
    }
}
