//! The Eyeriss-like architecture template and its Fig. 3(b) design space.

use archgym_core::error::{ArchGymError, Result};
use archgym_core::space::{Action, ParamSpace};
use serde::{Deserialize, Serialize};

/// Memory implementation class for a buffer (Fig. 3(b)'s `*_Class`).
///
/// Classes trade access energy against area density and scalability:
/// register files are cheap to read but do not scale; plain SRAM is dense
/// but costlier per access; the two "smartbuffer" variants sit in between
/// (they model Buffet-style composed storage as in Timeloop's library).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BufferClass {
    /// Flip-flop register file.
    Regfile,
    /// SRAM with smartbuffer control logic.
    SmartbufferSram,
    /// Register file with smartbuffer control logic.
    SmartbufferRf,
    /// Plain SRAM macro.
    Sram,
}

impl BufferClass {
    /// All classes in the paper's order.
    pub const ALL: [BufferClass; 4] = [
        BufferClass::Regfile,
        BufferClass::SmartbufferSram,
        BufferClass::SmartbufferRf,
        BufferClass::Sram,
    ];

    /// Energy of one access in picojoules for a buffer of `bytes`
    /// capacity. Grows with the square root of capacity (bitline/wordline
    /// scaling), from a per-class base cost.
    pub fn access_energy_pj(&self, bytes: u64) -> f64 {
        let (base, slope) = match self {
            BufferClass::Regfile => (0.03, 0.60),
            BufferClass::SmartbufferRf => (0.05, 0.40),
            BufferClass::SmartbufferSram => (0.09, 0.18),
            BufferClass::Sram => (0.12, 0.10),
        };
        base + slope * (bytes as f64 / 1024.0).sqrt() * 0.1
    }

    /// Silicon area in mm² for a buffer of `bytes` capacity (28 nm-ish
    /// per-bit densities).
    pub fn area_mm2(&self, bytes: u64) -> f64 {
        let per_bit = match self {
            BufferClass::Regfile => 1.8e-6,
            BufferClass::SmartbufferRf => 1.2e-6,
            BufferClass::SmartbufferSram => 5.0e-7,
            BufferClass::Sram => 3.0e-7,
        };
        bytes as f64 * 8.0 * per_bit
    }

    /// Register files stop being implementable beyond a few KiB; designs
    /// that ask for more are infeasible (one of the paper's "numerous
    /// infeasible design points").
    pub fn max_feasible_bytes(&self) -> u64 {
        match self {
            BufferClass::Regfile => 32 << 10,
            BufferClass::SmartbufferRf => 64 << 10,
            BufferClass::SmartbufferSram | BufferClass::Sram => u64::MAX,
        }
    }
}

/// One buffer's configuration: entries, entry width, implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BufferConfig {
    /// Number of entries.
    pub depth: u64,
    /// Bytes per entry.
    pub block: u64,
    /// Implementation class.
    pub class: BufferClass,
}

impl BufferConfig {
    /// Total capacity in bytes.
    pub fn bytes(&self) -> u64 {
        self.depth * self.block
    }
}

/// Full accelerator configuration — the 15 parameters of Fig. 3(b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AccelConfig {
    /// Total number of processing elements.
    pub num_pes: u64,
    /// PE-array width (columns); height is `num_pes / x_dim`.
    pub pe_array_x: u64,
    /// Per-PE input-feature scratchpad.
    pub ifm_spad: BufferConfig,
    /// Per-PE weight scratchpad.
    pub weights_spad: BufferConfig,
    /// Per-PE partial-sum scratchpad.
    pub psum_spad: BufferConfig,
    /// Shared global buffer (capacity further multiplied by `gb_banks`).
    pub global_buffer: BufferConfig,
    /// Number of global-buffer banks.
    pub gb_banks: u64,
}

impl AccelConfig {
    /// PE-array height (rows), rounding down.
    pub fn pe_array_y(&self) -> u64 {
        self.num_pes / self.pe_array_x
    }

    /// Global-buffer capacity in bytes across all banks.
    pub fn gb_bytes(&self) -> u64 {
        self.global_buffer.bytes() * self.gb_banks
    }
}

/// Build the 15-dimensional Eyeriss-like accelerator space of Fig. 3(b).
///
/// ```
/// let space = archgym_accel::accel_space();
/// assert_eq!(space.len(), 15);
/// assert!(space.cardinality() > 1e10);
/// ```
pub fn accel_space() -> ParamSpace {
    const CLASSES: [&str; 4] = ["regfile", "smartbuffer_SRAM", "smartbuffer_RF", "SRAM"];
    ParamSpace::builder()
        .int("NumPEs", 14, 336, 14)
        .categorical("PEArray_XDim", ["2", "7", "14"])
        .pow2("IFMSPad_MemoryDepth", 1024, 65536)
        .pow2("IFMSPad_BlockSize", 1, 4)
        .categorical("IFMSPad_Class", CLASSES)
        .pow2("WeightsSPad_MemoryDepth", 1024, 65536)
        .pow2("WeightsSPad_BlockSize", 1, 4)
        .categorical("WeightsSPad_Class", CLASSES)
        .pow2("PSum_MemoryDepth", 1024, 65536)
        .pow2("PSum_BlockSize", 1, 4)
        .categorical("PSum_Class", CLASSES)
        .pow2("SharedGlobalBuffer_MemoryDepth", 1024, 65536)
        .pow2("SharedGlobalBuffer_BlockSize", 1, 4)
        .pow2("SharedGlobalBuffer_NumBanks", 16, 128)
        .categorical("SharedGlobalBuffer_Class", CLASSES)
        .build()
        .expect("static space definition is valid")
}

fn class_from_index(idx: usize) -> BufferClass {
    // Index order matches the categorical choice order in `accel_space`.
    match idx {
        0 => BufferClass::Regfile,
        1 => BufferClass::SmartbufferSram,
        2 => BufferClass::SmartbufferRf,
        _ => BufferClass::Sram,
    }
}

/// Decode a TimeloopGym action into an [`AccelConfig`].
///
/// # Errors
///
/// Returns [`ArchGymError::InvalidAction`] if the action does not fit the
/// space.
pub fn decode_config(space: &ParamSpace, action: &Action) -> Result<AccelConfig> {
    space.validate(action)?;
    let int = |name: &str| -> u64 {
        space
            .decode_one(action, name)
            .as_int()
            .expect("numeric dimension") as u64
    };
    let idx = |name: &str| action.index(space.dim_of(name).expect("known dimension"));
    let buffer = |prefix: &str| BufferConfig {
        depth: int(&format!("{prefix}_MemoryDepth")),
        block: int(&format!("{prefix}_BlockSize")),
        class: class_from_index(idx(&format!("{prefix}_Class"))),
    };
    let pe_x: u64 = space
        .decode_one(action, "PEArray_XDim")
        .as_cat()
        .expect("categorical dimension")
        .parse()
        .map_err(|_| ArchGymError::InvalidAction("bad PEArray_XDim".into()))?;
    Ok(AccelConfig {
        num_pes: int("NumPEs"),
        pe_array_x: pe_x,
        ifm_spad: buffer("IFMSPad"),
        weights_spad: buffer("WeightsSPad"),
        psum_spad: buffer("PSum"),
        global_buffer: BufferConfig {
            depth: int("SharedGlobalBuffer_MemoryDepth"),
            block: int("SharedGlobalBuffer_BlockSize"),
            class: class_from_index(idx("SharedGlobalBuffer_Class")),
        },
        gb_banks: int("SharedGlobalBuffer_NumBanks"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use archgym_core::seeded_rng;

    #[test]
    fn space_matches_fig3b() {
        let space = accel_space();
        assert_eq!(space.len(), 15);
        let cards = space.cardinalities();
        assert_eq!(cards, vec![24, 3, 7, 3, 4, 7, 3, 4, 7, 3, 4, 7, 3, 4, 4]);
        // 24·3 · (7·3·4)³ · (7·3·4·4) ≈ 1.4e10 — the exact product of the
        // printed Fig. 3(b) domains (the paper reports "2e14", which needs
        // finer steps than the printed tuples; we implement what's printed).
        let expected = 24.0 * 3.0 * (84.0f64).powi(3) * 336.0;
        assert_eq!(space.cardinality(), expected);
        assert!(space.cardinality() > 1e10);
    }

    #[test]
    fn decode_roundtrip_of_sampled_actions() {
        let space = accel_space();
        let mut rng = seeded_rng(9);
        for _ in 0..50 {
            let action = space.sample(&mut rng);
            let cfg = decode_config(&space, &action).unwrap();
            assert!(cfg.num_pes >= 14 && cfg.num_pes <= 336);
            assert!(cfg.num_pes.is_multiple_of(14));
            assert!([2, 7, 14].contains(&cfg.pe_array_x));
            assert!(cfg.ifm_spad.depth.is_power_of_two());
            assert!(cfg.gb_banks >= 16 && cfg.gb_banks <= 128);
        }
    }

    #[test]
    fn decode_rejects_malformed_action() {
        let space = accel_space();
        assert!(decode_config(&space, &Action::new(vec![0; 3])).is_err());
    }

    #[test]
    fn buffer_class_energy_ordering_at_small_sizes() {
        // At register-file-friendly sizes the regfile is cheapest.
        let small = 1024;
        let rf = BufferClass::Regfile.access_energy_pj(small);
        let sram = BufferClass::Sram.access_energy_pj(small);
        assert!(rf < sram);
        // At large sizes SRAM wins.
        let large = 256 << 10;
        let rf_l = BufferClass::Regfile.access_energy_pj(large);
        let sram_l = BufferClass::Sram.access_energy_pj(large);
        assert!(sram_l < rf_l);
    }

    #[test]
    fn buffer_class_area_density_ordering() {
        let bytes = 64 << 10;
        assert!(BufferClass::Sram.area_mm2(bytes) < BufferClass::SmartbufferSram.area_mm2(bytes));
        assert!(
            BufferClass::SmartbufferSram.area_mm2(bytes) < BufferClass::Regfile.area_mm2(bytes)
        );
    }

    #[test]
    fn regfile_scaling_limit() {
        assert!(BufferClass::Regfile.max_feasible_bytes() < BufferClass::Sram.max_feasible_bytes());
        assert_eq!(BufferClass::Regfile.max_feasible_bytes(), 32 << 10);
    }

    #[test]
    fn config_derived_quantities() {
        let cfg = AccelConfig {
            num_pes: 168,
            pe_array_x: 14,
            ifm_spad: BufferConfig {
                depth: 1024,
                block: 1,
                class: BufferClass::Regfile,
            },
            weights_spad: BufferConfig {
                depth: 2048,
                block: 2,
                class: BufferClass::Sram,
            },
            psum_spad: BufferConfig {
                depth: 1024,
                block: 4,
                class: BufferClass::SmartbufferRf,
            },
            global_buffer: BufferConfig {
                depth: 16384,
                block: 4,
                class: BufferClass::Sram,
            },
            gb_banks: 32,
        };
        assert_eq!(cfg.pe_array_y(), 12);
        assert_eq!(cfg.weights_spad.bytes(), 4096);
        assert_eq!(cfg.gb_bytes(), 16384 * 4 * 32);
    }
}
