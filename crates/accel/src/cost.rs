//! The analytical latency / energy / area model.
//!
//! Modeling approach (a transaction-free analogue of Timeloop's
//! micro-architecture evaluation):
//!
//! * **Spatial mapping** — output channels map across PE-array rows,
//!   output-row pixels across columns (Eyeriss-flavored). Utilization
//!   accounts for array-edge waste via ceiling division on both axes.
//! * **Latency** — a roofline: `max(compute cycles, DRAM cycles)` where
//!   compute is `MACs / (PEs · utilization)` and DRAM traffic is the
//!   layer's working set inflated by a *refetch factor* when it exceeds
//!   the global buffer.
//! * **Energy** — MAC energy + per-PE scratchpad accesses (amortized by
//!   block width) + global-buffer accesses (inflated when scratchpads are
//!   undersized) + DRAM bytes.
//! * **Area** — PEs plus per-PE scratchpads (×PEs!) plus the banked
//!   global buffer.
//! * **Feasibility** — scratchpads must hold their minimum tiles, the
//!   global buffer a row-tile of the working set, and register files must
//!   not exceed implementable capacity.

use crate::arch::AccelConfig;
use archgym_models::{ConvLayer, Network};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Clock frequency of the PE array in GHz.
pub const CLOCK_GHZ: f64 = 1.0;
/// Sustainable DRAM bandwidth in bytes per accelerator cycle.
pub const DRAM_BYTES_PER_CYCLE: f64 = 16.0;
/// DRAM access energy in pJ per byte.
pub const DRAM_PJ_PER_BYTE: f64 = 50.0;
/// Energy of one multiply-accumulate in pJ.
pub const MAC_PJ: f64 = 0.4;
/// Area of one PE (MAC + control, no scratchpads) in mm².
pub const PE_AREA_MM2: f64 = 0.012;
/// Bytes per activation/weight element.
pub const WORD_BYTES: u64 = 1;
/// Bytes per partial-sum element.
pub const PSUM_BYTES: u64 = 4;

/// Why a design point is infeasible for a layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Infeasibility {
    /// A register-file-class buffer exceeds implementable capacity.
    BufferClassOverflow {
        /// Which buffer (`"ifm"`, `"weights"`, `"psum"`, `"gb"`).
        buffer: &'static str,
    },
    /// A scratchpad cannot hold its minimum tile for this layer.
    SpadTooSmall {
        /// Which scratchpad.
        buffer: &'static str,
        /// Bytes required.
        required: u64,
        /// Bytes available.
        available: u64,
    },
    /// The global buffer cannot hold one row-tile of the working set.
    GlobalBufferTooSmall {
        /// Bytes required.
        required: u64,
        /// Bytes available.
        available: u64,
    },
}

impl fmt::Display for Infeasibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Infeasibility::BufferClassOverflow { buffer } => {
                write!(f, "{buffer} buffer class cannot be built at this capacity")
            }
            Infeasibility::SpadTooSmall {
                buffer,
                required,
                available,
            } => write!(
                f,
                "{buffer} scratchpad too small: needs {required} B, has {available} B"
            ),
            Infeasibility::GlobalBufferTooSmall {
                required,
                available,
            } => write!(
                f,
                "global buffer too small: needs {required} B, has {available} B"
            ),
        }
    }
}

/// Per-layer cost breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerCost {
    /// Multiply-accumulates executed.
    pub macs: u64,
    /// Latency in cycles (roofline).
    pub latency_cycles: f64,
    /// Energy in nanojoules.
    pub energy_nj: f64,
    /// DRAM traffic in bytes.
    pub dram_bytes: f64,
    /// PE-array utilization in `[0, 1]`.
    pub utilization: f64,
    /// Whether the layer was compute-bound (vs DRAM-bound).
    pub compute_bound: bool,
}

/// Whole-network cost summary — the TimeloopGym observation source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkCost {
    /// End-to-end latency in milliseconds.
    pub latency_ms: f64,
    /// Total energy in millijoules.
    pub energy_mj: f64,
    /// Accelerator area in mm².
    pub area_mm2: f64,
    /// MAC-weighted mean utilization.
    pub mean_utilization: f64,
}

fn check_feasible(cfg: &AccelConfig, layer: &ConvLayer) -> Result<(), Infeasibility> {
    // Class scalability limits.
    let class_checks = [
        ("ifm", cfg.ifm_spad),
        ("weights", cfg.weights_spad),
        ("psum", cfg.psum_spad),
    ];
    for (name, buf) in class_checks {
        if buf.bytes() > buf.class.max_feasible_bytes() {
            return Err(Infeasibility::BufferClassOverflow { buffer: name });
        }
    }
    if cfg.gb_bytes() > cfg.global_buffer.class.max_feasible_bytes() {
        return Err(Infeasibility::BufferClassOverflow { buffer: "gb" });
    }

    // Minimum tiles. A weights scratchpad must hold one filter's worth of
    // taps over (up to) 64 input channels; the input scratchpad a matching
    // window; the psum scratchpad one output-row segment per PE.
    let c_tile = layer.c.min(64);
    let weights_req = layer.r * layer.s * c_tile * WORD_BYTES;
    if cfg.weights_spad.bytes() < weights_req {
        return Err(Infeasibility::SpadTooSmall {
            buffer: "weights",
            required: weights_req,
            available: cfg.weights_spad.bytes(),
        });
    }
    let ifm_req = layer.r * layer.s * c_tile * WORD_BYTES;
    if cfg.ifm_spad.bytes() < ifm_req {
        return Err(Infeasibility::SpadTooSmall {
            buffer: "ifm",
            required: ifm_req,
            available: cfg.ifm_spad.bytes(),
        });
    }
    let x_per_col = layer.x.div_ceil(cfg.pe_array_x);
    let psum_req = x_per_col * PSUM_BYTES;
    if cfg.psum_spad.bytes() < psum_req {
        return Err(Infeasibility::SpadTooSmall {
            buffer: "psum",
            required: psum_req,
            available: cfg.psum_spad.bytes(),
        });
    }

    // The global buffer must hold a row-tile of the working set: the
    // filter slice, `r` input rows, and one output row.
    let x_in = (layer.x - 1) * layer.stride + layer.s;
    let gb_req =
        (layer.r * layer.s * layer.c + layer.r * x_in * layer.c + layer.x * layer.k.min(64))
            * WORD_BYTES;
    if cfg.gb_bytes() < gb_req {
        return Err(Infeasibility::GlobalBufferTooSmall {
            required: gb_req,
            available: cfg.gb_bytes(),
        });
    }
    Ok(())
}

/// Dataflow (spatial reuse strategy) of the PE array.
///
/// The Fig. 3(b) space fixes an Eyeriss-like row-stationary dataflow; the
/// other two classic strategies are provided as library variants so a
/// user can study the reuse trade-off (Chen et al.'s taxonomy): each
/// dataflow pins one operand in place and streams the others, shifting
/// which scratchpad absorbs the per-MAC traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataflow {
    /// Eyeriss-style: filter rows pinned, balanced traffic (the default).
    RowStationary,
    /// Weights pinned in the PE; input/psum traffic rises.
    WeightStationary,
    /// Partial sums pinned in the PE; input/weight traffic rises.
    OutputStationary,
}

impl Dataflow {
    /// All variants.
    pub const ALL: [Dataflow; 3] = [
        Dataflow::RowStationary,
        Dataflow::WeightStationary,
        Dataflow::OutputStationary,
    ];

    /// Per-MAC scratchpad access multipliers `(ifm, weights, psum)`.
    /// Row-stationary is the calibration baseline `(1, 1, 2)`.
    fn access_factors(&self) -> (f64, f64, f64) {
        match self {
            Dataflow::RowStationary => (1.0, 1.0, 2.0),
            Dataflow::WeightStationary => (1.2, 0.3, 2.2),
            Dataflow::OutputStationary => (1.2, 1.2, 0.4),
        }
    }
}

/// Evaluate one layer on a configuration (row-stationary dataflow).
///
/// # Errors
///
/// Returns the first [`Infeasibility`] violated by the design.
pub fn layer_cost(cfg: &AccelConfig, layer: &ConvLayer) -> Result<LayerCost, Infeasibility> {
    layer_cost_with_dataflow(cfg, layer, Dataflow::RowStationary)
}

/// Evaluate one layer under an explicit [`Dataflow`].
///
/// # Errors
///
/// Returns the first [`Infeasibility`] violated by the design.
pub fn layer_cost_with_dataflow(
    cfg: &AccelConfig,
    layer: &ConvLayer,
    dataflow: Dataflow,
) -> Result<LayerCost, Infeasibility> {
    check_feasible(cfg, layer)?;

    let macs = layer.macs();
    let pe_x = cfg.pe_array_x;
    let pe_y = cfg.pe_array_y().max(1);

    // Spatial mapping: output channels over rows, output columns over
    // array columns; ceiling waste on both axes.
    let used_x = pe_x.min(layer.x);
    let used_y = pe_y.min(layer.k);
    let eff_x = layer.x as f64 / (layer.x.div_ceil(used_x) * used_x) as f64;
    let eff_y = layer.k as f64 / (layer.k.div_ceil(used_y) * used_y) as f64;
    let occupancy = (used_x * used_y) as f64 / cfg.num_pes as f64;
    let utilization = (eff_x * eff_y * occupancy).clamp(0.0, 1.0);

    let compute_cycles = macs as f64 / (cfg.num_pes as f64 * utilization.max(1e-6));

    // DRAM traffic: working set inflated when it exceeds the global
    // buffer (tiled refetch).
    let working_set = ((layer.weight_elems() + layer.input_elems()) * WORD_BYTES
        + layer.output_elems() * WORD_BYTES) as f64;
    let refetch = (working_set / cfg.gb_bytes() as f64)
        .powf(0.75)
        .clamp(1.0, 24.0);
    let dram_bytes = working_set * refetch;
    let dram_cycles = dram_bytes / DRAM_BYTES_PER_CYCLE;

    let latency_cycles = compute_cycles.max(dram_cycles);
    let compute_bound = compute_cycles >= dram_cycles;

    // Energy: MACs + scratchpad traffic + global-buffer traffic + DRAM.
    let macs_f = macs as f64;
    let (ifm_rate, w_rate, psum_rate) = dataflow.access_factors();
    let spad_pj = macs_f
        * (ifm_rate * cfg.ifm_spad.class.access_energy_pj(cfg.ifm_spad.bytes())
            / cfg.ifm_spad.block as f64
            + w_rate
                * cfg
                    .weights_spad
                    .class
                    .access_energy_pj(cfg.weights_spad.bytes())
                / cfg.weights_spad.block as f64
            + psum_rate * cfg.psum_spad.class.access_energy_pj(cfg.psum_spad.bytes())
                / cfg.psum_spad.block as f64);
    // Scratchpad misses spill to the global buffer: the smaller the spads
    // relative to the layer's per-PE footprint, the more GB traffic.
    let per_pe_footprint = (layer.r * layer.s * layer.c.min(64) * WORD_BYTES) as f64;
    let spad_total = (cfg.ifm_spad.bytes() + cfg.weights_spad.bytes()) as f64;
    let gb_rate = 0.05 * (per_pe_footprint / spad_total).clamp(1.0, 8.0);
    let gb_pj = macs_f
        * gb_rate
        * cfg.global_buffer.class.access_energy_pj(cfg.gb_bytes())
        * (1.0 + 1.0 / cfg.gb_banks as f64); // banking shortens bitlines
    let dram_pj = dram_bytes * DRAM_PJ_PER_BYTE;
    let energy_nj = (macs_f * MAC_PJ + spad_pj + gb_pj + dram_pj) / 1e3;

    Ok(LayerCost {
        macs,
        latency_cycles,
        energy_nj,
        dram_bytes,
        utilization,
        compute_bound,
    })
}

/// Accelerator area for a configuration, in mm².
pub fn area_mm2(cfg: &AccelConfig) -> f64 {
    let spads = cfg.ifm_spad.class.area_mm2(cfg.ifm_spad.bytes())
        + cfg.weights_spad.class.area_mm2(cfg.weights_spad.bytes())
        + cfg.psum_spad.class.area_mm2(cfg.psum_spad.bytes());
    let gb = cfg.global_buffer.class.area_mm2(cfg.gb_bytes()) * 1.05; // bank overhead
    cfg.num_pes as f64 * (PE_AREA_MM2 + spads) + gb
}

/// Evaluate a whole network (honoring layer repeats).
///
/// # Errors
///
/// Returns the first layer infeasibility encountered.
pub fn evaluate_network(
    cfg: &AccelConfig,
    network: &Network,
) -> Result<NetworkCost, Infeasibility> {
    let mut cycles = 0.0;
    let mut energy_nj = 0.0;
    let mut util_weighted = 0.0;
    let mut total_macs = 0u64;
    for layer in network.layers() {
        let cost = layer_cost(cfg, layer)?;
        let n = layer.repeat as f64;
        cycles += cost.latency_cycles * n;
        energy_nj += cost.energy_nj * n;
        util_weighted += cost.utilization * (cost.macs as f64) * n;
        total_macs += cost.macs * layer.repeat;
    }
    Ok(NetworkCost {
        latency_ms: cycles / (CLOCK_GHZ * 1e9) * 1e3,
        energy_mj: energy_nj / 1e6,
        area_mm2: area_mm2(cfg),
        mean_utilization: util_weighted / total_macs as f64,
    })
}

/// Per-layer cost table for a network on a configuration — the detailed
/// report an architect reads after the search converges.
///
/// # Errors
///
/// Returns the first layer infeasibility encountered.
pub fn network_breakdown(
    cfg: &AccelConfig,
    network: &Network,
) -> Result<Vec<(String, LayerCost)>, Infeasibility> {
    network
        .layers()
        .iter()
        .map(|layer| Ok((layer.name.clone(), layer_cost(cfg, layer)?)))
        .collect()
}

/// Which layers of a network are the latency bottleneck: layer names
/// sorted by total latency contribution (descending), with their share of
/// the end-to-end cycles.
///
/// # Errors
///
/// Returns the first layer infeasibility encountered.
pub fn latency_hotspots(
    cfg: &AccelConfig,
    network: &Network,
) -> Result<Vec<(String, f64)>, Infeasibility> {
    let mut contributions: Vec<(String, f64)> = network
        .layers()
        .iter()
        .map(|layer| {
            let cost = layer_cost(cfg, layer)?;
            Ok((
                layer.name.clone(),
                cost.latency_cycles * layer.repeat as f64,
            ))
        })
        .collect::<Result<_, Infeasibility>>()?;
    let total: f64 = contributions.iter().map(|(_, c)| c).sum();
    for (_, c) in &mut contributions {
        *c /= total;
    }
    contributions.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite shares"));
    Ok(contributions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{BufferClass, BufferConfig};

    fn eyeriss_like() -> AccelConfig {
        AccelConfig {
            num_pes: 168,
            pe_array_x: 14,
            ifm_spad: BufferConfig {
                depth: 2048,
                block: 1,
                class: BufferClass::Regfile,
            },
            weights_spad: BufferConfig {
                depth: 4096,
                block: 1,
                class: BufferClass::SmartbufferRf,
            },
            psum_spad: BufferConfig {
                depth: 1024,
                block: 4,
                class: BufferClass::Regfile,
            },
            global_buffer: BufferConfig {
                depth: 16384,
                block: 4,
                class: BufferClass::Sram,
            },
            gb_banks: 32,
        }
    }

    #[test]
    fn eyeriss_like_config_is_feasible_on_standard_nets() {
        let cfg = eyeriss_like();
        for net in [archgym_models::alexnet(), archgym_models::resnet50()] {
            let cost = evaluate_network(&cfg, &net)
                .unwrap_or_else(|e| panic!("{} infeasible: {e}", net.name()));
            assert!(cost.latency_ms > 0.0 && cost.latency_ms < 1e3);
            assert!(cost.energy_mj > 0.0);
            assert!(cost.area_mm2 > 1.0 && cost.area_mm2 < 100.0);
            assert!((0.0..=1.0).contains(&cost.mean_utilization));
        }
    }

    #[test]
    fn more_pes_reduce_compute_bound_latency() {
        let mut small = eyeriss_like();
        small.num_pes = 28;
        let mut large = eyeriss_like();
        large.num_pes = 336;
        let net = archgym_models::resnet50();
        let c_small = evaluate_network(&small, &net).unwrap();
        let c_large = evaluate_network(&large, &net).unwrap();
        assert!(
            c_large.latency_ms < c_small.latency_ms,
            "large {} vs small {}",
            c_large.latency_ms,
            c_small.latency_ms
        );
        assert!(c_large.area_mm2 > c_small.area_mm2);
    }

    #[test]
    fn bigger_global_buffer_cuts_dram_traffic() {
        let net = archgym_models::vgg16();
        let layer = &net.layers()[5]; // 256-ch conv at 56×56
        let mut small = eyeriss_like();
        small.global_buffer.depth = 1024;
        small.gb_banks = 16;
        let mut large = eyeriss_like();
        large.global_buffer.depth = 65536;
        large.gb_banks = 128;
        let c_small = layer_cost(&small, layer).unwrap();
        let c_large = layer_cost(&large, layer).unwrap();
        assert!(c_large.dram_bytes < c_small.dram_bytes);
    }

    #[test]
    fn oversized_regfile_is_infeasible() {
        let mut cfg = eyeriss_like();
        cfg.ifm_spad = BufferConfig {
            depth: 65536,
            block: 4,
            class: BufferClass::Regfile,
        };
        let err = layer_cost(&cfg, &archgym_models::alexnet().layers()[0]).unwrap_err();
        assert!(matches!(
            err,
            Infeasibility::BufferClassOverflow { buffer: "ifm" }
        ));
    }

    #[test]
    fn undersized_weights_spad_is_infeasible_on_wide_layers() {
        let mut cfg = eyeriss_like();
        cfg.weights_spad = BufferConfig {
            depth: 1024,
            block: 1,
            class: BufferClass::Regfile,
        };
        // stage3_b3x3 of ResNet-50: 3·3·min(256,64) = 2304 B < needed? No:
        // 3·3·64 = 576 < 1024 — feasible. Use a 7×7 layer over 64 chans:
        // conv1 needs 7·7·3 = 147 — too small. Use VGG conv4_2: 3·3·64 =
        // 576. We need r·s·min(c,64) > 1024 → r=s=5, c≥41: AlexNet conv2
        // (5×5, c=96) → 5·5·64 = 1600 B.
        let net = archgym_models::alexnet();
        let conv2 = &net.layers()[1];
        let err = layer_cost(&cfg, conv2).unwrap_err();
        assert!(
            matches!(
                err,
                Infeasibility::SpadTooSmall {
                    buffer: "weights",
                    ..
                }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn small_global_buffer_infeasible_on_wide_layers() {
        let mut cfg = eyeriss_like();
        cfg.global_buffer = BufferConfig {
            depth: 1024,
            block: 1,
            class: BufferClass::Sram,
        };
        cfg.gb_banks = 16;
        // VGG conv4_1 row tile: 3·3·256 + 3·30·256 + 28·64 ≈ 27 KB > 16 KB.
        let net = archgym_models::vgg16();
        let layer = net.layer("conv4_1").unwrap();
        let err = layer_cost(&cfg, layer).unwrap_err();
        assert!(
            matches!(err, Infeasibility::GlobalBufferTooSmall { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn utilization_degrades_when_array_exceeds_layer_parallelism() {
        let cfg = eyeriss_like(); // 14 × 12 array
                                  // A 7×7 output layer with few channels cannot fill the array.
        let net = archgym_models::resnet18();
        let tiny = net.layer("stage4").unwrap();
        let wide = net.layer("stage1").unwrap();
        let c_tiny = layer_cost(&cfg, tiny).unwrap();
        let c_wide = layer_cost(&cfg, wide).unwrap();
        assert!(c_tiny.utilization < 1.0 + 1e-12);
        assert!(c_wide.utilization >= c_tiny.utilization * 0.9);
    }

    #[test]
    fn energy_scales_with_macs() {
        let cfg = eyeriss_like();
        let small = archgym_models::resnet18().layer("stage4").unwrap().clone();
        let big = archgym_models::vgg16().layer("conv1_2").unwrap().clone();
        let c_small = layer_cost(&cfg, &small).unwrap();
        let c_big = layer_cost(&cfg, &big).unwrap();
        assert!(big.macs() > 10 * small.macs());
        assert!(c_big.energy_nj > 5.0 * c_small.energy_nj);
    }

    #[test]
    fn dataflows_shift_energy_not_latency() {
        let cfg = eyeriss_like();
        let net = archgym_models::resnet18();
        let layer = net.layer("stage1").unwrap();
        let rs = layer_cost_with_dataflow(&cfg, layer, Dataflow::RowStationary).unwrap();
        let ws = layer_cost_with_dataflow(&cfg, layer, Dataflow::WeightStationary).unwrap();
        let os = layer_cost_with_dataflow(&cfg, layer, Dataflow::OutputStationary).unwrap();
        // The dataflow changes scratchpad traffic (energy), not the
        // roofline latency.
        assert_eq!(rs.latency_cycles, ws.latency_cycles);
        assert_eq!(rs.latency_cycles, os.latency_cycles);
        // Output-stationary kills the psum round trips — on a psum-heavy
        // regfile configuration that's a real saving.
        assert!(os.energy_nj < rs.energy_nj);
        assert_ne!(ws.energy_nj, rs.energy_nj);
        // The default entry point is exactly row-stationary (golden
        // stability).
        assert_eq!(layer_cost(&cfg, layer).unwrap(), rs);
    }

    #[test]
    fn breakdown_sums_to_network_cost() {
        let cfg = eyeriss_like();
        let net = archgym_models::resnet50();
        let rows = network_breakdown(&cfg, &net).unwrap();
        assert_eq!(rows.len(), net.layers().len());
        let summed_cycles: f64 = rows
            .iter()
            .zip(net.layers())
            .map(|((_, c), l)| c.latency_cycles * l.repeat as f64)
            .sum();
        let total = evaluate_network(&cfg, &net).unwrap();
        let total_cycles = total.latency_ms / 1e3 * CLOCK_GHZ * 1e9;
        assert!((summed_cycles - total_cycles).abs() / total_cycles < 1e-9);
    }

    #[test]
    fn hotspots_are_normalized_and_sorted() {
        let cfg = eyeriss_like();
        let net = archgym_models::vgg16();
        let hotspots = latency_hotspots(&cfg, &net).unwrap();
        let sum: f64 = hotspots.iter().map(|(_, s)| s).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(hotspots.windows(2).all(|w| w[0].1 >= w[1].1));
        // VGG's early big-feature-map layers dominate on this template.
        assert!(hotspots[0].1 > 0.1);
    }

    #[test]
    fn infeasibility_display_is_informative() {
        let err = Infeasibility::SpadTooSmall {
            buffer: "weights",
            required: 2048,
            available: 1024,
        };
        let text = err.to_string();
        assert!(text.contains("weights") && text.contains("2048"));
    }
}
