//! # archgym-accel — TimeloopGym
//!
//! An Eyeriss-like DNN-accelerator cost model environment for ArchGym,
//! standing in for the Timeloop evaluator used by the paper.
//!
//! The architecture template mirrors Fig. 3(b): a 2-D PE array, three
//! per-PE scratchpads (input features, weights, partial sums), and a
//! banked shared global buffer, each with configurable depth, block size
//! and memory class. The analytical model computes latency (roofline of
//! compute and DRAM bandwidth), energy (MACs + buffer + DRAM accesses)
//! and area — the `<latency, energy, area>` observation of Table 3 — and
//! flags infeasible designs (undersized scratchpads, register files
//! scaled beyond plausibility), reproducing the rugged landscape the
//! paper highlights.
//!
//! # Example
//!
//! ```
//! use archgym_core::prelude::*;
//! use archgym_accel::{AccelEnv, Objective};
//!
//! let mut env = AccelEnv::new(archgym_models::resnet50(), Objective::latency(5.0));
//! let mut rng = archgym_core::seeded_rng(3);
//! let action = env.space().sample(&mut rng);
//! let result = env.step(&action);
//! assert_eq!(result.observation.len(), 3); // <latency, energy, area>
//! ```

pub mod arch;
pub mod cost;
pub mod env;

pub use arch::{accel_space, decode_config, AccelConfig, BufferClass, BufferConfig};
pub use cost::{
    evaluate_network, latency_hotspots, layer_cost, layer_cost_with_dataflow, network_breakdown,
    Dataflow, Infeasibility, LayerCost, NetworkCost,
};
pub use env::{AccelEnv, Objective};
