//! The daemon's results store: one state directory owning every job's
//! spec, run journal, and final outcome.
//!
//! Layout, keyed by job ID:
//!
//! ```text
//! <state_dir>/job-3.job        accepted submission (tenant, name, spec)
//! <state_dir>/job-3.jsonl      write-ahead run journal (search jobs)
//! <state_dir>/job-3.jsonl.snap latest journal snapshot
//! <state_dir>/job-3-<agent>.jsonl   per-agent journals (compare jobs)
//! <state_dir>/job-3.done       terminal outcome (state, best reward)
//! ```
//!
//! A `.job` file without a matching `.done` is an in-flight job: on
//! startup the daemon re-admits it and the run journal replays it
//! bit-identically to an uninterrupted run. Both files are written via
//! temp-file + rename so a crash never leaves a torn record; each write
//! uses a unique tmp name (`<file>.tmp.<pid>.<seq>`) so concurrent
//! atomic writes for one job can never tear each other.
//!
//! Durability and verification: record bodies are CRC32-framed
//! ([`archgym_core::storeio`]) and verified on load. A `.job` or
//! `.done` file that fails verification is quarantined to
//! `<file>.corrupt` instead of wedging the daemon: a corrupt spec is
//! skipped (its ID is still never reused), and a corrupt outcome
//! demotes the job to in-flight so the journal re-derives the result.
//! All file I/O goes through the [`StoreIo`] seam, so crash paths are
//! testable with injected faults, and tmp files are fsynced before the
//! rename under any [`Durability`] other than `none`.

use crate::protocol::JobStatus;
use archgym_core::codec::{parse_json, push_json_str, Json};
use archgym_core::error::{ArchGymError, Result};
use archgym_core::jobs::{JobId, JobSpec, JobState};
use archgym_core::journal::corrupt_path;
use archgym_core::storeio::{frame_line, real_io, unframe_line, Durability, FrameError, StoreIo};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn bad(msg: String) -> ArchGymError {
    ArchGymError::InvalidConfig(msg)
}

/// An accepted submission as persisted in a `.job` file.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistedJob {
    /// The assigned job ID.
    pub id: JobId,
    /// Submitting tenant.
    pub tenant: String,
    /// Optional unique job name.
    pub name: Option<String>,
    /// What to run.
    pub spec: JobSpec,
}

/// A terminal outcome as persisted in a `.done` file.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Terminal state (`done`, `failed`, `cancelled`, or `timed-out`).
    pub state: JobState,
    /// Final best reward, if any batch settled.
    pub best_reward: Option<f64>,
    /// Total simulator samples consumed.
    pub samples: u64,
    /// Failure message for `failed` jobs.
    pub error: Option<String>,
}

impl JobOutcome {
    /// Combine with the identity half into a wire-ready status.
    pub fn status(&self, job: &PersistedJob) -> JobStatus {
        JobStatus {
            job: job.id,
            tenant: job.tenant.clone(),
            state: self.state,
            best_reward: self.best_reward,
            samples: self.samples,
            budget: job.spec.budget,
            error: self.error.clone(),
        }
    }
}

/// Filesystem-backed job store rooted at one state directory.
#[derive(Debug)]
pub struct JobStore {
    dir: PathBuf,
    io: Arc<dyn StoreIo>,
    durability: Durability,
    tmp_seq: AtomicU64,
}

impl JobStore {
    /// Open (creating if needed) the store at `dir` on the real
    /// filesystem with the daemon's default durability (`batch`).
    pub fn open(dir: impl Into<PathBuf>) -> Result<JobStore> {
        Self::open_with(dir, real_io(), Durability::Batch)
    }

    /// Open (creating if needed) the store at `dir`, routing file I/O
    /// through `io` and fsyncing tmp files before rename under any
    /// `durability` other than [`Durability::None`].
    pub fn open_with(
        dir: impl Into<PathBuf>,
        io: Arc<dyn StoreIo>,
        durability: Durability,
    ) -> Result<JobStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(JobStore {
            dir,
            io,
            durability,
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The I/O seam this store writes through.
    pub fn io(&self) -> &Arc<dyn StoreIo> {
        &self.io
    }

    /// The store's fsync policy.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// The run-journal path for a search job.
    pub fn journal_path(&self, id: JobId) -> PathBuf {
        self.dir.join(format!("{id}.jsonl"))
    }

    /// The run-journal path for one roster entry of a compare job.
    pub fn agent_journal_path(&self, id: JobId, agent: &str) -> PathBuf {
        self.dir.join(format!("{id}-{agent}.jsonl"))
    }

    /// The journal prefix for a race job. The racing scheduler derives
    /// one file per `(lane, rung)` slice from it
    /// (`{id}-race-l{lane:03}-r{rung:02}.jsonl`), all flat in the store
    /// directory so the store needs no subdirectory management.
    pub fn race_journal_prefix(&self, id: JobId) -> PathBuf {
        self.dir.join(format!("{id}-race"))
    }

    fn job_path(&self, id: JobId) -> PathBuf {
        self.dir.join(format!("{id}.job"))
    }

    fn done_path(&self, id: JobId) -> PathBuf {
        self.dir.join(format!("{id}.done"))
    }

    /// Atomic tmp+rename write with a per-write unique tmp name. The
    /// old `path.with_extension("tmp")` scheme mapped `job-3.job` and
    /// `job-3.jsonl` to the same `job-3.tmp`, so two concurrent atomic
    /// writes for one job could tear each other; suffixing the full
    /// file name with pid and a store-wide sequence number makes every
    /// in-flight tmp file distinct.
    fn write_atomic(&self, path: &Path, body: &str) -> Result<()> {
        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
        tmp_name.push(format!(".tmp.{}.{seq}", std::process::id()));
        let tmp = path.with_file_name(tmp_name);
        let framed = format!("{}\n", frame_line(body.trim_end_matches('\n')));
        let sync = self.durability != Durability::None;
        self.io
            .write_file(&tmp, framed.as_bytes(), sync)
            .map_err(|e| bad(format!("cannot write {}: {e}", tmp.display())))?;
        self.io
            .rename(&tmp, path)
            .map_err(|e| bad(format!("cannot publish {}: {e}", path.display())))
    }

    /// Persist an accepted submission (atomic).
    pub fn record_submitted(&self, job: &PersistedJob) -> Result<()> {
        let mut body = String::from("{\"id\":");
        push_json_str(&mut body, &job.id.to_string());
        body.push_str(",\"tenant\":");
        push_json_str(&mut body, &job.tenant);
        body.push_str(",\"name\":");
        match &job.name {
            Some(name) => push_json_str(&mut body, name),
            None => body.push_str("null"),
        }
        body.push_str(",\"spec\":");
        body.push_str(&job.spec.encode());
        body.push('}');
        self.write_atomic(&self.job_path(job.id), &body)
    }

    /// Persist a terminal outcome (atomic).
    pub fn record_outcome(&self, id: JobId, outcome: &JobOutcome) -> Result<()> {
        let mut body = String::from("{\"state\":");
        push_json_str(&mut body, outcome.state.name());
        body.push_str(",\"best_reward\":");
        match outcome.best_reward {
            Some(v) => archgym_core::codec::push_json_f64(&mut body, v),
            None => body.push_str("null"),
        }
        let _ = write!(body, ",\"samples\":{}", outcome.samples);
        body.push_str(",\"error\":");
        match &outcome.error {
            Some(msg) => push_json_str(&mut body, msg),
            None => body.push_str("null"),
        }
        body.push('}');
        self.write_atomic(&self.done_path(id), &body)
    }

    /// Remove every trace of a job that failed admission after its spec
    /// was persisted (best effort).
    pub fn discard(&self, id: JobId) {
        let _ = self.io.remove_file(&self.job_path(id));
        let _ = self.io.remove_file(&self.done_path(id));
    }

    /// Verify and strip a record's checksum frame. Unframed text is
    /// accepted for store files written before framing (the JSON parse
    /// still validates it); a present-but-mismatched checksum is
    /// corruption.
    fn unframe_or_legacy(text: &str) -> Result<&str> {
        let line = text.trim();
        match unframe_line(line) {
            Ok(payload) => Ok(payload),
            Err(FrameError::Unframed) => Ok(line),
            Err(err @ FrameError::Mismatch { .. }) => Err(bad(err.to_string())),
        }
    }

    fn parse_job(text: &str) -> Result<PersistedJob> {
        let json = parse_json(Self::unframe_or_legacy(text)?).map_err(bad)?;
        let id_text = json.field("id").and_then(Json::as_str).map_err(bad)?;
        let id = JobId::parse(id_text)
            .ok_or_else(|| bad(format!("malformed job id '{id_text}' in store")))?;
        let name = match json.field("name") {
            Ok(Json::Null) | Err(_) => None,
            Ok(value) => Some(value.as_str().map_err(bad)?.to_owned()),
        };
        Ok(PersistedJob {
            id,
            tenant: json
                .field("tenant")
                .and_then(Json::as_str)
                .map_err(bad)?
                .to_owned(),
            name,
            spec: JobSpec::from_json(json.field("spec").map_err(bad)?)?,
        })
    }

    fn parse_outcome(text: &str) -> Result<JobOutcome> {
        let json = parse_json(Self::unframe_or_legacy(text)?).map_err(bad)?;
        let best_reward = match json.field("best_reward") {
            Ok(Json::Null) | Err(_) => None,
            Ok(value) => Some(value.as_f64().map_err(bad)?),
        };
        let error = match json.field("error") {
            Ok(Json::Null) | Err(_) => None,
            Ok(value) => Some(value.as_str().map_err(bad)?.to_owned()),
        };
        Ok(JobOutcome {
            state: JobState::parse(json.field("state").and_then(Json::as_str).map_err(bad)?)?,
            best_reward,
            samples: json.field("samples").and_then(Json::as_u64).map_err(bad)?,
            error,
        })
    }

    /// Move a record that failed verification aside (best effort) so
    /// the daemon keeps serving the rest of the store.
    fn quarantine(&self, path: &Path, why: &str) {
        let aside = corrupt_path(path);
        match self.io.rename(path, &aside) {
            Ok(()) => eprintln!(
                "archgymd: store record {} corrupt ({why}); quarantined to {}",
                path.display(),
                aside.display()
            ),
            Err(e) => eprintln!(
                "archgymd: store record {} corrupt ({why}); quarantine failed: {e}",
                path.display()
            ),
        }
    }

    /// Load every persisted job with its outcome (if terminal), sorted
    /// by job ID so recovery re-admits in-flight jobs in submit order.
    ///
    /// Verification failures never wedge the daemon: a corrupt `.job`
    /// is quarantined and skipped (its ID stays burned via
    /// [`JobStore::next_id`]); a corrupt `.done` is quarantined and the
    /// job reported as in-flight, so it is re-admitted and its journal
    /// re-derives the outcome bit-identically.
    pub fn load(&self) -> Result<Vec<(PersistedJob, Option<JobOutcome>)>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("job") {
                continue;
            }
            let job = match self
                .io
                .read_to_string(&path)
                .map_err(|e| bad(e.to_string()))
                .and_then(|text| Self::parse_job(&text))
            {
                Ok(job) => job,
                Err(e) => {
                    self.quarantine(&path, &e.to_string());
                    continue;
                }
            };
            let done_path = self.done_path(job.id);
            let outcome = if self.io.exists(&done_path) {
                match self
                    .io
                    .read_to_string(&done_path)
                    .map_err(|e| bad(e.to_string()))
                    .and_then(|text| Self::parse_outcome(&text))
                {
                    Ok(outcome) => Some(outcome),
                    Err(e) => {
                        self.quarantine(&done_path, &e.to_string());
                        None
                    }
                }
            } else {
                None
            };
            out.push((job, outcome));
        }
        out.sort_by_key(|(job, _)| job.id);
        Ok(out)
    }

    /// The next unused job number, so restarted daemons never reuse an
    /// ID. Derived from *file names* (`job-<n>.*`), not parsed records,
    /// so even a job whose spec was quarantined keeps its ID burned —
    /// reusing it would let a new job overwrite the old journal.
    pub fn next_id(&self) -> Result<u64> {
        let mut next = 0;
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if let Some(id) = Self::id_in_file_name(name) {
                next = next.max(id + 1);
            }
        }
        Ok(next)
    }

    fn id_in_file_name(name: &str) -> Option<u64> {
        let rest = name.strip_prefix("job-")?;
        let digits: &str = &rest[..rest.chars().take_while(|c| c.is_ascii_digit()).count()];
        if digits.is_empty() {
            return None;
        }
        digits.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("archgymd-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn jobs_and_outcomes_round_trip_through_disk() {
        let dir = tmp_dir("roundtrip");
        let store = JobStore::open(&dir).unwrap();
        let job = PersistedJob {
            id: JobId(4),
            tenant: "ci".into(),
            name: Some("nightly".into()),
            spec: JobSpec::search("dram/stream", "ga", 500, 9),
        };
        store.record_submitted(&job).unwrap();
        assert_eq!(store.next_id().unwrap(), 5);
        let loaded = store.load().unwrap();
        assert_eq!(loaded, vec![(job.clone(), None)]);

        let outcome = JobOutcome {
            state: JobState::Done,
            best_reward: Some(0.25),
            samples: 500,
            error: None,
        };
        store.record_outcome(job.id, &outcome).unwrap();
        let loaded = store.load().unwrap();
        assert_eq!(loaded, vec![(job, Some(outcome))]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_sorts_by_id_and_discard_removes() {
        let dir = tmp_dir("sorted");
        let store = JobStore::open(&dir).unwrap();
        for id in [7, 2, 5] {
            store
                .record_submitted(&PersistedJob {
                    id: JobId(id),
                    tenant: "t".into(),
                    name: None,
                    spec: JobSpec::search("dram/stream", "rw", 100, id),
                })
                .unwrap();
        }
        let ids: Vec<u64> = store.load().unwrap().iter().map(|(j, _)| j.id.0).collect();
        assert_eq!(ids, vec![2, 5, 7]);
        store.discard(JobId(5));
        let ids: Vec<u64> = store.load().unwrap().iter().map(|(j, _)| j.id.0).collect();
        assert_eq!(ids, vec![2, 7]);
        assert_eq!(store.next_id().unwrap(), 8);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_writes_use_distinct_tmp_names_per_target() {
        // Regression: `path.with_extension("tmp")` collapsed
        // `job-3.job` and `job-3.jsonl` to one `job-3.tmp`, so
        // concurrent atomic writes for a single job could tear each
        // other. Interleave the two write phases explicitly and check
        // both finished files verify.
        let dir = tmp_dir("tmpnames");
        let store = JobStore::open(&dir).unwrap();
        let a = dir.join("job-3.job");
        let b = dir.join("job-3.done");
        let seq_a = store.tmp_seq.load(Ordering::Relaxed);
        store.write_atomic(&a, "{\"which\":\"job\"}").unwrap();
        let seq_b = store.tmp_seq.load(Ordering::Relaxed);
        assert!(seq_b > seq_a, "every write consumes a fresh tmp sequence");
        store.write_atomic(&b, "{\"which\":\"done\"}").unwrap();
        // No stale tmp files and both targets hold their own payload.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let text_a = fs::read_to_string(&a).unwrap();
        let text_b = fs::read_to_string(&b).unwrap();
        assert!(unframe_line(text_a.trim()).unwrap().contains("\"job\""));
        assert!(unframe_line(text_b.trim()).unwrap().contains("\"done\""));
        // And many concurrent writers to sibling files never tear.
        let store = Arc::new(store);
        let handles: Vec<_> = (0..8)
            .map(|n| {
                let store = Arc::clone(&store);
                let dir = dir.clone();
                std::thread::spawn(move || {
                    for round in 0..50 {
                        let path = dir.join(format!("job-9.{}", ["job", "done"][n % 2]));
                        store
                            .write_atomic(&path, &format!("{{\"n\":{n},\"round\":{round}}}"))
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for suffix in ["job", "done"] {
            let text = fs::read_to_string(dir.join(format!("job-9.{suffix}"))).unwrap();
            unframe_line(text.trim()).expect("concurrent atomic writes never tear");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_job_is_quarantined_and_its_id_stays_burned() {
        let dir = tmp_dir("quarantine-job");
        let store = JobStore::open(&dir).unwrap();
        for id in [1, 3] {
            store
                .record_submitted(&PersistedJob {
                    id: JobId(id),
                    tenant: "t".into(),
                    name: None,
                    spec: JobSpec::search("dram/stream", "rw", 100, id),
                })
                .unwrap();
        }
        // Flip a byte inside job-3's record.
        let path = dir.join("job-3.job");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        fs::write(&path, &bytes).unwrap();

        let loaded = store.load().unwrap();
        assert_eq!(loaded.len(), 1, "corrupt job skipped, not fatal");
        assert_eq!(loaded[0].0.id, JobId(1));
        assert!(dir.join("job-3.job.corrupt").exists());
        // The quarantined job's ID is still burned: a new submission
        // must not reuse it and overwrite the old journal.
        assert_eq!(store.next_id().unwrap(), 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_outcome_demotes_job_to_in_flight() {
        let dir = tmp_dir("quarantine-done");
        let store = JobStore::open(&dir).unwrap();
        let job = PersistedJob {
            id: JobId(2),
            tenant: "t".into(),
            name: None,
            spec: JobSpec::search("dram/stream", "rw", 100, 2),
        };
        store.record_submitted(&job).unwrap();
        store
            .record_outcome(
                job.id,
                &JobOutcome {
                    state: JobState::Done,
                    best_reward: Some(1.0),
                    samples: 100,
                    error: None,
                },
            )
            .unwrap();
        let path = dir.join("job-2.done");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x02;
        fs::write(&path, &bytes).unwrap();

        let loaded = store.load().unwrap();
        assert_eq!(loaded.len(), 1);
        assert!(
            loaded[0].1.is_none(),
            "corrupt outcome reads as in-flight so the journal re-derives it"
        );
        assert!(dir.join("job-2.done.corrupt").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_unframed_records_still_load() {
        let dir = tmp_dir("legacy");
        let store = JobStore::open(&dir).unwrap();
        // A pre-checksum store record: plain JSON, no frame.
        fs::write(
            dir.join("job-5.job"),
            "{\"id\":\"job-5\",\"tenant\":\"old\",\"name\":null,\"spec\":\
             {\"kind\":\"search\",\"env\":\"dram/stream\",\"objective\":\"\",\
             \"agent\":\"rw\",\"agents\":[],\"budget\":100,\"seed\":5,\
             \"batch\":0,\"eval_jobs\":1,\"sweep_seeds\":3}}\n",
        )
        .unwrap();
        let loaded = store.load().unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].0.tenant, "old");
        assert_eq!(store.next_id().unwrap(), 6);
        let _ = fs::remove_dir_all(&dir);
    }
}
