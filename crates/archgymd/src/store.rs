//! The daemon's results store: one state directory owning every job's
//! spec, run journal, and final outcome.
//!
//! Layout, keyed by job ID:
//!
//! ```text
//! <state_dir>/job-3.job        accepted submission (tenant, name, spec)
//! <state_dir>/job-3.jsonl      write-ahead run journal (search jobs)
//! <state_dir>/job-3.jsonl.snap latest journal snapshot
//! <state_dir>/job-3-<agent>.jsonl   per-agent journals (compare jobs)
//! <state_dir>/job-3.done       terminal outcome (state, best reward)
//! ```
//!
//! A `.job` file without a matching `.done` is an in-flight job: on
//! startup the daemon re-admits it and the run journal replays it
//! bit-identically to an uninterrupted run. Both files are written via
//! temp-file + rename so a crash never leaves a torn record.

use crate::protocol::JobStatus;
use archgym_core::codec::{parse_json, push_json_str, Json};
use archgym_core::error::{ArchGymError, Result};
use archgym_core::jobs::{JobId, JobSpec, JobState};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

fn bad(msg: String) -> ArchGymError {
    ArchGymError::InvalidConfig(msg)
}

/// An accepted submission as persisted in a `.job` file.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistedJob {
    /// The assigned job ID.
    pub id: JobId,
    /// Submitting tenant.
    pub tenant: String,
    /// Optional unique job name.
    pub name: Option<String>,
    /// What to run.
    pub spec: JobSpec,
}

/// A terminal outcome as persisted in a `.done` file.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Terminal state (`done`, `failed`, or `cancelled`).
    pub state: JobState,
    /// Final best reward, if any batch settled.
    pub best_reward: Option<f64>,
    /// Total simulator samples consumed.
    pub samples: u64,
    /// Failure message for `failed` jobs.
    pub error: Option<String>,
}

impl JobOutcome {
    /// Combine with the identity half into a wire-ready status.
    pub fn status(&self, job: &PersistedJob) -> JobStatus {
        JobStatus {
            job: job.id,
            tenant: job.tenant.clone(),
            state: self.state,
            best_reward: self.best_reward,
            samples: self.samples,
            budget: job.spec.budget,
            error: self.error.clone(),
        }
    }
}

/// Filesystem-backed job store rooted at one state directory.
#[derive(Debug)]
pub struct JobStore {
    dir: PathBuf,
}

fn write_atomic(path: &Path, body: &str) -> Result<()> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, body)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

impl JobStore {
    /// Open (creating if needed) the store at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<JobStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(JobStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The run-journal path for a search job.
    pub fn journal_path(&self, id: JobId) -> PathBuf {
        self.dir.join(format!("{id}.jsonl"))
    }

    /// The run-journal path for one roster entry of a compare job.
    pub fn agent_journal_path(&self, id: JobId, agent: &str) -> PathBuf {
        self.dir.join(format!("{id}-{agent}.jsonl"))
    }

    fn job_path(&self, id: JobId) -> PathBuf {
        self.dir.join(format!("{id}.job"))
    }

    fn done_path(&self, id: JobId) -> PathBuf {
        self.dir.join(format!("{id}.done"))
    }

    /// Persist an accepted submission (atomic).
    pub fn record_submitted(&self, job: &PersistedJob) -> Result<()> {
        let mut body = String::from("{\"id\":");
        push_json_str(&mut body, &job.id.to_string());
        body.push_str(",\"tenant\":");
        push_json_str(&mut body, &job.tenant);
        body.push_str(",\"name\":");
        match &job.name {
            Some(name) => push_json_str(&mut body, name),
            None => body.push_str("null"),
        }
        body.push_str(",\"spec\":");
        body.push_str(&job.spec.encode());
        body.push_str("}\n");
        write_atomic(&self.job_path(job.id), &body)
    }

    /// Persist a terminal outcome (atomic).
    pub fn record_outcome(&self, id: JobId, outcome: &JobOutcome) -> Result<()> {
        let mut body = String::from("{\"state\":");
        push_json_str(&mut body, outcome.state.name());
        body.push_str(",\"best_reward\":");
        match outcome.best_reward {
            Some(v) => archgym_core::codec::push_json_f64(&mut body, v),
            None => body.push_str("null"),
        }
        let _ = write!(body, ",\"samples\":{}", outcome.samples);
        body.push_str(",\"error\":");
        match &outcome.error {
            Some(msg) => push_json_str(&mut body, msg),
            None => body.push_str("null"),
        }
        body.push_str("}\n");
        write_atomic(&self.done_path(id), &body)
    }

    /// Remove every trace of a job that failed admission after its spec
    /// was persisted (best effort).
    pub fn discard(&self, id: JobId) {
        let _ = fs::remove_file(self.job_path(id));
        let _ = fs::remove_file(self.done_path(id));
    }

    fn parse_job(text: &str) -> Result<PersistedJob> {
        let json = parse_json(text.trim()).map_err(bad)?;
        let id_text = json.field("id").and_then(Json::as_str).map_err(bad)?;
        let id = JobId::parse(id_text)
            .ok_or_else(|| bad(format!("malformed job id '{id_text}' in store")))?;
        let name = match json.field("name") {
            Ok(Json::Null) | Err(_) => None,
            Ok(value) => Some(value.as_str().map_err(bad)?.to_owned()),
        };
        Ok(PersistedJob {
            id,
            tenant: json
                .field("tenant")
                .and_then(Json::as_str)
                .map_err(bad)?
                .to_owned(),
            name,
            spec: JobSpec::from_json(json.field("spec").map_err(bad)?)?,
        })
    }

    fn parse_outcome(text: &str) -> Result<JobOutcome> {
        let json = parse_json(text.trim()).map_err(bad)?;
        let best_reward = match json.field("best_reward") {
            Ok(Json::Null) | Err(_) => None,
            Ok(value) => Some(value.as_f64().map_err(bad)?),
        };
        let error = match json.field("error") {
            Ok(Json::Null) | Err(_) => None,
            Ok(value) => Some(value.as_str().map_err(bad)?.to_owned()),
        };
        Ok(JobOutcome {
            state: JobState::parse(json.field("state").and_then(Json::as_str).map_err(bad)?)?,
            best_reward,
            samples: json.field("samples").and_then(Json::as_u64).map_err(bad)?,
            error,
        })
    }

    /// Load every persisted job with its outcome (if terminal), sorted
    /// by job ID so recovery re-admits in-flight jobs in submit order.
    pub fn load(&self) -> Result<Vec<(PersistedJob, Option<JobOutcome>)>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("job") {
                continue;
            }
            let job = Self::parse_job(&fs::read_to_string(&path)?)
                .map_err(|e| bad(format!("corrupt store record {}: {e}", path.display())))?;
            let done_path = self.done_path(job.id);
            let outcome = if done_path.exists() {
                Some(
                    Self::parse_outcome(&fs::read_to_string(&done_path)?).map_err(|e| {
                        bad(format!("corrupt outcome {}: {e}", done_path.display()))
                    })?,
                )
            } else {
                None
            };
            out.push((job, outcome));
        }
        out.sort_by_key(|(job, _)| job.id);
        Ok(out)
    }

    /// The next unused job number (max persisted + 1), so restarted
    /// daemons never reuse an ID.
    pub fn next_id(&self) -> Result<u64> {
        Ok(self
            .load()?
            .iter()
            .map(|(job, _)| job.id.0 + 1)
            .max()
            .unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("archgymd-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn jobs_and_outcomes_round_trip_through_disk() {
        let dir = tmp_dir("roundtrip");
        let store = JobStore::open(&dir).unwrap();
        let job = PersistedJob {
            id: JobId(4),
            tenant: "ci".into(),
            name: Some("nightly".into()),
            spec: JobSpec::search("dram/stream", "ga", 500, 9),
        };
        store.record_submitted(&job).unwrap();
        assert_eq!(store.next_id().unwrap(), 5);
        let loaded = store.load().unwrap();
        assert_eq!(loaded, vec![(job.clone(), None)]);

        let outcome = JobOutcome {
            state: JobState::Done,
            best_reward: Some(0.25),
            samples: 500,
            error: None,
        };
        store.record_outcome(job.id, &outcome).unwrap();
        let loaded = store.load().unwrap();
        assert_eq!(loaded, vec![(job, Some(outcome))]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_sorts_by_id_and_discard_removes() {
        let dir = tmp_dir("sorted");
        let store = JobStore::open(&dir).unwrap();
        for id in [7, 2, 5] {
            store
                .record_submitted(&PersistedJob {
                    id: JobId(id),
                    tenant: "t".into(),
                    name: None,
                    spec: JobSpec::search("dram/stream", "rw", 100, id),
                })
                .unwrap();
        }
        let ids: Vec<u64> = store.load().unwrap().iter().map(|(j, _)| j.id.0).collect();
        assert_eq!(ids, vec![2, 5, 7]);
        store.discard(JobId(5));
        let ids: Vec<u64> = store.load().unwrap().iter().map(|(j, _)| j.id.0).collect();
        assert_eq!(ids, vec![2, 7]);
        assert_eq!(store.next_id().unwrap(), 8);
        let _ = fs::remove_dir_all(&dir);
    }
}
