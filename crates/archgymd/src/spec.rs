//! String specs for environments and objectives.
//!
//! Environments: `dram/<trace>`, `dramx/<trace>` (the widened space
//! with channel/rank topology axes), `timeloop/<model>`,
//! `farsi/<workload>`, `maestro/<model>/<layer>`.
//!
//! Objectives (environment-family specific):
//!
//! * DRAM — `power:1.0`, `latency:30`, `joint:30,1.0`
//! * Timeloop — `latency:5`, `energy:10`, `area:20`, `joint:15,10`
//! * FARSI — `budgets:<lat_ms>,<pow_mw>,<area_mm2>` (default: workload budgets)
//! * MAESTRO — `runtime`, `energy`

use archgym_core::env::{CloneEnvironment, Environment, Observation, StepResult};
use archgym_core::error::{ArchGymError, Result};
use archgym_core::space::{Action, ParamSpace};
use archgym_dram::DramWorkload;
use archgym_soc::SocWorkload;

fn bad(msg: String) -> ArchGymError {
    ArchGymError::InvalidConfig(msg)
}

fn parse_two(values: &str, what: &str) -> Result<(f64, f64)> {
    let (a, b) = values
        .split_once(',')
        .ok_or_else(|| bad(format!("{what} expects two comma-separated numbers")))?;
    Ok((
        a.trim()
            .parse()
            .map_err(|_| bad(format!("bad number `{a}`")))?,
        b.trim()
            .parse()
            .map_err(|_| bad(format!("bad number `{b}`")))?,
    ))
}

fn parse_one(values: &str) -> Result<f64> {
    values
        .trim()
        .parse()
        .map_err(|_| bad(format!("bad number `{values}`")))
}

fn dram_workload(name: &str) -> Result<DramWorkload> {
    DramWorkload::ALL
        .into_iter()
        .find(|w| w.name() == name)
        .ok_or_else(|| {
            bad(format!(
                "unknown DRAM trace `{name}` (stream|random|cloud-1|cloud-2)"
            ))
        })
}

fn soc_workload(name: &str) -> Result<SocWorkload> {
    SocWorkload::ALL
        .into_iter()
        .find(|w| w.name() == name)
        .ok_or_else(|| {
            bad(format!(
                "unknown FARSI workload `{name}` (audio-decoder|edge-detection)"
            ))
        })
}

/// A test-only environment whose `step` blocks forever after the
/// first `hang_after` samples — a stand-in for a wedged external cost
/// model, used to exercise the daemon's worker watchdog. Hidden from
/// [`known_envs`]; spelled `test/stall` or `test/stall/<hang_after>`.
#[derive(Clone)]
struct StallEnv {
    space: ParamSpace,
    hang_after: u64,
    steps: u64,
}

impl Environment for StallEnv {
    fn name(&self) -> &str {
        "test/stall"
    }

    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn observation_labels(&self) -> Vec<String> {
        vec!["steps".into()]
    }

    fn step(&mut self, _action: &Action) -> StepResult {
        if self.steps >= self.hang_after {
            // Wedge, like a hung simulator subprocess. The watchdog
            // must retire this worker; the thread is detached.
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        self.steps += 1;
        StepResult::terminal(Observation::new(vec![self.steps as f64]), 0.0)
    }
}

fn stall_env(hang_after: u64) -> Result<Box<dyn CloneEnvironment>> {
    let space = ParamSpace::builder().int("x", 0, 7, 1).build()?;
    Ok(Box::new(StallEnv {
        space,
        hang_after,
        steps: 0,
    }))
}

/// Build an environment from `spec` with an optional objective string.
///
/// Returns a [`CloneEnvironment`] trait object so callers can replicate
/// the environment into an [`EnvPool`](archgym_core::pool::EnvPool) for
/// in-run batch parallelism.
///
/// # Errors
///
/// Returns [`ArchGymError::InvalidConfig`] for unknown specs.
pub fn make_env(spec: &str, objective: Option<&str>) -> Result<Box<dyn CloneEnvironment>> {
    let mut parts = spec.splitn(3, '/');
    let family = parts.next().unwrap_or_default();
    match family {
        "dram" | "dramx" => {
            let workload = dram_workload(parts.next().unwrap_or("stream"))?;
            let objective = match objective.unwrap_or("power:1.0").split_once(':') {
                Some(("power", v)) => archgym_dram::Objective::low_power(parse_one(v)?),
                Some(("latency", v)) => archgym_dram::Objective::low_latency(parse_one(v)?),
                Some(("joint", v)) => {
                    let (lat, pow) = parse_two(v, "joint")?;
                    archgym_dram::Objective::joint(lat, pow)
                }
                _ => {
                    return Err(bad(format!(
                        "unknown DRAM objective `{}` (power:|latency:|joint:)",
                        objective.unwrap_or_default()
                    )))
                }
            };
            // `dramx` is the widened Fig. 3(a) space: the ten controller
            // parameters plus channel/rank topology axes.
            Ok(if family == "dramx" {
                Box::new(archgym_dram::DramEnv::extended(workload, objective))
            } else {
                Box::new(archgym_dram::DramEnv::new(workload, objective))
            })
        }
        "timeloop" => {
            let model = parts.next().unwrap_or("resnet50");
            let network = archgym_models::by_name(model)
                .ok_or_else(|| bad(format!("unknown model `{model}`")))?;
            let objective = match objective.unwrap_or("latency:15").split_once(':') {
                Some(("latency", v)) => archgym_accel::Objective::latency(parse_one(v)?),
                Some(("energy", v)) => archgym_accel::Objective::energy(parse_one(v)?),
                Some(("area", v)) => archgym_accel::Objective::area(parse_one(v)?),
                Some(("joint", v)) => {
                    let (lat, energy) = parse_two(v, "joint")?;
                    archgym_accel::Objective::joint(lat, energy)
                }
                _ => {
                    return Err(bad(format!(
                        "unknown Timeloop objective `{}` (latency:|energy:|area:|joint:)",
                        objective.unwrap_or_default()
                    )))
                }
            };
            Ok(Box::new(archgym_accel::AccelEnv::new(network, objective)))
        }
        "farsi" => {
            let workload = soc_workload(parts.next().unwrap_or("edge-detection"))?;
            match objective {
                None => Ok(Box::new(archgym_soc::SocEnv::new(workload))),
                Some(obj) => {
                    let values = obj.strip_prefix("budgets:").ok_or_else(|| {
                        bad(format!("unknown FARSI objective `{obj}` (budgets:)"))
                    })?;
                    let fields: Vec<&str> = values.split(',').collect();
                    if fields.len() != 3 {
                        return Err(bad("budgets: expects lat_ms,pow_mw,area_mm2".into()));
                    }
                    Ok(Box::new(archgym_soc::SocEnv::with_budgets(
                        workload,
                        parse_one(fields[0])?,
                        parse_one(fields[1])?,
                        parse_one(fields[2])?,
                    )))
                }
            }
        }
        "maestro" => {
            let model = parts
                .next()
                .ok_or_else(|| bad("maestro/<model>/<layer>".into()))?;
            let layer = parts
                .next()
                .ok_or_else(|| bad("maestro/<model>/<layer>".into()))?;
            let network = archgym_models::by_name(model)
                .ok_or_else(|| bad(format!("unknown model `{model}`")))?;
            let objective = match objective.unwrap_or("runtime") {
                "runtime" => archgym_mapping::Objective::runtime(),
                "energy" => archgym_mapping::Objective::energy(),
                other => {
                    return Err(bad(format!(
                        "unknown MAESTRO objective `{other}` (runtime|energy)"
                    )))
                }
            };
            Ok(Box::new(archgym_mapping::MappingEnv::for_layer(
                &network, layer, objective,
            )?))
        }
        // Undocumented chaos-test family: `test/stall[/<hang_after>]`
        // wedges after `hang_after` samples (default 0: immediately).
        "test" => match parts.next() {
            Some("stall") => stall_env(match parts.next() {
                Some(n) => n
                    .parse()
                    .map_err(|_| bad(format!("bad test/stall count `{n}`")))?,
                None => 0,
            }),
            other => Err(bad(format!(
                "unknown test environment `{}`",
                other.unwrap_or_default()
            ))),
        },
        other => Err(bad(format!(
            "unknown environment family `{other}` (dram|dramx|timeloop|farsi|maestro)"
        ))),
    }
}

/// The environment specs `archgym list` advertises.
pub fn known_envs() -> Vec<String> {
    let mut out = Vec::new();
    for w in DramWorkload::ALL {
        out.push(format!("dram/{}", w.name()));
    }
    for w in DramWorkload::ALL {
        out.push(format!("dramx/{}", w.name()));
    }
    for m in ["alexnet", "vgg16", "resnet18", "resnet50", "mobilenet_v1"] {
        out.push(format!("timeloop/{m}"));
    }
    for w in SocWorkload::ALL {
        out.push(format!("farsi/{}", w.name()));
    }
    out.push("maestro/<model>/<layer>  (e.g. maestro/resnet18/stage2)".into());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use archgym_core::env::Environment;

    #[test]
    fn builds_every_family() {
        for (spec, objective) in [
            ("dram/stream", Some("power:1.0")),
            ("dram/cloud-2", Some("joint:30,1.0")),
            ("dramx/stream", Some("power:1.0")),
            ("dramx/cloud-2", Some("joint:30,1.0")),
            ("timeloop/resnet50", Some("latency:15")),
            ("timeloop/alexnet", None),
            ("farsi/audio-decoder", None),
            ("farsi/edge-detection", Some("budgets:8,300,10")),
            ("maestro/resnet18/stage2", Some("runtime")),
            ("maestro/vgg16/conv1_2", None),
        ] {
            let env = make_env(spec, objective)
                .unwrap_or_else(|e| panic!("{spec} with {objective:?}: {e}"));
            assert!(!env.space().is_empty());
        }
    }

    #[test]
    fn dramx_widens_the_design_space_over_dram() {
        let plain = make_env("dram/stream", None).unwrap();
        let extended = make_env("dramx/stream", None).unwrap();
        assert_eq!(extended.space().len(), plain.space().len() + 2);
        assert_eq!(extended.name(), "dramx/stream");
        assert!(extended.space().dim_of("Channels").is_some());
        assert!(extended.space().dim_of("Ranks").is_some());
    }

    #[test]
    fn rejects_unknown_specs() {
        assert!(make_env("gem5/spec2006", None).is_err());
        assert!(make_env("dram/spec2006", None).is_err());
        assert!(make_env("dramx/spec2006", None).is_err());
        assert!(make_env("dram/stream", Some("area:3")).is_err());
        assert!(make_env("timeloop/lenet", None).is_err());
        assert!(make_env("maestro/resnet18", None).is_err());
        assert!(make_env("maestro/resnet18/nope", None).is_err());
        assert!(make_env("farsi/edge-detection", Some("budgets:1,2")).is_err());
        assert!(make_env("dram/stream", Some("joint:30")).is_err());
    }

    #[test]
    fn stall_env_exists_but_is_hidden() {
        let mut env = make_env("test/stall/3", None).unwrap();
        let action = archgym_core::space::Action::new(vec![0]);
        for step in 1..=3u64 {
            let result = env.step(&action);
            assert_eq!(result.observation.get(0), step as f64);
        }
        assert!(make_env("test/stall", None).is_ok());
        assert!(make_env("test/nope", None).is_err());
        assert!(make_env("test/stall/x", None).is_err());
        assert!(
            !known_envs().iter().any(|e| e.starts_with("test/")),
            "chaos-test envs stay out of the advertised list"
        );
    }

    #[test]
    fn known_envs_are_constructible() {
        for spec in known_envs() {
            if spec.starts_with("maestro") {
                continue; // templated entry
            }
            assert!(make_env(&spec, None).is_ok(), "{spec} not constructible");
        }
    }
}
