//! The `archgymd` daemon: a multi-tenant search service over TCP.
//!
//! One [`Server`] owns a [`JobStore`] state directory, a
//! [`Scheduler`] for quota-based admission control, and a supervised
//! fleet of worker threads. Clients speak the line-delimited JSON
//! protocol from [`protocol`](crate::protocol); accepted jobs are
//! persisted *before* they are admitted, and every search runs through
//! [`SearchLoop::run_resumable_pooled`] with its journal inside the
//! state directory — so a daemon killed mid-job (even with SIGKILL)
//! re-admits the job on restart and the journal replay finishes it
//! bit-identically to an uninterrupted run.
//!
//! Robustness machinery on top of that base:
//!
//! * **Deadlines** — a job with `deadline_ms` set is stopped at the
//!   first batch boundary past its deadline and lands in the terminal
//!   [`JobState::TimedOut`] with its best-so-far result persisted.
//! * **Watchdog** — workers heartbeat a per-batch epoch; a supervisor
//!   thread retires any worker silent past `stall_after_ms`, fails its
//!   job, and spawns a replacement so one wedged cost model cannot eat
//!   the fleet.
//! * **Drain** — `shutdown {drain:true}` stops admission, lets
//!   admitted jobs finish (bounded by a drain deadline), then stops;
//!   plain `shutdown` interrupts in-flight jobs at a batch boundary and
//!   leaves them journaled for the next start to resume.
//! * **Connection cap** — the accept loop holds at most
//!   `max_connections` live client threads; excess connections get an
//!   inline typed `busy` error with a retry hint.
//!
//! Threading model: one accept loop, one thread per client connection
//! (capped), `workers` job threads parked on a condvar over the
//! scheduler, one supervisor. Lock order inside a job handle is
//! events → progress → watchers; the scheduler lock is never held
//! while a job runs. All mutexes recover from poisoning (a panicking
//! peer thread must not wedge the daemon).

use crate::protocol::{ErrorCode, JobStatus, Request, Response, MAX_LINE_BYTES, PROTOCOL_VERSION};
use crate::spec::make_env;
use crate::store::{JobOutcome, JobStore, PersistedJob};
use archgym_agents::factory::{build_agent, default_grid, race_roster, AgentKind};
use archgym_core::agent::HyperMap;
use archgym_core::codec::{parse_json, Json};
use archgym_core::error::{ArchGymError, Result};
use archgym_core::jobs::{
    Admission, JobId, JobKind, JobSpec, JobState, QuotaPolicy, Scheduler, Watchdog,
};
use archgym_core::race::{Race, RaceLane};
use archgym_core::search::{RunConfig, RunResult, SearchLoop};
use archgym_core::storeio::{real_io, Durability, StoreIo};
use archgym_core::sweep::Sweep;
use archgym_core::telemetry::Recorder;
use archgym_core::{Action, Agent, StepResult};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

/// Lock a mutex, recovering from poisoning: a worker that panicked
/// while holding a lock already reported a failed job; the shared
/// state it guarded is still structurally valid.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Listen address, e.g. `127.0.0.1:7170` (`:0` picks a free port).
    pub addr: String,
    /// State directory for job specs, journals, and outcomes.
    pub state_dir: PathBuf,
    /// Worker threads — the maximum number of concurrently running jobs.
    pub workers: usize,
    /// Admission-control knobs.
    pub quota: QuotaPolicy,
    /// Fsync policy for journals and store records (default `batch`).
    pub durability: Durability,
    /// Maximum live client connections; excess get a typed `busy`
    /// error with a retry hint (default 128).
    pub max_connections: usize,
    /// Retire a worker silent for longer than this many milliseconds
    /// (`0` disables the watchdog; default 30 000).
    pub stall_after_ms: u64,
}

impl DaemonConfig {
    /// A config with default workers (2), quotas, `batch` durability,
    /// a 128-connection cap, and a 30 s worker stall threshold.
    pub fn new(addr: impl Into<String>, state_dir: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            addr: addr.into(),
            state_dir: state_dir.into(),
            workers: 2,
            quota: QuotaPolicy::default(),
            durability: Durability::Batch,
            max_connections: 128,
            stall_after_ms: 30_000,
        }
    }
}

#[derive(Debug, Clone)]
struct JobProgress {
    state: JobState,
    best_reward: Option<f64>,
    samples: u64,
    error: Option<String>,
}

/// In-memory state for one job: live progress, the event backlog every
/// new watcher replays, and the subscribed watcher sockets.
struct JobHandle {
    id: JobId,
    tenant: String,
    spec: JobSpec,
    // Lock order: events → progress → watchers. `events` doubles as the
    // barrier that makes watch registration race-free against finish().
    events: Mutex<Vec<String>>,
    progress: Mutex<JobProgress>,
    watchers: Mutex<Vec<TcpStream>>,
    cancel: AtomicBool,
    /// Set when the job's deadline passed at a batch boundary.
    timed_out: AtomicBool,
    /// Heartbeat epoch: bumped every proposed batch and every trace
    /// line; the supervisor feeds it to the [`Watchdog`].
    beat: AtomicU64,
    /// Exactly-once guard over the terminal outcome: the worker and the
    /// supervisor race to record it, whoever wins the CAS writes it.
    claimed: AtomicBool,
    /// Absolute deadline for the current execution attempt.
    deadline: Mutex<Option<Instant>>,
}

impl JobHandle {
    fn new(job: &PersistedJob, state: JobState) -> JobHandle {
        JobHandle {
            id: job.id,
            tenant: job.tenant.clone(),
            spec: job.spec.clone(),
            events: Mutex::new(Vec::new()),
            progress: Mutex::new(JobProgress {
                state,
                best_reward: None,
                samples: 0,
                error: None,
            }),
            watchers: Mutex::new(Vec::new()),
            cancel: AtomicBool::new(false),
            timed_out: AtomicBool::new(false),
            beat: AtomicU64::new(0),
            claimed: AtomicBool::new(false),
            deadline: Mutex::new(None),
        }
    }

    fn from_outcome(job: &PersistedJob, outcome: &JobOutcome) -> JobHandle {
        let handle = JobHandle::new(job, outcome.state);
        {
            let mut progress = lock(&handle.progress);
            progress.best_reward = outcome.best_reward;
            progress.samples = outcome.samples;
            progress.error = outcome.error.clone();
        }
        handle.claimed.store(true, Ordering::SeqCst);
        handle
    }

    /// Win the right to record this job's terminal outcome. The worker
    /// and the supervisor both call this; exactly one succeeds.
    fn claim_outcome(&self) -> bool {
        self.claimed
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    fn status(&self) -> JobStatus {
        let progress = lock(&self.progress).clone();
        JobStatus {
            job: self.id,
            tenant: self.tenant.clone(),
            state: progress.state,
            best_reward: progress.best_reward,
            samples: progress.samples,
            budget: self.spec.budget,
            error: progress.error,
        }
    }

    fn set_state(&self, state: JobState) {
        lock(&self.progress).state = state;
    }

    /// Ingest one line from a run's telemetry trace: update live
    /// progress from per-batch records and fan the event out to every
    /// watcher (dead watchers are dropped). Doubles as a heartbeat.
    fn ingest_trace_line(&self, line: &str) {
        self.beat.fetch_add(1, Ordering::Relaxed);
        let Ok(data) = parse_json(line) else {
            return;
        };
        let frame = Response::Event {
            job: self.id,
            data: data.clone(),
        }
        .to_line();
        let mut events = lock(&self.events);
        events.push(frame.clone());
        {
            let mut progress = lock(&self.progress);
            if let Ok(samples) = data.field("samples_used").and_then(Json::as_u64) {
                progress.samples = samples;
            }
            if let Ok(best) = data.field("best_reward").and_then(Json::as_f64) {
                progress.best_reward = Some(best);
            }
        }
        let mut watchers = lock(&self.watchers);
        watchers.retain_mut(|w| writeln!(w, "{frame}").is_ok());
    }

    /// Record a terminal outcome and close every watch stream with a
    /// `done` frame. Holding the events lock makes this atomic against
    /// concurrent watch registration.
    fn finish(&self, outcome: &JobOutcome) {
        let _events = lock(&self.events);
        {
            let mut progress = lock(&self.progress);
            progress.state = outcome.state;
            progress.best_reward = outcome.best_reward;
            progress.samples = outcome.samples;
            progress.error = outcome.error.clone();
        }
        let frame = Response::Done {
            job: self.id,
            state: outcome.state,
            best_reward: outcome.best_reward,
            samples: outcome.samples,
        }
        .to_line();
        let mut watchers = lock(&self.watchers);
        for mut w in watchers.drain(..) {
            let _ = writeln!(w, "{frame}");
        }
    }
}

/// A `Write` sink for [`Recorder::set_trace`] that forwards each
/// completed trace line to the job handle.
struct EventSink {
    handle: Arc<JobHandle>,
    buf: Vec<u8>,
}

impl std::io::Write for EventSink {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(data);
        while let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.buf.drain(..=pos).collect();
            if let Ok(text) = std::str::from_utf8(&line) {
                let text = text.trim();
                if !text.is_empty() {
                    self.handle.ingest_trace_line(text);
                }
            }
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Wraps an agent so every stop signal reads as convergence: a raised
/// cancel/interrupt flag or an expired deadline makes the next
/// `propose` return no candidates, and the search loop settles what it
/// has and stops — no samples are torn mid-batch. Each `propose` also
/// bumps the job's heartbeat epoch for the watchdog.
struct Cancellable {
    inner: Box<dyn Agent + Send>,
    flag: Arc<JobHandle>,
    interrupt: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl Agent for Cancellable {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn propose(&mut self, max_batch: usize) -> Vec<Action> {
        self.flag.beat.fetch_add(1, Ordering::Relaxed);
        if self.flag.cancel.load(Ordering::SeqCst) || self.interrupt.load(Ordering::SeqCst) {
            return Vec::new();
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.flag.timed_out.store(true, Ordering::SeqCst);
                return Vec::new();
            }
        }
        self.inner.propose(max_batch)
    }

    fn observe(&mut self, results: &[(Action, StepResult)]) {
        self.inner.observe(results);
    }

    fn batch_hint(&self) -> Option<usize> {
        self.inner.batch_hint()
    }
}

struct Inner {
    config: DaemonConfig,
    store: JobStore,
    sched: Mutex<Scheduler>,
    work_cv: Condvar,
    jobs: Mutex<HashMap<u64, Arc<JobHandle>>>,
    names: Mutex<HashMap<String, JobId>>,
    next_id: Mutex<u64>,
    shutdown: AtomicBool,
    /// Admission is closed (drain in progress) but workers keep going.
    draining: AtomicBool,
    /// Batch-boundary stop signal for every in-flight job; interrupted
    /// jobs stay journaled and resume on the next start.
    interrupt: Arc<AtomicBool>,
    conns: AtomicUsize,
    watchdog: Mutex<Watchdog>,
    /// slot → the handle its worker is currently running, for the
    /// supervisor's heartbeat observations.
    running: Mutex<HashMap<usize, Arc<JobHandle>>>,
    /// slot → worker thread handle. A retired (stalled) worker's handle
    /// is removed and dropped — joining it would hang forever.
    worker_handles: Mutex<HashMap<usize, thread::JoinHandle<()>>>,
    started: Instant,
}

fn now_ms(inner: &Inner) -> u64 {
    inner.started.elapsed().as_millis() as u64
}

/// A bound daemon, ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    inner: Arc<Inner>,
}

impl Server {
    /// Bind the listen socket, open the state directory, and re-admit
    /// every persisted job that never reached a terminal state (in
    /// original submit order — their journals make the reruns resume
    /// rather than restart).
    pub fn bind(config: DaemonConfig) -> Result<Server> {
        Self::bind_with_io(config, real_io())
    }

    /// Like [`Server::bind`] but with an explicit store I/O seam, so
    /// chaos tests can run a whole daemon against injected faults.
    pub fn bind_with_io(config: DaemonConfig, io: Arc<dyn StoreIo>) -> Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let store = JobStore::open_with(&config.state_dir, io, config.durability)?;
        let next_id = store.next_id()?;
        let mut sched = Scheduler::new(config.quota);
        let mut jobs = HashMap::new();
        let mut names = HashMap::new();
        for (job, outcome) in store.load()? {
            let handle = match &outcome {
                Some(outcome) => JobHandle::from_outcome(&job, outcome),
                None => JobHandle::new(&job, JobState::Queued),
            };
            let handle = Arc::new(handle);
            if let Some(name) = &job.name {
                names.insert(name.clone(), job.id);
            }
            if outcome.is_none() {
                match sched.submit(job.id, &job.tenant) {
                    Admission::Enqueued { .. } => {}
                    Admission::Rejected { reason, .. } => {
                        // Quotas shrank across the restart; surface the
                        // job as failed rather than dropping it silently.
                        let failed = JobOutcome {
                            state: JobState::Failed,
                            best_reward: None,
                            samples: 0,
                            error: Some(format!("not re-admitted after restart: {reason}")),
                        };
                        store.record_outcome(job.id, &failed)?;
                        handle.claimed.store(true, Ordering::SeqCst);
                        handle.finish(&failed);
                    }
                }
            }
            jobs.insert(job.id.0, handle);
        }
        let stall_after_ms = config.stall_after_ms;
        Ok(Server {
            listener,
            local_addr,
            inner: Arc::new(Inner {
                config,
                store,
                sched: Mutex::new(sched),
                work_cv: Condvar::new(),
                jobs: Mutex::new(jobs),
                names: Mutex::new(names),
                next_id: Mutex::new(next_id),
                shutdown: AtomicBool::new(false),
                draining: AtomicBool::new(false),
                interrupt: Arc::new(AtomicBool::new(false)),
                conns: AtomicUsize::new(0),
                watchdog: Mutex::new(Watchdog::new(stall_after_ms)),
                running: Mutex::new(HashMap::new()),
                worker_handles: Mutex::new(HashMap::new()),
                started: Instant::now(),
            }),
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serve until a `shutdown` request arrives. A drain shutdown lets
    /// admitted jobs finish first; a plain shutdown interrupts them at
    /// a batch boundary (they stay journaled and resume on the next
    /// start). Stalled workers are detached, never joined.
    pub fn run(self) -> Result<()> {
        for _ in 0..self.inner.config.workers.max(1) {
            spawn_worker(&self.inner);
        }
        let supervisor = {
            let inner = Arc::clone(&self.inner);
            thread::spawn(move || supervise(&inner))
        };
        let max_conns = self.inner.config.max_connections.max(1);
        for stream in self.listener.incoming() {
            if self.inner.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let admitted = self
                .inner
                .conns
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                    (n < max_conns).then_some(n + 1)
                })
                .is_ok();
            if !admitted {
                // Refuse inline on the accept thread: spawning a thread
                // per refused client would defeat the cap.
                let mut out = stream;
                let busy = Response::Error {
                    code: ErrorCode::Busy,
                    message: format!("too many connections ({max_conns})"),
                    retry_after_ms: Some(self.inner.config.quota.retry_after_ms),
                };
                let _ = writeln!(out, "{}", busy.to_line());
                continue;
            }
            let inner = Arc::clone(&self.inner);
            let addr = self.local_addr;
            thread::spawn(move || {
                let _slot = ConnGuard(Arc::clone(&inner));
                handle_conn(&inner, addr, stream);
            });
        }
        self.inner.work_cv.notify_all();
        let _ = supervisor.join();
        let workers: Vec<_> = lock(&self.inner.worker_handles).drain().collect();
        for (_slot, worker) in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// Frees a connection slot when its handler thread exits. A `watch`
/// that hands its socket to the watcher list still frees the slot —
/// parked watcher sockets are fan-out targets, not live threads.
struct ConnGuard(Arc<Inner>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.conns.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Register a watchdog slot and start a worker thread on it.
fn spawn_worker(inner: &Arc<Inner>) {
    let slot = lock(&inner.watchdog).register();
    let worker_inner = Arc::clone(inner);
    let handle = thread::spawn(move || worker_loop(&worker_inner, slot));
    lock(&inner.worker_handles).insert(slot, handle);
}

/// Supervisor loop: observe every running job's heartbeat epoch, retire
/// workers that stalled past the threshold, fail their jobs, and spawn
/// replacements. The stalled thread itself is left detached — it may be
/// blocked inside a wedged cost model forever.
fn supervise(inner: &Arc<Inner>) {
    let stall = inner.config.stall_after_ms;
    let poll = Duration::from_millis(if stall == 0 {
        200
    } else {
        (stall / 4).clamp(10, 1000)
    });
    while !inner.shutdown.load(Ordering::SeqCst) {
        thread::sleep(poll);
        let now = now_ms(inner);
        let stalled = {
            let running = lock(&inner.running);
            let mut watchdog = lock(&inner.watchdog);
            for (&slot, handle) in running.iter() {
                watchdog.observe(slot, handle.beat.load(Ordering::Relaxed), now);
            }
            watchdog.scan(now)
        };
        for (slot, id) in stalled {
            let handle = lock(&inner.running).remove(&slot);
            // Detach the stalled thread: joining it could hang forever.
            drop(lock(&inner.worker_handles).remove(&slot));
            eprintln!("archgymd: worker {slot} stalled on {id}; failing the job and respawning");
            if let Some(handle) = handle {
                if handle.claim_outcome() {
                    let outcome = JobOutcome {
                        state: JobState::Failed,
                        best_reward: None,
                        samples: 0,
                        error: Some(format!(
                            "worker stalled (no heartbeat for more than {stall} ms)"
                        )),
                    };
                    if let Err(err) = inner.store.record_outcome(id, &outcome) {
                        eprintln!("archgymd: failed to persist stall outcome for {id}: {err}");
                    }
                    handle.finish(&outcome);
                    lock(&inner.sched).finish(id);
                    inner.work_cv.notify_all();
                }
            }
            spawn_worker(inner);
        }
    }
}

fn worker_loop(inner: &Arc<Inner>, slot: usize) {
    loop {
        let id = {
            let mut sched = lock(&inner.sched);
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = sched.next_runnable() {
                    break id;
                }
                sched = inner.work_cv.wait(sched).unwrap_or_else(|e| e.into_inner());
            }
        };
        let handle = lock(&inner.jobs)
            .get(&id.0)
            .cloned()
            .expect("runnable job has a handle");
        handle.set_state(JobState::Running);
        *lock(&handle.deadline) = (handle.spec.deadline_ms > 0)
            .then(|| Instant::now() + Duration::from_millis(handle.spec.deadline_ms));
        {
            let now = now_ms(inner);
            lock(&inner.watchdog).start(slot, id, now);
            lock(&inner.running).insert(slot, Arc::clone(&handle));
        }
        let outcome = run_job(inner, &handle);
        lock(&inner.running).remove(&slot);
        lock(&inner.watchdog).end(slot);
        match outcome {
            Some(outcome) => {
                if handle.claim_outcome() {
                    let record = inner.store.record_outcome(id, &outcome);
                    handle.finish(&outcome);
                    lock(&inner.sched).finish(id);
                    inner.work_cv.notify_all();
                    if let Err(err) = record {
                        eprintln!("archgymd: failed to persist outcome for {id}: {err}");
                    }
                }
                // else: the supervisor already recorded a stall outcome
                // for this job; this (slow, now-retired) worker's result
                // is discarded.
            }
            None => {
                // Interrupted by shutdown: no outcome is recorded, so
                // the persisted spec + journal re-admit and resume the
                // job on the next start.
                if handle.claim_outcome() {
                    handle.claimed.store(false, Ordering::SeqCst);
                    handle.set_state(JobState::Queued);
                    lock(&inner.sched).finish(id);
                    inner.work_cv.notify_all();
                }
            }
        }
        if !lock(&inner.watchdog).is_alive(slot) {
            return; // retired by the supervisor while running
        }
    }
}

/// Execute one job to a terminal outcome, or to `None` when a shutdown
/// interrupt stopped it early (the job stays in-flight and resumable).
/// Panics inside the run are caught and reported as a failed job; the
/// daemon itself never dies. Signal priority: cancel > deadline >
/// interrupt > normal completion.
fn run_job(inner: &Arc<Inner>, handle: &Arc<JobHandle>) -> Option<JobOutcome> {
    let result =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match handle.spec.kind {
            JobKind::Search => run_search(inner, handle),
            JobKind::Compare => run_compare(inner, handle),
            JobKind::Sweep => run_sweep(inner, handle),
            JobKind::Race => run_race(inner, handle),
        }));
    let cancelled = handle.cancel.load(Ordering::SeqCst);
    let timed_out = handle.timed_out.load(Ordering::SeqCst);
    let interrupted = inner.interrupt.load(Ordering::SeqCst);
    match result {
        Ok(Ok((best_reward, samples))) => {
            let state = if cancelled {
                JobState::Cancelled
            } else if timed_out {
                JobState::TimedOut
            } else if interrupted {
                return None;
            } else {
                JobState::Done
            };
            Some(JobOutcome {
                state,
                best_reward,
                samples,
                error: None,
            })
        }
        Ok(Err(err)) => Some(JobOutcome {
            state: JobState::Failed,
            best_reward: None,
            samples: 0,
            error: Some(err.to_string()),
        }),
        Err(_) => Some(JobOutcome {
            state: JobState::Failed,
            best_reward: None,
            samples: 0,
            error: Some("job panicked".into()),
        }),
    }
}

fn run_config(spec: &JobSpec) -> RunConfig {
    RunConfig::with_budget(spec.budget)
        .batch(spec.batch)
        .record(false)
        .jobs(spec.eval_jobs.max(1))
}

fn streaming_driver(inner: &Arc<Inner>, spec: &JobSpec, handle: &Arc<JobHandle>) -> SearchLoop {
    let recorder = Recorder::new();
    recorder.set_trace(EventSink {
        handle: Arc::clone(handle),
        buf: Vec::new(),
    });
    SearchLoop::new(run_config(spec))
        .with_telemetry(recorder)
        .with_journal_io(Arc::clone(inner.store.io()))
        .with_durability(inner.store.durability())
}

fn cancellable(
    inner: &Arc<Inner>,
    handle: &Arc<JobHandle>,
    agent: Box<dyn Agent + Send>,
) -> Cancellable {
    Cancellable {
        inner: agent,
        flag: Arc::clone(handle),
        interrupt: Arc::clone(&inner.interrupt),
        deadline: *lock(&handle.deadline),
    }
}

fn run_one(
    inner: &Arc<Inner>,
    handle: &Arc<JobHandle>,
    agent_name: &str,
    journal: PathBuf,
) -> Result<RunResult> {
    let spec = &handle.spec;
    let env = make_env(&spec.env, Some(&spec.objective))?;
    let kind = AgentKind::parse(agent_name)?;
    let mut agent = cancellable(
        inner,
        handle,
        build_agent(kind, env.space(), &Default::default(), spec.seed)?,
    );
    match &spec.proxy {
        // Screened jobs run through the proxy layer; the screener's
        // decisions are journaled, so daemon restarts resume them
        // bit-identically like plain jobs.
        Some(policy) => {
            let mut screener = archgym_proxy::OnlineProxy::with_defaults(*policy, spec.seed)?;
            streaming_driver(inner, spec, handle).run_screened_resumable_pooled(
                &mut agent,
                env,
                &mut screener,
                journal,
            )
        }
        None => {
            streaming_driver(inner, spec, handle).run_resumable_pooled(&mut agent, env, journal)
        }
    }
}

fn run_search(inner: &Arc<Inner>, handle: &Arc<JobHandle>) -> Result<(Option<f64>, u64)> {
    let journal = inner.store.journal_path(handle.id);
    let result = run_one(inner, handle, &handle.spec.agent.clone(), journal)?;
    Ok((Some(result.best_reward), result.samples_used))
}

fn run_compare(inner: &Arc<Inner>, handle: &Arc<JobHandle>) -> Result<(Option<f64>, u64)> {
    let mut best: Option<f64> = None;
    let mut samples = 0;
    for agent in &handle.spec.agents.clone() {
        if handle.cancel.load(Ordering::SeqCst)
            || handle.timed_out.load(Ordering::SeqCst)
            || inner.interrupt.load(Ordering::SeqCst)
        {
            break;
        }
        let journal = inner.store.agent_journal_path(handle.id, agent);
        let result = run_one(inner, handle, agent, journal)?;
        samples += result.samples_used;
        if best.is_none_or(|b| result.best_reward > b) {
            best = Some(result.best_reward);
        }
    }
    Ok((best, samples))
}

/// The default successive-halving elimination factor for race jobs.
const RACE_DEFAULT_ETA: usize = 3;
/// The default per-family roster cap for race jobs.
const RACE_DEFAULT_CAP: usize = 4;

/// Race jobs run the full agent × hyperparameter roster under online
/// successive halving on the job's budget. Every `(lane, rung)` slice
/// journals under the store's race prefix, so a killed daemon resumes
/// the race bit-identically: completed slices replay from their
/// journals, the interrupted slice finishes live. Rung, elimination,
/// and promotion events stream to watchers through the job's trace
/// sink like every other streaming event.
fn run_race(inner: &Arc<Inner>, handle: &Arc<JobHandle>) -> Result<(Option<f64>, u64)> {
    let spec = &handle.spec;
    let env = make_env(&spec.env, Some(&spec.objective))?;
    let eta = if spec.race_eta == 0 {
        RACE_DEFAULT_ETA
    } else {
        spec.race_eta
    };
    let cap = if spec.race_cap == 0 {
        RACE_DEFAULT_CAP
    } else {
        spec.race_cap
    };
    let mut roster = race_roster(cap);
    if !spec.agents.is_empty() {
        // An explicit roster restricts the race to the listed families.
        roster.retain(|entry| spec.agents.iter().any(|a| a == entry.kind.name()));
        if roster.is_empty() {
            return Err(ArchGymError::InvalidConfig(
                "race roster is empty after the agents filter".into(),
            ));
        }
    }
    let mut lanes = Vec::with_capacity(roster.len());
    for entry in roster {
        let agent = build_agent(entry.kind, env.space(), &entry.hyper, spec.seed)?;
        let mut lane = RaceLane::new(
            entry.name,
            Box::new(cancellable(inner, handle, agent)) as Box<dyn Agent + Send>,
        );
        if let Some(policy) = &spec.proxy {
            lane = lane.screened(Box::new(archgym_proxy::OnlineProxy::with_defaults(
                *policy, spec.seed,
            )?));
        }
        lanes.push(lane);
    }
    let recorder = Recorder::new();
    recorder.set_trace(EventSink {
        handle: Arc::clone(handle),
        buf: Vec::new(),
    });
    let result = Race::new(spec.budget, eta)
        .batch(spec.batch)
        .jobs(spec.eval_jobs.max(1))
        .ensemble(spec.race_ensemble)
        .with_telemetry(recorder)
        .with_journal_prefix(inner.store.race_journal_prefix(handle.id))
        .with_journal_io(Arc::clone(inner.store.io()))
        .with_durability(inner.store.durability())
        .run(lanes, env)?;
    Ok((Some(result.best_reward), result.samples_used))
}

/// Sweeps are deterministic in the spec, so a restarted daemon reruns
/// them from scratch instead of journaling every grid cell.
fn run_sweep(inner: &Arc<Inner>, handle: &Arc<JobHandle>) -> Result<(Option<f64>, u64)> {
    let spec = &handle.spec;
    let proto = make_env(&spec.env, Some(&spec.objective))?;
    let space = proto.space().clone();
    let kind = AgentKind::parse(&spec.agent)?;
    // Same default cap as `archgym-cli sweep --grid`.
    let assignments: Vec<HyperMap> = default_grid(kind).iter().take(9).collect();
    let recorder = Recorder::new();
    recorder.set_trace(EventSink {
        handle: Arc::clone(handle),
        buf: Vec::new(),
    });
    let cancel = Arc::clone(handle);
    let interrupt = Arc::clone(&inner.interrupt);
    let deadline = *lock(&handle.deadline);
    let result = Sweep::new(RunConfig::with_budget(spec.budget).record(false))
        .seeds(0..spec.sweep_seeds)
        .jobs(spec.eval_jobs.max(1))
        .telemetry(&recorder)
        .run_assignments(
            kind.name(),
            &assignments,
            || proto.clone(),
            move |hyper, seed| {
                Ok(Box::new(Cancellable {
                    inner: build_agent(kind, &space, hyper, seed)?,
                    flag: Arc::clone(&cancel),
                    interrupt: Arc::clone(&interrupt),
                    deadline,
                }) as Box<dyn Agent>)
            },
        )?;
    let winner = result.winner();
    let samples = result
        .best_rewards()
        .len()
        .checked_mul(spec.budget as usize)
        .unwrap_or(0) as u64;
    Ok((Some(winner.result.best_reward), samples))
}

fn error(code: ErrorCode, message: impl Into<String>) -> Response {
    Response::Error {
        code,
        message: message.into(),
        retry_after_ms: None,
    }
}

fn validate_spec(spec: &JobSpec) -> Result<()> {
    spec.validate()?;
    // Dry-run the factories so a bad env/agent is a typed reject at
    // submit time, not a failed job later.
    make_env(&spec.env, Some(&spec.objective))?;
    match spec.kind {
        JobKind::Compare | JobKind::Race => {
            for agent in &spec.agents {
                AgentKind::parse(agent)?;
            }
        }
        JobKind::Search | JobKind::Sweep => {
            AgentKind::parse(&spec.agent)?;
        }
    }
    Ok(())
}

fn submit(inner: &Arc<Inner>, tenant: String, name: Option<String>, spec: JobSpec) -> Response {
    if inner.shutdown.load(Ordering::SeqCst) || inner.draining.load(Ordering::SeqCst) {
        return Response::Rejected {
            reason: "daemon is shutting down".into(),
            retry_after_ms: inner.config.quota.retry_after_ms,
        };
    }
    if let Err(err) = validate_spec(&spec) {
        return error(ErrorCode::BadSpec, err.to_string());
    }
    let id = {
        let mut next = lock(&inner.next_id);
        let id = JobId(*next);
        *next += 1;
        id
    };
    if let Some(name) = &name {
        let mut names = lock(&inner.names);
        if let Some(existing) = names.get(name) {
            return error(
                ErrorCode::DuplicateJob,
                format!("job name '{name}' is already taken by {existing}"),
            );
        }
        names.insert(name.clone(), id);
    }
    let job = PersistedJob {
        id,
        tenant: tenant.clone(),
        name: name.clone(),
        spec,
    };
    if let Err(err) = inner.store.record_submitted(&job) {
        if let Some(name) = &name {
            lock(&inner.names).remove(name);
        }
        return error(ErrorCode::Internal, format!("could not persist job: {err}"));
    }
    let handle = Arc::new(JobHandle::new(&job, JobState::Queued));
    lock(&inner.jobs).insert(id.0, Arc::clone(&handle));
    let admission = lock(&inner.sched).submit(id, &tenant);
    match admission {
        Admission::Enqueued { position } => {
            inner.work_cv.notify_all();
            Response::Accepted {
                job: id,
                position: position as u64,
            }
        }
        Admission::Rejected {
            reason,
            retry_after_ms,
        } => {
            lock(&inner.jobs).remove(&id.0);
            if let Some(name) = &name {
                lock(&inner.names).remove(name);
            }
            inner.store.discard(id);
            Response::Rejected {
                reason,
                retry_after_ms,
            }
        }
    }
}

fn lookup(inner: &Arc<Inner>, job: JobId) -> Option<Arc<JobHandle>> {
    lock(&inner.jobs).get(&job.0).cloned()
}

fn cancel(inner: &Arc<Inner>, job: JobId) -> Response {
    let Some(handle) = lookup(inner, job) else {
        return error(ErrorCode::UnknownJob, format!("no job {job}"));
    };
    let state = lock(&handle.progress).state;
    if state.is_terminal() {
        return error(
            ErrorCode::BadState,
            format!("{job} already finished as {}", state.name()),
        );
    }
    let was_queued = lock(&inner.sched).cancel_queued(job);
    if was_queued {
        let outcome = JobOutcome {
            state: JobState::Cancelled,
            best_reward: None,
            samples: 0,
            error: None,
        };
        if handle.claim_outcome() {
            if let Err(err) = inner.store.record_outcome(job, &outcome) {
                eprintln!("archgymd: failed to persist cancel for {job}: {err}");
            }
            handle.finish(&outcome);
        }
    } else {
        // Running (or about to be claimed): the cancel flag makes the
        // agent stop proposing and the worker records the outcome.
        handle.cancel.store(true, Ordering::SeqCst);
    }
    Response::Status(handle.status())
}

fn list_jobs(inner: &Arc<Inner>) -> Response {
    let jobs = lock(&inner.jobs);
    let mut statuses: Vec<JobStatus> = jobs.values().map(|handle| handle.status()).collect();
    statuses.sort_by_key(|status| status.job);
    Response::Jobs(statuses)
}

fn send(out: &mut TcpStream, response: &Response) -> bool {
    writeln!(out, "{}", response.to_line()).is_ok()
}

/// Attach `out` to the job's event stream: replay the backlog, then
/// either close with a `done` frame (terminal job) or register as a
/// live watcher. Returns `true` when the socket was handed over.
fn watch(handle: &Arc<JobHandle>, mut out: TcpStream) -> bool {
    let _events_guard = {
        let events = lock(&handle.events);
        for line in events.iter() {
            if writeln!(out, "{line}").is_err() {
                return true; // client went away; nothing to keep
            }
        }
        events
    };
    let progress = lock(&handle.progress).clone();
    if progress.state.is_terminal() {
        let frame = Response::Done {
            job: handle.id,
            state: progress.state,
            best_reward: progress.best_reward,
            samples: progress.samples,
        };
        let _ = writeln!(out, "{}", frame.to_line());
        return false;
    }
    lock(&handle.watchers).push(out);
    true
}

/// Drain: close admission, then wait (bounded by the drain deadline)
/// until the scheduler holds no queued or running jobs. Returns `true`
/// when everything finished; `false` on deadline (the leftovers are
/// interrupted by the caller and resume on the next start).
fn drain(inner: &Arc<Inner>, deadline_ms: u64) -> bool {
    inner.draining.store(true, Ordering::SeqCst);
    let deadline = Instant::now()
        + Duration::from_millis(if deadline_ms == 0 {
            60_000
        } else {
            deadline_ms
        });
    let mut sched = lock(&inner.sched);
    while sched.queue_len() + sched.running_len() > 0 {
        let now = Instant::now();
        if now >= deadline {
            return false;
        }
        let wait = (deadline - now).min(Duration::from_millis(100));
        let (guard, _) = inner
            .work_cv
            .wait_timeout(sched, wait)
            .unwrap_or_else(|e| e.into_inner());
        sched = guard;
    }
    true
}

fn handle_conn(inner: &Arc<Inner>, local: SocketAddr, stream: TcpStream) {
    let Ok(reader_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(reader_half);
    let mut out = stream;
    loop {
        let mut buf = Vec::new();
        let n = match (&mut reader)
            .take(MAX_LINE_BYTES as u64 + 1)
            .read_until(b'\n', &mut buf)
        {
            Ok(n) => n,
            Err(_) => return,
        };
        if n == 0 {
            return; // clean EOF
        }
        if buf.last() == Some(&b'\n') {
            buf.pop();
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
        }
        if buf.len() > MAX_LINE_BYTES {
            let _ = send(
                &mut out,
                &error(
                    ErrorCode::OversizedFrame,
                    format!("frame exceeds {MAX_LINE_BYTES} bytes"),
                ),
            );
            return;
        }
        let Ok(text) = std::str::from_utf8(&buf) else {
            if !send(&mut out, &error(ErrorCode::NonUtf8, "frame is not UTF-8")) {
                return;
            }
            continue;
        };
        if text.trim().is_empty() {
            continue;
        }
        let request = match Request::from_line(text.trim()) {
            Ok(request) => request,
            Err(err) => {
                if !send(&mut out, &error(ErrorCode::BadFrame, err.to_string())) {
                    return;
                }
                continue;
            }
        };
        let reply = match request {
            Request::Submit { tenant, name, spec } => submit(inner, tenant, name, spec),
            Request::Status { job } => match lookup(inner, job) {
                Some(handle) => Response::Status(handle.status()),
                None => error(ErrorCode::UnknownJob, format!("no job {job}")),
            },
            Request::List => list_jobs(inner),
            Request::Cancel { job } => cancel(inner, job),
            Request::Ping => Response::Pong {
                version: PROTOCOL_VERSION,
            },
            Request::Watch { job } => match lookup(inner, job) {
                Some(handle) => {
                    if watch(&handle, out) {
                        // The write half now belongs to the watcher
                        // list; this connection is stream-only.
                        return;
                    }
                    return;
                }
                None => error(ErrorCode::UnknownJob, format!("no job {job}")),
            },
            Request::Shutdown {
                drain: drain_first,
                deadline_ms,
            } => {
                if drain_first {
                    // The `stopping` reply is sent only after the drain
                    // settles, so a client blocking on it knows every
                    // admitted job reached a terminal state (or the
                    // drain deadline passed).
                    drain(inner, deadline_ms);
                }
                let _ = send(&mut out, &Response::Stopping);
                // Any job still in flight stops at its next batch
                // boundary and stays journaled for the next start.
                inner.interrupt.store(true, Ordering::SeqCst);
                inner.shutdown.store(true, Ordering::SeqCst);
                inner.work_cv.notify_all();
                // Poke the accept loop so it observes the flag.
                let _ = TcpStream::connect(local);
                return;
            }
        };
        if !send(&mut out, &reply) {
            return;
        }
    }
}
