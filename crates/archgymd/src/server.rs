//! The `archgymd` daemon: a multi-tenant search service over TCP.
//!
//! One [`Server`] owns a [`JobStore`] state directory, a
//! [`Scheduler`] for quota-based admission control, and a fixed fleet
//! of worker threads. Clients speak the line-delimited JSON protocol
//! from [`protocol`](crate::protocol); accepted jobs are persisted
//! *before* they are admitted, and every search runs through
//! [`SearchLoop::run_resumable_pooled`] with its journal inside the
//! state directory — so a daemon killed mid-job (even with SIGKILL)
//! re-admits the job on restart and the journal replay finishes it
//! bit-identically to an uninterrupted run.
//!
//! Threading model: one accept loop, one thread per client connection,
//! `workers` job threads parked on a condvar over the scheduler. Lock
//! order inside a job handle is events → progress → watchers; the
//! scheduler lock is never held while a job runs.

use crate::protocol::{ErrorCode, JobStatus, Request, Response, MAX_LINE_BYTES, PROTOCOL_VERSION};
use crate::spec::make_env;
use crate::store::{JobOutcome, JobStore, PersistedJob};
use archgym_agents::factory::{build_agent, default_grid, AgentKind};
use archgym_core::agent::HyperMap;
use archgym_core::codec::{parse_json, Json};
use archgym_core::error::Result;
use archgym_core::jobs::{Admission, JobId, JobKind, JobSpec, JobState, QuotaPolicy, Scheduler};
use archgym_core::search::{RunConfig, RunResult, SearchLoop};
use archgym_core::sweep::Sweep;
use archgym_core::telemetry::Recorder;
use archgym_core::{Action, Agent, StepResult};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Listen address, e.g. `127.0.0.1:7170` (`:0` picks a free port).
    pub addr: String,
    /// State directory for job specs, journals, and outcomes.
    pub state_dir: PathBuf,
    /// Worker threads — the maximum number of concurrently running jobs.
    pub workers: usize,
    /// Admission-control knobs.
    pub quota: QuotaPolicy,
}

impl DaemonConfig {
    /// A config with default workers (2) and quotas.
    pub fn new(addr: impl Into<String>, state_dir: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            addr: addr.into(),
            state_dir: state_dir.into(),
            workers: 2,
            quota: QuotaPolicy::default(),
        }
    }
}

#[derive(Debug, Clone)]
struct JobProgress {
    state: JobState,
    best_reward: Option<f64>,
    samples: u64,
    error: Option<String>,
}

/// In-memory state for one job: live progress, the event backlog every
/// new watcher replays, and the subscribed watcher sockets.
struct JobHandle {
    id: JobId,
    tenant: String,
    spec: JobSpec,
    // Lock order: events → progress → watchers. `events` doubles as the
    // barrier that makes watch registration race-free against finish().
    events: Mutex<Vec<String>>,
    progress: Mutex<JobProgress>,
    watchers: Mutex<Vec<TcpStream>>,
    cancel: AtomicBool,
}

impl JobHandle {
    fn new(job: &PersistedJob, state: JobState) -> JobHandle {
        JobHandle {
            id: job.id,
            tenant: job.tenant.clone(),
            spec: job.spec.clone(),
            events: Mutex::new(Vec::new()),
            progress: Mutex::new(JobProgress {
                state,
                best_reward: None,
                samples: 0,
                error: None,
            }),
            watchers: Mutex::new(Vec::new()),
            cancel: AtomicBool::new(false),
        }
    }

    fn from_outcome(job: &PersistedJob, outcome: &JobOutcome) -> JobHandle {
        let handle = JobHandle::new(job, outcome.state);
        {
            let mut progress = handle.progress.lock().expect("progress lock");
            progress.best_reward = outcome.best_reward;
            progress.samples = outcome.samples;
            progress.error = outcome.error.clone();
        }
        handle
    }

    fn status(&self) -> JobStatus {
        let progress = self.progress.lock().expect("progress lock").clone();
        JobStatus {
            job: self.id,
            tenant: self.tenant.clone(),
            state: progress.state,
            best_reward: progress.best_reward,
            samples: progress.samples,
            budget: self.spec.budget,
            error: progress.error,
        }
    }

    fn set_state(&self, state: JobState) {
        self.progress.lock().expect("progress lock").state = state;
    }

    /// Ingest one line from a run's telemetry trace: update live
    /// progress from per-batch records and fan the event out to every
    /// watcher (dead watchers are dropped).
    fn ingest_trace_line(&self, line: &str) {
        let Ok(data) = parse_json(line) else {
            return;
        };
        let frame = Response::Event {
            job: self.id,
            data: data.clone(),
        }
        .to_line();
        let mut events = self.events.lock().expect("events lock");
        events.push(frame.clone());
        {
            let mut progress = self.progress.lock().expect("progress lock");
            if let Ok(samples) = data.field("samples_used").and_then(Json::as_u64) {
                progress.samples = samples;
            }
            if let Ok(best) = data.field("best_reward").and_then(Json::as_f64) {
                progress.best_reward = Some(best);
            }
        }
        let mut watchers = self.watchers.lock().expect("watchers lock");
        watchers.retain_mut(|w| writeln!(w, "{frame}").is_ok());
    }

    /// Record a terminal outcome and close every watch stream with a
    /// `done` frame. Holding the events lock makes this atomic against
    /// concurrent watch registration.
    fn finish(&self, outcome: &JobOutcome) {
        let _events = self.events.lock().expect("events lock");
        {
            let mut progress = self.progress.lock().expect("progress lock");
            progress.state = outcome.state;
            progress.best_reward = outcome.best_reward;
            progress.samples = outcome.samples;
            progress.error = outcome.error.clone();
        }
        let frame = Response::Done {
            job: self.id,
            state: outcome.state,
            best_reward: outcome.best_reward,
            samples: outcome.samples,
        }
        .to_line();
        let mut watchers = self.watchers.lock().expect("watchers lock");
        for mut w in watchers.drain(..) {
            let _ = writeln!(w, "{frame}");
        }
    }
}

/// A `Write` sink for [`Recorder::set_trace`] that forwards each
/// completed trace line to the job handle.
struct EventSink {
    handle: Arc<JobHandle>,
    buf: Vec<u8>,
}

impl std::io::Write for EventSink {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(data);
        while let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.buf.drain(..=pos).collect();
            if let Ok(text) = std::str::from_utf8(&line) {
                let text = text.trim();
                if !text.is_empty() {
                    self.handle.ingest_trace_line(text);
                }
            }
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Wraps an agent so a raised cancel flag reads as convergence: the
/// next `propose` returns no candidates and the search loop settles
/// what it has and stops — no samples are torn mid-batch.
struct Cancellable {
    inner: Box<dyn Agent>,
    flag: Arc<JobHandle>,
}

impl Agent for Cancellable {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn propose(&mut self, max_batch: usize) -> Vec<Action> {
        if self.flag.cancel.load(Ordering::SeqCst) {
            return Vec::new();
        }
        self.inner.propose(max_batch)
    }

    fn observe(&mut self, results: &[(Action, StepResult)]) {
        self.inner.observe(results);
    }

    fn batch_hint(&self) -> Option<usize> {
        self.inner.batch_hint()
    }
}

struct Inner {
    config: DaemonConfig,
    store: JobStore,
    sched: Mutex<Scheduler>,
    work_cv: Condvar,
    jobs: Mutex<HashMap<u64, Arc<JobHandle>>>,
    names: Mutex<HashMap<String, JobId>>,
    next_id: Mutex<u64>,
    shutdown: AtomicBool,
}

/// A bound daemon, ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    inner: Arc<Inner>,
}

impl Server {
    /// Bind the listen socket, open the state directory, and re-admit
    /// every persisted job that never reached a terminal state (in
    /// original submit order — their journals make the reruns resume
    /// rather than restart).
    pub fn bind(config: DaemonConfig) -> Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let store = JobStore::open(&config.state_dir)?;
        let next_id = store.next_id()?;
        let mut sched = Scheduler::new(config.quota);
        let mut jobs = HashMap::new();
        let mut names = HashMap::new();
        for (job, outcome) in store.load()? {
            let handle = match &outcome {
                Some(outcome) => JobHandle::from_outcome(&job, outcome),
                None => JobHandle::new(&job, JobState::Queued),
            };
            let handle = Arc::new(handle);
            if let Some(name) = &job.name {
                names.insert(name.clone(), job.id);
            }
            if outcome.is_none() {
                match sched.submit(job.id, &job.tenant) {
                    Admission::Enqueued { .. } => {}
                    Admission::Rejected { reason, .. } => {
                        // Quotas shrank across the restart; surface the
                        // job as failed rather than dropping it silently.
                        let failed = JobOutcome {
                            state: JobState::Failed,
                            best_reward: None,
                            samples: 0,
                            error: Some(format!("not re-admitted after restart: {reason}")),
                        };
                        store.record_outcome(job.id, &failed)?;
                        handle.finish(&failed);
                    }
                }
            }
            jobs.insert(job.id.0, handle);
        }
        Ok(Server {
            listener,
            local_addr,
            inner: Arc::new(Inner {
                config,
                store,
                sched: Mutex::new(sched),
                work_cv: Condvar::new(),
                jobs: Mutex::new(jobs),
                names: Mutex::new(names),
                next_id: Mutex::new(next_id),
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serve until a `shutdown` request arrives. Workers finish their
    /// in-flight jobs before this returns; queued jobs stay persisted
    /// for the next start.
    pub fn run(self) -> Result<()> {
        let mut workers = Vec::new();
        for _ in 0..self.inner.config.workers.max(1) {
            let inner = Arc::clone(&self.inner);
            workers.push(thread::spawn(move || worker_loop(&inner)));
        }
        for stream in self.listener.incoming() {
            if self.inner.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let inner = Arc::clone(&self.inner);
            let addr = self.local_addr;
            thread::spawn(move || handle_conn(&inner, addr, stream));
        }
        self.inner.work_cv.notify_all();
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let id = {
            let mut sched = inner.sched.lock().expect("scheduler lock");
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = sched.next_runnable() {
                    break id;
                }
                sched = inner.work_cv.wait(sched).expect("scheduler lock");
            }
        };
        let handle = inner
            .jobs
            .lock()
            .expect("jobs lock")
            .get(&id.0)
            .cloned()
            .expect("runnable job has a handle");
        handle.set_state(JobState::Running);
        let outcome = run_job(inner, &handle);
        let record = inner.store.record_outcome(id, &outcome);
        handle.finish(&outcome);
        {
            let mut sched = inner.sched.lock().expect("scheduler lock");
            sched.finish(id);
        }
        inner.work_cv.notify_all();
        if let Err(err) = record {
            eprintln!("archgymd: failed to persist outcome for {id}: {err}");
        }
    }
}

/// Execute one job to a terminal outcome. Panics inside the run are
/// caught and reported as a failed job; the daemon itself never dies.
fn run_job(inner: &Arc<Inner>, handle: &Arc<JobHandle>) -> JobOutcome {
    let result =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match handle.spec.kind {
            JobKind::Search => run_search(inner, handle),
            JobKind::Compare => run_compare(inner, handle),
            JobKind::Sweep => run_sweep(inner, handle),
        }));
    let cancelled = handle.cancel.load(Ordering::SeqCst);
    match result {
        Ok(Ok((best_reward, samples))) => JobOutcome {
            state: if cancelled {
                JobState::Cancelled
            } else {
                JobState::Done
            },
            best_reward,
            samples,
            error: None,
        },
        Ok(Err(err)) => JobOutcome {
            state: JobState::Failed,
            best_reward: None,
            samples: 0,
            error: Some(err.to_string()),
        },
        Err(_) => JobOutcome {
            state: JobState::Failed,
            best_reward: None,
            samples: 0,
            error: Some("job panicked".into()),
        },
    }
}

fn run_config(spec: &JobSpec) -> RunConfig {
    RunConfig::with_budget(spec.budget)
        .batch(spec.batch)
        .record(false)
        .jobs(spec.eval_jobs.max(1))
}

fn streaming_driver(spec: &JobSpec, handle: &Arc<JobHandle>) -> SearchLoop {
    let recorder = Recorder::new();
    recorder.set_trace(EventSink {
        handle: Arc::clone(handle),
        buf: Vec::new(),
    });
    SearchLoop::new(run_config(spec)).with_telemetry(recorder)
}

fn run_one(
    inner: &Arc<Inner>,
    handle: &Arc<JobHandle>,
    agent_name: &str,
    journal: PathBuf,
) -> Result<RunResult> {
    let spec = &handle.spec;
    let env = make_env(&spec.env, Some(&spec.objective))?;
    let kind = AgentKind::parse(agent_name)?;
    let mut agent = Cancellable {
        inner: build_agent(kind, env.space(), &Default::default(), spec.seed)?,
        flag: Arc::clone(handle),
    };
    let _ = inner; // journal path already resolved by the caller
    match &spec.proxy {
        // Screened jobs run through the proxy layer; the screener's
        // decisions are journaled, so daemon restarts resume them
        // bit-identically like plain jobs.
        Some(policy) => {
            let mut screener = archgym_proxy::OnlineProxy::with_defaults(*policy, spec.seed)?;
            streaming_driver(spec, handle).run_screened_resumable_pooled(
                &mut agent,
                env,
                &mut screener,
                journal,
            )
        }
        None => streaming_driver(spec, handle).run_resumable_pooled(&mut agent, env, journal),
    }
}

fn run_search(inner: &Arc<Inner>, handle: &Arc<JobHandle>) -> Result<(Option<f64>, u64)> {
    let journal = inner.store.journal_path(handle.id);
    let result = run_one(inner, handle, &handle.spec.agent.clone(), journal)?;
    Ok((Some(result.best_reward), result.samples_used))
}

fn run_compare(inner: &Arc<Inner>, handle: &Arc<JobHandle>) -> Result<(Option<f64>, u64)> {
    let mut best: Option<f64> = None;
    let mut samples = 0;
    for agent in &handle.spec.agents.clone() {
        if handle.cancel.load(Ordering::SeqCst) {
            break;
        }
        let journal = inner.store.agent_journal_path(handle.id, agent);
        let result = run_one(inner, handle, agent, journal)?;
        samples += result.samples_used;
        if best.is_none_or(|b| result.best_reward > b) {
            best = Some(result.best_reward);
        }
    }
    Ok((best, samples))
}

/// Sweeps are deterministic in the spec, so a restarted daemon reruns
/// them from scratch instead of journaling every grid cell.
fn run_sweep(inner: &Arc<Inner>, handle: &Arc<JobHandle>) -> Result<(Option<f64>, u64)> {
    let _ = inner;
    let spec = &handle.spec;
    let proto = make_env(&spec.env, Some(&spec.objective))?;
    let space = proto.space().clone();
    let kind = AgentKind::parse(&spec.agent)?;
    // Same default cap as `archgym-cli sweep --grid`.
    let assignments: Vec<HyperMap> = default_grid(kind).iter().take(9).collect();
    let recorder = Recorder::new();
    recorder.set_trace(EventSink {
        handle: Arc::clone(handle),
        buf: Vec::new(),
    });
    let cancel = Arc::clone(handle);
    let result = Sweep::new(RunConfig::with_budget(spec.budget).record(false))
        .seeds(0..spec.sweep_seeds)
        .jobs(spec.eval_jobs.max(1))
        .telemetry(&recorder)
        .run_assignments(
            kind.name(),
            &assignments,
            || proto.clone(),
            move |hyper, seed| {
                Ok(Box::new(Cancellable {
                    inner: build_agent(kind, &space, hyper, seed)?,
                    flag: Arc::clone(&cancel),
                }) as Box<dyn Agent>)
            },
        )?;
    let winner = result.winner();
    let samples = result
        .best_rewards()
        .len()
        .checked_mul(spec.budget as usize)
        .unwrap_or(0) as u64;
    Ok((Some(winner.result.best_reward), samples))
}

fn error(code: ErrorCode, message: impl Into<String>) -> Response {
    Response::Error {
        code,
        message: message.into(),
    }
}

fn validate_spec(spec: &JobSpec) -> Result<()> {
    spec.validate()?;
    // Dry-run the factories so a bad env/agent is a typed reject at
    // submit time, not a failed job later.
    make_env(&spec.env, Some(&spec.objective))?;
    match spec.kind {
        JobKind::Compare => {
            for agent in &spec.agents {
                AgentKind::parse(agent)?;
            }
        }
        JobKind::Search | JobKind::Sweep => {
            AgentKind::parse(&spec.agent)?;
        }
    }
    Ok(())
}

fn submit(inner: &Arc<Inner>, tenant: String, name: Option<String>, spec: JobSpec) -> Response {
    if inner.shutdown.load(Ordering::SeqCst) {
        return Response::Rejected {
            reason: "daemon is shutting down".into(),
            retry_after_ms: inner.config.quota.retry_after_ms,
        };
    }
    if let Err(err) = validate_spec(&spec) {
        return error(ErrorCode::BadSpec, err.to_string());
    }
    let id = {
        let mut next = inner.next_id.lock().expect("id lock");
        let id = JobId(*next);
        *next += 1;
        id
    };
    if let Some(name) = &name {
        let mut names = inner.names.lock().expect("names lock");
        if let Some(existing) = names.get(name) {
            return error(
                ErrorCode::DuplicateJob,
                format!("job name '{name}' is already taken by {existing}"),
            );
        }
        names.insert(name.clone(), id);
    }
    let job = PersistedJob {
        id,
        tenant: tenant.clone(),
        name: name.clone(),
        spec,
    };
    if let Err(err) = inner.store.record_submitted(&job) {
        if let Some(name) = &name {
            inner.names.lock().expect("names lock").remove(name);
        }
        return error(ErrorCode::Internal, format!("could not persist job: {err}"));
    }
    let handle = Arc::new(JobHandle::new(&job, JobState::Queued));
    inner
        .jobs
        .lock()
        .expect("jobs lock")
        .insert(id.0, Arc::clone(&handle));
    let admission = inner
        .sched
        .lock()
        .expect("scheduler lock")
        .submit(id, &tenant);
    match admission {
        Admission::Enqueued { position } => {
            inner.work_cv.notify_all();
            Response::Accepted {
                job: id,
                position: position as u64,
            }
        }
        Admission::Rejected {
            reason,
            retry_after_ms,
        } => {
            inner.jobs.lock().expect("jobs lock").remove(&id.0);
            if let Some(name) = &name {
                inner.names.lock().expect("names lock").remove(name);
            }
            inner.store.discard(id);
            Response::Rejected {
                reason,
                retry_after_ms,
            }
        }
    }
}

fn lookup(inner: &Arc<Inner>, job: JobId) -> Option<Arc<JobHandle>> {
    inner.jobs.lock().expect("jobs lock").get(&job.0).cloned()
}

fn cancel(inner: &Arc<Inner>, job: JobId) -> Response {
    let Some(handle) = lookup(inner, job) else {
        return error(ErrorCode::UnknownJob, format!("no job {job}"));
    };
    let state = handle.progress.lock().expect("progress lock").state;
    if state.is_terminal() {
        return error(
            ErrorCode::BadState,
            format!("{job} already finished as {}", state.name()),
        );
    }
    let was_queued = inner
        .sched
        .lock()
        .expect("scheduler lock")
        .cancel_queued(job);
    if was_queued {
        let outcome = JobOutcome {
            state: JobState::Cancelled,
            best_reward: None,
            samples: 0,
            error: None,
        };
        if let Err(err) = inner.store.record_outcome(job, &outcome) {
            eprintln!("archgymd: failed to persist cancel for {job}: {err}");
        }
        handle.finish(&outcome);
    } else {
        // Running (or about to be claimed): the cancel flag makes the
        // agent stop proposing and the worker records the outcome.
        handle.cancel.store(true, Ordering::SeqCst);
    }
    Response::Status(handle.status())
}

fn list_jobs(inner: &Arc<Inner>) -> Response {
    let jobs = inner.jobs.lock().expect("jobs lock");
    let mut statuses: Vec<JobStatus> = jobs.values().map(|handle| handle.status()).collect();
    statuses.sort_by_key(|status| status.job);
    Response::Jobs(statuses)
}

fn send(out: &mut TcpStream, response: &Response) -> bool {
    writeln!(out, "{}", response.to_line()).is_ok()
}

/// Attach `out` to the job's event stream: replay the backlog, then
/// either close with a `done` frame (terminal job) or register as a
/// live watcher. Returns `true` when the socket was handed over.
fn watch(handle: &Arc<JobHandle>, mut out: TcpStream) -> bool {
    let _events_guard = {
        let events = handle.events.lock().expect("events lock");
        for line in events.iter() {
            if writeln!(out, "{line}").is_err() {
                return true; // client went away; nothing to keep
            }
        }
        events
    };
    let progress = handle.progress.lock().expect("progress lock").clone();
    if progress.state.is_terminal() {
        let frame = Response::Done {
            job: handle.id,
            state: progress.state,
            best_reward: progress.best_reward,
            samples: progress.samples,
        };
        let _ = writeln!(out, "{}", frame.to_line());
        return false;
    }
    handle.watchers.lock().expect("watchers lock").push(out);
    true
}

fn handle_conn(inner: &Arc<Inner>, local: SocketAddr, stream: TcpStream) {
    let Ok(reader_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(reader_half);
    let mut out = stream;
    loop {
        let mut buf = Vec::new();
        let n = match (&mut reader)
            .take(MAX_LINE_BYTES as u64 + 1)
            .read_until(b'\n', &mut buf)
        {
            Ok(n) => n,
            Err(_) => return,
        };
        if n == 0 {
            return; // clean EOF
        }
        if buf.last() == Some(&b'\n') {
            buf.pop();
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
        }
        if buf.len() > MAX_LINE_BYTES {
            let _ = send(
                &mut out,
                &error(
                    ErrorCode::OversizedFrame,
                    format!("frame exceeds {MAX_LINE_BYTES} bytes"),
                ),
            );
            return;
        }
        let Ok(text) = std::str::from_utf8(&buf) else {
            if !send(&mut out, &error(ErrorCode::NonUtf8, "frame is not UTF-8")) {
                return;
            }
            continue;
        };
        if text.trim().is_empty() {
            continue;
        }
        let request = match Request::from_line(text.trim()) {
            Ok(request) => request,
            Err(err) => {
                if !send(&mut out, &error(ErrorCode::BadFrame, err.to_string())) {
                    return;
                }
                continue;
            }
        };
        let reply = match request {
            Request::Submit { tenant, name, spec } => submit(inner, tenant, name, spec),
            Request::Status { job } => match lookup(inner, job) {
                Some(handle) => Response::Status(handle.status()),
                None => error(ErrorCode::UnknownJob, format!("no job {job}")),
            },
            Request::List => list_jobs(inner),
            Request::Cancel { job } => cancel(inner, job),
            Request::Ping => Response::Pong {
                version: PROTOCOL_VERSION,
            },
            Request::Watch { job } => match lookup(inner, job) {
                Some(handle) => {
                    if watch(&handle, out) {
                        // The write half now belongs to the watcher
                        // list; this connection is stream-only.
                        return;
                    }
                    return;
                }
                None => error(ErrorCode::UnknownJob, format!("no job {job}")),
            },
            Request::Shutdown => {
                let _ = send(&mut out, &Response::Stopping);
                inner.shutdown.store(true, Ordering::SeqCst);
                inner.work_cv.notify_all();
                // Poke the accept loop so it observes the flag.
                let _ = TcpStream::connect(local);
                return;
            }
        };
        if !send(&mut out, &reply) {
            return;
        }
    }
}
