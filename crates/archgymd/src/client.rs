//! A minimal blocking client for the `archgymd` wire protocol, shared
//! by the CLI subcommands, the bench harness, and the integration
//! tests.
//!
//! Hardening: [`ConnectOptions`] puts a bound on connect and read so a
//! wedged daemon cannot hang a client forever, and [`WatchStream`]
//! follows a job's event stream across connection drops — it counts the
//! events it has delivered and, on reconnect, skips that many replayed
//! backlog frames, so the caller sees each event exactly once.
//! Reconnect pacing is seeded exponential backoff (deterministic given
//! the seed, full-jitter via the splitmix64 finalizer).

use crate::protocol::{JobStatus, Request, Response, MAX_LINE_BYTES};
use archgym_core::error::{ArchGymError, Result};
use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

fn bad(msg: String) -> ArchGymError {
    ArchGymError::InvalidConfig(msg)
}

/// Connection and read bounds for [`Client::connect_with`].
#[derive(Debug, Clone)]
pub struct ConnectOptions {
    /// Give up on connect after this long (default 5 s).
    pub connect_timeout: Duration,
    /// Per-frame read timeout; `None` blocks forever (the default —
    /// watch streams are legitimately quiet between batches).
    pub read_timeout: Option<Duration>,
}

impl Default for ConnectOptions {
    fn default() -> ConnectOptions {
        ConnectOptions {
            connect_timeout: Duration::from_secs(5),
            read_timeout: None,
        }
    }
}

/// One open connection to a daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:7170`) with default bounds.
    pub fn connect(addr: &str) -> Result<Client> {
        Self::connect_with(addr, &ConnectOptions::default())
    }

    /// Connect with explicit connect/read bounds.
    pub fn connect_with(addr: &str, options: &ConnectOptions) -> Result<Client> {
        let resolved = addr
            .to_socket_addrs()
            .map_err(|e| bad(format!("cannot resolve {addr}: {e}")))?
            .next()
            .ok_or_else(|| bad(format!("cannot resolve {addr}: no addresses")))?;
        let writer = TcpStream::connect_timeout(&resolved, options.connect_timeout)
            .map_err(|e| bad(format!("cannot reach archgymd at {addr}: {e}")))?;
        writer.set_read_timeout(options.read_timeout)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Send one request frame.
    pub fn send(&mut self, request: &Request) -> Result<()> {
        writeln!(self.writer, "{}", request.to_line())?;
        Ok(())
    }

    /// Read the next response frame. `Ok(None)` means the daemon closed
    /// the connection (end of a watch stream).
    pub fn recv(&mut self) -> Result<Option<Response>> {
        let mut buf = Vec::new();
        let n = (&mut self.reader)
            .take(MAX_LINE_BYTES as u64 + 1)
            .read_until(b'\n', &mut buf)?;
        if n == 0 {
            return Ok(None);
        }
        let text =
            std::str::from_utf8(&buf).map_err(|_| bad("daemon sent a non-UTF-8 frame".into()))?;
        Ok(Some(Response::from_line(text.trim())?))
    }

    /// Send `request` and read one reply.
    pub fn round_trip(&mut self, request: &Request) -> Result<Response> {
        self.send(request)?;
        self.recv()?
            .ok_or_else(|| bad("daemon closed the connection before replying".into()))
    }
}

/// Open a fresh connection, perform one request/response, close.
pub fn request_one(addr: &str, request: &Request) -> Result<Response> {
    Client::connect(addr)?.round_trip(request)
}

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seeded full-jitter exponential backoff: attempt `n` sleeps a
/// deterministic value in `[0, min(base << n, cap))`.
pub fn backoff_ms(seed: u64, attempt: u32, base_ms: u64, cap_ms: u64) -> u64 {
    let ceiling = base_ms
        .saturating_mul(1u64 << attempt.min(16))
        .min(cap_ms)
        .max(1);
    mix(seed ^ ((attempt as u64) << 32).wrapping_add(0x9e37_79b9_7f4a_7c15)) % ceiling
}

/// A reconnecting watch stream for one job: yields each event frame
/// exactly once and ends with the job's `done` frame, riding out
/// connection drops and daemon restarts in between.
///
/// The daemon replays a job's full event backlog to every new watcher;
/// the stream counts events already delivered and silently discards
/// that many replayed frames after a reconnect, so the caller never
/// sees a duplicate. Reconnects are paced by [`backoff_ms`].
pub struct WatchStream {
    addr: String,
    job: archgym_core::jobs::JobId,
    options: ConnectOptions,
    seed: u64,
    max_attempts: u32,
    events_seen: u64,
    client: Option<Client>,
    reconnects: u64,
}

/// One item from a [`WatchStream`].
#[derive(Debug, Clone)]
pub enum WatchItem {
    /// A per-batch event frame (the raw JSON payload).
    Event(archgym_core::codec::Json),
    /// The terminal frame: the stream is complete.
    Done {
        /// Terminal state.
        state: archgym_core::jobs::JobState,
        /// Final best reward, if any batch settled.
        best_reward: Option<f64>,
        /// Total simulator samples consumed.
        samples: u64,
    },
}

impl WatchStream {
    /// Start watching `job` on the daemon at `addr`. `seed` paces the
    /// reconnect backoff; up to `max_attempts` consecutive failed
    /// reconnects before the stream errors out.
    pub fn open(
        addr: impl Into<String>,
        job: archgym_core::jobs::JobId,
        options: ConnectOptions,
        seed: u64,
        max_attempts: u32,
    ) -> WatchStream {
        WatchStream {
            addr: addr.into(),
            job,
            options,
            seed,
            max_attempts,
            events_seen: 0,
            client: None,
            reconnects: 0,
        }
    }

    /// Total successful reconnects so far (for tests and diagnostics).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn connect(&mut self) -> Result<()> {
        let mut attempt = 0u32;
        loop {
            match Client::connect_with(&self.addr, &self.options) {
                Ok(mut client) => {
                    client.send(&Request::Watch { job: self.job })?;
                    if self.events_seen > 0 || attempt > 0 {
                        self.reconnects += 1;
                    }
                    self.client = Some(client);
                    return Ok(());
                }
                Err(err) => {
                    attempt += 1;
                    if attempt >= self.max_attempts {
                        return Err(bad(format!(
                            "watch {} lost after {attempt} attempts: {err}",
                            self.job
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(backoff_ms(
                        self.seed, attempt, 50, 2_000,
                    )));
                }
            }
        }
    }

    /// Block until the next unseen event or the terminal frame. (Not
    /// an `Iterator`: the stream ends with a terminal item, not
    /// `None`, and every call can fail with a typed error.)
    pub fn next_item(&mut self) -> Result<WatchItem> {
        let mut skip = 0u64;
        loop {
            if self.client.is_none() {
                self.connect()?;
                skip = self.events_seen;
            }
            let client = self.client.as_mut().expect("connected");
            match client.recv() {
                Ok(Some(Response::Event { data, .. })) => {
                    if skip > 0 {
                        skip -= 1; // replayed backlog we already delivered
                        continue;
                    }
                    self.events_seen += 1;
                    return Ok(WatchItem::Event(data));
                }
                Ok(Some(Response::Done {
                    state,
                    best_reward,
                    samples,
                    ..
                })) => {
                    return Ok(WatchItem::Done {
                        state,
                        best_reward,
                        samples,
                    });
                }
                Ok(Some(Response::Error { code, message, .. })) => {
                    return Err(bad(format!(
                        "watch {} failed: {}: {message}",
                        self.job,
                        code.name()
                    )));
                }
                Ok(Some(_)) => continue, // unexpected but harmless frame
                Ok(None) | Err(_) => {
                    // Dropped mid-stream: reconnect and dedup the replay.
                    self.client = None;
                }
            }
        }
    }

    /// Drain the stream to completion, returning the final status-like
    /// summary. Events are counted, not kept.
    pub fn wait_done(&mut self) -> Result<JobStatus> {
        loop {
            if let WatchItem::Done {
                state,
                best_reward,
                samples,
            } = self.next_item()?
            {
                return Ok(JobStatus {
                    job: self.job,
                    tenant: String::new(),
                    state,
                    best_reward,
                    samples,
                    budget: 0,
                    error: None,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        for attempt in 0..10 {
            let a = backoff_ms(7, attempt, 50, 2_000);
            let b = backoff_ms(7, attempt, 50, 2_000);
            assert_eq!(a, b, "same seed and attempt, same sleep");
            assert!(a < 2_000, "cap respected");
            let ceiling = 50u64.saturating_mul(1 << attempt).min(2_000);
            assert!(a < ceiling.max(1), "within the exponential ceiling");
        }
        // Different seeds decorrelate the fleet.
        let spread: std::collections::HashSet<u64> =
            (0..32).map(|seed| backoff_ms(seed, 5, 50, 2_000)).collect();
        assert!(spread.len() > 16, "jitter actually jitters: {spread:?}");
    }
}
