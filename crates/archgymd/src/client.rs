//! A minimal blocking client for the `archgymd` wire protocol, shared
//! by the CLI subcommands, the bench harness, and the integration
//! tests.

use crate::protocol::{Request, Response, MAX_LINE_BYTES};
use archgym_core::error::{ArchGymError, Result};
use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::TcpStream;

fn bad(msg: String) -> ArchGymError {
    ArchGymError::InvalidConfig(msg)
}

/// One open connection to a daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:7170`).
    pub fn connect(addr: &str) -> Result<Client> {
        let writer = TcpStream::connect(addr)
            .map_err(|e| bad(format!("cannot reach archgymd at {addr}: {e}")))?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Send one request frame.
    pub fn send(&mut self, request: &Request) -> Result<()> {
        writeln!(self.writer, "{}", request.to_line())?;
        Ok(())
    }

    /// Read the next response frame. `Ok(None)` means the daemon closed
    /// the connection (end of a watch stream).
    pub fn recv(&mut self) -> Result<Option<Response>> {
        let mut buf = Vec::new();
        let n = (&mut self.reader)
            .take(MAX_LINE_BYTES as u64 + 1)
            .read_until(b'\n', &mut buf)?;
        if n == 0 {
            return Ok(None);
        }
        let text =
            std::str::from_utf8(&buf).map_err(|_| bad("daemon sent a non-UTF-8 frame".into()))?;
        Ok(Some(Response::from_line(text.trim())?))
    }

    /// Send `request` and read one reply.
    pub fn round_trip(&mut self, request: &Request) -> Result<Response> {
        self.send(request)?;
        self.recv()?
            .ok_or_else(|| bad("daemon closed the connection before replying".into()))
    }
}

/// Open a fresh connection, perform one request/response, close.
pub fn request_one(addr: &str, request: &Request) -> Result<Response> {
    Client::connect(addr)?.round_trip(request)
}
