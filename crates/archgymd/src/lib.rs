//! `archgymd` — a multi-tenant search service for ArchGym.
//!
//! The daemon exposes the gym's search/compare/sweep drivers over a
//! line-delimited JSON protocol on plain TCP (no external
//! dependencies; framing reuses the in-repo codec). Submitted jobs
//! pass quota-based admission control ([`archgym_core::jobs`]), run on
//! a fixed worker fleet, stream per-batch telemetry to watchers, and
//! are journaled so a killed daemon resumes in-flight jobs
//! bit-identically on restart.
//!
//! Layers:
//!
//! * [`protocol`] — the wire frames and their canonical encoding.
//! * [`store`] — the state directory (specs, journals, outcomes),
//!   checksummed and quarantine-on-corruption, behind the
//!   [`archgym_core::storeio`] fault-injectable I/O seam.
//! * [`server`] — listener (connection-capped), scheduler, supervised
//!   worker fleet (deadlines, stall watchdog), event streaming, and
//!   drain/interrupt shutdown.
//! * [`client`] — a small blocking client used by the CLI and tests,
//!   with connect/read timeouts and a reconnecting, deduplicating
//!   [`client::WatchStream`].
//! * [`spec`] — environment-spec parsing (`dram/stream`, ...), shared
//!   with `archgym-cli`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;
pub mod spec;
pub mod store;

pub use client::{request_one, Client, ConnectOptions, WatchItem, WatchStream};
pub use protocol::{ErrorCode, JobStatus, Request, Response, MAX_LINE_BYTES, PROTOCOL_VERSION};
pub use server::{DaemonConfig, Server};
pub use store::{JobOutcome, JobStore, PersistedJob};
