//! The `archgymd` wire protocol: line-delimited JSON frames over TCP.
//!
//! Every frame is one JSON object on one line, encoded with the in-repo
//! [`codec`](archgym_core::codec) (canonical field order, bit-exact
//! `f64` round-trips) and tagged by a `"type"` field. Requests flow
//! client → daemon, responses daemon → client. A `watch` request
//! upgrades the connection to a response-only event stream.
//!
//! Robustness contract: the daemon replies to any malformed input —
//! truncated frame, oversized line, non-UTF-8 bytes, unknown job ID,
//! duplicate submit — with a typed [`Response::Error`] frame and never
//! panics. Lines longer than [`MAX_LINE_BYTES`] are rejected without
//! being buffered further.

use archgym_core::codec::{parse_json, push_json_f64, push_json_str, Json};
use archgym_core::error::{ArchGymError, Result};
use archgym_core::jobs::{JobId, JobSpec, JobState};
use std::fmt::Write as _;

/// Protocol revision, reported by `ping`/`pong`.
pub const PROTOCOL_VERSION: u64 = 1;

/// Hard cap on one frame line (bytes, newline included). Longer lines
/// get a typed `oversized-frame` error and the connection is closed.
pub const MAX_LINE_BYTES: usize = 1 << 20;

fn bad(msg: String) -> ArchGymError {
    ArchGymError::InvalidConfig(msg)
}

/// Typed error codes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not a valid frame (bad JSON, missing fields,
    /// unknown type) — includes truncated frames.
    BadFrame,
    /// The line exceeded [`MAX_LINE_BYTES`].
    OversizedFrame,
    /// The line was not valid UTF-8.
    NonUtf8,
    /// The referenced job ID is not known to the daemon.
    UnknownJob,
    /// A named submit collided with an existing job name.
    DuplicateJob,
    /// The submitted job spec failed validation (unknown env/agent...).
    BadSpec,
    /// The request is not valid for the job's current state.
    BadState,
    /// The daemon failed internally (e.g. could not persist the job).
    Internal,
    /// The daemon is at its concurrent-connection cap (or draining);
    /// the error carries a `retry_after_ms` back-off hint.
    Busy,
}

impl ErrorCode {
    /// The wire name of this code.
    pub fn name(&self) -> &'static str {
        match self {
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::OversizedFrame => "oversized-frame",
            ErrorCode::NonUtf8 => "non-utf8",
            ErrorCode::UnknownJob => "unknown-job",
            ErrorCode::DuplicateJob => "duplicate-job",
            ErrorCode::BadSpec => "bad-spec",
            ErrorCode::BadState => "bad-state",
            ErrorCode::Internal => "internal",
            ErrorCode::Busy => "busy",
        }
    }

    /// Parse a wire name back into a code.
    pub fn parse(name: &str) -> Result<ErrorCode> {
        Ok(match name {
            "bad-frame" => ErrorCode::BadFrame,
            "oversized-frame" => ErrorCode::OversizedFrame,
            "non-utf8" => ErrorCode::NonUtf8,
            "unknown-job" => ErrorCode::UnknownJob,
            "duplicate-job" => ErrorCode::DuplicateJob,
            "bad-spec" => ErrorCode::BadSpec,
            "bad-state" => ErrorCode::BadState,
            "internal" => ErrorCode::Internal,
            "busy" => ErrorCode::Busy,
            other => return Err(bad(format!("unknown error code '{other}'"))),
        })
    }
}

/// One job's externally visible status.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// The job's ID.
    pub job: JobId,
    /// The tenant that submitted it.
    pub tenant: String,
    /// Current lifecycle state.
    pub state: JobState,
    /// Best reward found so far (absent before the first settled batch).
    pub best_reward: Option<f64>,
    /// Simulator samples consumed so far.
    pub samples: u64,
    /// The job's sample budget.
    pub budget: u64,
    /// Failure message for `failed` jobs.
    pub error: Option<String>,
}

fn push_opt_str(out: &mut String, value: &Option<String>) {
    match value {
        Some(text) => push_json_str(out, text),
        None => out.push_str("null"),
    }
}

fn push_opt_f64(out: &mut String, value: Option<f64>) {
    match value {
        Some(v) => push_json_f64(out, v),
        None => out.push_str("null"),
    }
}

fn opt_str(json: &Json, key: &str) -> Result<Option<String>> {
    match json.field(key) {
        Ok(Json::Null) => Ok(None),
        Ok(value) => Ok(Some(value.as_str().map_err(bad)?.to_owned())),
        Err(_) => Ok(None),
    }
}

fn opt_f64(json: &Json, key: &str) -> Result<Option<f64>> {
    match json.field(key) {
        Ok(Json::Null) => Ok(None),
        Ok(value) => Ok(Some(value.as_f64().map_err(bad)?)),
        Err(_) => Ok(None),
    }
}

fn job_id(json: &Json, key: &str) -> Result<JobId> {
    let text = json.field(key).and_then(Json::as_str).map_err(bad)?;
    JobId::parse(text).ok_or_else(|| bad(format!("malformed job id '{text}'")))
}

impl JobStatus {
    fn push_body(&self, out: &mut String) {
        out.push_str("\"job\":");
        push_json_str(out, &self.job.to_string());
        out.push_str(",\"tenant\":");
        push_json_str(out, &self.tenant);
        out.push_str(",\"state\":");
        push_json_str(out, self.state.name());
        out.push_str(",\"best_reward\":");
        push_opt_f64(out, self.best_reward);
        let _ = write!(
            out,
            ",\"samples\":{},\"budget\":{}",
            self.samples, self.budget
        );
        out.push_str(",\"error\":");
        push_opt_str(out, &self.error);
    }

    fn from_json(json: &Json) -> Result<JobStatus> {
        Ok(JobStatus {
            job: job_id(json, "job")?,
            tenant: json
                .field("tenant")
                .and_then(Json::as_str)
                .map_err(bad)?
                .to_owned(),
            state: JobState::parse(json.field("state").and_then(Json::as_str).map_err(bad)?)?,
            best_reward: opt_f64(json, "best_reward")?,
            samples: json.field("samples").and_then(Json::as_u64).map_err(bad)?,
            budget: json.field("budget").and_then(Json::as_u64).map_err(bad)?,
            error: opt_str(json, "error")?,
        })
    }
}

/// A client → daemon frame.
// `Submit` carries a full inline `JobSpec` (now including the optional
// screening policy) and dwarfs the query variants; frames are transient
// per-connection values, so the size skew costs nothing worth boxing for.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job under a tenant; `name`, when given, must be unique
    /// across the daemon's lifetime (duplicates get a typed error).
    Submit {
        /// Tenant the job is accounted to for quota purposes.
        tenant: String,
        /// Optional client-chosen unique job name.
        name: Option<String>,
        /// What to run.
        spec: JobSpec,
    },
    /// Ask for one job's status.
    Status {
        /// The job to query.
        job: JobId,
    },
    /// List every job the daemon knows about.
    List,
    /// Subscribe to a job's event stream (backlog replays first).
    Watch {
        /// The job to watch.
        job: JobId,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// The job to cancel.
        job: JobId,
    },
    /// Liveness probe.
    Ping,
    /// Stop accepting work and shut the daemon down cleanly.
    Shutdown {
        /// Drain mode: stop admitting, let in-flight and queued jobs
        /// finish before exiting. Without drain, in-flight jobs are
        /// interrupted at the next batch boundary and left resumable.
        drain: bool,
        /// Upper bound on the drain wait in milliseconds; `0` uses the
        /// daemon's default. Ignored unless `drain` is set.
        deadline_ms: u64,
    },
}

impl Request {
    /// Encode as one canonical JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = String::from("{\"type\":");
        match self {
            Request::Submit { tenant, name, spec } => {
                out.push_str("\"submit\",\"tenant\":");
                push_json_str(&mut out, tenant);
                out.push_str(",\"name\":");
                push_opt_str(&mut out, name);
                out.push_str(",\"spec\":");
                out.push_str(&spec.encode());
            }
            Request::Status { job } => {
                out.push_str("\"status\",\"job\":");
                push_json_str(&mut out, &job.to_string());
            }
            Request::List => out.push_str("\"list\""),
            Request::Watch { job } => {
                out.push_str("\"watch\",\"job\":");
                push_json_str(&mut out, &job.to_string());
            }
            Request::Cancel { job } => {
                out.push_str("\"cancel\",\"job\":");
                push_json_str(&mut out, &job.to_string());
            }
            Request::Ping => out.push_str("\"ping\""),
            Request::Shutdown { drain, deadline_ms } => {
                out.push_str("\"shutdown\"");
                // Optional trailing fields: a plain shutdown encodes
                // byte-identically to the pre-drain frame.
                if *drain {
                    let _ = write!(out, ",\"drain\":true,\"deadline_ms\":{deadline_ms}");
                }
            }
        }
        out.push('}');
        out
    }

    /// Decode one line. Any malformation is an error (the daemon maps it
    /// to a typed `bad-frame` reply).
    pub fn from_line(line: &str) -> Result<Request> {
        let json = parse_json(line).map_err(bad)?;
        let kind = json.field("type").and_then(Json::as_str).map_err(bad)?;
        Ok(match kind {
            "submit" => Request::Submit {
                tenant: json
                    .field("tenant")
                    .and_then(Json::as_str)
                    .map_err(bad)?
                    .to_owned(),
                name: opt_str(&json, "name")?,
                spec: JobSpec::from_json(json.field("spec").map_err(bad)?)?,
            },
            "status" => Request::Status {
                job: job_id(&json, "job")?,
            },
            "list" => Request::List,
            "watch" => Request::Watch {
                job: job_id(&json, "job")?,
            },
            "cancel" => Request::Cancel {
                job: job_id(&json, "job")?,
            },
            "ping" => Request::Ping,
            // Tolerant decode: pre-drain clients send a bare frame.
            "shutdown" => Request::Shutdown {
                drain: json.field("drain").and_then(Json::as_bool).unwrap_or(false),
                deadline_ms: json
                    .field("deadline_ms")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
            },
            other => return Err(bad(format!("unknown request type '{other}'"))),
        })
    }
}

/// A daemon → client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The submit passed admission control.
    Accepted {
        /// The assigned job ID.
        job: JobId,
        /// 0-based queue position at admission time.
        position: u64,
    },
    /// The submit was turned away by admission control.
    Rejected {
        /// Why (queue full, tenant queue full).
        reason: String,
        /// Suggested client back-off before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// One job's status.
    Status(JobStatus),
    /// Every known job's status.
    Jobs(Vec<JobStatus>),
    /// A streamed telemetry/trace event from a running job.
    Event {
        /// The job the event belongs to.
        job: JobId,
        /// The event payload (per-batch trace record: settled samples,
        /// best-so-far reward, retries, ...).
        data: Json,
    },
    /// End of a watch stream: the job reached a terminal state.
    Done {
        /// The finished job.
        job: JobId,
        /// Terminal state (`done`, `failed`, or `cancelled`).
        state: JobState,
        /// Final best reward, if any batch settled.
        best_reward: Option<f64>,
        /// Total simulator samples consumed.
        samples: u64,
    },
    /// A typed error.
    Error {
        /// Machine-readable code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
        /// Suggested client back-off before retrying, in milliseconds.
        /// Carried by retryable errors (`busy`); absent otherwise, so
        /// the encoding of non-retryable errors is unchanged.
        retry_after_ms: Option<u64>,
    },
    /// Liveness reply.
    Pong {
        /// The daemon's [`PROTOCOL_VERSION`].
        version: u64,
    },
    /// Acknowledges a shutdown request.
    Stopping,
}

impl Response {
    /// Encode as one canonical JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = String::from("{\"type\":");
        match self {
            Response::Accepted { job, position } => {
                out.push_str("\"accepted\",\"job\":");
                push_json_str(&mut out, &job.to_string());
                let _ = write!(out, ",\"position\":{position}");
            }
            Response::Rejected {
                reason,
                retry_after_ms,
            } => {
                out.push_str("\"rejected\",\"reason\":");
                push_json_str(&mut out, reason);
                let _ = write!(out, ",\"retry_after_ms\":{retry_after_ms}");
            }
            Response::Status(status) => {
                out.push_str("\"status\",");
                status.push_body(&mut out);
            }
            Response::Jobs(jobs) => {
                out.push_str("\"jobs\",\"jobs\":[");
                for (i, status) in jobs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('{');
                    status.push_body(&mut out);
                    out.push('}');
                }
                out.push(']');
            }
            Response::Event { job, data } => {
                out.push_str("\"event\",\"job\":");
                push_json_str(&mut out, &job.to_string());
                out.push_str(",\"data\":");
                out.push_str(&data.encode());
            }
            Response::Done {
                job,
                state,
                best_reward,
                samples,
            } => {
                out.push_str("\"done\",\"job\":");
                push_json_str(&mut out, &job.to_string());
                out.push_str(",\"state\":");
                push_json_str(&mut out, state.name());
                out.push_str(",\"best_reward\":");
                push_opt_f64(&mut out, *best_reward);
                let _ = write!(out, ",\"samples\":{samples}");
            }
            Response::Error {
                code,
                message,
                retry_after_ms,
            } => {
                out.push_str("\"error\",\"code\":");
                push_json_str(&mut out, code.name());
                out.push_str(",\"message\":");
                push_json_str(&mut out, message);
                if let Some(ms) = retry_after_ms {
                    let _ = write!(out, ",\"retry_after_ms\":{ms}");
                }
            }
            Response::Pong { version } => {
                let _ = write!(out, "\"pong\",\"version\":{version}");
            }
            Response::Stopping => out.push_str("\"stopping\""),
        }
        out.push('}');
        out
    }

    /// Decode one line.
    pub fn from_line(line: &str) -> Result<Response> {
        let json = parse_json(line).map_err(bad)?;
        let kind = json.field("type").and_then(Json::as_str).map_err(bad)?;
        Ok(match kind {
            "accepted" => Response::Accepted {
                job: job_id(&json, "job")?,
                position: json.field("position").and_then(Json::as_u64).map_err(bad)?,
            },
            "rejected" => Response::Rejected {
                reason: json
                    .field("reason")
                    .and_then(Json::as_str)
                    .map_err(bad)?
                    .to_owned(),
                retry_after_ms: json
                    .field("retry_after_ms")
                    .and_then(Json::as_u64)
                    .map_err(bad)?,
            },
            "status" => Response::Status(JobStatus::from_json(&json)?),
            "jobs" => {
                let mut out = Vec::new();
                for entry in json.field("jobs").and_then(Json::as_arr).map_err(bad)? {
                    out.push(JobStatus::from_json(entry)?);
                }
                Response::Jobs(out)
            }
            "event" => Response::Event {
                job: job_id(&json, "job")?,
                data: json.field("data").map_err(bad)?.clone(),
            },
            "done" => Response::Done {
                job: job_id(&json, "job")?,
                state: JobState::parse(json.field("state").and_then(Json::as_str).map_err(bad)?)?,
                best_reward: opt_f64(&json, "best_reward")?,
                samples: json.field("samples").and_then(Json::as_u64).map_err(bad)?,
            },
            "error" => Response::Error {
                code: ErrorCode::parse(json.field("code").and_then(Json::as_str).map_err(bad)?)?,
                message: json
                    .field("message")
                    .and_then(Json::as_str)
                    .map_err(bad)?
                    .to_owned(),
                retry_after_ms: match json.field("retry_after_ms") {
                    Ok(value) => Some(value.as_u64().map_err(bad)?),
                    Err(_) => None,
                },
            },
            "pong" => Response::Pong {
                version: json.field("version").and_then(Json::as_u64).map_err(bad)?,
            },
            "stopping" => Response::Stopping,
            other => return Err(bad(format!("unknown response type '{other}'"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archgym_core::jobs::JobKind;

    fn spec() -> JobSpec {
        let mut spec = JobSpec::search("dram/stream", "ga", 2000, 3);
        spec.objective = "power:1.0".into();
        spec
    }

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Submit {
                tenant: "ci".into(),
                name: None,
                spec: spec(),
            },
            Request::Submit {
                tenant: "tênant \"q\"".into(),
                name: Some("nightly/dram".into()),
                spec: JobSpec {
                    kind: JobKind::Compare,
                    agents: vec!["ga".into(), "aco".into()],
                    ..spec()
                },
            },
            Request::Submit {
                tenant: "ci".into(),
                name: Some("screened".into()),
                spec: JobSpec {
                    proxy: Some(archgym_core::screen::ScreenPolicy::default().top_k(6)),
                    ..spec()
                },
            },
            Request::Status { job: JobId(7) },
            Request::List,
            Request::Watch { job: JobId(0) },
            Request::Cancel {
                job: JobId(u64::MAX),
            },
            Request::Ping,
            Request::Shutdown {
                drain: false,
                deadline_ms: 0,
            },
            Request::Shutdown {
                drain: true,
                deadline_ms: 30_000,
            },
            Request::Submit {
                tenant: "ci".into(),
                name: Some("deadlined".into()),
                spec: JobSpec {
                    deadline_ms: 2_500,
                    ..spec()
                },
            },
        ]
    }

    fn all_responses() -> Vec<Response> {
        let status = JobStatus {
            job: JobId(3),
            tenant: "ci".into(),
            state: JobState::Running,
            best_reward: Some(0.1234567890123_f64),
            samples: 640,
            budget: 2000,
            error: None,
        };
        vec![
            Response::Accepted {
                job: JobId(3),
                position: 2,
            },
            Response::Rejected {
                reason: "queue full (64 jobs)".into(),
                retry_after_ms: 500,
            },
            Response::Status(status.clone()),
            Response::Status(JobStatus {
                best_reward: None,
                error: Some("env crashed\nmid-run".into()),
                state: JobState::Failed,
                ..status.clone()
            }),
            Response::Jobs(vec![]),
            Response::Jobs(vec![status.clone(), status]),
            Response::Event {
                job: JobId(3),
                data: parse_json(r#"{"event":"batch","batch":4,"best_reward":-0.5}"#)
                    .map_err(ArchGymError::InvalidConfig)
                    .unwrap(),
            },
            Response::Done {
                job: JobId(3),
                state: JobState::Done,
                best_reward: Some(f64::MIN_POSITIVE),
                samples: 2000,
            },
            Response::Error {
                code: ErrorCode::UnknownJob,
                message: "no job 'job-99'".into(),
                retry_after_ms: None,
            },
            Response::Error {
                code: ErrorCode::Busy,
                message: "too many connections (128)".into(),
                retry_after_ms: Some(500),
            },
            Response::Done {
                job: JobId(4),
                state: JobState::TimedOut,
                best_reward: Some(-0.25),
                samples: 512,
            },
            Response::Pong {
                version: PROTOCOL_VERSION,
            },
            Response::Stopping,
        ]
    }

    #[test]
    fn every_request_frame_round_trips() {
        for req in all_requests() {
            let line = req.to_line();
            assert!(!line.contains('\n'), "frame must be one line: {line}");
            let back = Request::from_line(&line).expect("parse own encoding");
            assert_eq!(back, req);
            assert_eq!(back.to_line(), line, "canonical re-encode");
        }
    }

    #[test]
    fn every_response_frame_round_trips() {
        for resp in all_responses() {
            let line = resp.to_line();
            assert!(!line.contains('\n'), "frame must be one line: {line}");
            let back = Response::from_line(&line).expect("parse own encoding");
            assert_eq!(back, resp);
            assert_eq!(back.to_line(), line, "canonical re-encode");
        }
    }

    #[test]
    fn error_codes_round_trip() {
        for code in [
            ErrorCode::BadFrame,
            ErrorCode::OversizedFrame,
            ErrorCode::NonUtf8,
            ErrorCode::UnknownJob,
            ErrorCode::DuplicateJob,
            ErrorCode::BadSpec,
            ErrorCode::BadState,
            ErrorCode::Internal,
            ErrorCode::Busy,
        ] {
            assert_eq!(ErrorCode::parse(code.name()).unwrap(), code);
        }
    }

    #[test]
    fn shutdown_and_error_frames_stay_wire_compatible() {
        // A plain shutdown encodes byte-identically to the pre-drain
        // frame, and the bare legacy frame decodes as a plain shutdown.
        let plain = Request::Shutdown {
            drain: false,
            deadline_ms: 0,
        };
        assert_eq!(plain.to_line(), "{\"type\":\"shutdown\"}");
        assert_eq!(
            Request::from_line("{\"type\":\"shutdown\"}").unwrap(),
            plain
        );
        // Errors without a back-off hint encode without the field, and
        // a legacy error frame decodes with retry_after_ms = None.
        let err = Response::Error {
            code: ErrorCode::BadFrame,
            message: "nope".into(),
            retry_after_ms: None,
        };
        assert!(
            !err.to_line().contains("retry_after_ms"),
            "{}",
            err.to_line()
        );
        assert_eq!(
            Response::from_line("{\"type\":\"error\",\"code\":\"bad-frame\",\"message\":\"nope\"}")
                .unwrap(),
            err
        );
    }

    proptest::proptest! {
        #[test]
        fn prop_status_frames_round_trip(
            id in 0u64..1_000_000_000,
            tenant in "[a-zA-Z0-9 _/.\"-]{0,24}",
            reward in proptest::option::of(-1e12f64..1e12),
            samples in 0u64..1_000_000_000,
            budget in 0u64..1_000_000_000,
            state_idx in 0usize..6,
            error in proptest::option::of("[ -~]{0,40}"),
        ) {
            let states = [
                JobState::Queued,
                JobState::Running,
                JobState::Done,
                JobState::Failed,
                JobState::Cancelled,
                JobState::TimedOut,
            ];
            let resp = Response::Status(JobStatus {
                job: JobId(id),
                tenant,
                state: states[state_idx],
                best_reward: reward,
                samples,
                budget,
                error,
            });
            let line = resp.to_line();
            let back = Response::from_line(&line).expect("parse own encoding");
            proptest::prop_assert_eq!(&back, &resp);
            proptest::prop_assert_eq!(back.to_line(), line);
        }

        #[test]
        fn prop_submit_frames_round_trip(
            tenant in "[a-zA-Z0-9_-]{1,16}",
            name in proptest::option::of("[a-zA-Z0-9/_-]{1,24}"),
            env in "[a-z/-]{1,20}",
            agent in "[a-z]{1,4}",
            objective in "[a-z0-9:.,]{0,16}",
            budget in 1u64..10_000_000,
            seed in 0u64..u64::MAX,
            batch in 0usize..4096,
            eval_jobs in 0usize..64,
        ) {
            let mut spec = JobSpec::search(&env, &agent, budget, seed);
            spec.objective = objective;
            spec.batch = batch;
            spec.eval_jobs = eval_jobs;
            let req = Request::Submit { tenant, name, spec };
            let line = req.to_line();
            let back = Request::from_line(&line).expect("parse own encoding");
            proptest::prop_assert_eq!(&back, &req);
            proptest::prop_assert_eq!(back.to_line(), line);
        }

        #[test]
        fn prop_reward_bits_survive_the_wire(bits in proptest::num::u64::ANY) {
            let reward = f64::from_bits(bits);
            // NaN payloads are out of scope; every other bit pattern must
            // survive the frame encoding exactly.
            if !reward.is_nan() {
                let resp = Response::Done {
                    job: JobId(1),
                    state: JobState::Done,
                    best_reward: Some(reward),
                    samples: 1,
                };
                let back = Response::from_line(&resp.to_line()).expect("parse");
                match back {
                    Response::Done { best_reward: Some(r), .. } => {
                        proptest::prop_assert_eq!(r.to_bits(), reward.to_bits())
                    }
                    other => proptest::prop_assert!(false, "unexpected frame {:?}", other),
                }
            }
        }
    }

    #[test]
    fn malformed_lines_error_instead_of_panicking() {
        for line in [
            "",
            "{",
            "{\"type\":\"submit\"",                    // truncated frame
            "{\"type\":\"nope\"}",                     // unknown type
            "{\"no_type\":1}",                         // missing tag
            "[1,2,3]",                                 // not an object
            "{\"type\":\"status\",\"job\":\"weird\"}", // malformed job id
            "{\"type\":\"submit\",\"tenant\":\"t\",\"name\":null,\"spec\":{}}",
        ] {
            assert!(Request::from_line(line).is_err(), "should reject: {line}");
        }
        assert!(Response::from_line("{\"type\":\"pong\"}").is_err());
    }
}
