//! The `archgymd` binary: parse flags, bind, serve until shutdown.

use archgymd::server::{DaemonConfig, Server};
use std::process::ExitCode;

const USAGE: &str = "archgymd — multi-tenant ArchGym search daemon

USAGE:
    archgymd [--addr HOST:PORT] [--state-dir DIR] [--workers N]
             [--port-file PATH] [--max-running N] [--max-queued N]
             [--queue-capacity N] [--retry-after-ms MS]
             [--durability none|batch|always] [--max-connections N]
             [--stall-after-ms MS]

FLAGS:
    --addr            listen address (default 127.0.0.1:7170; port 0 picks a free port)
    --state-dir       job store directory (default ./archgymd-state)
    --workers         concurrent job slots (default 2)
    --port-file       after binding, write the actual `host:port` here
    --max-running     per-tenant running-job quota (default 2)
    --max-queued      per-tenant queued-job quota (default 16)
    --queue-capacity  global queue bound (default 64)
    --retry-after-ms  back-off hint on admission reject (default 500)
    --durability      fsync policy for journals and store records
                      (default batch: fsync at batch boundaries and
                      before every atomic rename)
    --max-connections live client connection cap; excess get a typed
                      `busy` error (default 128)
    --stall-after-ms  retire a worker silent this long and fail its job
                      (default 30000; 0 disables the watchdog)

Clients: `archgym-cli submit|status|watch|cancel|shutdown --addr HOST:PORT ...`.";

fn parse_flags(args: &[String]) -> Result<(DaemonConfig, Option<String>), String> {
    let mut config = DaemonConfig::new("127.0.0.1:7170", "archgymd-state");
    let mut port_file = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(USAGE.to_owned());
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value\n\n{USAGE}"))?;
        let number = || {
            value
                .parse::<u64>()
                .map_err(|_| format!("flag {flag} needs a number, got '{value}'"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value.clone(),
            "--state-dir" => config.state_dir = value.into(),
            "--workers" => config.workers = number()? as usize,
            "--port-file" => port_file = Some(value.clone()),
            "--max-running" => config.quota.max_running_per_tenant = number()? as usize,
            "--max-queued" => config.quota.max_queued_per_tenant = number()? as usize,
            "--queue-capacity" => config.quota.queue_capacity = number()? as usize,
            "--retry-after-ms" => config.quota.retry_after_ms = number()?,
            "--durability" => {
                config.durability =
                    archgym_core::storeio::Durability::parse(value).ok_or_else(|| {
                        format!("flag --durability needs none|batch|always, got '{value}'")
                    })?
            }
            "--max-connections" => config.max_connections = number()? as usize,
            "--stall-after-ms" => config.stall_after_ms = number()?,
            other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
        }
    }
    Ok((config, port_file))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (config, port_file) = match parse_flags(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("archgymd: {err}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr();
    if let Some(path) = port_file {
        // Write-then-rename so pollers never observe a half-written file.
        let tmp = format!("{path}.tmp");
        if std::fs::write(&tmp, format!("{addr}\n"))
            .and_then(|()| std::fs::rename(&tmp, &path))
            .is_err()
        {
            eprintln!("archgymd: cannot write port file {path}");
            return ExitCode::FAILURE;
        }
    }
    println!("archgymd listening on {addr}");
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("archgymd: {err}");
            ExitCode::FAILURE
        }
    }
}
