//! Chaos suite: deterministic store-I/O fault injection, journal
//! corruption and truncation sweeps, and SIGKILL-style resume checks.
//!
//! Every test here asserts the same invariant from a different angle:
//! whatever the injected failure — torn writes, failed renames, failed
//! fsyncs, flipped bytes, truncated files, a process killed mid-run —
//! a run that eventually completes is *bit-identical* to a fault-free
//! run, and damage that cannot be recovered is a typed error, never a
//! silent divergence.

use archgym_agents::factory::{build_agent, AgentKind};
use archgym_core::jobs::{JobId, JobSpec, JobState};
use archgym_core::journal::{
    corrupt_path, JournalHeader, JournalRecord, JournalStep, RunJournal, JOURNAL_VERSION,
};
use archgym_core::search::{RunConfig, RunResult, SearchLoop};
use archgym_core::storeio::{real_io, Durability, FaultyIo, IoFaultPlan, StoreIo};
use archgymd::spec::make_env;
use archgymd::store::{JobOutcome, JobStore, PersistedJob};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const SEED: u64 = 1701;
const BUDGET: u64 = 96;
const BATCH: usize = 16;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("archgym-chaos-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// One search run (dram/stream, random-walker, fixed seed) journaled at
/// `path` through `io`. A fresh agent every call: retries after an
/// injected fault must rebuild state from the journal alone, exactly
/// like a daemon restart.
fn run_with_io(
    path: &Path,
    io: Arc<dyn StoreIo>,
    durability: Durability,
) -> archgym_core::error::Result<RunResult> {
    let env = make_env("dram/stream", Some("power:1.0")).unwrap();
    let kind = AgentKind::parse("rw").unwrap();
    let mut agent = build_agent(kind, env.space(), &Default::default(), SEED).unwrap();
    SearchLoop::new(RunConfig::with_budget(BUDGET).batch(BATCH))
        .with_journal_io(io)
        .with_durability(durability)
        .run_resumable_pooled(&mut agent, env, path)
}

fn reference_run(path: &Path) -> RunResult {
    run_with_io(path, real_io(), Durability::None).expect("fault-free reference run")
}

/// Field-wise bit-identity (RunResult's wall-clock field can never
/// match across runs, so whole-struct equality is meaningless).
fn assert_bit_identical(got: &RunResult, want: &RunResult, context: &str) {
    assert_eq!(
        got.best_reward.to_bits(),
        want.best_reward.to_bits(),
        "{context}: best_reward diverged"
    );
    assert_eq!(got.best_action, want.best_action, "{context}: best_action");
    assert_eq!(
        got.best_observation, want.best_observation,
        "{context}: best_observation"
    );
    assert_eq!(
        got.samples_used, want.samples_used,
        "{context}: samples_used"
    );
    assert_eq!(
        got.reward_history
            .iter()
            .map(|r| r.to_bits())
            .collect::<Vec<_>>(),
        want.reward_history
            .iter()
            .map(|r| r.to_bits())
            .collect::<Vec<_>>(),
        "{context}: reward_history diverged"
    );
}

// ---------------------------------------------------------------------------
// Tentpole: seeded fault-schedule sweep
// ---------------------------------------------------------------------------

/// 64 deterministic fault schedules over the full store-I/O surface
/// (failed writes, torn writes, failed renames, failed fsyncs). Each
/// seed retries with a fresh agent until the run survives; every
/// surviving run must be bit-identical to the fault-free reference.
#[test]
fn injected_fault_schedules_never_change_surviving_results() {
    let dir = scratch("fault-sweep");
    let reference = reference_run(&dir.join("reference.jsonl"));

    let mut fired_total = 0u64;
    let mut retried_seeds = 0u32;
    for seed in 0..64u64 {
        let journal = dir.join(format!("seed-{seed}.jsonl"));
        let plan = IoFaultPlan::new(seed)
            .write_fail(0.05)
            .short_write(0.05)
            .rename_fail(0.05)
            .sync_fail(0.05);
        let faulty = FaultyIo::new(real_io(), plan);
        let io: Arc<dyn StoreIo> = Arc::new(faulty.clone());

        let mut survived = None;
        let mut attempts = 0u32;
        for _ in 0..64 {
            attempts += 1;
            match run_with_io(&journal, Arc::clone(&io), Durability::Batch) {
                Ok(result) => {
                    survived = Some(result);
                    break;
                }
                // An injected fault aborted the run mid-journal; the
                // next attempt resumes from whatever prefix survived.
                Err(_) => continue,
            }
        }
        let result = survived.unwrap_or_else(|| panic!("seed {seed} never survived 64 attempts"));
        assert_bit_identical(&result, &reference, &format!("fault seed {seed}"));
        fired_total += faulty.stats().total();
        if attempts > 1 {
            retried_seeds += 1;
        }
    }
    assert!(
        fired_total > 0,
        "the sweep must actually inject faults, not vacuously pass"
    );
    assert!(
        retried_seeds > 0,
        "at least some schedules must abort a run and exercise resume"
    );
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Journal corruption: exhaustive flip / truncate sweeps (satellite d)
// ---------------------------------------------------------------------------

fn step(index: usize, reward: f64) -> JournalStep {
    let mut info = BTreeMap::new();
    info.insert("power_w".to_owned(), reward * 2.0);
    JournalStep {
        index,
        reward,
        observation: vec![reward, -reward, 0.5],
        done: true,
        feasible: true,
        info,
        retries: 0,
        faults: 0,
        degraded: false,
    }
}

fn pristine_records() -> Vec<JournalRecord> {
    vec![
        JournalRecord::Header(JournalHeader {
            version: JOURNAL_VERSION,
            env: "dram/stream".to_owned(),
            agent: "rw".to_owned(),
            budget: 8,
            batch: 2,
        }),
        JournalRecord::Batch(vec![vec![0, 1, 2], vec![3, 4, 5]]),
        JournalRecord::Step(step(0, 0.5)),
        JournalRecord::Step(step(1, -0.25)),
        JournalRecord::Batch(vec![vec![6, 7, 8], vec![1, 2, 3]]),
        JournalRecord::Step(step(0, 1.5)),
        JournalRecord::Step(step(1, 0.125)),
    ]
}

fn write_pristine(path: &Path) -> (Vec<JournalRecord>, Vec<u8>) {
    let records = pristine_records();
    {
        let mut journal = RunJournal::open(path).unwrap();
        for record in &records {
            journal.append(record).unwrap();
        }
    }
    let bytes = fs::read(path).unwrap();
    (records, bytes)
}

/// Recovered records must be a prefix of the pristine records — the
/// "never silently diverges" half of the corruption contract.
fn assert_is_prefix(recovered: &[JournalRecord], pristine: &[JournalRecord], context: &str) {
    assert!(
        recovered.len() <= pristine.len() && recovered == &pristine[..recovered.len()],
        "{context}: recovered records diverge from the pristine prefix\n\
         recovered: {recovered:?}"
    );
}

/// Flip a byte at *every* offset of a journal (several masks per
/// offset). Every flip must yield either a typed open error or a
/// recovered prefix of the pristine records; a flip landing inside a
/// record payload must additionally be *detected* (a strict prefix),
/// since per-line CRC32 catches any single-byte change.
#[test]
fn every_single_byte_flip_is_detected_or_isolated() {
    let dir = scratch("flip-sweep");
    let base = dir.join("pristine.jsonl");
    let (records, bytes) = write_pristine(&base);

    // Byte ranges of each line's payload (after the `<8-hex>|` frame
    // prefix, before the newline): flips here must always be caught.
    let mut payload = vec![false; bytes.len()];
    let mut start = 0;
    for line in bytes.split_inclusive(|&b| b == b'\n') {
        let body = line.strip_suffix(b"\n").unwrap_or(line);
        for slot in payload.iter_mut().take(start + body.len()).skip(start + 9) {
            *slot = true;
        }
        start += line.len();
    }

    let mut detected = 0u64;
    let mut cases = 0u64;
    for offset in 0..bytes.len() {
        for mask in [0x01u8, 0x20, 0x80] {
            cases += 1;
            let victim = dir.join(format!("flip-{offset}-{mask}.jsonl"));
            let mut copy = bytes.clone();
            copy[offset] ^= mask;
            fs::write(&victim, &copy).unwrap();
            let context = format!("flip offset {offset} mask {mask:#04x}");
            match RunJournal::open(&victim) {
                Ok(journal) => {
                    assert_is_prefix(journal.records(), &records, &context);
                    if journal.records().len() < records.len() {
                        detected += 1;
                        if journal.quarantined() {
                            assert!(
                                corrupt_path(&victim).exists(),
                                "{context}: quarantine file missing"
                            );
                        }
                    } else {
                        // A full-length recovery is only legitimate for
                        // flips inside the checksum frame that don't
                        // change its value (hex case bits); payload
                        // damage must never slip through.
                        assert!(
                            !payload[offset],
                            "{context}: payload corruption went undetected"
                        );
                    }
                }
                Err(_) => detected += 1, // typed refusal is always safe
            }
            let _ = fs::remove_file(&victim);
            let _ = fs::remove_file(corrupt_path(&victim));
        }
    }
    assert!(
        detected * 10 > cases * 9,
        "expected >90% of flips detected, got {detected}/{cases}"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Truncate the journal at *every* byte length — the full space of
/// crash points for an append-only log. Every truncation must recover
/// exactly the complete-line prefix, and a reopen after recovery must
/// be clean (the damaged tail was physically truncated away).
#[test]
fn every_truncation_point_recovers_the_complete_prefix() {
    let dir = scratch("truncate-sweep");
    let base = dir.join("pristine.jsonl");
    let (records, bytes) = write_pristine(&base);

    // Complete-line count at each byte offset.
    let mut line_ends = Vec::new();
    let mut offset = 0;
    for line in bytes.split_inclusive(|&b| b == b'\n') {
        offset += line.len();
        if line.ends_with(b"\n") {
            line_ends.push(offset);
        }
    }

    for cut in 0..=bytes.len() {
        let victim = dir.join(format!("cut-{cut}.jsonl"));
        fs::write(&victim, &bytes[..cut]).unwrap();
        let expect = line_ends.iter().filter(|&&end| end <= cut).count();
        let context = format!("truncated to {cut} of {} bytes", bytes.len());
        {
            let journal = RunJournal::open(&victim).unwrap_or_else(|e| panic!("{context}: {e}"));
            assert_eq!(journal.records(), &records[..expect], "{context}");
            assert!(
                !journal.quarantined(),
                "{context}: tail damage is not quarantine"
            );
        }
        // Recovery truncated the torn tail in place: a second open sees
        // a clean log with the identical prefix.
        let reopened = RunJournal::open(&victim).unwrap();
        assert_eq!(reopened.records(), &records[..expect], "{context} (reopen)");
        assert!(
            !reopened.recovered_partial_tail(),
            "{context}: reopen must be clean"
        );
        let _ = fs::remove_file(&victim);
    }
    let _ = fs::remove_dir_all(&dir);
}

static PROP_CASE: AtomicU64 = AtomicU64::new(0);

proptest::proptest! {
    /// Randomized composition of the two sweeps above: flip one byte
    /// AND truncate, in either order. Replay must still yield a prefix
    /// of the pristine records or refuse with a typed error.
    #[test]
    fn prop_flipped_and_truncated_journals_never_silently_diverge(
        offset in 0usize..4096,
        mask in 1u8..255,
        cut in proptest::option::of(0usize..4096),
    ) {
        let case = PROP_CASE.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "archgym-chaos-prop-{}-{case}",
            std::process::id()
        ));
        fs::create_dir_all(&dir).unwrap();
        let victim = dir.join("journal.jsonl");
        let (records, bytes) = write_pristine(&victim);

        let mut copy = bytes.clone();
        let victim_offset = offset % copy.len();
        copy[victim_offset] ^= mask;
        if let Some(cut) = cut {
            copy.truncate(cut % (bytes.len() + 1));
        }
        fs::write(&victim, &copy).unwrap();

        if let Ok(journal) = RunJournal::open(&victim) {
            let recovered = journal.records();
            proptest::prop_assert!(
                recovered.len() <= records.len()
                    && recovered == &records[..recovered.len()],
                "recovered records diverge from the pristine prefix: {recovered:?}"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------------
// SIGKILL-style cuts: resume is bit-identical
// ---------------------------------------------------------------------------

/// Kill the run at four different journal points — three line-aligned
/// (a crash between appends) and one mid-line (a crash mid-write) —
/// and resume each. All four must complete bit-identically to the
/// uninterrupted reference.
#[test]
fn sigkill_cuts_resume_bit_identically() {
    let dir = scratch("sigkill");
    let base = dir.join("reference.jsonl");
    let reference = reference_run(&base);
    let bytes = fs::read(&base).unwrap();

    let mut line_ends = Vec::new();
    let mut offset = 0;
    for line in bytes.split_inclusive(|&b| b == b'\n') {
        offset += line.len();
        line_ends.push(offset);
    }
    assert!(line_ends.len() >= 8, "reference journal too small to cut");

    let quarter = line_ends[line_ends.len() / 4];
    let half = line_ends[line_ends.len() / 2];
    let three_quarters = line_ends[3 * line_ends.len() / 4];
    let torn = half + (line_ends[line_ends.len() / 2 + 1] - half) / 2; // mid-line
    for (i, cut) in [quarter, half, three_quarters, torn]
        .into_iter()
        .enumerate()
    {
        let victim = dir.join(format!("kill-{i}.jsonl"));
        fs::write(&victim, &bytes[..cut]).unwrap();
        let resumed = run_with_io(&victim, real_io(), Durability::Batch)
            .unwrap_or_else(|e| panic!("kill point {i} (cut {cut}): {e}"));
        assert_bit_identical(&resumed, &reference, &format!("kill point {i} (cut {cut})"));
    }
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Store-level faults: records survive retries, loads verify clean
// ---------------------------------------------------------------------------

fn retry(context: &str, mut op: impl FnMut() -> archgym_core::error::Result<()>) {
    for _ in 0..256 {
        if op().is_ok() {
            return;
        }
    }
    panic!("{context}: never succeeded in 256 attempts");
}

/// Drive the job store through seeded fault schedules: every record
/// write retries until it lands, then a clean reopen must load every
/// job and outcome intact — no quarantines, no torn records, and the
/// ID counter correct.
#[test]
fn job_store_records_survive_fault_schedules() {
    let root = scratch("store-faults");
    let mut fired_total = 0u64;
    for seed in 0..16u64 {
        let dir = root.join(format!("seed-{seed}"));
        let plan = IoFaultPlan::new(seed)
            .write_fail(0.1)
            .short_write(0.1)
            .rename_fail(0.1)
            .sync_fail(0.1);
        let faulty = FaultyIo::new(real_io(), plan);
        let store = JobStore::open_with(&dir, Arc::new(faulty.clone()), Durability::Batch).unwrap();

        let mut expected = Vec::new();
        for id in 0..4u64 {
            let job = PersistedJob {
                id: JobId(id),
                tenant: format!("tenant-{}", id % 2),
                name: None,
                spec: JobSpec::search("dram/stream", "rw", 100, id),
            };
            retry(&format!("seed {seed} submit {id}"), || {
                store.record_submitted(&job)
            });
            let outcome = (id % 2 == 0).then_some(JobOutcome {
                state: JobState::Done,
                best_reward: Some(0.5 + id as f64),
                samples: 100,
                error: None,
            });
            if let Some(outcome) = &outcome {
                retry(&format!("seed {seed} outcome {id}"), || {
                    store.record_outcome(job.id, outcome)
                });
            }
            expected.push((job, outcome));
        }
        fired_total += faulty.stats().total();

        // A clean reopen (real I/O, like a daemon restart after the
        // faulty disk is replaced) must verify every record.
        let clean = JobStore::open(&dir).unwrap();
        assert_eq!(clean.load().unwrap(), expected, "seed {seed}");
        assert_eq!(clean.next_id().unwrap(), 4, "seed {seed}");
        let corrupt: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".corrupt"))
            .collect();
        assert!(corrupt.is_empty(), "seed {seed}: {corrupt:?}");
    }
    assert!(fired_total > 0, "store sweep must actually inject faults");
    let _ = fs::remove_dir_all(&root);
}
