//! End-to-end tests for the `archgymd` daemon over real TCP sockets.
//!
//! Every test boots an in-process [`Server`] on an ephemeral port with
//! its own temp state directory. Determinism notes:
//!
//! * Admission tests pin `max_running_per_tenant` to 0, so submitted
//!   jobs stay queued forever — queue occupancy is exact, no sleeps.
//! * Lifecycle tests synchronize on protocol frames (`watch` blocks
//!   until the `done` frame), never on timing.
//! * The resume test replays a crash by truncating the on-disk journal
//!   of a finished job and deleting its outcome record — exactly the
//!   state a SIGKILL'd daemon leaves behind.

use archgym_core::jobs::{JobId, JobKind, JobSpec, JobState, QuotaPolicy};
use archgymd::client::{request_one, Client};
use archgymd::protocol::{ErrorCode, Request, Response, MAX_LINE_BYTES, PROTOCOL_VERSION};
use archgymd::server::{DaemonConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};

struct Daemon {
    addr: String,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Boot a daemon on an ephemeral port over `state_dir`.
    fn boot(state_dir: &Path, workers: usize, quota: QuotaPolicy) -> Daemon {
        Self::boot_config(state_dir, |config| {
            config.workers = workers;
            config.quota = quota;
        })
    }

    /// Boot with arbitrary config tweaks (watchdog, connection cap, ...).
    fn boot_config(state_dir: &Path, tweak: impl FnOnce(&mut DaemonConfig)) -> Daemon {
        let mut config = DaemonConfig::new("127.0.0.1:0", state_dir);
        tweak(&mut config);
        let server = Server::bind(config).expect("bind daemon");
        let addr = server.local_addr().to_string();
        let thread = std::thread::spawn(move || {
            server.run().expect("daemon run");
        });
        Daemon {
            addr,
            thread: Some(thread),
        }
    }

    fn stop(&mut self) {
        if let Some(thread) = self.thread.take() {
            let _ = request_one(
                &self.addr,
                &Request::Shutdown {
                    drain: false,
                    deadline_ms: 0,
                },
            );
            thread.join().expect("daemon thread");
        }
    }

    /// Drain-shutdown: the `stopping` reply only arrives once every
    /// admitted job reached a terminal state (or the deadline passed).
    fn drain_stop(&mut self, deadline_ms: u64) {
        if let Some(thread) = self.thread.take() {
            match request_one(
                &self.addr,
                &Request::Shutdown {
                    drain: true,
                    deadline_ms,
                },
            )
            .expect("drain round-trip")
            {
                Response::Stopping => {}
                other => panic!("expected stopping, got {other:?}"),
            }
            thread.join().expect("daemon thread");
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A per-test scratch state directory, pre-cleaned so reruns start
/// fresh (the resume test restarts a second daemon over the same dir,
/// so teardown must not delete it mid-test).
fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("archgymd-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_spec(budget: u64, seed: u64) -> JobSpec {
    let mut spec = JobSpec::search("dram/stream", "ga", budget, seed);
    spec.objective = "power:1.0".into();
    spec
}

fn submit(addr: &str, tenant: &str, name: Option<&str>, spec: JobSpec) -> Response {
    request_one(
        addr,
        &Request::Submit {
            tenant: tenant.into(),
            name: name.map(str::to_owned),
            spec,
        },
    )
    .expect("submit round-trip")
}

/// Watch `job` until its `done` frame; returns (state, best, samples, events).
fn watch_to_done(addr: &str, job: JobId) -> (JobState, Option<f64>, u64, usize) {
    let mut client = Client::connect(addr).expect("connect");
    client.send(&Request::Watch { job }).expect("send watch");
    let mut events = 0;
    loop {
        match client.recv().expect("watch stream") {
            Some(Response::Event { .. }) => events += 1,
            Some(Response::Done {
                state,
                best_reward,
                samples,
                ..
            }) => return (state, best_reward, samples, events),
            Some(other) => panic!("unexpected frame in watch stream: {other:?}"),
            None => panic!("watch stream closed without a done frame"),
        }
    }
}

#[test]
fn job_runs_to_completion_with_streamed_events() {
    let mut daemon = Daemon::boot(&state_dir("lifecycle"), 2, QuotaPolicy::default());
    let Response::Accepted { job, position } =
        submit(&daemon.addr, "ci", Some("smoke"), small_spec(300, 3))
    else {
        panic!("submit not accepted")
    };
    assert_eq!(position, 0);

    let (state, best, samples, events) = watch_to_done(&daemon.addr, job);
    assert_eq!(state, JobState::Done);
    assert_eq!(samples, 300);
    assert!(events > 0, "watch must stream per-batch events");
    let best = best.expect("finished search has a best reward");

    // Status agrees with the stream, and a late watcher replays the
    // backlog then closes with the same terminal frame.
    let Response::Status(status) = request_one(&daemon.addr, &Request::Status { job }).unwrap()
    else {
        panic!("expected status frame")
    };
    assert_eq!(status.state, JobState::Done);
    assert_eq!(status.samples, 300);
    assert_eq!(status.best_reward, Some(best));
    let (state, late_best, _, late_events) = watch_to_done(&daemon.addr, job);
    assert_eq!(state, JobState::Done);
    assert_eq!(late_best, Some(best));
    assert_eq!(late_events, events, "backlog replay covers every event");

    let Response::Jobs(jobs) = request_one(&daemon.addr, &Request::List).unwrap() else {
        panic!("expected jobs frame")
    };
    assert_eq!(jobs.len(), 1);
    assert_eq!(jobs[0].job, job);
    daemon.stop();
}

#[test]
fn identical_specs_give_bit_identical_rewards_across_jobs() {
    let mut daemon = Daemon::boot(&state_dir("deterministic"), 2, QuotaPolicy::default());
    let mut rewards = Vec::new();
    for _ in 0..2 {
        let Response::Accepted { job, .. } = submit(&daemon.addr, "ci", None, small_spec(256, 9))
        else {
            panic!("submit not accepted")
        };
        let (state, best, _, _) = watch_to_done(&daemon.addr, job);
        assert_eq!(state, JobState::Done);
        rewards.push(best.expect("best reward").to_bits());
    }
    assert_eq!(rewards[0], rewards[1], "same spec must be bit-identical");
    daemon.stop();
}

#[test]
fn malformed_input_gets_typed_errors_and_daemon_survives() {
    let mut daemon = Daemon::boot(&state_dir("malformed"), 1, QuotaPolicy::default());

    // Truncated / non-JSON / unknown-type frames → bad-frame, same
    // connection keeps working.
    let mut client = Client::connect(&daemon.addr).expect("connect");
    let stream = TcpStream::connect(&daemon.addr).expect("raw connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut raw = stream;
    for line in [
        "not json",
        "{\"type\":\"submit\"",
        "{\"type\":\"nope\"}",
        "[]",
    ] {
        writeln!(raw, "{line}").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        match Response::from_line(reply.trim()).expect("typed reply") {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadFrame, "{line}"),
            other => panic!("expected bad-frame error for {line}, got {other:?}"),
        }
    }

    // Non-UTF-8 bytes → non-utf8.
    raw.write_all(&[0xff, 0xfe, 0x80, b'\n']).unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    match Response::from_line(reply.trim()).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::NonUtf8),
        other => panic!("expected non-utf8 error, got {other:?}"),
    }

    // Oversized line → oversized-frame, then the daemon closes the
    // connection without reading the rest.
    let mut big = vec![b'x'; MAX_LINE_BYTES + 16];
    big.push(b'\n');
    raw.write_all(&big).unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    match Response::from_line(reply.trim()).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::OversizedFrame),
        other => panic!("expected oversized-frame error, got {other:?}"),
    }

    // Unknown job → unknown-job; bad spec → bad-spec (validated at
    // submit, before admission).
    match client
        .round_trip(&Request::Status { job: JobId(999) })
        .unwrap()
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownJob),
        other => panic!("expected unknown-job, got {other:?}"),
    }
    match client
        .round_trip(&Request::Cancel { job: JobId(999) })
        .unwrap()
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownJob),
        other => panic!("expected unknown-job, got {other:?}"),
    }
    let bad_env = JobSpec::search("not-a-family/xyz", "ga", 100, 0);
    match submit(&daemon.addr, "ci", None, bad_env) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadSpec),
        other => panic!("expected bad-spec, got {other:?}"),
    }
    let bad_agent = JobSpec::search("dram/stream", "zzz", 100, 0);
    match submit(&daemon.addr, "ci", None, bad_agent) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadSpec),
        other => panic!("expected bad-spec, got {other:?}"),
    }

    // The daemon is still healthy after all of the above.
    match client.round_trip(&Request::Ping).unwrap() {
        Response::Pong { version } => assert_eq!(version, PROTOCOL_VERSION),
        other => panic!("expected pong, got {other:?}"),
    }
    daemon.stop();
}

/// Admission control, observed through the wire. `max_running = 0`
/// keeps every job queued, so occupancy is exact without sleeps.
#[test]
fn quotas_queue_reject_and_isolate_tenants() {
    let quota = QuotaPolicy {
        max_running_per_tenant: 0,
        max_queued_per_tenant: 2,
        queue_capacity: 3,
        retry_after_ms: 250,
    };
    let mut daemon = Daemon::boot(&state_dir("quota"), 1, quota);

    // Tenant A fills its per-tenant queue allowance...
    for expect_pos in 0..2 {
        match submit(&daemon.addr, "tenant-a", None, small_spec(100, 1)) {
            Response::Accepted { position, .. } => assert_eq!(position, expect_pos),
            other => panic!("expected accept, got {other:?}"),
        }
    }
    // ...then gets a clean per-tenant reject with the back-off hint.
    match submit(&daemon.addr, "tenant-a", None, small_spec(100, 1)) {
        Response::Rejected {
            reason,
            retry_after_ms,
        } => {
            assert!(
                reason.contains("tenant-a"),
                "reason names the tenant: {reason}"
            );
            assert_eq!(retry_after_ms, 250);
        }
        other => panic!("expected rejected, got {other:?}"),
    }

    // The flood cannot starve tenant B: one global slot remains and B
    // gets it.
    match submit(&daemon.addr, "tenant-b", None, small_spec(100, 2)) {
        Response::Accepted { position, .. } => assert_eq!(position, 2),
        other => panic!("expected accept for tenant-b, got {other:?}"),
    }
    // Now the global queue is full — even a fresh tenant is rejected.
    match submit(&daemon.addr, "tenant-c", None, small_spec(100, 3)) {
        Response::Rejected { reason, .. } => {
            assert!(reason.contains("queue full"), "global reject: {reason}")
        }
        other => panic!("expected rejected, got {other:?}"),
    }

    // Cancelling a queued job frees its slot.
    let Response::Jobs(jobs) = request_one(&daemon.addr, &Request::List).unwrap() else {
        panic!("expected jobs frame")
    };
    let queued = jobs
        .iter()
        .find(|status| status.tenant == "tenant-a")
        .expect("tenant-a job listed");
    match request_one(&daemon.addr, &Request::Cancel { job: queued.job }).unwrap() {
        Response::Status(status) => assert_eq!(status.state, JobState::Cancelled),
        other => panic!("expected status, got {other:?}"),
    }
    match submit(&daemon.addr, "tenant-c", None, small_spec(100, 3)) {
        Response::Accepted { .. } => {}
        other => panic!("cancel must free a queue slot, got {other:?}"),
    }
    daemon.stop();
}

#[test]
fn duplicate_names_rejected_and_cancel_of_done_job_is_bad_state() {
    let mut daemon = Daemon::boot(&state_dir("names"), 1, QuotaPolicy::default());
    let Response::Accepted { job, .. } =
        submit(&daemon.addr, "ci", Some("unique"), small_spec(200, 4))
    else {
        panic!("submit not accepted")
    };
    match submit(&daemon.addr, "ci", Some("unique"), small_spec(200, 5)) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::DuplicateJob),
        other => panic!("expected duplicate-job, got {other:?}"),
    }
    let (state, _, _, _) = watch_to_done(&daemon.addr, job);
    assert_eq!(state, JobState::Done);
    match request_one(&daemon.addr, &Request::Cancel { job }).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadState),
        other => panic!("expected bad-state, got {other:?}"),
    }
    daemon.stop();
}

/// The crash-recovery guarantee: a daemon restarted over a state dir
/// holding an interrupted job (its `.job` record and a truncated run
/// journal — what SIGKILL leaves behind) re-admits the job, resumes
/// from the journal, and lands on a best reward bit-identical to the
/// uninterrupted reference run.
#[test]
fn restart_resumes_interrupted_jobs_bit_identically() {
    let dir = state_dir("resume");

    // Reference: run the job to completion and remember its outcome.
    let mut daemon = Daemon::boot(&dir, 1, QuotaPolicy::default());
    let Response::Accepted { job, .. } = submit(&daemon.addr, "ci", None, small_spec(400, 11))
    else {
        panic!("submit not accepted")
    };
    let (state, reference, samples, _) = watch_to_done(&daemon.addr, job);
    assert_eq!(state, JobState::Done);
    assert_eq!(samples, 400);
    let reference = reference.expect("reference best reward");
    daemon.stop();

    // Forge the crash: drop the outcome record and truncate the journal
    // mid-run (keep the header and roughly half the entries), exactly
    // the torn state an abrupt kill leaves.
    std::fs::remove_file(dir.join(format!("{job}.done"))).expect("remove outcome");
    let journal_path = dir.join(format!("{job}.jsonl"));
    let journal = std::fs::read_to_string(&journal_path).expect("read journal");
    let lines: Vec<&str> = journal.lines().collect();
    assert!(lines.len() > 4, "journal should hold several records");
    let keep = lines.len() / 2;
    let mut truncated = lines[..keep].join("\n");
    truncated.push('\n');
    // Torn tail: half a record, as if the write was cut mid-line.
    truncated.push_str(&lines[keep][..lines[keep].len() / 2]);
    std::fs::write(&journal_path, truncated).expect("truncate journal");
    let _ = std::fs::remove_file(dir.join(format!("{job}.jsonl.snap")));

    // Restart over the same state dir: the job comes back queued, runs,
    // and finishes with the exact same reward.
    let mut daemon = Daemon::boot(&dir, 1, QuotaPolicy::default());
    let (state, resumed, samples, _) = watch_to_done(&daemon.addr, job);
    assert_eq!(state, JobState::Done);
    assert_eq!(samples, 400);
    assert_eq!(
        resumed.expect("resumed best reward").to_bits(),
        reference.to_bits(),
        "journal resume must be bit-identical to the uninterrupted run"
    );
    daemon.stop();
}

/// Proxy-screened jobs: the optional `proxy` spec field survives the
/// protocol, the job completes under its true-sample budget, identical
/// screened specs are bit-identical, and a degenerate policy is a
/// `bad-spec` rejection at submit time (not a failed job).
#[test]
fn screened_jobs_run_deterministically_and_bad_policies_are_rejected() {
    use archgym_core::screen::ScreenPolicy;
    let mut daemon = Daemon::boot(&state_dir("proxy"), 2, QuotaPolicy::default());
    let screened = || {
        let mut spec = small_spec(200, 21);
        spec.proxy = Some(ScreenPolicy::default().warmup(48));
        spec
    };
    let mut rewards = Vec::new();
    for _ in 0..2 {
        let Response::Accepted { job, .. } = submit(&daemon.addr, "ci", None, screened()) else {
            panic!("submit not accepted")
        };
        let (state, best, samples, events) = watch_to_done(&daemon.addr, job);
        assert_eq!(state, JobState::Done);
        assert_eq!(samples, 200, "budget counts true simulations only");
        assert!(events > 0);
        rewards.push(best.expect("best reward").to_bits());
    }
    assert_eq!(rewards[0], rewards[1], "screened runs are deterministic");

    let mut bad = small_spec(100, 1);
    bad.proxy = Some(ScreenPolicy::default().oversample(1));
    match submit(&daemon.addr, "ci", None, bad) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadSpec),
        other => panic!("expected bad-spec for degenerate proxy, got {other:?}"),
    }
    daemon.stop();
}

/// The screened flavor of the crash-recovery guarantee: a SIGKILL'd
/// screened job (torn journal, missing outcome record) resumes through
/// its journaled `screen` records to a bit-identical best reward.
#[test]
fn restart_resumes_screened_jobs_bit_identically() {
    use archgym_core::screen::ScreenPolicy;
    let dir = state_dir("proxy-resume");

    let mut spec = small_spec(300, 33);
    spec.proxy = Some(ScreenPolicy::default().warmup(64).revalidate_every(4));

    let mut daemon = Daemon::boot(&dir, 1, QuotaPolicy::default());
    let Response::Accepted { job, .. } = submit(&daemon.addr, "ci", None, spec) else {
        panic!("submit not accepted")
    };
    let (state, reference, samples, _) = watch_to_done(&daemon.addr, job);
    assert_eq!(state, JobState::Done);
    assert_eq!(samples, 300);
    let reference = reference.expect("reference best reward");
    daemon.stop();

    // Forge the crash exactly like the unscreened resume test: drop the
    // outcome, keep half the journal plus a torn tail, drop the snapshot.
    std::fs::remove_file(dir.join(format!("{job}.done"))).expect("remove outcome");
    let journal_path = dir.join(format!("{job}.jsonl"));
    let journal = std::fs::read_to_string(&journal_path).expect("read journal");
    assert!(
        journal.contains("\"type\":\"screen\""),
        "screened journals must pin admission decisions"
    );
    let lines: Vec<&str> = journal.lines().collect();
    assert!(lines.len() > 4, "journal should hold several records");
    let keep = lines.len() / 2;
    let mut truncated = lines[..keep].join("\n");
    truncated.push('\n');
    truncated.push_str(&lines[keep][..lines[keep].len() / 2]);
    std::fs::write(&journal_path, truncated).expect("truncate journal");
    let _ = std::fs::remove_file(dir.join(format!("{job}.jsonl.snap")));

    let mut daemon = Daemon::boot(&dir, 1, QuotaPolicy::default());
    let (state, resumed, samples, _) = watch_to_done(&daemon.addr, job);
    assert_eq!(state, JobState::Done);
    assert_eq!(samples, 300);
    assert_eq!(
        resumed.expect("resumed best reward").to_bits(),
        reference.to_bits(),
        "screened journal resume must be bit-identical"
    );
    daemon.stop();
}

/// A job that cannot finish inside its `deadline_ms` is stopped at a
/// batch boundary and lands in `timed-out` with its best-so-far reward
/// persisted — while another tenant's job finishes normally.
#[test]
fn deadline_jobs_time_out_while_other_tenants_finish() {
    let dir = state_dir("deadline");
    let mut daemon = Daemon::boot(&dir, 2, QuotaPolicy::default());
    let mut slow = small_spec(1_000_000, 7);
    slow.deadline_ms = 250;
    let Response::Accepted { job: slow_job, .. } = submit(&daemon.addr, "tenant-a", None, slow)
    else {
        panic!("submit not accepted")
    };
    let Response::Accepted { job: fast_job, .. } =
        submit(&daemon.addr, "tenant-b", None, small_spec(200, 8))
    else {
        panic!("submit not accepted")
    };

    let (state, best, samples, _) = watch_to_done(&daemon.addr, slow_job);
    assert_eq!(state, JobState::TimedOut);
    assert!(best.is_some(), "timed-out jobs keep their best-so-far");
    assert!(
        samples > 0 && samples < 1_000_000,
        "stopped early: {samples}"
    );

    let (state, _, samples, _) = watch_to_done(&daemon.addr, fast_job);
    assert_eq!(state, JobState::Done, "other tenants are unaffected");
    assert_eq!(samples, 200);

    // The timed-out outcome is durable: still `timed-out` after restart.
    daemon.stop();
    let mut daemon = Daemon::boot(&dir, 2, QuotaPolicy::default());
    let Response::Status(status) =
        request_one(&daemon.addr, &Request::Status { job: slow_job }).unwrap()
    else {
        panic!("expected status frame")
    };
    assert_eq!(status.state, JobState::TimedOut);
    daemon.stop();
}

/// The worker watchdog: a job wedged inside its cost model (the hidden
/// `test/stall` environment never returns from `step`) is failed with a
/// stall error, the worker is retired and replaced, and the single-slot
/// fleet keeps serving other jobs.
#[test]
fn watchdog_fails_stalled_jobs_and_respawns_the_worker() {
    let mut daemon = Daemon::boot_config(&state_dir("watchdog"), |config| {
        config.workers = 1;
        config.stall_after_ms = 300;
    });
    let stall = JobSpec::search("test/stall", "rw", 50, 1);
    let Response::Accepted { job, .. } = submit(&daemon.addr, "ci", None, stall) else {
        panic!("submit not accepted")
    };
    let (state, _, _, _) = watch_to_done(&daemon.addr, job);
    assert_eq!(state, JobState::Failed);
    let Response::Status(status) = request_one(&daemon.addr, &Request::Status { job }).unwrap()
    else {
        panic!("expected status frame")
    };
    assert!(
        status.error.as_deref().unwrap_or("").contains("stalled"),
        "failure names the stall: {:?}",
        status.error
    );

    // The lone worker slot was wedged forever; only a respawned
    // replacement can run this follow-up job.
    let Response::Accepted { job, .. } = submit(&daemon.addr, "ci", None, small_spec(100, 2))
    else {
        panic!("submit not accepted")
    };
    let (state, _, samples, _) = watch_to_done(&daemon.addr, job);
    assert_eq!(state, JobState::Done);
    assert_eq!(samples, 100);
    daemon.stop();
}

/// The accept-loop connection cap: with one slot held, the next
/// connection gets an inline typed `busy` error carrying the retry
/// hint, and the slot frees once the first client hangs up.
#[test]
fn connection_cap_returns_typed_busy_errors() {
    let mut daemon = Daemon::boot_config(&state_dir("busy"), |config| {
        config.max_connections = 1;
        config.quota.retry_after_ms = 123;
    });
    let mut held = Client::connect(&daemon.addr).expect("first connection");
    match held.round_trip(&Request::Ping).unwrap() {
        Response::Pong { .. } => {}
        other => panic!("expected pong, got {other:?}"),
    }

    let stream = TcpStream::connect(&daemon.addr).expect("second connection");
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("busy reply");
    match Response::from_line(reply.trim()).expect("typed busy frame") {
        Response::Error {
            code,
            retry_after_ms,
            ..
        } => {
            assert_eq!(code, ErrorCode::Busy);
            assert_eq!(retry_after_ms, Some(123));
        }
        other => panic!("expected busy error, got {other:?}"),
    }

    // Hanging up frees the slot (the handler thread exits asynchronously).
    drop(held);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        if let Ok(Response::Pong { .. }) = request_one(&daemon.addr, &Request::Ping) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "connection slot never freed"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    daemon.stop();
}

/// Graceful drain: `shutdown {drain:true}` closes admission, lets every
/// admitted job reach a terminal state before replying, and a restart
/// over the drained state dir shows exactly one outcome per job — no
/// losses, no duplicates, no re-runs.
#[test]
fn drain_shutdown_finishes_admitted_jobs_without_loss_or_duplication() {
    let dir = state_dir("drain");
    let mut daemon = Daemon::boot(&dir, 1, QuotaPolicy::default());
    let mut jobs = Vec::new();
    for seed in 0..3 {
        let Response::Accepted { job, .. } =
            submit(&daemon.addr, "ci", None, small_spec(300, seed))
        else {
            panic!("submit not accepted")
        };
        jobs.push(job);
    }
    // One worker: at most one job is running; the rest are queued when
    // the drain lands mid-flight.
    daemon.drain_stop(60_000);

    let mut daemon = Daemon::boot(&dir, 1, QuotaPolicy::default());
    let Response::Jobs(list) = request_one(&daemon.addr, &Request::List).unwrap() else {
        panic!("expected jobs frame")
    };
    assert_eq!(list.len(), jobs.len());
    for status in &list {
        assert_eq!(
            status.state,
            JobState::Done,
            "{}: drained to done",
            status.job
        );
        assert_eq!(status.samples, 300);
    }
    for job in &jobs {
        assert!(
            dir.join(format!("{job}.done")).exists(),
            "{job} outcome persisted exactly once"
        );
    }
    let quarantined: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name.ends_with(".corrupt"))
        .collect();
    assert!(quarantined.is_empty(), "clean drain: {quarantined:?}");
    daemon.stop();
}

/// Plain (non-drain) shutdown interrupts in-flight jobs at a batch
/// boundary; the job stays in-flight (no outcome record) and a restart
/// resumes it from the journal to a reward bit-identical to an
/// uninterrupted reference run.
#[test]
fn plain_shutdown_interrupts_jobs_and_restart_resumes_bit_identically() {
    // Reference: the same spec run to completion in its own state dir.
    let ref_dir = state_dir("interrupt-ref");
    let mut daemon = Daemon::boot(&ref_dir, 1, QuotaPolicy::default());
    let Response::Accepted { job, .. } = submit(&daemon.addr, "ci", None, small_spec(2_000, 17))
    else {
        panic!("submit not accepted")
    };
    let (state, reference, samples, _) = watch_to_done(&daemon.addr, job);
    assert_eq!(state, JobState::Done);
    assert_eq!(samples, 2_000);
    let reference = reference.expect("reference best reward");
    daemon.stop();

    // Interrupted run: plain shutdown lands after the first settled
    // batch, well before the budget is spent.
    let dir = state_dir("interrupt");
    let mut daemon = Daemon::boot(&dir, 1, QuotaPolicy::default());
    let Response::Accepted { job, .. } = submit(&daemon.addr, "ci", None, small_spec(2_000, 17))
    else {
        panic!("submit not accepted")
    };
    let mut watcher = Client::connect(&daemon.addr).expect("watch connect");
    watcher.send(&Request::Watch { job }).expect("send watch");
    loop {
        match watcher.recv().expect("watch stream") {
            Some(Response::Event { .. }) => break, // mid-run
            Some(Response::Done { .. }) => panic!("job finished before the shutdown"),
            Some(_) => continue,
            None => panic!("watch closed early"),
        }
    }
    daemon.stop();
    assert!(
        !dir.join(format!("{job}.done")).exists(),
        "interrupted jobs stay in-flight, not cancelled/failed"
    );

    let mut daemon = Daemon::boot(&dir, 1, QuotaPolicy::default());
    let (state, resumed, samples, _) = watch_to_done(&daemon.addr, job);
    assert_eq!(state, JobState::Done);
    assert_eq!(samples, 2_000);
    assert_eq!(
        resumed.expect("resumed best reward").to_bits(),
        reference.to_bits(),
        "interrupt + restart must be bit-identical to the uninterrupted run"
    );
    daemon.stop();
}

/// Compare jobs run the whole roster and report the roster-wide best.
#[test]
fn compare_jobs_report_the_roster_best() {
    let mut daemon = Daemon::boot(&state_dir("compare"), 1, QuotaPolicy::default());
    let mut spec = small_spec(200, 6);
    spec.kind = JobKind::Compare;
    spec.agents = vec!["rw".into(), "ga".into()];
    let Response::Accepted { job, .. } = submit(&daemon.addr, "ci", None, spec) else {
        panic!("submit not accepted")
    };
    let (state, best, samples, _) = watch_to_done(&daemon.addr, job);
    assert_eq!(state, JobState::Done);
    assert_eq!(samples, 400, "both roster entries consume their budget");
    assert!(best.is_some());
    daemon.stop();
}
