//! # archgym-dram — DRAMGym
//!
//! A DRAM memory-controller design-space-exploration environment for
//! ArchGym, standing in for the DRAMSys4.0 simulator used by the paper.
//!
//! The crate contains a transaction-level DRAM subsystem simulator:
//!
//! * [`device`] — DDR3-style device timing and current parameters,
//!   address mapping and per-bank state.
//! * [`trace`] — the four memory-trace workloads of the paper's Fig. 4
//!   (streaming, random/pointer-chase, cloud-1, cloud-2).
//! * [`controller`] — the configurable memory controller: request buffer,
//!   schedulers, page policies, arbiter, response queue, refresh policies —
//!   exactly the ten parameters of the paper's Fig. 3(a) — plus the
//!   channel/rank [`Topology`] axes of the extended space.
//! * [`engine`] — the pluggable timing engines behind the controller:
//!   a linear-scan reference oracle, the per-bank indexed engine and the
//!   data-oriented structure-of-arrays engine, all bit-identical.
//! * [`power`] — activate/read/write/refresh energy and background power
//!   accounting.
//! * [`mod@env`] — [`DramEnv`], the ArchGym [`Environment`] exposing
//!   `<latency, power, energy>` observations and the Table 3 reward.
//!
//! # Example
//!
//! ```
//! use archgym_core::prelude::*;
//! use archgym_dram::{DramEnv, DramWorkload, Objective};
//!
//! let mut env = DramEnv::new(DramWorkload::Stream, Objective::low_power(1.0));
//! let mut rng = archgym_core::seeded_rng(1);
//! let action = env.space().sample(&mut rng);
//! let result = env.step(&action);
//! assert_eq!(result.observation.len(), 3); // <latency, power, energy>
//! assert!(result.reward > 0.0);
//! ```
//!
//! [`Environment`]: archgym_core::Environment

pub mod controller;
pub mod device;
pub mod engine;
pub mod env;
pub mod power;
pub mod trace;

pub use controller::{
    Arbiter, ControllerConfig, MemoryController, PagePolicy, RefreshPolicy, RespQueue, Scheduler,
    SchedulerBuffer, SimStats,
};
pub use device::{AddressMapping, BankState, DeviceTiming, Topology};
pub use engine::{EngineKind, EventWheel, TimingEngine};
pub use env::{decode_topology, dram_space, dram_space_extended, DramEnv, Objective};
pub use trace::{
    characterize, read_trace, write_trace, DramWorkload, MemoryRequest, TraceConfig, TraceStats,
};
