//! DDR3-style DRAM device model: timing parameters, address mapping and
//! per-bank row-buffer state.
//!
//! The numbers default to a DDR3-1600-like speed grade; they are not meant
//! to replicate any specific vendor part, only to give the memory
//! controller design space the cost landscape a real device would (row hits
//! are cheap, row conflicts pay `tRP + tRCD`, refresh steals `tRFC` from
//! every bank, ...).

use serde::{Deserialize, Serialize};

/// Core timing parameters, all in memory-controller clock cycles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceTiming {
    /// Clock period in nanoseconds (DDR3-1600 command clock: 1.25 ns).
    pub clock_ns: f64,
    /// ACT → internal READ/WRITE delay.
    pub t_rcd: u64,
    /// PRE → ACT delay.
    pub t_rp: u64,
    /// READ → first data (CAS latency).
    pub t_cl: u64,
    /// WRITE → first data (CAS write latency).
    pub t_cwl: u64,
    /// ACT → PRE minimum.
    pub t_ras: u64,
    /// Data burst length on the bus (BL8 / 2 for DDR).
    pub t_burst: u64,
    /// Write recovery after the last write data.
    pub t_wr: u64,
    /// Refresh command duration (all banks blocked).
    pub t_rfc: u64,
    /// Average refresh interval.
    pub t_refi: u64,
    /// Number of banks.
    pub banks: usize,
    /// Bytes per column burst (x64 channel, BL8 = 64 bytes).
    pub burst_bytes: u64,
}

impl DeviceTiming {
    /// A DDR3-1600-like speed grade (11-11-11, 8 banks).
    pub fn ddr3_1600() -> Self {
        DeviceTiming {
            clock_ns: 1.25,
            t_rcd: 11,
            t_rp: 11,
            t_cl: 11,
            t_cwl: 8,
            t_ras: 28,
            t_burst: 4,
            t_wr: 12,
            t_rfc: 208,
            t_refi: 6240,
            banks: 8,
            burst_bytes: 64,
        }
    }

    /// A DDR4-2400-like speed grade (17-17-17, 16 banks): higher clock,
    /// more banks, longer absolute refresh.
    pub fn ddr4_2400() -> Self {
        DeviceTiming {
            clock_ns: 0.833,
            t_rcd: 17,
            t_rp: 17,
            t_cl: 17,
            t_cwl: 12,
            t_ras: 39,
            t_burst: 4,
            t_wr: 18,
            t_rfc: 420,
            t_refi: 9360,
            banks: 16,
            burst_bytes: 64,
        }
    }

    /// Minimum possible read latency (row open, no queuing): `tCL + tBURST`.
    pub fn min_read_latency(&self) -> u64 {
        self.t_cl + self.t_burst
    }
}

impl Default for DeviceTiming {
    fn default() -> Self {
        DeviceTiming::ddr3_1600()
    }
}

/// Splits a byte address into `(row, bank, column)` coordinates.
///
/// Layout (low → high bits): 6 bits burst offset, `col_bits` column,
/// `bank_bits` bank, remainder row — the standard row-interleaved mapping
/// that makes sequential streams hit the same row repeatedly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMapping {
    /// Bits of burst offset discarded from the bottom.
    pub offset_bits: u32,
    /// Column bits above the offset.
    pub col_bits: u32,
    /// Bank bits above the columns.
    pub bank_bits: u32,
}

impl AddressMapping {
    /// The default mapping: 64-byte bursts, 128 columns, 8 banks.
    pub fn new() -> Self {
        AddressMapping {
            offset_bits: 6,
            col_bits: 7,
            bank_bits: 3,
        }
    }

    /// A mapping addressing `banks` banks (must be a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `banks` is not a power of two.
    pub fn with_banks(banks: usize) -> Self {
        assert!(banks.is_power_of_two(), "bank count must be a power of two");
        AddressMapping {
            offset_bits: 6,
            col_bits: 7,
            bank_bits: banks.trailing_zeros(),
        }
    }

    /// Decompose an address.
    pub fn decode(&self, addr: u64) -> Coordinates {
        let col = (addr >> self.offset_bits) & ((1 << self.col_bits) - 1);
        let bank = (addr >> (self.offset_bits + self.col_bits)) & ((1 << self.bank_bits) - 1);
        let row = addr >> (self.offset_bits + self.col_bits + self.bank_bits);
        Coordinates {
            row,
            bank: bank as usize,
            col,
        }
    }

    /// Number of banks this mapping addresses.
    pub fn banks(&self) -> usize {
        1 << self.bank_bits
    }
}

impl Default for AddressMapping {
    fn default() -> Self {
        AddressMapping::new()
    }
}

/// Channel/rank topology of the memory subsystem.
///
/// Channels are fully independent controller lanes (own request buffer,
/// scheduler, data bus, refresh engine and power accounting), with
/// requests interleaved across them by an address hash. Ranks multiply
/// the bank count visible to one channel's controller — more bank-level
/// parallelism at the cost of more state to refresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Topology {
    /// Independent channels (power of two, ≥ 1).
    pub channels: usize,
    /// Ranks per channel (power of two, ≥ 1); scales the bank count.
    pub ranks: usize,
}

impl Topology {
    /// A `channels × ranks` topology.
    ///
    /// # Panics
    ///
    /// Panics unless both values are powers of two, `channels ≤ 64` and
    /// `ranks ≤ 8`.
    pub fn new(channels: usize, ranks: usize) -> Self {
        assert!(
            channels.is_power_of_two() && channels <= 64,
            "channels must be a power of two ≤ 64"
        );
        assert!(
            ranks.is_power_of_two() && ranks <= 8,
            "ranks must be a power of two ≤ 8"
        );
        Topology { channels, ranks }
    }

    /// The single-channel, single-rank topology (the paper's Fig. 3(a)
    /// baseline — exactly the pre-topology controller).
    pub fn single() -> Self {
        Topology {
            channels: 1,
            ranks: 1,
        }
    }

    /// Which channel serves `addr`: an XOR-fold of the column, bank and
    /// row bits above the burst offset. Folding several bit ranges keeps
    /// both sequential streams (low bits advance) and large-stride
    /// patterns (high bits advance) spread across channels instead of
    /// camping on one.
    #[inline]
    pub fn channel_of(&self, addr: u64) -> usize {
        if self.channels == 1 {
            return 0;
        }
        let x = addr >> 6;
        ((x ^ (x >> 7) ^ (x >> 13)) & (self.channels as u64 - 1)) as usize
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::single()
    }
}

/// `(row, bank, column)` coordinates of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Coordinates {
    /// Row index within the bank.
    pub row: u64,
    /// Bank index.
    pub bank: usize,
    /// Column index within the row.
    pub col: u64,
}

/// Row-buffer state of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BankState {
    /// The currently open row, if any.
    pub open_row: Option<u64>,
    /// Earliest cycle at which the bank can accept a new column command.
    pub ready_at: u64,
    /// Cycle at which the open row was activated (for `tRAS` accounting).
    pub activated_at: u64,
}

impl BankState {
    /// A fresh, precharged bank.
    pub fn new() -> Self {
        BankState::default()
    }

    /// Whether a request to `row` would be a row-buffer hit.
    pub fn is_hit(&self, row: u64) -> bool {
        self.open_row == Some(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ddr3_defaults_are_sane() {
        let t = DeviceTiming::ddr3_1600();
        assert!(t.t_ras >= t.t_rcd);
        assert!(t.t_rfc > t.t_rp);
        assert!(t.t_refi > t.t_rfc);
        assert_eq!(t.banks, 8);
        assert_eq!(t.min_read_latency(), 15);
    }

    #[test]
    fn ddr4_grade_is_faster_in_wall_clock_terms() {
        let d3 = DeviceTiming::ddr3_1600();
        let d4 = DeviceTiming::ddr4_2400();
        // More cycles of CAS latency, but each cycle is shorter: the
        // absolute random-access latency is in the same band.
        let lat3 = (d3.t_rcd + d3.t_cl + d3.t_burst) as f64 * d3.clock_ns;
        let lat4 = (d4.t_rcd + d4.t_cl + d4.t_burst) as f64 * d4.clock_ns;
        assert!((lat4 - lat3).abs() / lat3 < 0.25, "{lat3} vs {lat4}");
        // Peak bandwidth is clearly higher.
        let bw3 = d3.burst_bytes as f64 / (d3.t_burst as f64 * d3.clock_ns);
        let bw4 = d4.burst_bytes as f64 / (d4.t_burst as f64 * d4.clock_ns);
        assert!(bw4 > bw3 * 1.3);
        assert_eq!(d4.banks, 16);
    }

    #[test]
    fn address_mapping_sequential_addresses_share_a_row() {
        let m = AddressMapping::new();
        let a = m.decode(0);
        let b = m.decode(64); // next burst
        assert_eq!(a.row, b.row);
        assert_eq!(a.bank, b.bank);
        assert_eq!(a.col + 1, b.col);
    }

    #[test]
    fn address_mapping_row_stride_changes_bank_then_row() {
        let m = AddressMapping::new();
        let row_bytes = 64u64 << m.col_bits; // one full row in one bank
        let a = m.decode(0);
        let c = m.decode(row_bytes);
        assert_eq!(a.row, c.row);
        assert_eq!(c.bank, 1); // first the bank bits advance
        let d = m.decode(row_bytes * m.banks() as u64);
        assert_eq!(d.bank, 0);
        assert_eq!(d.row, a.row + 1); // then the row
    }

    #[test]
    fn bank_state_hit_detection() {
        let mut b = BankState::new();
        assert!(!b.is_hit(5));
        b.open_row = Some(5);
        assert!(b.is_hit(5));
        assert!(!b.is_hit(6));
    }

    #[test]
    fn topology_defaults_to_single_lane() {
        let t = Topology::default();
        assert_eq!(t, Topology::single());
        assert_eq!(t.channel_of(0xDEAD_BEEF), 0);
    }

    #[test]
    fn channel_hash_spreads_a_sequential_stream() {
        let t = Topology::new(4, 1);
        // 64-byte sequential bursts must not camp on one channel.
        let mut seen = [0usize; 4];
        for i in 0..64u64 {
            seen[t.channel_of(i * 64)] += 1;
        }
        for (ch, &count) in seen.iter().enumerate() {
            assert!(count >= 8, "channel {ch} starved: {seen:?}");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn topology_rejects_non_pow2_channels() {
        let _ = Topology::new(3, 1);
    }

    proptest! {
        #[test]
        fn prop_channel_in_range(addr in 0u64..u64::MAX / 2, ch_pow in 0u32..4, rk_pow in 0u32..2) {
            let t = Topology::new(1 << ch_pow, 1 << rk_pow);
            prop_assert!(t.channel_of(addr) < t.channels);
        }

        #[test]
        fn prop_decode_is_injective_on_aligned_addresses(x in 0u64..1_000_000) {
            let m = AddressMapping::new();
            let addr = x * 64;
            let c = m.decode(addr);
            // Reassemble and compare.
            let back = (((c.row << m.bank_bits) | c.bank as u64) << m.col_bits | c.col) << m.offset_bits;
            prop_assert_eq!(back, addr);
        }

        #[test]
        fn prop_bank_index_in_range(addr in 0u64..u64::MAX / 2) {
            let m = AddressMapping::new();
            prop_assert!(m.decode(addr).bank < m.banks());
        }
    }
}
