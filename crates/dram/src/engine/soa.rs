//! The data-oriented (structure-of-arrays) engine — the default hot path.
//!
//! Layout:
//!
//! * **Bank state** is four flat `u64` arrays plus one `f64` array
//!   (`open_row`/`ready_at`/`activated_at`/`data_done`/`hit_ewma`),
//!   indexed by bank. `u64::MAX` is the "row closed" sentinel (a real
//!   row index is an address shifted right by ≥ 13 bits, so it can
//!   never collide).
//! * **Request arena** is a pooled set of ≤ [`MAX_SLOTS`] slots split
//!   into parallel arrays (`row`/`id`/`bank`), with occupancy tracked in
//!   bitmasks: `occ` (live slots), `writes` (live write slots) and — for
//!   the `Bankwise` organization only — `bank_slots[b]`/`occ_banks`.
//!   Admission takes `(!occ).trailing_zeros()`; no per-bank `Vec`
//!   queues, no slab, no free list. A tiny `order` array keeps the live
//!   slots in arrival order (admissions append, removals shift ≤
//!   buffer-size bytes).
//! * **Candidate selection** walks `order` — already the arrival-id
//!   tie-break order — tracking the strictly-best `(class, arbiter
//!   key)`, which is exactly the reference engine's lexicographic
//!   `(class, key, id)` minimum. The run is monomorphized over
//!   `(scheduler, arbiter, buffer)`, so the policy matches const-fold
//!   away and the common FR-FCFS walk exits at the first row hit
//!   (class 0 with a constant key cannot be beaten by a later id).
//!   The default policy triple (FR-FCFS, FIFO arbiter, shared buffer)
//!   skips the walk entirely: one pass ORs per-candidate row-hit flags
//!   into a bitmask and `trailing_zeros` picks the oldest hit — fully
//!   branchless selection.
//! * **Outstanding completions** live in the monotone [`EventWheel`]
//!   (see `wheel.rs` for the monotonicity proof).
//!
//! The controller semantics (steps 1–9 and all timing arithmetic) are
//! copied verbatim from the reference engine so outputs stay
//! bit-identical; the equivalence proptests enforce it.

use super::{EngineCtx, EventWheel, RawRun};
use crate::controller::{Arbiter, PagePolicy, RefreshPolicy, Scheduler, SchedulerBuffer};
use crate::power::OpCounts;
use crate::trace::MemoryRequest;

/// Bank-state lanes available (`occ_banks` is one `u64`).
pub const MAX_BANKS: usize = 64;
/// Request-arena slots available (`occ` is one `u32`).
pub const MAX_SLOTS: usize = 32;

/// "No open row" sentinel for the `open_row` lane.
const CLOSED: u64 = u64::MAX;

// Const-generic policy selectors (one `run_impl` instantiation per
// combination, so every per-candidate `match` folds to straight-line
// code).
const S_FIFO: u8 = 0;
const S_FRFCFS: u8 = 1;
const S_FRFCFSGRP: u8 = 2;
const A_SIMPLE: u8 = 0;
const A_FIFO: u8 = 1;
const A_REORDER: u8 = 2;
const B_BANKWISE: u8 = 0;
const B_READWRITE: u8 = 1;
const B_SHARED: u8 = 2;

pub(super) fn run(ctx: &EngineCtx<'_>, trace: &[MemoryRequest]) -> RawRun {
    macro_rules! arb {
        ($sc:expr, $bc:expr, $ad:expr) => {
            match ctx.config.arbiter {
                Arbiter::Simple => run_impl::<$sc, A_SIMPLE, $bc, $ad>(ctx, trace),
                Arbiter::Fifo => run_impl::<$sc, A_FIFO, $bc, $ad>(ctx, trace),
                Arbiter::Reorder => run_impl::<$sc, A_REORDER, $bc, $ad>(ctx, trace),
            }
        };
    }
    macro_rules! sched {
        ($bc:expr, $ad:expr) => {
            match ctx.config.scheduler {
                Scheduler::Fifo => arb!(S_FIFO, $bc, $ad),
                Scheduler::FrFcfs => arb!(S_FRFCFS, $bc, $ad),
                Scheduler::FrFcfsGrp => arb!(S_FRFCFSGRP, $bc, $ad),
            }
        };
    }
    macro_rules! buf {
        ($ad:expr) => {
            match ctx.config.scheduler_buffer {
                SchedulerBuffer::Bankwise => sched!(B_BANKWISE, $ad),
                SchedulerBuffer::ReadWrite => sched!(B_READWRITE, $ad),
                SchedulerBuffer::Shared => sched!(B_SHARED, $ad),
            }
        };
    }
    // `ADAPTIVE` folds the hit-rate EWMA away for the static page
    // policies: the update is a serial FP dependency chain per bank, a
    // real fraction of per-issue latency, and Open/Closed never read it.
    match ctx.config.page_policy {
        PagePolicy::Open | PagePolicy::Closed => buf!(false),
        PagePolicy::OpenAdaptive | PagePolicy::ClosedAdaptive => buf!(true),
    }
}

fn run_impl<const SCHED: u8, const ARB: u8, const BUF: u8, const ADAPTIVE: bool>(
    ctx: &EngineCtx<'_>,
    trace: &[MemoryRequest],
) -> RawRun {
    let t = ctx.timing;
    let cfg = ctx.config;
    let n = trace.len();
    let nb = ctx.mapping.banks();
    debug_assert!(nb <= MAX_BANKS && cfg.request_buffer_size <= MAX_SLOTS);
    debug_assert!(n <= u32::MAX as usize);

    // Hoist timing and config scalars into locals so the hot loop reads
    // registers, not struct fields behind references.
    let (t_rcd, t_rp, t_cl, t_cwl) = (t.t_rcd, t.t_rp, t.t_cl, t.t_cwl);
    let (t_ras, t_burst, t_wr) = (t.t_ras, t.t_burst, t.t_wr);
    let (t_rfc, t_refi) = (t.t_rfc, t.t_refi);
    let mapping = *ctx.mapping;
    let page_policy = cfg.page_policy;
    // Hoisted keep-open decision for the static policies (`ADAPTIVE`
    // folds the per-issue policy match away entirely).
    let static_keep_open = page_policy == PagePolicy::Open;
    let refresh_on = cfg.refresh_policy == RefreshPolicy::AllBank;
    let buf_cap = cfg.request_buffer_size;
    let cap_mask: u32 = if buf_cap >= 32 {
        u32::MAX
    } else {
        (1u32 << buf_cap) - 1
    };
    let mat = cfg.max_active_transactions;
    let max_postponed = cfg.refresh_max_postponed as i64;
    let max_pulled_in = cfg.refresh_max_pulled_in as i64;

    // SoA bank state.
    let mut open = [CLOSED; MAX_BANKS];
    let mut ready = [0u64; MAX_BANKS];
    let mut activated = [0u64; MAX_BANKS];
    let mut done = [0u64; MAX_BANKS];
    let mut ewma = [0f64; MAX_BANKS];

    // SoA request arena. `order[..buffered]` lists live slots in
    // arrival order; the per-bank masks exist only for `Bankwise`.
    let mut slot_row = [0u64; MAX_SLOTS];
    let mut slot_id = [0u32; MAX_SLOTS];
    let mut slot_bank = [0u8; MAX_SLOTS];
    let mut order = [0u8; MAX_SLOTS];
    let mut occ: u32 = 0;
    let mut writes: u32 = 0;
    let mut bank_slots = [0u32; MAX_BANKS];
    let mut occ_banks: u64 = 0;
    let mut buffered = 0usize;

    let mut completion = vec![0u64; n];
    let mut outstanding = EventWheel::with_capacity(mat.min(n.max(1)));
    let mut next_admit = 0usize;
    let mut now = 0u64;
    let mut bus_free = 0u64;
    let mut counts = OpCounts::default();
    let mut row_hits = 0u64;
    let mut row_misses = 0u64;
    let mut row_conflicts = 0u64;
    let mut next_refi = t_refi;
    let mut refresh_debt: i64 = 0;
    let mut last_type_write = false;
    let mut rr_bank = 0usize;

    loop {
        // 1. Retire issued requests whose data has returned.
        outstanding.retire_until(now);

        // 2. Admit arrivals within buffer and transaction-window limits.
        while next_admit < n
            && trace[next_admit].arrival <= now
            && buffered < buf_cap
            && buffered + outstanding.len() < mat
        {
            let req = trace[next_admit];
            let coords = mapping.decode(req.addr);
            // Masking the indices to the (power-of-two) array widths
            // lets the compiler drop every bounds check in this loop.
            let slot = (!occ & cap_mask).trailing_zeros() as usize & (MAX_SLOTS - 1);
            let bk = coords.bank & (MAX_BANKS - 1);
            slot_row[slot] = coords.row;
            slot_id[slot] = next_admit as u32;
            slot_bank[slot] = bk as u8;
            order[buffered & (MAX_SLOTS - 1)] = slot as u8;
            let bit = 1u32 << slot;
            occ |= bit;
            writes |= bit * u32::from(req.is_write);
            if BUF == B_BANKWISE {
                bank_slots[bk] |= bit;
                occ_banks |= 1u64 << bk;
            }
            buffered += 1;
            next_admit += 1;
        }

        // 3. Refresh engine. Debt never goes negative (a refresh only
        // fires with positive debt), so nothing can happen before the
        // next tREFI boundary unless debt is already outstanding — one
        // compound test skips the whole block on the common path.
        if refresh_on && (refresh_debt > 0 || now >= next_refi) {
            while now >= next_refi {
                refresh_debt += 1;
                next_refi += t_refi;
            }
            let forced = refresh_debt > max_postponed;
            let opportunistic = buffered == 0 && next_admit < n && refresh_debt > -max_pulled_in;
            if forced || (opportunistic && refresh_debt > 0) {
                let mut start = now;
                for &r in ready.iter().take(nb) {
                    start = start.max(r);
                }
                for b in 0..nb {
                    if open[b] != CLOSED {
                        counts.precharges += 1;
                        open[b] = CLOSED;
                    }
                    ready[b] = start + t_rfc;
                }
                counts.refreshes += 1;
                refresh_debt -= 1;
                now = start + t_rfc;
                continue;
            }
        }

        // 4. Nothing schedulable: advance time to the next event.
        if buffered == 0 {
            if next_admit >= n {
                break; // every request issued; data returns on its own
            }
            let arrival_evt = trace[next_admit].arrival;
            // Admission may also be blocked by the transaction window.
            let evt = if outstanding.len() >= mat {
                outstanding.front().unwrap_or(arrival_evt)
            } else {
                arrival_evt
            };
            now = now.max(evt).max(now + 1);
            continue;
        }

        // 5. Visibility. `Shared` sees everything; `ReadWrite` hides
        // writes while any read is buffered; `Bankwise` restricts the
        // walk to the round-robin bank (found with two trailing_zeros
        // over the occupied-banks mask instead of an O(banks) probe).
        let hide_writes = BUF == B_READWRITE && (occ & !writes) != 0 && writes != 0;
        let mut rr_chosen = 0usize;
        if BUF == B_BANKWISE {
            let from_cursor = occ_banks >> rr_bank;
            rr_chosen = if from_cursor != 0 {
                rr_bank + from_cursor.trailing_zeros() as usize
            } else {
                occ_banks.trailing_zeros() as usize
            };
            rr_bank = (rr_chosen + 1) % nb;
        }

        // 6–7. Candidate selection: walk the live slots in arrival
        // order tracking the strictly-best `(class, arbiter key)` —
        // identical to the reference's lexicographic
        // `(class, key, id)` minimum, because the walk order IS the id
        // tie-break. `SCHED`/`ARB` are const, so the policy code below
        // folds to straight-line form, and a class-0 candidate with a
        // bottomed-out key ends the walk early (on FR-FCFS + FIFO
        // arbitration — the common shape — that is the first row hit).
        let mut best_class = u64::MAX;
        let mut best_key = u64::MAX;
        let mut best_slot = 0usize;
        let mut best_pos = 0usize;
        if SCHED == S_FRFCFS && ARB == A_FIFO && BUF == B_SHARED {
            // Fully branchless FR-FCFS for the default policy triple:
            // one pass builds a row-hit bitmask in arrival-position
            // space, then `trailing_zeros` picks the oldest hit — or,
            // with no hit set, returns 32, which the slot mask maps to
            // position 0, the oldest request. Identical to the generic
            // walk below (class = !hit, key = 0, id tie-break), with no
            // data-dependent branches for the predictor to miss.
            let mut hitmask: u32 = 0;
            for pos in 0..buffered {
                let slot = order[pos & (MAX_SLOTS - 1)] as usize & (MAX_SLOTS - 1);
                let b = slot_bank[slot] as usize & (MAX_BANKS - 1);
                hitmask |= u32::from(open[b] == slot_row[slot]) << pos;
            }
            best_pos = hitmask.trailing_zeros() as usize & (MAX_SLOTS - 1);
            best_slot = order[best_pos] as usize & (MAX_SLOTS - 1);
            best_class = 0;
        } else {
            for (pos, &s) in order.iter().enumerate().take(buffered) {
                let slot = s as usize & (MAX_SLOTS - 1);
                if BUF == B_BANKWISE && slot_bank[slot] as usize != rr_chosen {
                    continue;
                }
                let is_write = writes >> slot & 1 != 0;
                if hide_writes && is_write {
                    continue;
                }
                let b = slot_bank[slot] as usize & (MAX_BANKS - 1);
                let hit = open[b] == slot_row[slot];
                let class: u64 = match SCHED {
                    S_FIFO => 0,
                    S_FRFCFS => u64::from(!hit),
                    _ => {
                        if hit {
                            0
                        } else if is_write == last_type_write {
                            1
                        } else {
                            2
                        }
                    }
                };
                let key: u64 = match ARB {
                    A_SIMPLE => b as u64,
                    A_FIFO => 0,
                    _ => {
                        let base = now.max(ready[b]);
                        let extra = if hit {
                            0
                        } else if open[b] != CLOSED {
                            t_rp + t_rcd
                        } else {
                            t_rcd
                        };
                        base + extra
                    }
                };
                if class < best_class || (class == best_class && key < best_key) {
                    best_class = class;
                    best_key = key;
                    best_slot = slot;
                    best_pos = pos;
                    if class == 0 && (ARB == A_FIFO || key == 0) {
                        break; // nothing later (= younger) can beat this
                    }
                }
            }
        }
        debug_assert!(
            best_class != u64::MAX,
            "non-empty buffer yields a candidate"
        );

        // Remove the winner from the arena (shift ≤ buffer-size bytes;
        // a manual byte loop, so no memmove call for a 4-byte shift).
        let slot = best_slot & (MAX_SLOTS - 1);
        let bit = 1u32 << slot;
        let p_row = slot_row[slot];
        let p_bank = slot_bank[slot] as usize & (MAX_BANKS - 1);
        let p_id = slot_id[slot] as usize;
        let p_is_write = writes & bit != 0;
        occ &= !bit;
        writes &= !bit;
        if BUF == B_BANKWISE {
            bank_slots[p_bank] &= !bit;
            if bank_slots[p_bank] == 0 {
                occ_banks &= !(1u64 << p_bank);
            }
        }
        buffered -= 1;
        for pos in best_pos..buffered {
            order[pos & (MAX_SLOTS - 1)] = order[(pos + 1) & (MAX_SLOTS - 1)];
        }

        // 8. Bank timing engine — arithmetic identical to the
        // reference, restructured into selects. The hit/conflict/miss
        // three-way is data-dependent and mispredicts on mixed traces,
        // so every outcome's value is computed unconditionally and the
        // winner chosen with flag arithmetic the compiler lowers to
        // cmov. (`was_hit` implies `had_open`: a real row index can
        // never equal the CLOSED sentinel, so the three flag products
        // below partition exactly as the reference's if/else chain.)
        let start = now.max(ready[p_bank]);
        let open_row = open[p_bank];
        let was_hit = open_row == p_row;
        let had_open = open_row != CLOSED;
        row_hits += u64::from(was_hit);
        row_conflicts += u64::from(had_open & !was_hit);
        row_misses += u64::from(!had_open);
        counts.activates += u64::from(!was_hit);
        counts.precharges += u64::from(had_open & !was_hit);
        let pre_start = start.max(activated[p_bank] + t_ras).max(done[p_bank]);
        // Conflict: activate only after the precharge; miss: activate
        // immediately. A hit leaves the activation timestamp unchanged.
        let act_at = if had_open { pre_start + t_rp } else { start };
        activated[p_bank] = if was_hit { activated[p_bank] } else { act_at };
        let col_ready = if was_hit { start } else { act_at + t_rcd };
        let cas = if p_is_write { t_cwl } else { t_cl };
        let data_start = (col_ready + cas).max(bus_free);
        let data_end = data_start + t_burst;
        bus_free = data_end;
        completion[p_id] = data_end;
        outstanding.push(data_end);
        counts.writes += u64::from(p_is_write);
        counts.reads += u64::from(!p_is_write);
        last_type_write = p_is_write;

        // Column commands pipeline: the bank can accept its next CAS
        // one burst (≈tCCD) after this one issued; data return is
        // overlapped. Writes add recovery before the row can close.
        let cas_issue = data_start - cas;
        let next_cas = cas_issue + t_burst;
        let data_done = data_end + u64::from(p_is_write) * t_wr;

        // 9. Page policy.
        let keep_open = if ADAPTIVE {
            ewma[p_bank] = 0.875 * ewma[p_bank] + 0.125 * f64::from(was_hit);
            match page_policy {
                PagePolicy::OpenAdaptive => ewma[p_bank] > 0.25,
                _ => ewma[p_bank] > 0.75, // ClosedAdaptive
            }
        } else {
            static_keep_open
        };
        if keep_open {
            open[p_bank] = p_row;
            ready[p_bank] = next_cas;
        } else {
            // The access itself activated (or reused) a row, so closing
            // always costs one precharge — same as the reference.
            open[p_bank] = CLOSED;
            counts.precharges += 1;
            ready[p_bank] = data_done + t_rp;
        }
        done[p_bank] = data_done;

        now = start + 1;
    }

    RawRun {
        completion,
        counts,
        row_hits,
        row_misses,
        row_conflicts,
    }
}
