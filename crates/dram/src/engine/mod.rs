//! Pluggable DRAM timing engines behind the [`TimingEngine`] trait.
//!
//! The memory controller's transaction-level simulation is the hottest
//! path in the repository — every search, sweep, compare and daemon job
//! bottoms out in it — so it exists in three implementations that must
//! produce **bit-identical** results:
//!
//! * [`EngineKind::Reference`] — the naive linear-scan oracle: every
//!   scheduling decision rescans the flat request buffer. Slow, obviously
//!   correct, and the baseline every other engine is tested against.
//! * [`EngineKind::Indexed`] — per-bank indexed queues over a slab with a
//!   fused visibility/class/arbiter walk (PR 3's engine).
//! * [`EngineKind::Soa`] — the data-oriented engine: flat
//!   structure-of-arrays bank state, a pooled bitmask request arena
//!   scanned with `trailing_zeros`, and a monotone [`EventWheel`] for
//!   outstanding completions. The default whenever the configuration
//!   shape allows it (≤ [`soa::MAX_BANKS`] banks, ≤ [`soa::MAX_SLOTS`]
//!   buffer entries).
//!
//! The split mirrors an executor-backend design (one trait, several
//! increasingly specialized backends), so a SIMD lane or GPU backend is a
//! later drop-in: implement [`TimingEngine`], add an [`EngineKind`], and
//! the equivalence suite does the rest.

mod indexed;
mod reference;
pub(crate) mod soa;
mod wheel;

pub use wheel::EventWheel;

use crate::controller::ControllerConfig;
use crate::device::{AddressMapping, DeviceTiming};
use crate::power::OpCounts;
use crate::trace::MemoryRequest;

/// Selects a timing-engine implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Linear-scan oracle (slow, the correctness baseline).
    Reference,
    /// Per-bank indexed queues over a slab (PR 3).
    Indexed,
    /// Structure-of-arrays bitmask engine (fastest; shape-limited).
    Soa,
}

impl EngineKind {
    /// All engines, slowest first.
    pub const ALL: [EngineKind; 3] = [EngineKind::Reference, EngineKind::Indexed, EngineKind::Soa];

    /// Stable display name (used by bench scenario labels).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Reference => "reference",
            EngineKind::Indexed => "indexed",
            EngineKind::Soa => "soa",
        }
    }

    /// Whether this engine supports the given controller shape. The
    /// dispatcher falls back to [`EngineKind::Indexed`] (always capable)
    /// when the preferred engine cannot run a configuration.
    pub fn supports(self, ctx: &EngineCtx<'_>) -> bool {
        match self {
            EngineKind::Reference | EngineKind::Indexed => true,
            EngineKind::Soa => {
                ctx.mapping.banks() <= soa::MAX_BANKS
                    && ctx.config.request_buffer_size <= soa::MAX_SLOTS
            }
        }
    }

    /// Run this engine over `trace`, falling back to the indexed engine
    /// when the shape is unsupported (so dispatch is total). The SoA
    /// arena stores arrival ids as `u32`, so gigantic traces also fall
    /// back.
    pub fn run(self, ctx: &EngineCtx<'_>, trace: &[MemoryRequest]) -> RawRun {
        match self {
            EngineKind::Reference => reference::run(ctx, trace),
            EngineKind::Indexed => indexed::run(ctx, trace),
            EngineKind::Soa if self.supports(ctx) && trace.len() <= u32::MAX as usize => {
                soa::run(ctx, trace)
            }
            EngineKind::Soa => indexed::run(ctx, trace),
        }
    }
}

/// Immutable inputs shared by every engine: device timing, address
/// mapping (bank count already includes the rank multiplier) and the
/// ten-parameter controller configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineCtx<'a> {
    /// Device timing parameters.
    pub timing: &'a DeviceTiming,
    /// Address decomposition; [`AddressMapping::banks`] is the engine's
    /// bank-state width.
    pub mapping: &'a AddressMapping,
    /// Controller configuration.
    pub config: &'a ControllerConfig,
}

/// Raw output of one engine run over one (channel-local) trace, before
/// stage-10 accounting: per-request completion cycles plus the operation
/// and row-buffer counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawRun {
    /// Completion (data-end) cycle per request, indexed by trace position.
    pub completion: Vec<u64>,
    /// Operation counters for the energy model.
    pub counts: OpCounts,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Accesses to a precharged bank.
    pub row_misses: u64,
    /// Accesses that closed another row first.
    pub row_conflicts: u64,
}

/// A transaction-level DRAM timing engine. Implementations must be
/// bit-identical to [`EngineKind::Reference`] over every supported
/// configuration — the equivalence tests and proptests in
/// `controller.rs` enforce this, and CI re-runs them in release mode
/// with 512 cases.
pub trait TimingEngine {
    /// Stable display name.
    fn name(&self) -> &'static str;
    /// Simulate `trace` to completion.
    fn run(&self, ctx: &EngineCtx<'_>, trace: &[MemoryRequest]) -> RawRun;
}

impl TimingEngine for EngineKind {
    fn name(&self) -> &'static str {
        EngineKind::name(*self)
    }
    fn run(&self, ctx: &EngineCtx<'_>, trace: &[MemoryRequest]) -> RawRun {
        EngineKind::run(*self, ctx, trace)
    }
}

/// One buffered request, as the scalar (array-of-structs) engines store
/// it. The SoA engine splits these fields across parallel arrays.
#[derive(Debug, Clone)]
pub(crate) struct Pending {
    pub id: usize,
    pub row: u64,
    pub bank: usize,
    pub is_write: bool,
}

/// Per-bank timing state for the scalar engines.
#[derive(Debug, Clone, Default)]
pub(crate) struct Bank {
    pub open_row: Option<u64>,
    /// Earliest cycle the bank accepts its next column command.
    pub ready_at: u64,
    pub activated_at: u64,
    /// When the last access's data (plus write recovery) finishes — the
    /// earliest a precharge may start.
    pub data_done: u64,
    pub hit_ewma: f64,
}
