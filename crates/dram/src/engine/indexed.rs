//! The per-bank indexed engine (PR 3), now on the monotone event wheel.
//!
//! Pending requests live in a slab with per-bank queues of slab slots in
//! arrival order. Each scheduling decision walks the visible banks'
//! queues once, fusing visibility filter, scheduler class and arbiter
//! key into a single pass; within one bank, at most one entry per
//! `(class, row-hit)` combination can win (keys are constant given the
//! bank's state and the hit status, and ties break by arrival id, which
//! is the queue order), so each bank contributes O(1) candidates instead
//! of a full rescan. The `Bankwise` round-robin probe checks queue
//! emptiness per bank — O(banks) — instead of scanning the whole buffer
//! per bank.
//!
//! This engine handles every configuration shape (any bank count, any
//! buffer depth); the faster SoA engine delegates to it outside its
//! bitmask limits.

use super::{Bank, EngineCtx, EventWheel, Pending, RawRun};
use crate::controller::{Arbiter, PagePolicy, RefreshPolicy, Scheduler, SchedulerBuffer};
use crate::power::OpCounts;
use crate::trace::MemoryRequest;

pub(super) fn run(ctx: &EngineCtx<'_>, trace: &[MemoryRequest]) -> RawRun {
    let t = ctx.timing;
    let cfg = ctx.config;
    let n = trace.len();

    let mut completion = vec![0u64; n];
    let mut banks: Vec<Bank> = (0..ctx.mapping.banks()).map(|_| Bank::default()).collect();
    let nb = banks.len();
    // The slab + free list recycle Pending slots; `queues[bank]`
    // holds slab slots in arrival order (admission ids increase and
    // removal preserves order, so no sorting is ever needed).
    let mut slots: Vec<Pending> = Vec::with_capacity(cfg.request_buffer_size);
    let mut free: Vec<usize> = Vec::with_capacity(cfg.request_buffer_size);
    let mut queues: Vec<Vec<usize>> = vec![Vec::with_capacity(cfg.request_buffer_size); nb];
    // Bitmask of banks with a non-empty queue, so each scheduling
    // decision visits only occupied banks (≤ buffered ≤ buffer
    // size) instead of every bank.
    let mut occupied: Vec<u64> = vec![0; nb.div_ceil(64)];
    let mut buffered = 0usize;
    let mut reads_buffered = 0usize;
    // Completion times of issued requests: pushed in nondecreasing order
    // (bus serialization), so the monotone wheel replaces the old
    // `BinaryHeap<Reverse<u64>>` with O(1) push/front/retire.
    let mut outstanding = EventWheel::with_capacity(cfg.max_active_transactions);
    let mut next_admit = 0usize;
    let mut now = 0u64;
    let mut bus_free = 0u64;
    let mut counts = OpCounts::default();
    let mut row_hits = 0u64;
    let mut row_misses = 0u64;
    let mut row_conflicts = 0u64;
    let mut next_refi = t.t_refi;
    let mut refresh_debt: i64 = 0;
    let mut last_type_write = false;
    let mut rr_bank = 0usize;

    loop {
        // 1. Retire issued requests whose data has returned.
        outstanding.retire_until(now);

        // 2. Admit arrivals within buffer and transaction-window limits.
        while next_admit < n
            && trace[next_admit].arrival <= now
            && buffered < cfg.request_buffer_size
            && buffered + outstanding.len() < cfg.max_active_transactions
        {
            let req = trace[next_admit];
            let coords = ctx.mapping.decode(req.addr);
            let pending = Pending {
                id: next_admit,
                row: coords.row,
                bank: coords.bank,
                is_write: req.is_write,
            };
            let slot = match free.pop() {
                Some(slot) => {
                    slots[slot] = pending;
                    slot
                }
                None => {
                    slots.push(pending);
                    slots.len() - 1
                }
            };
            let queue = &mut queues[coords.bank];
            if queue.is_empty() {
                occupied[coords.bank / 64] |= 1u64 << (coords.bank % 64);
            }
            queue.push(slot);
            buffered += 1;
            if !req.is_write {
                reads_buffered += 1;
            }
            next_admit += 1;
        }

        // 3. Refresh engine.
        if cfg.refresh_policy == RefreshPolicy::AllBank {
            while now >= next_refi {
                refresh_debt += 1;
                next_refi += t.t_refi;
            }
            let forced = refresh_debt > cfg.refresh_max_postponed as i64;
            let opportunistic = buffered == 0
                && next_admit < n
                && refresh_debt > -(cfg.refresh_max_pulled_in as i64);
            if forced || (opportunistic && refresh_debt > 0) {
                let start = banks
                    .iter()
                    .map(|b| b.ready_at)
                    .max()
                    .unwrap_or(now)
                    .max(now);
                for b in &mut banks {
                    if b.open_row.take().is_some() {
                        counts.precharges += 1;
                    }
                    b.ready_at = start + t.t_rfc;
                }
                counts.refreshes += 1;
                refresh_debt -= 1;
                now = start + t.t_rfc;
                continue;
            }
        }

        // 4. Nothing schedulable: advance time to the next event.
        if buffered == 0 {
            if next_admit >= n {
                break; // every request issued; data returns on its own
            }
            let arrival_evt = trace[next_admit].arrival;
            // Admission may also be blocked by the transaction window.
            let window_full = outstanding.len() >= cfg.max_active_transactions;
            let evt = if window_full {
                outstanding.front().unwrap_or(arrival_evt)
            } else {
                arrival_evt
            };
            now = now.max(evt).max(now + 1);
            continue;
        }

        // 5–7. Fused candidate selection: visibility, scheduler class
        // and arbiter key in one walk over the visible banks' queues.
        // The winner is the lexicographic minimum of
        // `(class, arbiter key, arrival id)`, which matches the
        // reference engine's min-class-then-arbiter-tie-break because
        // every arbiter embeds the unique arrival id.
        let reads_only = cfg.scheduler_buffer == SchedulerBuffer::ReadWrite && reads_buffered > 0;

        let mut best: Option<(u32, u64, usize)> = None;
        let mut best_bank = 0usize;
        let mut best_pos = 0usize;
        {
            // Within one bank, class and arbiter key are functions of
            // (bank state, row-hit, access type vs. last); only the
            // arrival id breaks ties, and the queue is id-ordered —
            // so only the first entry of each (class, hit) pair can
            // win. Six possible pairs → O(1) candidates per bank.
            let mut consider = |bank_idx: usize| {
                let bank = &banks[bank_idx];
                let mut seen: u8 = 0;
                for (pos, &slot) in queues[bank_idx].iter().enumerate() {
                    if seen == 0b11_1111 {
                        break; // every (class, hit) pair already seen
                    }
                    let p = &slots[slot];
                    if reads_only && p.is_write {
                        continue;
                    }
                    let hit = bank.open_row == Some(p.row);
                    let class = match cfg.scheduler {
                        Scheduler::Fifo => 0,
                        Scheduler::FrFcfs => u32::from(!hit),
                        Scheduler::FrFcfsGrp => {
                            if hit {
                                0
                            } else if p.is_write == last_type_write {
                                1
                            } else {
                                2
                            }
                        }
                    };
                    let mask = 1u8 << (class * 2 + u32::from(hit));
                    if seen & mask != 0 {
                        continue;
                    }
                    seen |= mask;
                    let key = match cfg.arbiter {
                        Arbiter::Simple => bank_idx as u64,
                        Arbiter::Fifo => 0,
                        Arbiter::Reorder => {
                            let base = now.max(bank.ready_at);
                            let extra = match bank.open_row {
                                Some(r) if r == p.row => 0,
                                Some(_) => t.t_rp + t.t_rcd,
                                None => t.t_rcd,
                            };
                            base + extra
                        }
                    };
                    let candidate = (class, key, p.id);
                    if best.is_none_or(|b| candidate < b) {
                        best = Some(candidate);
                        best_bank = bank_idx;
                        best_pos = pos;
                    }
                }
            };
            match cfg.scheduler_buffer {
                SchedulerBuffer::Bankwise => {
                    let mut chosen = None;
                    for off in 0..nb {
                        let bank = (rr_bank + off) % nb;
                        if occupied[bank / 64] & (1u64 << (bank % 64)) != 0 {
                            chosen = Some(bank);
                            break;
                        }
                    }
                    let bank = chosen.expect("buffer non-empty");
                    rr_bank = (bank + 1) % nb;
                    consider(bank);
                }
                _ => {
                    // The winner is a global lexicographic minimum, so
                    // enumeration order is free — walk only the set
                    // bits of the occupancy mask.
                    for (word_idx, &word) in occupied.iter().enumerate() {
                        let mut bits = word;
                        while bits != 0 {
                            let bank_idx = word_idx * 64 + bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            consider(bank_idx);
                        }
                    }
                }
            }
        }
        debug_assert!(best.is_some(), "non-empty buffer must yield a candidate");
        let slot = queues[best_bank].remove(best_pos);
        if queues[best_bank].is_empty() {
            occupied[best_bank / 64] &= !(1u64 << (best_bank % 64));
        }
        let p = slots[slot].clone();
        free.push(slot);
        buffered -= 1;
        if !p.is_write {
            reads_buffered -= 1;
        }

        // 8. Bank timing engine.
        let bank = &mut banks[p.bank];
        let start = now.max(bank.ready_at);
        let was_hit = bank.open_row == Some(p.row);
        let col_ready = match bank.open_row {
            Some(r) if r == p.row => {
                row_hits += 1;
                start
            }
            Some(_) => {
                row_conflicts += 1;
                counts.precharges += 1;
                counts.activates += 1;
                let pre_start = start.max(bank.activated_at + t.t_ras).max(bank.data_done);
                bank.activated_at = pre_start + t.t_rp;
                pre_start + t.t_rp + t.t_rcd
            }
            None => {
                row_misses += 1;
                counts.activates += 1;
                bank.activated_at = start;
                start + t.t_rcd
            }
        };
        let cas = if p.is_write { t.t_cwl } else { t.t_cl };
        let data_start = (col_ready + cas).max(bus_free);
        let data_end = data_start + t.t_burst;
        bus_free = data_end;
        completion[p.id] = data_end;
        outstanding.push(data_end);
        if p.is_write {
            counts.writes += 1;
        } else {
            counts.reads += 1;
        }
        last_type_write = p.is_write;

        // Column commands pipeline: the bank can accept its next CAS
        // one burst (≈tCCD) after this one issued; data return is
        // overlapped. Writes add recovery before the row can close.
        let cas_issue = data_start - cas;
        let next_cas = cas_issue + t.t_burst;
        let data_done = if p.is_write {
            data_end + t.t_wr
        } else {
            data_end
        };

        // 9. Page policy.
        bank.hit_ewma = 0.875 * bank.hit_ewma + 0.125 * f64::from(was_hit);
        let keep_open = match cfg.page_policy {
            PagePolicy::Open => true,
            PagePolicy::Closed => false,
            PagePolicy::OpenAdaptive => bank.hit_ewma > 0.25,
            PagePolicy::ClosedAdaptive => bank.hit_ewma > 0.75,
        };
        if keep_open {
            bank.open_row = Some(p.row);
            bank.ready_at = next_cas;
        } else {
            bank.open_row = None;
            counts.precharges += 1;
            bank.ready_at = data_done + t.t_rp;
        }
        bank.data_done = data_done;

        now = start + 1;
    }

    RawRun {
        completion,
        counts,
        row_hits,
        row_misses,
        row_conflicts,
    }
}
