//! The linear-scan reference engine — the correctness oracle.
//!
//! Every scheduling decision rescans the flat request buffer several
//! times (visibility filter, scheduler-class min, arbiter tie-break as
//! separate passes) and outstanding completions live in a plain binary
//! heap. Deliberately naive: this engine exists to be obviously faithful
//! to the controller semantics documented in `controller.rs`, so the
//! optimized engines can be tested bit-for-bit against it. Do not
//! optimize it.

use super::{Bank, EngineCtx, Pending, RawRun};
use crate::controller::{PagePolicy, RefreshPolicy, Scheduler, SchedulerBuffer};
use crate::power::OpCounts;
use crate::trace::MemoryRequest;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

pub(super) fn run(ctx: &EngineCtx<'_>, trace: &[MemoryRequest]) -> RawRun {
    let t = ctx.timing;
    let cfg = ctx.config;
    let n = trace.len();

    let mut completion = vec![0u64; n];
    let mut banks: Vec<Bank> = (0..ctx.mapping.banks()).map(|_| Bank::default()).collect();
    let mut buffer: Vec<Pending> = Vec::with_capacity(cfg.request_buffer_size);
    // Completion times of issued requests, min-first so retirement pops
    // only what is due instead of scanning every outstanding request.
    let mut outstanding: BinaryHeap<Reverse<u64>> =
        BinaryHeap::with_capacity(cfg.max_active_transactions);
    // Scratch for the scheduler: indices into `buffer`, refilled in
    // place each decision so the loop allocates nothing per request.
    let mut sched: Vec<usize> = Vec::with_capacity(cfg.request_buffer_size);
    let mut next_admit = 0usize;
    let mut now = 0u64;
    let mut bus_free = 0u64;
    let mut counts = OpCounts::default();
    let mut row_hits = 0u64;
    let mut row_misses = 0u64;
    let mut row_conflicts = 0u64;
    let mut next_refi = t.t_refi;
    let mut refresh_debt: i64 = 0;
    let mut last_type_write = false;
    let mut rr_bank = 0usize;

    loop {
        // 1. Retire issued requests whose data has returned.
        while outstanding.peek().is_some_and(|&Reverse(c)| c <= now) {
            outstanding.pop();
        }

        // 2. Admit arrivals within buffer and transaction-window limits.
        while next_admit < n
            && trace[next_admit].arrival <= now
            && buffer.len() < cfg.request_buffer_size
            && buffer.len() + outstanding.len() < cfg.max_active_transactions
        {
            let req = trace[next_admit];
            let coords = ctx.mapping.decode(req.addr);
            buffer.push(Pending {
                id: next_admit,
                row: coords.row,
                bank: coords.bank,
                is_write: req.is_write,
            });
            next_admit += 1;
        }

        // 3. Refresh engine.
        if cfg.refresh_policy == RefreshPolicy::AllBank {
            while now >= next_refi {
                refresh_debt += 1;
                next_refi += t.t_refi;
            }
            let forced = refresh_debt > cfg.refresh_max_postponed as i64;
            let opportunistic = buffer.is_empty()
                && next_admit < n
                && refresh_debt > -(cfg.refresh_max_pulled_in as i64);
            if forced || (opportunistic && refresh_debt > 0) {
                let start = banks
                    .iter()
                    .map(|b| b.ready_at)
                    .max()
                    .unwrap_or(now)
                    .max(now);
                for b in &mut banks {
                    if b.open_row.take().is_some() {
                        counts.precharges += 1;
                    }
                    b.ready_at = start + t.t_rfc;
                }
                counts.refreshes += 1;
                refresh_debt -= 1;
                now = start + t.t_rfc;
                continue;
            }
        }

        // 4. Nothing schedulable: advance time to the next event.
        if buffer.is_empty() {
            if next_admit >= n {
                break; // every request issued; data returns on its own
            }
            let arrival_evt = trace[next_admit].arrival;
            // Admission may also be blocked by the transaction window.
            let window_full = outstanding.len() >= cfg.max_active_transactions;
            let evt = if window_full {
                outstanding.peek().map_or(arrival_evt, |&Reverse(c)| c)
            } else {
                arrival_evt
            };
            now = now.max(evt).max(now + 1);
            continue;
        }

        // 5. Scheduler visibility (into the reused scratch buffer).
        sched.clear();
        match cfg.scheduler_buffer {
            SchedulerBuffer::Shared => sched.extend(0..buffer.len()),
            SchedulerBuffer::ReadWrite => {
                sched.extend((0..buffer.len()).filter(|&i| !buffer[i].is_write));
                if sched.is_empty() {
                    sched.extend(0..buffer.len());
                }
            }
            SchedulerBuffer::Bankwise => {
                let nb = banks.len();
                let mut chosen = None;
                for off in 0..nb {
                    let bank = (rr_bank + off) % nb;
                    if buffer.iter().any(|p| p.bank == bank) {
                        chosen = Some(bank);
                        break;
                    }
                }
                let bank = chosen.expect("buffer non-empty");
                rr_bank = (bank + 1) % nb;
                sched.extend((0..buffer.len()).filter(|&i| buffer[i].bank == bank));
            }
        };

        // 6. Scheduler class: lower is more preferred.
        let class = |p: &Pending| -> u32 {
            let hit = banks[p.bank].open_row == Some(p.row);
            match cfg.scheduler {
                Scheduler::Fifo => 0,
                Scheduler::FrFcfs => u32::from(!hit),
                Scheduler::FrFcfsGrp => {
                    if hit {
                        0
                    } else if p.is_write == last_type_write {
                        1
                    } else {
                        2
                    }
                }
            }
        };
        let best_class = sched.iter().map(|&i| class(&buffer[i])).min().unwrap();
        sched.retain(|&i| class(&buffer[i]) == best_class);

        // 7. Arbiter tie-break.
        let estimate_start = |p: &Pending| -> u64 {
            let b = &banks[p.bank];
            let base = now.max(b.ready_at);
            let extra = match b.open_row {
                Some(r) if r == p.row => 0,
                Some(_) => t.t_rp + t.t_rcd,
                None => t.t_rcd,
            };
            base + extra
        };
        let chosen_pos = match cfg.arbiter {
            crate::controller::Arbiter::Simple => sched
                .iter()
                .copied()
                .min_by_key(|&i| (buffer[i].bank, buffer[i].id))
                .unwrap(),
            crate::controller::Arbiter::Fifo => {
                sched.iter().copied().min_by_key(|&i| buffer[i].id).unwrap()
            }
            crate::controller::Arbiter::Reorder => sched
                .iter()
                .copied()
                .min_by_key(|&i| (estimate_start(&buffer[i]), buffer[i].id))
                .unwrap(),
        };
        let p = buffer.swap_remove(chosen_pos);

        // 8. Bank timing engine.
        let bank = &mut banks[p.bank];
        let start = now.max(bank.ready_at);
        let was_hit = bank.open_row == Some(p.row);
        let col_ready = match bank.open_row {
            Some(r) if r == p.row => {
                row_hits += 1;
                start
            }
            Some(_) => {
                row_conflicts += 1;
                counts.precharges += 1;
                counts.activates += 1;
                let pre_start = start.max(bank.activated_at + t.t_ras).max(bank.data_done);
                bank.activated_at = pre_start + t.t_rp;
                pre_start + t.t_rp + t.t_rcd
            }
            None => {
                row_misses += 1;
                counts.activates += 1;
                bank.activated_at = start;
                start + t.t_rcd
            }
        };
        let cas = if p.is_write { t.t_cwl } else { t.t_cl };
        let data_start = (col_ready + cas).max(bus_free);
        let data_end = data_start + t.t_burst;
        bus_free = data_end;
        completion[p.id] = data_end;
        outstanding.push(Reverse(data_end));
        if p.is_write {
            counts.writes += 1;
        } else {
            counts.reads += 1;
        }
        last_type_write = p.is_write;

        // Column commands pipeline: the bank can accept its next CAS
        // one burst (≈tCCD) after this one issued; data return is
        // overlapped. Writes add recovery before the row can close.
        let cas_issue = data_start - cas;
        let next_cas = cas_issue + t.t_burst;
        let data_done = if p.is_write {
            data_end + t.t_wr
        } else {
            data_end
        };

        // 9. Page policy.
        bank.hit_ewma = 0.875 * bank.hit_ewma + 0.125 * f64::from(was_hit);
        let keep_open = match cfg.page_policy {
            PagePolicy::Open => true,
            PagePolicy::Closed => false,
            PagePolicy::OpenAdaptive => bank.hit_ewma > 0.25,
            PagePolicy::ClosedAdaptive => bank.hit_ewma > 0.75,
        };
        if keep_open {
            bank.open_row = Some(p.row);
            bank.ready_at = next_cas;
        } else {
            bank.open_row = None;
            counts.precharges += 1;
            bank.ready_at = data_done + t.t_rp;
        }
        bank.data_done = data_done;

        now = start + 1;
    }

    RawRun {
        completion,
        counts,
        row_hits,
        row_misses,
        row_conflicts,
    }
}
