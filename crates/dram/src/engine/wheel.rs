//! A monotone event wheel for outstanding-completion events.
//!
//! The engines previously tracked issued-but-unreturned requests in a
//! `BinaryHeap<Reverse<u64>>`: O(log n) sift per push/pop plus a pointer
//! chase per comparison. But completion events are **provably pushed in
//! nondecreasing order**: every issue serializes on the shared data bus
//! (`data_start = max(col_ready + cas, bus_free)`,
//! `data_end = data_start + t_burst > bus_free`, and `bus_free` becomes
//! `data_end`), so each pushed completion strictly exceeds the previous
//! one. Under a monotone insert stream, a calendar queue's bucket
//! hierarchy collapses to a single lane — the correct degenerate form is
//! a plain ring buffer with O(1) push/front/pop and no comparisons at
//! all. `debug_assert`s enforce the monotonicity contract, and the
//! engine-equivalence suite (which compares against the heap-based
//! reference engine) proves retirement order is unchanged.

/// A FIFO ring of event times that must be pushed in nondecreasing
/// order; the front is always the earliest outstanding event.
#[derive(Debug, Clone)]
pub struct EventWheel {
    ring: Vec<u64>,
    mask: usize,
    /// Monotonically increasing push/pop counters; `tail - head` is the
    /// live length and `counter & mask` the ring index.
    head: usize,
    tail: usize,
    #[cfg(debug_assertions)]
    last: u64,
}

impl EventWheel {
    /// A wheel that holds at least `capacity` events without growing.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        EventWheel {
            ring: vec![0; cap],
            mask: cap - 1,
            head: 0,
            tail: 0,
            #[cfg(debug_assertions)]
            last: 0,
        }
    }

    /// Number of outstanding events.
    #[inline]
    pub fn len(&self) -> usize {
        self.tail - self.head
    }

    /// Whether no events are outstanding.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// The earliest outstanding event time, if any.
    #[inline]
    pub fn front(&self) -> Option<u64> {
        if self.is_empty() {
            None
        } else {
            Some(self.ring[self.head & self.mask])
        }
    }

    /// Append an event time. Must be ≥ every previously pushed time.
    #[inline]
    pub fn push(&mut self, at: u64) {
        #[cfg(debug_assertions)]
        {
            debug_assert!(at >= self.last, "event wheel pushes must be monotone");
            self.last = at;
        }
        if self.len() == self.ring.len() {
            self.grow();
        }
        self.ring[self.tail & self.mask] = at;
        self.tail += 1;
    }

    /// Remove and return the earliest event time.
    #[inline]
    pub fn pop_front(&mut self) -> Option<u64> {
        if self.is_empty() {
            return None;
        }
        let at = self.ring[self.head & self.mask];
        self.head += 1;
        Some(at)
    }

    /// Drop every event at or before `now`, returning how many retired.
    #[inline]
    pub fn retire_until(&mut self, now: u64) -> usize {
        let before = self.len();
        while self.front().is_some_and(|at| at <= now) {
            self.head += 1;
        }
        before - self.len()
    }

    /// Double the ring, relinearizing live events (cold path: sized to
    /// the transaction window up front, this only runs on misuse-scale
    /// windows).
    fn grow(&mut self) {
        let mut bigger = vec![0; self.ring.len() * 2];
        let len = self.len();
        for (i, slot) in bigger.iter_mut().enumerate().take(len) {
            *slot = self.ring[(self.head + i) & self.mask];
        }
        self.ring = bigger;
        self.mask = self.ring.len() - 1;
        self.head = 0;
        self.tail = len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_front_tracking() {
        let mut w = EventWheel::with_capacity(4);
        assert!(w.is_empty());
        assert_eq!(w.front(), None);
        for at in [3u64, 3, 5, 9] {
            w.push(at);
        }
        assert_eq!(w.len(), 4);
        assert_eq!(w.front(), Some(3));
        assert_eq!(w.pop_front(), Some(3));
        assert_eq!(w.pop_front(), Some(3));
        assert_eq!(w.front(), Some(5));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn retire_until_drops_due_events_only() {
        let mut w = EventWheel::with_capacity(8);
        for at in [1u64, 4, 4, 7, 10] {
            w.push(at);
        }
        assert_eq!(w.retire_until(4), 3);
        assert_eq!(w.front(), Some(7));
        assert_eq!(w.retire_until(4), 0);
        assert_eq!(w.retire_until(100), 2);
        assert!(w.is_empty());
    }

    #[test]
    fn grows_past_initial_capacity_preserving_order() {
        let mut w = EventWheel::with_capacity(2);
        // Interleave pops so head is offset when growth happens.
        w.push(1);
        w.push(2);
        assert_eq!(w.pop_front(), Some(1));
        for at in 3..20u64 {
            w.push(at);
        }
        let drained: Vec<u64> = std::iter::from_fn(|| w.pop_front()).collect();
        let expected: Vec<u64> = (2..20).collect();
        assert_eq!(drained, expected);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "monotone")]
    fn non_monotone_push_is_a_contract_violation() {
        let mut w = EventWheel::with_capacity(4);
        w.push(5);
        w.push(4);
    }
}
