//! Memory-trace workloads.
//!
//! The paper evaluates DRAMGym on four traces shipped with DRAMSys:
//! *streaming access*, *random access* (pointer chasing), and two
//! datacenter blends, *cloud-1* and *cloud-2*. Those traces are not
//! redistributable, so this module generates synthetic traces with matched
//! access statistics; the agents only ever see the cost deltas the
//! statistics induce (row-buffer locality, bank parallelism, read/write
//! mix, arrival burstiness).

use archgym_core::error::{ArchGymError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, Read, Write};

/// One memory transaction as seen by the controller frontend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryRequest {
    /// Cycle at which the request arrives at the controller.
    pub arrival: u64,
    /// Byte address.
    pub addr: u64,
    /// Write (`true`) or read (`false`).
    pub is_write: bool,
}

/// The four trace workloads of the paper's Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DramWorkload {
    /// Sequential streaming: long unit-stride runs, 100% reads — maximal
    /// row-buffer locality.
    Stream,
    /// Pointer chasing: uniformly random addresses, dependent arrivals —
    /// minimal locality. This is the trace behind the paper's Table 4.
    Random,
    /// Datacenter blend 1: mostly short sequential bursts with occasional
    /// random jumps, 30% writes, bursty arrivals.
    Cloud1,
    /// Datacenter blend 2: hotter working set (Zipf-ish reuse of a few
    /// rows), 50% writes, heavier bursts.
    Cloud2,
}

impl DramWorkload {
    /// All four workloads in paper order.
    pub const ALL: [DramWorkload; 4] = [
        DramWorkload::Stream,
        DramWorkload::Random,
        DramWorkload::Cloud1,
        DramWorkload::Cloud2,
    ];

    /// Short identifier used in reports (`"stream"`, `"random"`, ...).
    pub fn name(&self) -> &'static str {
        match self {
            DramWorkload::Stream => "stream",
            DramWorkload::Random => "random",
            DramWorkload::Cloud1 => "cloud-1",
            DramWorkload::Cloud2 => "cloud-2",
        }
    }
}

/// Trace generation knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of requests to generate.
    pub length: usize,
    /// Mean inter-arrival gap in cycles for non-bursty phases.
    pub mean_gap: u64,
    /// Address-space size in bytes (working set).
    pub footprint: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            length: 768,
            mean_gap: 6,
            footprint: 1 << 26, // 64 MiB
        }
    }
}

/// Generate a deterministic trace for a workload.
///
/// The same `(workload, config, seed)` triple always yields the same trace.
pub fn generate<R: Rng + ?Sized>(
    workload: DramWorkload,
    config: &TraceConfig,
    rng: &mut R,
) -> Vec<MemoryRequest> {
    match workload {
        DramWorkload::Stream => stream(config, rng),
        DramWorkload::Random => pointer_chase(config, rng),
        DramWorkload::Cloud1 => cloud(config, rng, 0.30, 24, 0.10),
        DramWorkload::Cloud2 => cloud(config, rng, 0.50, 12, 0.35),
    }
}

/// The data bus serves one 64-byte burst every `tBURST = 4` cycles, so a
/// sustainable trace must arrive slower than that on average; generators
/// keep mean gaps above this floor so queueing stays bounded and latency
/// reflects design quality rather than raw saturation.
const BUS_SERVICE_CYCLES: u64 = 4;

fn stream<R: Rng + ?Sized>(config: &TraceConfig, rng: &mut R) -> Vec<MemoryRequest> {
    let mut trace = Vec::with_capacity(config.length);
    let mut addr = (rng.gen_range(0..config.footprint) / 64) * 64;
    let mut cycle = 0u64;
    for _ in 0..config.length {
        trace.push(MemoryRequest {
            arrival: cycle,
            addr: addr % config.footprint,
            is_write: false,
        });
        addr += 64;
        cycle += BUS_SERVICE_CYCLES + 1 + rng.gen_range(0..config.mean_gap.max(1));
    }
    trace
}

fn pointer_chase<R: Rng + ?Sized>(config: &TraceConfig, rng: &mut R) -> Vec<MemoryRequest> {
    let mut trace = Vec::with_capacity(config.length);
    let mut cycle = 0u64;
    for _ in 0..config.length {
        let addr = (rng.gen_range(0..config.footprint) / 64) * 64;
        trace.push(MemoryRequest {
            arrival: cycle,
            addr,
            is_write: false,
        });
        // A dependent chain: the next load can only issue after the
        // previous one would plausibly return, so gaps are long.
        cycle += config.mean_gap.max(1) * 4 + rng.gen_range(0..config.mean_gap.max(1) * 2);
    }
    trace
}

/// Mixed datacenter-style trace.
///
/// `write_frac` of requests are writes; sequential runs of geometric mean
/// length `run_len` are interleaved with random jumps; `hot_frac` of jumps
/// land in a small hot region (row reuse).
fn cloud<R: Rng + ?Sized>(
    config: &TraceConfig,
    rng: &mut R,
    write_frac: f64,
    run_len: u64,
    hot_frac: f64,
) -> Vec<MemoryRequest> {
    let mut trace = Vec::with_capacity(config.length);
    let hot_region = config.footprint / 256;
    let mut addr = (rng.gen_range(0..config.footprint) / 64) * 64;
    let mut remaining_run = 0u64;
    let mut cycle = 0u64;
    for _ in 0..config.length {
        if remaining_run == 0 {
            // Jump: either into the hot region or anywhere.
            addr = if rng.gen_bool(hot_frac) {
                (rng.gen_range(0..hot_region) / 64) * 64
            } else {
                (rng.gen_range(0..config.footprint) / 64) * 64
            };
            remaining_run = 1 + rng.gen_range(0..run_len.max(1));
            // Bursts arrive near back-to-back; the inter-run pause keeps
            // the long-run arrival rate below the bus service rate so the
            // burstiness stresses buffering, not raw saturation.
            cycle += remaining_run * (BUS_SERVICE_CYCLES - 2)
                + config.mean_gap.max(1) * 3
                + rng.gen_range(0..config.mean_gap.max(1) * 2);
        } else {
            addr = (addr + 64) % config.footprint;
            cycle += 2;
        }
        remaining_run -= 1;
        trace.push(MemoryRequest {
            arrival: cycle,
            addr,
            is_write: rng.gen_bool(write_frac),
        });
    }
    trace
}

/// Summary statistics of a memory trace — the characterization an
/// architect reads before choosing controller parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of requests.
    pub requests: usize,
    /// Fraction of writes.
    pub write_fraction: f64,
    /// Mean inter-arrival gap in cycles.
    pub mean_gap_cycles: f64,
    /// Fraction of accesses that would hit an open row under an
    /// always-open policy (upper bound on row-buffer locality).
    pub row_hit_potential: f64,
    /// Number of distinct banks touched.
    pub banks_touched: usize,
    /// Footprint: number of distinct 64-byte lines touched.
    pub unique_lines: usize,
}

/// Characterize a trace (using the default address mapping).
///
/// # Panics
///
/// Panics if `trace` is empty.
pub fn characterize(trace: &[MemoryRequest]) -> TraceStats {
    assert!(!trace.is_empty(), "cannot characterize an empty trace");
    let mapping = crate::device::AddressMapping::new();
    let mut open: Vec<Option<u64>> = vec![None; mapping.banks()];
    let mut hits = 0usize;
    let mut banks = std::collections::BTreeSet::new();
    let mut lines = std::collections::BTreeSet::new();
    let mut writes = 0usize;
    for req in trace {
        let c = mapping.decode(req.addr);
        if open[c.bank] == Some(c.row) {
            hits += 1;
        }
        open[c.bank] = Some(c.row);
        banks.insert(c.bank);
        lines.insert(req.addr / 64);
        writes += usize::from(req.is_write);
    }
    let span = trace.last().unwrap().arrival - trace[0].arrival;
    TraceStats {
        requests: trace.len(),
        write_fraction: writes as f64 / trace.len() as f64,
        mean_gap_cycles: if trace.len() > 1 {
            span as f64 / (trace.len() - 1) as f64
        } else {
            0.0
        },
        row_hit_potential: hits as f64 / trace.len() as f64,
        banks_touched: banks.len(),
        unique_lines: lines.len(),
    }
}

/// Write a trace in the STL-like text format DRAMSys uses:
/// one `<cycle>: <read|write> <hex address>` line per request.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_trace<W: Write>(trace: &[MemoryRequest], mut writer: W) -> Result<()> {
    for req in trace {
        writeln!(
            writer,
            "{}: {} 0x{:x}",
            req.arrival,
            if req.is_write { "write" } else { "read" },
            req.addr
        )?;
    }
    Ok(())
}

/// Parse a trace written by [`write_trace`]. Blank lines and `#` comments
/// are skipped.
///
/// # Errors
///
/// Returns [`ArchGymError::InvalidConfig`] on malformed lines or
/// non-monotonic arrival cycles.
pub fn read_trace<R: Read>(reader: R) -> Result<Vec<MemoryRequest>> {
    let mut trace = Vec::new();
    let mut last_arrival = 0u64;
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad =
            |what: &str| ArchGymError::InvalidConfig(format!("trace line {}: {what}", lineno + 1));
        let (cycle_str, rest) = line.split_once(':').ok_or_else(|| bad("missing `:`"))?;
        let arrival: u64 = cycle_str
            .trim()
            .parse()
            .map_err(|_| bad("bad cycle count"))?;
        let mut parts = rest.split_whitespace();
        let op = parts.next().ok_or_else(|| bad("missing operation"))?;
        let is_write = match op {
            "read" => false,
            "write" => true,
            _ => return Err(bad("operation must be read|write")),
        };
        let addr_str = parts.next().ok_or_else(|| bad("missing address"))?;
        let addr_str = addr_str.strip_prefix("0x").unwrap_or(addr_str);
        let addr = u64::from_str_radix(addr_str, 16).map_err(|_| bad("bad hex address"))?;
        if arrival < last_arrival {
            return Err(bad("arrival cycles must be non-decreasing"));
        }
        last_arrival = arrival;
        trace.push(MemoryRequest {
            arrival,
            addr,
            is_write,
        });
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::AddressMapping;
    use archgym_core::seeded_rng;

    fn row_hit_fraction(trace: &[MemoryRequest]) -> f64 {
        let mapping = AddressMapping::new();
        let mut open: Vec<Option<u64>> = vec![None; mapping.banks()];
        let mut hits = 0usize;
        for req in trace {
            let c = mapping.decode(req.addr);
            if open[c.bank] == Some(c.row) {
                hits += 1;
            }
            open[c.bank] = Some(c.row);
        }
        hits as f64 / trace.len() as f64
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let cfg = TraceConfig::default();
        for wl in DramWorkload::ALL {
            let a = generate(wl, &cfg, &mut seeded_rng(7));
            let b = generate(wl, &cfg, &mut seeded_rng(7));
            assert_eq!(a, b, "{} trace must be reproducible", wl.name());
            let c = generate(wl, &cfg, &mut seeded_rng(8));
            assert_ne!(a, c, "{} trace must vary with seed", wl.name());
        }
    }

    #[test]
    fn traces_have_requested_length_and_monotone_arrivals() {
        let cfg = TraceConfig {
            length: 300,
            ..TraceConfig::default()
        };
        for wl in DramWorkload::ALL {
            let t = generate(wl, &cfg, &mut seeded_rng(3));
            assert_eq!(t.len(), 300);
            assert!(
                t.windows(2).all(|w| w[0].arrival <= w[1].arrival),
                "{} arrivals must be non-decreasing",
                wl.name()
            );
            assert!(t.iter().all(|r| r.addr < cfg.footprint));
            assert!(t.iter().all(|r| r.addr % 64 == 0));
        }
    }

    #[test]
    fn stream_has_high_locality_random_has_low() {
        let cfg = TraceConfig::default();
        let stream = generate(DramWorkload::Stream, &cfg, &mut seeded_rng(1));
        let random = generate(DramWorkload::Random, &cfg, &mut seeded_rng(1));
        let stream_hits = row_hit_fraction(&stream);
        let random_hits = row_hit_fraction(&random);
        assert!(stream_hits > 0.8, "stream locality {stream_hits} too low");
        assert!(random_hits < 0.1, "random locality {random_hits} too high");
    }

    #[test]
    fn cloud_traces_sit_between_the_extremes() {
        let cfg = TraceConfig::default();
        let c1 = row_hit_fraction(&generate(DramWorkload::Cloud1, &cfg, &mut seeded_rng(5)));
        let c2 = row_hit_fraction(&generate(DramWorkload::Cloud2, &cfg, &mut seeded_rng(5)));
        for (name, frac) in [("cloud-1", c1), ("cloud-2", c2)] {
            assert!(
                (0.1..0.95).contains(&frac),
                "{name} locality {frac} out of band"
            );
        }
    }

    #[test]
    fn write_fractions_match_blend() {
        let cfg = TraceConfig {
            length: 2000,
            ..TraceConfig::default()
        };
        let writes = |wl| {
            let t = generate(wl, &cfg, &mut seeded_rng(2));
            t.iter().filter(|r| r.is_write).count() as f64 / t.len() as f64
        };
        assert_eq!(writes(DramWorkload::Stream), 0.0);
        assert_eq!(writes(DramWorkload::Random), 0.0);
        let w1 = writes(DramWorkload::Cloud1);
        let w2 = writes(DramWorkload::Cloud2);
        assert!((w1 - 0.30).abs() < 0.06, "cloud-1 write frac {w1}");
        assert!((w2 - 0.50).abs() < 0.06, "cloud-2 write frac {w2}");
    }

    #[test]
    fn arrival_rates_stay_below_bus_saturation() {
        // Mean inter-arrival gap must exceed the bus service time so the
        // measured latency reflects controller quality, not unbounded
        // queueing.
        let cfg = TraceConfig {
            length: 2000,
            ..TraceConfig::default()
        };
        for wl in DramWorkload::ALL {
            let t = generate(wl, &cfg, &mut seeded_rng(13));
            let span = t.last().unwrap().arrival - t[0].arrival;
            let mean_gap = span as f64 / (t.len() - 1) as f64;
            assert!(
                mean_gap > BUS_SERVICE_CYCLES as f64 + 0.5,
                "{}: mean gap {mean_gap} saturates the bus",
                wl.name()
            );
        }
    }

    #[test]
    fn workload_names_are_stable() {
        let names: Vec<&str> = DramWorkload::ALL.iter().map(|w| w.name()).collect();
        assert_eq!(names, ["stream", "random", "cloud-1", "cloud-2"]);
    }

    #[test]
    fn characterization_distinguishes_the_workloads() {
        let cfg = TraceConfig::default();
        let stats = |wl| characterize(&generate(wl, &cfg, &mut seeded_rng(7)));
        let stream = stats(DramWorkload::Stream);
        let random = stats(DramWorkload::Random);
        let cloud1 = stats(DramWorkload::Cloud1);
        assert!(stream.row_hit_potential > 0.8);
        assert!(random.row_hit_potential < 0.1);
        assert!(random.unique_lines > stream.unique_lines / 2);
        assert_eq!(stream.write_fraction, 0.0);
        assert!(cloud1.write_fraction > 0.2);
        assert!(random.mean_gap_cycles > stream.mean_gap_cycles);
        assert!(random.banks_touched == 8);
    }

    #[test]
    fn trace_file_roundtrip() {
        let cfg = TraceConfig::default();
        let trace = generate(DramWorkload::Cloud2, &cfg, &mut seeded_rng(9));
        let mut bytes = Vec::new();
        write_trace(&trace, &mut bytes).unwrap();
        let text = String::from_utf8(bytes.clone()).unwrap();
        assert!(text.lines().next().unwrap().contains("0x"));
        let back = read_trace(bytes.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn trace_parser_skips_comments_and_rejects_garbage() {
        let good = "# a comment\n\n0: read 0x40\n5: write 0x80\n";
        let trace = read_trace(good.as_bytes()).unwrap();
        assert_eq!(trace.len(), 2);
        assert!(trace[1].is_write);
        assert_eq!(trace[1].addr, 0x80);

        for bad in [
            "0 read 0x40\n",                // missing colon
            "x: read 0x40\n",               // bad cycle
            "0: load 0x40\n",               // unknown op
            "0: read zz\n",                 // bad address
            "5: read 0x40\n0: read 0x80\n", // decreasing arrivals
        ] {
            assert!(read_trace(bad.as_bytes()).is_err(), "accepted {bad:?}");
        }
    }
}
