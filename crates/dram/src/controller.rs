//! The configurable DRAM memory controller and its transaction-level
//! simulator.
//!
//! The controller exposes exactly the ten parameters of the paper's
//! Fig. 3(a). Requests flow: trace → request buffer (admission limited by
//! `RequestBufferSize` and `MaxActiveTransactions`) → scheduler + arbiter
//! pick → bank timing engine (page policy decides row-buffer fate) →
//! response queue (in-order or out-of-order delivery). An all-bank refresh
//! engine can postpone or pull in refreshes within configured limits.

use crate::device::{AddressMapping, DeviceTiming};
use crate::power::{OpCounts, PowerModel};
use crate::trace::MemoryRequest;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PagePolicy {
    /// Keep the row open after every access.
    Open,
    /// Keep open while the recent hit rate justifies it.
    OpenAdaptive,
    /// Precharge immediately after every access.
    Closed,
    /// Precharge unless the recent hit rate is very high.
    ClosedAdaptive,
}

impl PagePolicy {
    /// All variants in the paper's order.
    pub const ALL: [PagePolicy; 4] = [
        PagePolicy::Open,
        PagePolicy::OpenAdaptive,
        PagePolicy::Closed,
        PagePolicy::ClosedAdaptive,
    ];
}

/// Request scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheduler {
    /// Strictly oldest-first.
    Fifo,
    /// Row hits first, grouped by access type to limit bus turnarounds.
    FrFcfsGrp,
    /// Row hits first, then oldest-first.
    FrFcfs,
}

impl Scheduler {
    /// All variants in the paper's order.
    pub const ALL: [Scheduler; 3] = [Scheduler::Fifo, Scheduler::FrFcfsGrp, Scheduler::FrFcfs];
}

/// Which buffered requests the scheduler can see each cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerBuffer {
    /// Per-bank queues served round-robin.
    Bankwise,
    /// Separate read and write queues; reads drain first.
    ReadWrite,
    /// One shared queue, everything visible.
    Shared,
}

impl SchedulerBuffer {
    /// All variants in the paper's order.
    pub const ALL: [SchedulerBuffer; 3] = [
        SchedulerBuffer::Bankwise,
        SchedulerBuffer::ReadWrite,
        SchedulerBuffer::Shared,
    ];
}

/// Tie-breaking policy when several requests are equally schedulable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Arbiter {
    /// Static bank priority (cheapest, least fair).
    Simple,
    /// Arrival order.
    Fifo,
    /// Earliest-possible-start wins (costs reorder logic power).
    Reorder,
}

impl Arbiter {
    /// All variants in the paper's order.
    pub const ALL: [Arbiter; 3] = [Arbiter::Simple, Arbiter::Fifo, Arbiter::Reorder];
}

/// Response delivery order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RespQueue {
    /// Responses return in request order; a slow older request delays all
    /// younger ones.
    Fifo,
    /// Responses return as soon as data is available.
    Reorder,
}

impl RespQueue {
    /// All variants in the paper's order.
    pub const ALL: [RespQueue; 2] = [RespQueue::Fifo, RespQueue::Reorder];
}

/// Refresh strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RefreshPolicy {
    /// No refresh at all (cheapest; valid for short-lived or non-volatile
    /// experiments — the paper's space includes it).
    NoRefresh,
    /// Periodic all-bank refresh every `tREFI`, with postpone/pull-in
    /// flexibility.
    AllBank,
}

impl RefreshPolicy {
    /// All variants in the paper's order.
    pub const ALL: [RefreshPolicy; 2] = [RefreshPolicy::NoRefresh, RefreshPolicy::AllBank];
}

/// The ten-parameter memory-controller configuration of Fig. 3(a).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// How many due refreshes may be postponed (1–8).
    pub refresh_max_postponed: u32,
    /// How many refreshes may be pulled in early (1–8).
    pub refresh_max_pulled_in: u32,
    /// Scheduler-visible request-buffer entries (1–8).
    pub request_buffer_size: usize,
    /// Outstanding-transaction window (1–128, powers of two).
    pub max_active_transactions: usize,
    /// Row-buffer management policy.
    pub page_policy: PagePolicy,
    /// Request scheduling policy.
    pub scheduler: Scheduler,
    /// Scheduler queue organization.
    pub scheduler_buffer: SchedulerBuffer,
    /// Tie-breaking arbiter.
    pub arbiter: Arbiter,
    /// Response delivery order.
    pub resp_queue: RespQueue,
    /// Refresh strategy.
    pub refresh_policy: RefreshPolicy,
}

impl Default for ControllerConfig {
    /// A sensible mid-range controller (FR-FCFS, open page, refresh on).
    fn default() -> Self {
        ControllerConfig {
            refresh_max_postponed: 1,
            refresh_max_pulled_in: 1,
            request_buffer_size: 4,
            max_active_transactions: 16,
            page_policy: PagePolicy::Open,
            scheduler: Scheduler::FrFcfs,
            scheduler_buffer: SchedulerBuffer::Shared,
            arbiter: Arbiter::Fifo,
            resp_queue: RespQueue::Fifo,
            refresh_policy: RefreshPolicy::AllBank,
        }
    }
}

/// Aggregate results of one trace simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Mean request latency (arrival → response) in nanoseconds.
    pub avg_latency_ns: f64,
    /// 95th-percentile request latency in nanoseconds.
    pub p95_latency_ns: f64,
    /// Average power over the simulation in watts.
    pub power_w: f64,
    /// Total energy in microjoules.
    pub energy_uj: f64,
    /// Simulated duration in cycles.
    pub total_cycles: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Accesses to a precharged bank (row miss).
    pub row_misses: u64,
    /// Accesses that had to close another row first (row conflict).
    pub row_conflicts: u64,
    /// Operation counters used for the energy model.
    pub counts: OpCounts,
}

impl SimStats {
    /// Row-buffer hit fraction over all accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Pending {
    id: usize,
    row: u64,
    bank: usize,
    is_write: bool,
}

#[derive(Debug, Clone, Default)]
struct Bank {
    open_row: Option<u64>,
    /// Earliest cycle the bank accepts its next column command.
    ready_at: u64,
    activated_at: u64,
    /// When the last access's data (plus write recovery) finishes — the
    /// earliest a precharge may start.
    data_done: u64,
    hit_ewma: f64,
}

/// The memory controller: device timing + power model + configuration.
#[derive(Debug, Clone)]
pub struct MemoryController {
    timing: DeviceTiming,
    mapping: AddressMapping,
    power: PowerModel,
    config: ControllerConfig,
}

impl MemoryController {
    /// Build a controller with default DDR3 timing and power models.
    pub fn new(config: ControllerConfig) -> Self {
        MemoryController {
            timing: DeviceTiming::ddr3_1600(),
            mapping: AddressMapping::new(),
            power: PowerModel::ddr3(),
            config,
        }
    }

    /// Override the device timing, builder-style. The address mapping is
    /// re-derived so every bank of the new device is addressable.
    pub fn timing(mut self, timing: DeviceTiming) -> Self {
        self.mapping = AddressMapping::with_banks(timing.banks);
        self.timing = timing;
        self
    }

    /// Override the power model, builder-style.
    pub fn power_model(mut self, power: PowerModel) -> Self {
        self.power = power;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Simulate a trace to completion and report aggregate statistics.
    ///
    /// Pending requests live in a slab with **per-bank queues** of slab
    /// slots in arrival order. Each scheduling decision walks the
    /// visible banks' queues once, fusing visibility filter, scheduler
    /// class and arbiter key into a single pass; within one bank, at
    /// most one entry per `(class, row-hit)` combination can win (keys
    /// are constant given the bank's state and the hit status, and ties
    /// break by arrival id, which is the queue order), so each bank
    /// contributes O(1) candidates instead of a full rescan. The
    /// `Bankwise` round-robin probe checks queue emptiness per bank —
    /// O(banks) — instead of scanning the whole buffer per bank.
    ///
    /// Output is bit-identical to the linear-scan reference engine
    /// ([`MemoryController::simulate_linear_scan`]); the test suite
    /// compares both on every canonical workload and on randomized
    /// configurations.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is empty.
    pub fn simulate(&self, trace: &[MemoryRequest]) -> SimStats {
        assert!(!trace.is_empty(), "cannot simulate an empty trace");
        let t = &self.timing;
        let cfg = &self.config;
        let n = trace.len();

        let mut completion = vec![0u64; n];
        let mut banks: Vec<Bank> = (0..t.banks).map(|_| Bank::default()).collect();
        let nb = banks.len();
        // The slab + free list recycle Pending slots; `queues[bank]`
        // holds slab slots in arrival order (admission ids increase and
        // removal preserves order, so no sorting is ever needed).
        let mut slots: Vec<Pending> = Vec::with_capacity(cfg.request_buffer_size);
        let mut free: Vec<usize> = Vec::with_capacity(cfg.request_buffer_size);
        let mut queues: Vec<Vec<usize>> = vec![Vec::with_capacity(cfg.request_buffer_size); nb];
        // Bitmask of banks with a non-empty queue, so each scheduling
        // decision visits only occupied banks (≤ buffered ≤ buffer
        // size) instead of every bank.
        let mut occupied: Vec<u64> = vec![0; nb.div_ceil(64)];
        let mut buffered = 0usize;
        let mut reads_buffered = 0usize;
        // Completion times of issued requests, min-first so retirement pops
        // only what is due instead of scanning every outstanding request.
        let mut outstanding: BinaryHeap<Reverse<u64>> =
            BinaryHeap::with_capacity(cfg.max_active_transactions);
        let mut next_admit = 0usize;
        let mut now = 0u64;
        let mut bus_free = 0u64;
        let mut counts = OpCounts::default();
        let mut row_hits = 0u64;
        let mut row_misses = 0u64;
        let mut row_conflicts = 0u64;
        let mut next_refi = t.t_refi;
        let mut refresh_debt: i64 = 0;
        let mut last_type_write = false;
        let mut rr_bank = 0usize;

        loop {
            // 1. Retire issued requests whose data has returned.
            while outstanding.peek().is_some_and(|&Reverse(c)| c <= now) {
                outstanding.pop();
            }

            // 2. Admit arrivals within buffer and transaction-window limits.
            while next_admit < n
                && trace[next_admit].arrival <= now
                && buffered < cfg.request_buffer_size
                && buffered + outstanding.len() < cfg.max_active_transactions
            {
                let req = trace[next_admit];
                let coords = self.mapping.decode(req.addr);
                let pending = Pending {
                    id: next_admit,
                    row: coords.row,
                    bank: coords.bank,
                    is_write: req.is_write,
                };
                let slot = match free.pop() {
                    Some(slot) => {
                        slots[slot] = pending;
                        slot
                    }
                    None => {
                        slots.push(pending);
                        slots.len() - 1
                    }
                };
                let queue = &mut queues[coords.bank];
                if queue.is_empty() {
                    occupied[coords.bank / 64] |= 1u64 << (coords.bank % 64);
                }
                queue.push(slot);
                buffered += 1;
                if !req.is_write {
                    reads_buffered += 1;
                }
                next_admit += 1;
            }

            // 3. Refresh engine.
            if cfg.refresh_policy == RefreshPolicy::AllBank {
                while now >= next_refi {
                    refresh_debt += 1;
                    next_refi += t.t_refi;
                }
                let forced = refresh_debt > cfg.refresh_max_postponed as i64;
                let opportunistic = buffered == 0
                    && next_admit < n
                    && refresh_debt > -(cfg.refresh_max_pulled_in as i64);
                if forced || (opportunistic && refresh_debt > 0) {
                    let start = banks
                        .iter()
                        .map(|b| b.ready_at)
                        .max()
                        .unwrap_or(now)
                        .max(now);
                    for b in &mut banks {
                        if b.open_row.take().is_some() {
                            counts.precharges += 1;
                        }
                        b.ready_at = start + t.t_rfc;
                    }
                    counts.refreshes += 1;
                    refresh_debt -= 1;
                    now = start + t.t_rfc;
                    continue;
                }
            }

            // 4. Nothing schedulable: advance time to the next event.
            if buffered == 0 {
                if next_admit >= n {
                    break; // every request issued; data returns on its own
                }
                let arrival_evt = trace[next_admit].arrival;
                // Admission may also be blocked by the transaction window.
                let window_full = outstanding.len() >= cfg.max_active_transactions;
                let evt = if window_full {
                    outstanding.peek().map_or(arrival_evt, |&Reverse(c)| c)
                } else {
                    arrival_evt
                };
                now = now.max(evt).max(now + 1);
                continue;
            }

            // 5–7. Fused candidate selection: visibility, scheduler class
            // and arbiter key in one walk over the visible banks' queues.
            // The winner is the lexicographic minimum of
            // `(class, arbiter key, arrival id)`, which matches the
            // reference engine's min-class-then-arbiter-tie-break because
            // every arbiter embeds the unique arrival id.
            let reads_only =
                cfg.scheduler_buffer == SchedulerBuffer::ReadWrite && reads_buffered > 0;

            let mut best: Option<(u32, u64, usize)> = None;
            let mut best_bank = 0usize;
            let mut best_pos = 0usize;
            {
                // Within one bank, class and arbiter key are functions of
                // (bank state, row-hit, access type vs. last); only the
                // arrival id breaks ties, and the queue is id-ordered —
                // so only the first entry of each (class, hit) pair can
                // win. Six possible pairs → O(1) candidates per bank.
                let mut consider = |bank_idx: usize| {
                    let bank = &banks[bank_idx];
                    let mut seen: u8 = 0;
                    for (pos, &slot) in queues[bank_idx].iter().enumerate() {
                        if seen == 0b11_1111 {
                            break; // every (class, hit) pair already seen
                        }
                        let p = &slots[slot];
                        if reads_only && p.is_write {
                            continue;
                        }
                        let hit = bank.open_row == Some(p.row);
                        let class = match cfg.scheduler {
                            Scheduler::Fifo => 0,
                            Scheduler::FrFcfs => u32::from(!hit),
                            Scheduler::FrFcfsGrp => {
                                if hit {
                                    0
                                } else if p.is_write == last_type_write {
                                    1
                                } else {
                                    2
                                }
                            }
                        };
                        let mask = 1u8 << (class * 2 + u32::from(hit));
                        if seen & mask != 0 {
                            continue;
                        }
                        seen |= mask;
                        let key = match cfg.arbiter {
                            Arbiter::Simple => bank_idx as u64,
                            Arbiter::Fifo => 0,
                            Arbiter::Reorder => {
                                let base = now.max(bank.ready_at);
                                let extra = match bank.open_row {
                                    Some(r) if r == p.row => 0,
                                    Some(_) => t.t_rp + t.t_rcd,
                                    None => t.t_rcd,
                                };
                                base + extra
                            }
                        };
                        let candidate = (class, key, p.id);
                        if best.is_none_or(|b| candidate < b) {
                            best = Some(candidate);
                            best_bank = bank_idx;
                            best_pos = pos;
                        }
                    }
                };
                match cfg.scheduler_buffer {
                    SchedulerBuffer::Bankwise => {
                        let mut chosen = None;
                        for off in 0..nb {
                            let bank = (rr_bank + off) % nb;
                            if occupied[bank / 64] & (1u64 << (bank % 64)) != 0 {
                                chosen = Some(bank);
                                break;
                            }
                        }
                        let bank = chosen.expect("buffer non-empty");
                        rr_bank = (bank + 1) % nb;
                        consider(bank);
                    }
                    _ => {
                        // The winner is a global lexicographic minimum, so
                        // enumeration order is free — walk only the set
                        // bits of the occupancy mask.
                        for (word_idx, &word) in occupied.iter().enumerate() {
                            let mut bits = word;
                            while bits != 0 {
                                let bank_idx = word_idx * 64 + bits.trailing_zeros() as usize;
                                bits &= bits - 1;
                                consider(bank_idx);
                            }
                        }
                    }
                }
            }
            debug_assert!(best.is_some(), "non-empty buffer must yield a candidate");
            let slot = queues[best_bank].remove(best_pos);
            if queues[best_bank].is_empty() {
                occupied[best_bank / 64] &= !(1u64 << (best_bank % 64));
            }
            let p = slots[slot].clone();
            free.push(slot);
            buffered -= 1;
            if !p.is_write {
                reads_buffered -= 1;
            }

            // 8. Bank timing engine.
            let bank = &mut banks[p.bank];
            let start = now.max(bank.ready_at);
            let was_hit = bank.open_row == Some(p.row);
            let col_ready = match bank.open_row {
                Some(r) if r == p.row => {
                    row_hits += 1;
                    start
                }
                Some(_) => {
                    row_conflicts += 1;
                    counts.precharges += 1;
                    counts.activates += 1;
                    let pre_start = start.max(bank.activated_at + t.t_ras).max(bank.data_done);
                    bank.activated_at = pre_start + t.t_rp;
                    pre_start + t.t_rp + t.t_rcd
                }
                None => {
                    row_misses += 1;
                    counts.activates += 1;
                    bank.activated_at = start;
                    start + t.t_rcd
                }
            };
            let cas = if p.is_write { t.t_cwl } else { t.t_cl };
            let data_start = (col_ready + cas).max(bus_free);
            let data_end = data_start + t.t_burst;
            bus_free = data_end;
            completion[p.id] = data_end;
            outstanding.push(Reverse(data_end));
            if p.is_write {
                counts.writes += 1;
            } else {
                counts.reads += 1;
            }
            last_type_write = p.is_write;

            // Column commands pipeline: the bank can accept its next CAS
            // one burst (≈tCCD) after this one issued; data return is
            // overlapped. Writes add recovery before the row can close.
            let cas_issue = data_start - cas;
            let next_cas = cas_issue + t.t_burst;
            let data_done = if p.is_write {
                data_end + t.t_wr
            } else {
                data_end
            };

            // 9. Page policy.
            bank.hit_ewma = 0.875 * bank.hit_ewma + 0.125 * f64::from(was_hit);
            let keep_open = match cfg.page_policy {
                PagePolicy::Open => true,
                PagePolicy::Closed => false,
                PagePolicy::OpenAdaptive => bank.hit_ewma > 0.25,
                PagePolicy::ClosedAdaptive => bank.hit_ewma > 0.75,
            };
            if keep_open {
                bank.open_row = Some(p.row);
                bank.ready_at = next_cas;
            } else {
                bank.open_row = None;
                counts.precharges += 1;
                bank.ready_at = data_done + t.t_rp;
            }
            bank.data_done = data_done;

            now = start + 1;
        }

        self.account(
            trace,
            &completion,
            counts,
            row_hits,
            row_misses,
            row_conflicts,
        )
    }

    /// Stage 10 shared by both engines: response-queue delivery, latency
    /// accounting and the power/energy evaluation.
    fn account(
        &self,
        trace: &[MemoryRequest],
        completion: &[u64],
        counts: OpCounts,
        row_hits: u64,
        row_misses: u64,
        row_conflicts: u64,
    ) -> SimStats {
        let t = &self.timing;
        let cfg = &self.config;
        let n = trace.len();
        let mut latencies_ns = Vec::with_capacity(n);
        let mut last_resp = 0u64;
        let mut final_cycle = 0u64;
        for (id, req) in trace.iter().enumerate() {
            let resp = match cfg.resp_queue {
                RespQueue::Reorder => completion[id],
                RespQueue::Fifo => {
                    last_resp = last_resp.max(completion[id]);
                    last_resp
                }
            };
            final_cycle = final_cycle.max(resp);
            latencies_ns.push((resp - req.arrival) as f64 * t.clock_ns);
        }
        // total_cmp: no NaN panic path, and the unstable sort avoids the
        // stable sort's temporary allocation. Latencies are non-negative
        // finite values, so the order matches the old partial_cmp sort.
        latencies_ns.sort_unstable_by(f64::total_cmp);
        let avg_latency_ns = latencies_ns.iter().sum::<f64>() / n as f64;
        let p95_latency_ns = latencies_ns[((n - 1) as f64 * 0.95) as usize];

        let (energy_uj, power_w) = self.power.evaluate(&counts, cfg, final_cycle, t.clock_ns);

        SimStats {
            avg_latency_ns,
            p95_latency_ns,
            power_w,
            energy_uj,
            total_cycles: final_cycle,
            row_hits,
            row_misses,
            row_conflicts,
            counts,
        }
    }

    /// Simulate a trace to completion and report aggregate statistics.
    ///
    /// Candidate selection runs on per-bank indexed queues (see
    /// [`MemoryController::simulate`] — this is the reference
    /// implementation it is tested against): every scheduling decision
    /// rescans the flat request buffer several times. Kept `pub` so the
    /// bench harness can measure the indexed engine's gain and the test
    /// suite can enforce bit-identical outputs; not part of the stable
    /// API.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is empty.
    #[doc(hidden)]
    pub fn simulate_linear_scan(&self, trace: &[MemoryRequest]) -> SimStats {
        assert!(!trace.is_empty(), "cannot simulate an empty trace");
        let t = &self.timing;
        let cfg = &self.config;
        let n = trace.len();

        let mut completion = vec![0u64; n];
        let mut banks: Vec<Bank> = (0..t.banks).map(|_| Bank::default()).collect();
        let mut buffer: Vec<Pending> = Vec::with_capacity(cfg.request_buffer_size);
        // Completion times of issued requests, min-first so retirement pops
        // only what is due instead of scanning every outstanding request.
        let mut outstanding: BinaryHeap<Reverse<u64>> =
            BinaryHeap::with_capacity(cfg.max_active_transactions);
        // Scratch for the scheduler: indices into `buffer`, refilled in
        // place each decision so the loop allocates nothing per request.
        let mut sched: Vec<usize> = Vec::with_capacity(cfg.request_buffer_size);
        let mut next_admit = 0usize;
        let mut now = 0u64;
        let mut bus_free = 0u64;
        let mut counts = OpCounts::default();
        let mut row_hits = 0u64;
        let mut row_misses = 0u64;
        let mut row_conflicts = 0u64;
        let mut next_refi = t.t_refi;
        let mut refresh_debt: i64 = 0;
        let mut last_type_write = false;
        let mut rr_bank = 0usize;

        loop {
            // 1. Retire issued requests whose data has returned.
            while outstanding.peek().is_some_and(|&Reverse(c)| c <= now) {
                outstanding.pop();
            }

            // 2. Admit arrivals within buffer and transaction-window limits.
            while next_admit < n
                && trace[next_admit].arrival <= now
                && buffer.len() < cfg.request_buffer_size
                && buffer.len() + outstanding.len() < cfg.max_active_transactions
            {
                let req = trace[next_admit];
                let coords = self.mapping.decode(req.addr);
                buffer.push(Pending {
                    id: next_admit,
                    row: coords.row,
                    bank: coords.bank,
                    is_write: req.is_write,
                });
                next_admit += 1;
            }

            // 3. Refresh engine.
            if cfg.refresh_policy == RefreshPolicy::AllBank {
                while now >= next_refi {
                    refresh_debt += 1;
                    next_refi += t.t_refi;
                }
                let forced = refresh_debt > cfg.refresh_max_postponed as i64;
                let opportunistic = buffer.is_empty()
                    && next_admit < n
                    && refresh_debt > -(cfg.refresh_max_pulled_in as i64);
                if forced || (opportunistic && refresh_debt > 0) {
                    let start = banks
                        .iter()
                        .map(|b| b.ready_at)
                        .max()
                        .unwrap_or(now)
                        .max(now);
                    for b in &mut banks {
                        if b.open_row.take().is_some() {
                            counts.precharges += 1;
                        }
                        b.ready_at = start + t.t_rfc;
                    }
                    counts.refreshes += 1;
                    refresh_debt -= 1;
                    now = start + t.t_rfc;
                    continue;
                }
            }

            // 4. Nothing schedulable: advance time to the next event.
            if buffer.is_empty() {
                if next_admit >= n {
                    break; // every request issued; data returns on its own
                }
                let arrival_evt = trace[next_admit].arrival;
                // Admission may also be blocked by the transaction window.
                let window_full = outstanding.len() >= cfg.max_active_transactions;
                let evt = if window_full {
                    outstanding.peek().map_or(arrival_evt, |&Reverse(c)| c)
                } else {
                    arrival_evt
                };
                now = now.max(evt).max(now + 1);
                continue;
            }

            // 5. Scheduler visibility (into the reused scratch buffer).
            sched.clear();
            match cfg.scheduler_buffer {
                SchedulerBuffer::Shared => sched.extend(0..buffer.len()),
                SchedulerBuffer::ReadWrite => {
                    sched.extend((0..buffer.len()).filter(|&i| !buffer[i].is_write));
                    if sched.is_empty() {
                        sched.extend(0..buffer.len());
                    }
                }
                SchedulerBuffer::Bankwise => {
                    let nb = banks.len();
                    let mut chosen = None;
                    for off in 0..nb {
                        let bank = (rr_bank + off) % nb;
                        if buffer.iter().any(|p| p.bank == bank) {
                            chosen = Some(bank);
                            break;
                        }
                    }
                    let bank = chosen.expect("buffer non-empty");
                    rr_bank = (bank + 1) % nb;
                    sched.extend((0..buffer.len()).filter(|&i| buffer[i].bank == bank));
                }
            };

            // 6. Scheduler class: lower is more preferred.
            let class = |p: &Pending| -> u32 {
                let hit = banks[p.bank].open_row == Some(p.row);
                match cfg.scheduler {
                    Scheduler::Fifo => 0,
                    Scheduler::FrFcfs => u32::from(!hit),
                    Scheduler::FrFcfsGrp => {
                        if hit {
                            0
                        } else if p.is_write == last_type_write {
                            1
                        } else {
                            2
                        }
                    }
                }
            };
            let best_class = sched.iter().map(|&i| class(&buffer[i])).min().unwrap();
            sched.retain(|&i| class(&buffer[i]) == best_class);

            // 7. Arbiter tie-break.
            let estimate_start = |p: &Pending| -> u64 {
                let b = &banks[p.bank];
                let base = now.max(b.ready_at);
                let extra = match b.open_row {
                    Some(r) if r == p.row => 0,
                    Some(_) => t.t_rp + t.t_rcd,
                    None => t.t_rcd,
                };
                base + extra
            };
            let chosen_pos = match cfg.arbiter {
                Arbiter::Simple => sched
                    .iter()
                    .copied()
                    .min_by_key(|&i| (buffer[i].bank, buffer[i].id))
                    .unwrap(),
                Arbiter::Fifo => sched.iter().copied().min_by_key(|&i| buffer[i].id).unwrap(),
                Arbiter::Reorder => sched
                    .iter()
                    .copied()
                    .min_by_key(|&i| (estimate_start(&buffer[i]), buffer[i].id))
                    .unwrap(),
            };
            let p = buffer.swap_remove(chosen_pos);

            // 8. Bank timing engine.
            let bank = &mut banks[p.bank];
            let start = now.max(bank.ready_at);
            let was_hit = bank.open_row == Some(p.row);
            let col_ready = match bank.open_row {
                Some(r) if r == p.row => {
                    row_hits += 1;
                    start
                }
                Some(_) => {
                    row_conflicts += 1;
                    counts.precharges += 1;
                    counts.activates += 1;
                    let pre_start = start.max(bank.activated_at + t.t_ras).max(bank.data_done);
                    bank.activated_at = pre_start + t.t_rp;
                    pre_start + t.t_rp + t.t_rcd
                }
                None => {
                    row_misses += 1;
                    counts.activates += 1;
                    bank.activated_at = start;
                    start + t.t_rcd
                }
            };
            let cas = if p.is_write { t.t_cwl } else { t.t_cl };
            let data_start = (col_ready + cas).max(bus_free);
            let data_end = data_start + t.t_burst;
            bus_free = data_end;
            completion[p.id] = data_end;
            outstanding.push(Reverse(data_end));
            if p.is_write {
                counts.writes += 1;
            } else {
                counts.reads += 1;
            }
            last_type_write = p.is_write;

            // Column commands pipeline: the bank can accept its next CAS
            // one burst (≈tCCD) after this one issued; data return is
            // overlapped. Writes add recovery before the row can close.
            let cas_issue = data_start - cas;
            let next_cas = cas_issue + t.t_burst;
            let data_done = if p.is_write {
                data_end + t.t_wr
            } else {
                data_end
            };

            // 9. Page policy.
            bank.hit_ewma = 0.875 * bank.hit_ewma + 0.125 * f64::from(was_hit);
            let keep_open = match cfg.page_policy {
                PagePolicy::Open => true,
                PagePolicy::Closed => false,
                PagePolicy::OpenAdaptive => bank.hit_ewma > 0.25,
                PagePolicy::ClosedAdaptive => bank.hit_ewma > 0.75,
            };
            if keep_open {
                bank.open_row = Some(p.row);
                bank.ready_at = next_cas;
            } else {
                bank.open_row = None;
                counts.precharges += 1;
                bank.ready_at = data_done + t.t_rp;
            }
            bank.data_done = data_done;

            now = start + 1;
        }

        // 10. Response-queue delivery and latency accounting.
        let mut latencies_ns = Vec::with_capacity(n);
        let mut last_resp = 0u64;
        let mut final_cycle = 0u64;
        for (id, req) in trace.iter().enumerate() {
            let resp = match cfg.resp_queue {
                RespQueue::Reorder => completion[id],
                RespQueue::Fifo => {
                    last_resp = last_resp.max(completion[id]);
                    last_resp
                }
            };
            final_cycle = final_cycle.max(resp);
            latencies_ns.push((resp - req.arrival) as f64 * t.clock_ns);
        }
        // total_cmp: no NaN panic path, and the unstable sort avoids the
        // stable sort's temporary allocation. Latencies are non-negative
        // finite values, so the order matches the old partial_cmp sort.
        latencies_ns.sort_unstable_by(f64::total_cmp);
        let avg_latency_ns = latencies_ns.iter().sum::<f64>() / n as f64;
        let p95_latency_ns = latencies_ns[((n - 1) as f64 * 0.95) as usize];

        let (energy_uj, power_w) = self.power.evaluate(&counts, cfg, final_cycle, t.clock_ns);

        SimStats {
            avg_latency_ns,
            p95_latency_ns,
            power_w,
            energy_uj,
            total_cycles: final_cycle,
            row_hits,
            row_misses,
            row_conflicts,
            counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{generate, DramWorkload, TraceConfig};
    use archgym_core::seeded_rng;
    use proptest::prelude::*;

    fn trace(wl: DramWorkload, seed: u64) -> Vec<MemoryRequest> {
        generate(wl, &TraceConfig::default(), &mut seeded_rng(seed))
    }

    fn with(f: impl FnOnce(&mut ControllerConfig)) -> ControllerConfig {
        let mut cfg = ControllerConfig::default();
        f(&mut cfg);
        cfg
    }

    #[test]
    fn simulation_completes_all_requests() {
        let stats = MemoryController::new(ControllerConfig::default())
            .simulate(&trace(DramWorkload::Cloud1, 1));
        let total = stats.counts.reads + stats.counts.writes;
        assert_eq!(total, 768);
        assert_eq!(
            stats.row_hits + stats.row_misses + stats.row_conflicts,
            total
        );
        assert!(stats.avg_latency_ns > 0.0);
        assert!(stats.total_cycles > 0);
    }

    #[test]
    fn latency_at_least_device_minimum() {
        let t = DeviceTiming::ddr3_1600();
        for wl in DramWorkload::ALL {
            let stats = MemoryController::new(ControllerConfig::default()).simulate(&trace(wl, 2));
            assert!(
                stats.avg_latency_ns >= t.min_read_latency() as f64 * t.clock_ns - 1e-9,
                "{:?}: {} ns below device floor",
                wl,
                stats.avg_latency_ns
            );
        }
    }

    #[test]
    fn stream_hits_rows_random_does_not() {
        let open = with(|c| c.page_policy = PagePolicy::Open);
        let stream = MemoryController::new(open.clone()).simulate(&trace(DramWorkload::Stream, 3));
        let random = MemoryController::new(open).simulate(&trace(DramWorkload::Random, 3));
        assert!(
            stream.hit_rate() > 0.7,
            "stream hit rate {}",
            stream.hit_rate()
        );
        assert!(
            random.hit_rate() < 0.2,
            "random hit rate {}",
            random.hit_rate()
        );
    }

    #[test]
    fn open_policy_beats_closed_on_streaming() {
        let open = MemoryController::new(with(|c| c.page_policy = PagePolicy::Open))
            .simulate(&trace(DramWorkload::Stream, 4));
        let closed = MemoryController::new(with(|c| c.page_policy = PagePolicy::Closed))
            .simulate(&trace(DramWorkload::Stream, 4));
        assert!(
            open.avg_latency_ns < closed.avg_latency_ns,
            "open {} vs closed {}",
            open.avg_latency_ns,
            closed.avg_latency_ns
        );
        // Closed pays an activate per access on a streaming trace.
        assert!(closed.counts.activates > open.counts.activates * 5);
    }

    #[test]
    fn frfcfs_not_worse_than_fifo_on_mixed_trace() {
        let fifo = MemoryController::new(with(|c| {
            c.scheduler = Scheduler::Fifo;
            c.arbiter = Arbiter::Fifo;
        }))
        .simulate(&trace(DramWorkload::Cloud2, 5));
        let frfcfs = MemoryController::new(with(|c| {
            c.scheduler = Scheduler::FrFcfs;
            c.arbiter = Arbiter::Reorder;
        }))
        .simulate(&trace(DramWorkload::Cloud2, 5));
        assert!(
            frfcfs.avg_latency_ns <= fifo.avg_latency_ns * 1.05,
            "frfcfs {} vs fifo {}",
            frfcfs.avg_latency_ns,
            fifo.avg_latency_ns
        );
        assert!(frfcfs.row_hits >= fifo.row_hits);
    }

    #[test]
    fn no_refresh_saves_power_and_never_refreshes() {
        let on = MemoryController::new(with(|c| c.refresh_policy = RefreshPolicy::AllBank))
            .simulate(&trace(DramWorkload::Random, 6));
        let off = MemoryController::new(with(|c| c.refresh_policy = RefreshPolicy::NoRefresh))
            .simulate(&trace(DramWorkload::Random, 6));
        assert_eq!(off.counts.refreshes, 0);
        assert!(on.counts.refreshes > 0, "long random trace must refresh");
        assert!(off.energy_uj < on.energy_uj);
    }

    #[test]
    fn fifo_resp_queue_never_faster_than_reorder() {
        for wl in DramWorkload::ALL {
            let fifo = MemoryController::new(with(|c| c.resp_queue = RespQueue::Fifo))
                .simulate(&trace(wl, 7));
            let reorder = MemoryController::new(with(|c| c.resp_queue = RespQueue::Reorder))
                .simulate(&trace(wl, 7));
            assert!(
                reorder.avg_latency_ns <= fifo.avg_latency_ns + 1e-9,
                "{wl:?}: reorder {} vs fifo {}",
                reorder.avg_latency_ns,
                fifo.avg_latency_ns
            );
        }
    }

    #[test]
    fn wider_transaction_window_helps_bursty_traffic() {
        let narrow = MemoryController::new(with(|c| {
            c.max_active_transactions = 1;
            c.request_buffer_size = 1;
        }))
        .simulate(&trace(DramWorkload::Cloud2, 8));
        let wide = MemoryController::new(with(|c| {
            c.max_active_transactions = 64;
            c.request_buffer_size = 8;
        }))
        .simulate(&trace(DramWorkload::Cloud2, 8));
        assert!(
            wide.avg_latency_ns < narrow.avg_latency_ns,
            "wide {} vs narrow {}",
            wide.avg_latency_ns,
            narrow.avg_latency_ns
        );
        // ... but the wide window costs static power.
        let narrow_static = PowerModel::ddr3().static_power_w(&with(|c| {
            c.max_active_transactions = 1;
            c.request_buffer_size = 1;
        }));
        let wide_static = PowerModel::ddr3().static_power_w(&with(|c| {
            c.max_active_transactions = 64;
            c.request_buffer_size = 8;
        }));
        assert!(wide_static > narrow_static);
    }

    #[test]
    fn readwrite_buffer_drains_reads_before_writes() {
        // Two requests arrive together: a write first, then a read. The
        // ReadWrite queue organization must serve the read first.
        let trace = vec![
            MemoryRequest {
                arrival: 0,
                addr: 0,
                is_write: true,
            },
            MemoryRequest {
                arrival: 0,
                addr: 1 << 20,
                is_write: false,
            },
        ];
        let mk = |buffer: SchedulerBuffer| {
            let cfg = with(|c| {
                c.scheduler_buffer = buffer;
                c.scheduler = Scheduler::Fifo;
                c.arbiter = Arbiter::Fifo;
                c.resp_queue = RespQueue::Reorder;
                c.refresh_policy = RefreshPolicy::NoRefresh;
            });
            MemoryController::new(cfg).simulate(&trace)
        };
        let rw = mk(SchedulerBuffer::ReadWrite);
        let shared = mk(SchedulerBuffer::Shared);
        // Under Shared+FIFO the write (older) goes first and the read
        // waits; under ReadWrite the read jumps the queue, so its
        // latency — and with only one read, the p95 tail — shrinks.
        assert!(
            rw.avg_latency_ns < shared.avg_latency_ns + 1e-9,
            "ReadWrite {} vs Shared {}",
            rw.avg_latency_ns,
            shared.avg_latency_ns
        );
    }

    #[test]
    fn bankwise_buffer_round_robins_across_banks() {
        // Four requests to two banks; Bankwise must alternate banks while
        // Shared+Fifo serves in arrival order. Observable via bank-level
        // parallelism: alternation overlaps activates, lowering latency
        // on a conflict-heavy pattern.
        let bank_stride = 64 << 7; // flips the bank bits
        let trace: Vec<MemoryRequest> = (0..8)
            .map(|i| MemoryRequest {
                arrival: 0,
                // Same bank twice, then the other bank twice, with
                // different rows to force conflicts within a bank.
                addr: (i / 2 % 2) as u64 * bank_stride + (i as u64) * (1 << 20),
                is_write: false,
            })
            .collect();
        let mk = |buffer: SchedulerBuffer| {
            let cfg = with(|c| {
                c.scheduler_buffer = buffer;
                c.scheduler = Scheduler::Fifo;
                c.arbiter = Arbiter::Fifo;
                c.request_buffer_size = 8;
                c.max_active_transactions = 8;
                c.refresh_policy = RefreshPolicy::NoRefresh;
            });
            MemoryController::new(cfg).simulate(&trace)
        };
        let bankwise = mk(SchedulerBuffer::Bankwise);
        let shared = mk(SchedulerBuffer::Shared);
        assert!(
            bankwise.avg_latency_ns <= shared.avg_latency_ns + 1e-9,
            "bankwise {} vs shared {}",
            bankwise.avg_latency_ns,
            shared.avg_latency_ns
        );
    }

    #[test]
    fn refresh_postpone_budget_is_respected() {
        // A long idle-free trace with AllBank refresh: with a generous
        // postpone budget, refreshes can slide; the total count over the
        // trace still tracks elapsed tREFI intervals.
        let cfg_tight = with(|c| {
            c.refresh_policy = RefreshPolicy::AllBank;
            c.refresh_max_postponed = 1;
        });
        let cfg_loose = with(|c| {
            c.refresh_policy = RefreshPolicy::AllBank;
            c.refresh_max_postponed = 8;
        });
        let tr = trace(DramWorkload::Random, 12);
        let tight = MemoryController::new(cfg_tight).simulate(&tr);
        let loose = MemoryController::new(cfg_loose).simulate(&tr);
        // Both must refresh roughly every tREFI; postponement shifts
        // timing, not long-run counts (within the postpone window).
        let diff = tight.counts.refreshes.abs_diff(loose.counts.refreshes);
        assert!(diff <= 8, "refresh counts diverged: {tight:?} vs {loose:?}");
        assert!(tight.counts.refreshes > 0);
    }

    #[test]
    fn deterministic_for_same_config_and_trace() {
        let tr = trace(DramWorkload::Cloud1, 9);
        let a = MemoryController::new(ControllerConfig::default()).simulate(&tr);
        let b = MemoryController::new(ControllerConfig::default()).simulate(&tr);
        assert_eq!(a, b);
    }

    #[test]
    fn ddr4_grade_runs_and_uses_all_sixteen_banks() {
        let tr = trace(DramWorkload::Random, 15);
        let ddr4 = MemoryController::new(ControllerConfig::default())
            .timing(DeviceTiming::ddr4_2400())
            .simulate(&tr);
        let ddr3 = MemoryController::new(ControllerConfig::default()).simulate(&tr);
        assert_eq!(ddr4.counts.reads + ddr4.counts.writes, 768);
        assert!(ddr4.avg_latency_ns > 0.0 && ddr4.avg_latency_ns < 1e5);
        // Random pointer chasing: similar absolute latency band across
        // grades; DDR4 must not be pathologically slower.
        assert!(
            ddr4.avg_latency_ns < ddr3.avg_latency_ns * 1.5,
            "ddr4 {} vs ddr3 {}",
            ddr4.avg_latency_ns,
            ddr3.avg_latency_ns
        );
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_panics() {
        let _ = MemoryController::new(ControllerConfig::default()).simulate(&[]);
    }

    #[test]
    fn indexed_engine_matches_linear_scan_on_canonical_workloads() {
        // Bit-identical outputs on every canonical workload, across a
        // spread of scheduler/arbiter/buffer organizations that exercise
        // each visibility and tie-break path.
        let configs = [
            ControllerConfig::default(),
            with(|c| {
                c.scheduler = Scheduler::FrFcfsGrp;
                c.scheduler_buffer = SchedulerBuffer::Bankwise;
                c.arbiter = Arbiter::Reorder;
            }),
            with(|c| {
                c.scheduler = Scheduler::Fifo;
                c.scheduler_buffer = SchedulerBuffer::ReadWrite;
                c.arbiter = Arbiter::Reorder;
                c.page_policy = PagePolicy::ClosedAdaptive;
            }),
            with(|c| {
                c.scheduler_buffer = SchedulerBuffer::Bankwise;
                c.arbiter = Arbiter::Simple;
                c.request_buffer_size = 8;
                c.max_active_transactions = 64;
                c.refresh_policy = RefreshPolicy::NoRefresh;
            }),
        ];
        for wl in DramWorkload::ALL {
            let tr = trace(wl, 21);
            for cfg in &configs {
                let controller = MemoryController::new(cfg.clone());
                assert_eq!(
                    controller.simulate(&tr),
                    controller.simulate_linear_scan(&tr),
                    "{wl:?} / {cfg:?}"
                );
            }
        }
    }

    #[test]
    fn indexed_engine_matches_linear_scan_on_ddr4() {
        let tr = trace(DramWorkload::Cloud2, 22);
        let controller = MemoryController::new(with(|c| {
            c.scheduler_buffer = SchedulerBuffer::Bankwise;
            c.arbiter = Arbiter::Reorder;
        }))
        .timing(DeviceTiming::ddr4_2400());
        assert_eq!(
            controller.simulate(&tr),
            controller.simulate_linear_scan(&tr)
        );
    }

    fn arbitrary_config(seed: u64) -> ControllerConfig {
        use rand::Rng;
        let mut rng = seeded_rng(seed);
        ControllerConfig {
            refresh_max_postponed: rng.gen_range(1..=8),
            refresh_max_pulled_in: rng.gen_range(1..=8),
            request_buffer_size: rng.gen_range(1..=8),
            max_active_transactions: 1usize << rng.gen_range(0..=7u32),
            page_policy: PagePolicy::ALL[rng.gen_range(0..4usize)],
            scheduler: Scheduler::ALL[rng.gen_range(0..3usize)],
            scheduler_buffer: SchedulerBuffer::ALL[rng.gen_range(0..3usize)],
            arbiter: Arbiter::ALL[rng.gen_range(0..3usize)],
            resp_queue: RespQueue::ALL[rng.gen_range(0..2usize)],
            refresh_policy: RefreshPolicy::ALL[rng.gen_range(0..2usize)],
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_any_config_completes_with_sane_stats(cfg_seed in 0u64..5000, wl_idx in 0usize..4) {
            let cfg = arbitrary_config(cfg_seed);
            let tr = generate(
                DramWorkload::ALL[wl_idx],
                &TraceConfig { length: 200, ..TraceConfig::default() },
                &mut seeded_rng(cfg_seed),
            );
            let stats = MemoryController::new(cfg).simulate(&tr);
            prop_assert_eq!(stats.counts.reads + stats.counts.writes, 200);
            prop_assert!(stats.avg_latency_ns.is_finite() && stats.avg_latency_ns > 0.0);
            prop_assert!(stats.p95_latency_ns >= stats.avg_latency_ns * 0.2);
            prop_assert!(stats.power_w > 0.1 && stats.power_w < 20.0);
            prop_assert!(stats.energy_uj > 0.0);
        }

        #[test]
        fn prop_indexed_engine_matches_linear_scan(cfg_seed in 0u64..5000, wl_idx in 0usize..4) {
            let cfg = arbitrary_config(cfg_seed);
            let tr = generate(
                DramWorkload::ALL[wl_idx],
                &TraceConfig { length: 200, ..TraceConfig::default() },
                &mut seeded_rng(cfg_seed.wrapping_mul(31).wrapping_add(7)),
            );
            let controller = MemoryController::new(cfg);
            prop_assert_eq!(controller.simulate(&tr), controller.simulate_linear_scan(&tr));
        }
    }
}
