//! The configurable DRAM memory controller and its transaction-level
//! simulator.
//!
//! The controller exposes exactly the ten parameters of the paper's
//! Fig. 3(a). Requests flow: trace → request buffer (admission limited by
//! `RequestBufferSize` and `MaxActiveTransactions`) → scheduler + arbiter
//! pick → bank timing engine (page policy decides row-buffer fate) →
//! response queue (in-order or out-of-order delivery). An all-bank refresh
//! engine can postpone or pull in refreshes within configured limits.

use crate::device::{AddressMapping, DeviceTiming, Topology};
use crate::engine::{EngineCtx, EngineKind, RawRun};
use crate::power::{OpCounts, PowerModel};
use crate::trace::MemoryRequest;
use serde::{Deserialize, Serialize};

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PagePolicy {
    /// Keep the row open after every access.
    Open,
    /// Keep open while the recent hit rate justifies it.
    OpenAdaptive,
    /// Precharge immediately after every access.
    Closed,
    /// Precharge unless the recent hit rate is very high.
    ClosedAdaptive,
}

impl PagePolicy {
    /// All variants in the paper's order.
    pub const ALL: [PagePolicy; 4] = [
        PagePolicy::Open,
        PagePolicy::OpenAdaptive,
        PagePolicy::Closed,
        PagePolicy::ClosedAdaptive,
    ];
}

/// Request scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheduler {
    /// Strictly oldest-first.
    Fifo,
    /// Row hits first, grouped by access type to limit bus turnarounds.
    FrFcfsGrp,
    /// Row hits first, then oldest-first.
    FrFcfs,
}

impl Scheduler {
    /// All variants in the paper's order.
    pub const ALL: [Scheduler; 3] = [Scheduler::Fifo, Scheduler::FrFcfsGrp, Scheduler::FrFcfs];
}

/// Which buffered requests the scheduler can see each cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerBuffer {
    /// Per-bank queues served round-robin.
    Bankwise,
    /// Separate read and write queues; reads drain first.
    ReadWrite,
    /// One shared queue, everything visible.
    Shared,
}

impl SchedulerBuffer {
    /// All variants in the paper's order.
    pub const ALL: [SchedulerBuffer; 3] = [
        SchedulerBuffer::Bankwise,
        SchedulerBuffer::ReadWrite,
        SchedulerBuffer::Shared,
    ];
}

/// Tie-breaking policy when several requests are equally schedulable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Arbiter {
    /// Static bank priority (cheapest, least fair).
    Simple,
    /// Arrival order.
    Fifo,
    /// Earliest-possible-start wins (costs reorder logic power).
    Reorder,
}

impl Arbiter {
    /// All variants in the paper's order.
    pub const ALL: [Arbiter; 3] = [Arbiter::Simple, Arbiter::Fifo, Arbiter::Reorder];
}

/// Response delivery order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RespQueue {
    /// Responses return in request order; a slow older request delays all
    /// younger ones.
    Fifo,
    /// Responses return as soon as data is available.
    Reorder,
}

impl RespQueue {
    /// All variants in the paper's order.
    pub const ALL: [RespQueue; 2] = [RespQueue::Fifo, RespQueue::Reorder];
}

/// Refresh strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RefreshPolicy {
    /// No refresh at all (cheapest; valid for short-lived or non-volatile
    /// experiments — the paper's space includes it).
    NoRefresh,
    /// Periodic all-bank refresh every `tREFI`, with postpone/pull-in
    /// flexibility.
    AllBank,
}

impl RefreshPolicy {
    /// All variants in the paper's order.
    pub const ALL: [RefreshPolicy; 2] = [RefreshPolicy::NoRefresh, RefreshPolicy::AllBank];
}

/// The ten-parameter memory-controller configuration of Fig. 3(a).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// How many due refreshes may be postponed (1–8).
    pub refresh_max_postponed: u32,
    /// How many refreshes may be pulled in early (1–8).
    pub refresh_max_pulled_in: u32,
    /// Scheduler-visible request-buffer entries (1–8).
    pub request_buffer_size: usize,
    /// Outstanding-transaction window (1–128, powers of two).
    pub max_active_transactions: usize,
    /// Row-buffer management policy.
    pub page_policy: PagePolicy,
    /// Request scheduling policy.
    pub scheduler: Scheduler,
    /// Scheduler queue organization.
    pub scheduler_buffer: SchedulerBuffer,
    /// Tie-breaking arbiter.
    pub arbiter: Arbiter,
    /// Response delivery order.
    pub resp_queue: RespQueue,
    /// Refresh strategy.
    pub refresh_policy: RefreshPolicy,
}

impl Default for ControllerConfig {
    /// A sensible mid-range controller (FR-FCFS, open page, refresh on).
    fn default() -> Self {
        ControllerConfig {
            refresh_max_postponed: 1,
            refresh_max_pulled_in: 1,
            request_buffer_size: 4,
            max_active_transactions: 16,
            page_policy: PagePolicy::Open,
            scheduler: Scheduler::FrFcfs,
            scheduler_buffer: SchedulerBuffer::Shared,
            arbiter: Arbiter::Fifo,
            resp_queue: RespQueue::Fifo,
            refresh_policy: RefreshPolicy::AllBank,
        }
    }
}

/// Aggregate results of one trace simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Mean request latency (arrival → response) in nanoseconds.
    pub avg_latency_ns: f64,
    /// 95th-percentile request latency in nanoseconds.
    pub p95_latency_ns: f64,
    /// Average power over the simulation in watts.
    pub power_w: f64,
    /// Total energy in microjoules.
    pub energy_uj: f64,
    /// Simulated duration in cycles.
    pub total_cycles: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Accesses to a precharged bank (row miss).
    pub row_misses: u64,
    /// Accesses that had to close another row first (row conflict).
    pub row_conflicts: u64,
    /// Operation counters used for the energy model.
    pub counts: OpCounts,
}

impl SimStats {
    /// Row-buffer hit fraction over all accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// The memory controller: device timing + power model + configuration +
/// channel/rank topology.
#[derive(Debug, Clone)]
pub struct MemoryController {
    timing: DeviceTiming,
    mapping: AddressMapping,
    power: PowerModel,
    config: ControllerConfig,
    topology: Topology,
}

impl MemoryController {
    /// Build a controller with default DDR3 timing and power models and
    /// the single-channel, single-rank topology.
    pub fn new(config: ControllerConfig) -> Self {
        MemoryController {
            timing: DeviceTiming::ddr3_1600(),
            mapping: AddressMapping::new(),
            power: PowerModel::ddr3(),
            config,
            topology: Topology::single(),
        }
    }

    /// Override the device timing, builder-style. The address mapping is
    /// re-derived so every bank of the new device (times the topology's
    /// rank multiplier) is addressable.
    pub fn timing(mut self, timing: DeviceTiming) -> Self {
        self.mapping = AddressMapping::with_banks(timing.banks * self.topology.ranks);
        self.timing = timing;
        self
    }

    /// Override the channel/rank topology, builder-style. Ranks multiply
    /// the per-channel bank count (rank bits sit above the bank bits in
    /// the address mapping); channels partition the trace by address
    /// hash into fully independent controller lanes.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.mapping = AddressMapping::with_banks(self.timing.banks * topology.ranks);
        self.topology = topology;
        self
    }

    /// Override the power model, builder-style.
    pub fn power_model(mut self, power: PowerModel) -> Self {
        self.power = power;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// The active channel/rank topology.
    pub fn current_topology(&self) -> Topology {
        self.topology
    }

    fn ctx(&self) -> EngineCtx<'_> {
        EngineCtx {
            timing: &self.timing,
            mapping: &self.mapping,
            config: &self.config,
        }
    }

    /// The engine [`MemoryController::simulate`] dispatches to: the SoA
    /// engine whenever the configuration shape fits its bitmask limits,
    /// otherwise the always-capable indexed engine.
    pub fn default_engine(&self) -> EngineKind {
        if EngineKind::Soa.supports(&self.ctx()) {
            EngineKind::Soa
        } else {
            EngineKind::Indexed
        }
    }

    /// Simulate a trace to completion and report aggregate statistics,
    /// using [`MemoryController::default_engine`].
    ///
    /// Output is bit-identical across every [`EngineKind`]; the test
    /// suite compares all engines on every canonical workload, on
    /// randomized configurations and on multi-channel topologies.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is empty.
    pub fn simulate(&self, trace: &[MemoryRequest]) -> SimStats {
        self.simulate_with(self.default_engine(), trace)
    }

    /// Simulate a trace on an explicitly chosen timing engine (the
    /// bench harness measures engines against each other; everything
    /// else should use [`MemoryController::simulate`]).
    ///
    /// # Panics
    ///
    /// Panics if `trace` is empty.
    pub fn simulate_with(&self, kind: EngineKind, trace: &[MemoryRequest]) -> SimStats {
        assert!(!trace.is_empty(), "cannot simulate an empty trace");
        if self.topology.channels == 1 {
            let raw = kind.run(&self.ctx(), trace);
            self.account_single(trace, raw)
        } else {
            self.simulate_channels(kind, trace)
        }
    }

    /// Simulate a trace on the linear-scan reference engine (the
    /// correctness oracle the optimized engines are tested against).
    /// Kept `pub` so the bench harness can measure engine gains and the
    /// test suite can enforce bit-identical outputs; not part of the
    /// stable API.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is empty.
    #[doc(hidden)]
    pub fn simulate_linear_scan(&self, trace: &[MemoryRequest]) -> SimStats {
        self.simulate_with(EngineKind::Reference, trace)
    }

    /// Multi-channel simulation: partition the trace by the topology's
    /// address hash, run each non-empty partition as an independent
    /// engine lane, then merge the per-channel results. Each channel
    /// owns its request buffer, data bus, refresh engine and response
    /// queue, so a channel's sub-simulation is exactly the
    /// single-channel simulation of its partition — the conservation
    /// proptests enforce this.
    fn simulate_channels(&self, kind: EngineKind, trace: &[MemoryRequest]) -> SimStats {
        let channels = self.topology.channels;
        let n = trace.len();
        let mut subtraces: Vec<Vec<MemoryRequest>> = vec![Vec::new(); channels];
        let mut ids: Vec<Vec<u32>> = vec![Vec::new(); channels];
        for (id, req) in trace.iter().enumerate() {
            let ch = self.topology.channel_of(req.addr);
            subtraces[ch].push(*req);
            ids[ch].push(id as u32);
        }

        let mut completion = vec![0u64; n];
        let mut counts_per: Vec<OpCounts> = vec![OpCounts::default(); channels];
        let mut counts = OpCounts::default();
        let mut row_hits = 0u64;
        let mut row_misses = 0u64;
        let mut row_conflicts = 0u64;
        for (ch, subtrace) in subtraces.iter().enumerate() {
            if subtrace.is_empty() {
                continue; // no traffic: the channel stays power-gated
            }
            let raw = kind.run(&self.ctx(), subtrace);
            for (pos, &cycle) in raw.completion.iter().enumerate() {
                completion[ids[ch][pos] as usize] = cycle;
            }
            counts_per[ch] = raw.counts;
            counts.add(&raw.counts);
            row_hits += raw.row_hits;
            row_misses += raw.row_misses;
            row_conflicts += raw.row_conflicts;
        }

        // Stage 10, channel-aware: responses are delivered per channel
        // (a FIFO response queue chains only within its own channel),
        // and energy is evaluated per channel over that channel's own
        // active window, then summed in channel order (deterministic
        // float accumulation). Idle channels contribute nothing.
        let t = &self.timing;
        let cfg = &self.config;
        let mut last_resp = vec![0u64; channels];
        let mut final_cycle_ch = vec![0u64; channels];
        let mut total: u128 = 0;
        // The completion buffer is rewritten in place as the diff buffer
        // (each entry is read exactly once before being overwritten), so
        // the accounting tail allocates nothing and makes one pass.
        for (id, req) in trace.iter().enumerate() {
            let ch = self.topology.channel_of(req.addr);
            let resp = match cfg.resp_queue {
                RespQueue::Reorder => completion[id],
                RespQueue::Fifo => {
                    last_resp[ch] = last_resp[ch].max(completion[id]);
                    last_resp[ch]
                }
            };
            final_cycle_ch[ch] = final_cycle_ch[ch].max(resp);
            let diff = resp - req.arrival;
            total += u128::from(diff);
            completion[id] = diff;
        }
        let (avg_latency_ns, p95_latency_ns) = latency_stats(total, &mut completion, t.clock_ns);

        let mut energy_uj = 0.0;
        let mut final_cycle = 0u64;
        for ch in 0..channels {
            if subtraces[ch].is_empty() {
                continue;
            }
            final_cycle = final_cycle.max(final_cycle_ch[ch]);
            let (channel_uj, _) =
                self.power
                    .evaluate(&counts_per[ch], cfg, final_cycle_ch[ch], t.clock_ns);
            energy_uj += channel_uj;
        }
        let seconds = (final_cycle.max(1) as f64) * t.clock_ns * 1e-9;
        let power_w = energy_uj * 1e-6 / seconds;

        SimStats {
            avg_latency_ns,
            p95_latency_ns,
            power_w,
            energy_uj,
            total_cycles: final_cycle,
            row_hits,
            row_misses,
            row_conflicts,
            counts,
        }
    }

    /// Stage 10 shared by every engine (single-channel path):
    /// response-queue delivery, latency accounting and the power/energy
    /// evaluation.
    fn account_single(&self, trace: &[MemoryRequest], mut raw: RawRun) -> SimStats {
        let t = &self.timing;
        let cfg = &self.config;
        let mut last_resp = 0u64;
        let mut final_cycle = 0u64;
        let mut total: u128 = 0;
        // One fused pass: response delivery, the exact latency sum and
        // the diff buffer all come out of the same loop, and the
        // engine's own completion buffer is rewritten in place (each
        // entry is read exactly once before being overwritten) so the
        // tail allocates nothing.
        for (id, req) in trace.iter().enumerate() {
            let resp = match cfg.resp_queue {
                RespQueue::Reorder => raw.completion[id],
                RespQueue::Fifo => {
                    last_resp = last_resp.max(raw.completion[id]);
                    last_resp
                }
            };
            final_cycle = final_cycle.max(resp);
            let diff = resp - req.arrival;
            total += u128::from(diff);
            raw.completion[id] = diff;
        }
        let (avg_latency_ns, p95_latency_ns) =
            latency_stats(total, &mut raw.completion, t.clock_ns);

        let (energy_uj, power_w) = self
            .power
            .evaluate(&raw.counts, cfg, final_cycle, t.clock_ns);

        SimStats {
            avg_latency_ns,
            p95_latency_ns,
            power_w,
            energy_uj,
            total_cycles: final_cycle,
            row_hits: raw.row_hits,
            row_misses: raw.row_misses,
            row_conflicts: raw.row_conflicts,
            counts: raw.counts,
        }
    }
}

/// Mean and p95 latency in nanoseconds from raw cycle differences.
///
/// `total` is the exact integer sum of `diffs`, accumulated by the
/// caller in the same pass that built the buffer (a `u128` cannot
/// overflow for any trace an address space can hold); it is scaled once
/// by the clock — deterministic and order-independent, so every engine
/// and the multi-channel merge agree bit-for-bit. The p95 is the exact
/// order statistic via `select_nth_unstable`, O(n) instead of the full
/// sort the accounting tail used to pay.
fn latency_stats(total: u128, diffs: &mut [u64], clock_ns: f64) -> (f64, f64) {
    let n = diffs.len();
    let avg = (total as f64) * clock_ns / n as f64;
    let (_, &mut p95_cycles, _) = diffs.select_nth_unstable(((n - 1) as f64 * 0.95) as usize);
    (avg, p95_cycles as f64 * clock_ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{generate, DramWorkload, TraceConfig};
    use archgym_core::seeded_rng;
    use proptest::prelude::*;

    fn trace(wl: DramWorkload, seed: u64) -> Vec<MemoryRequest> {
        generate(wl, &TraceConfig::default(), &mut seeded_rng(seed))
    }

    fn with(f: impl FnOnce(&mut ControllerConfig)) -> ControllerConfig {
        let mut cfg = ControllerConfig::default();
        f(&mut cfg);
        cfg
    }

    #[test]
    fn simulation_completes_all_requests() {
        let stats = MemoryController::new(ControllerConfig::default())
            .simulate(&trace(DramWorkload::Cloud1, 1));
        let total = stats.counts.reads + stats.counts.writes;
        assert_eq!(total, 768);
        assert_eq!(
            stats.row_hits + stats.row_misses + stats.row_conflicts,
            total
        );
        assert!(stats.avg_latency_ns > 0.0);
        assert!(stats.total_cycles > 0);
    }

    #[test]
    fn latency_at_least_device_minimum() {
        let t = DeviceTiming::ddr3_1600();
        for wl in DramWorkload::ALL {
            let stats = MemoryController::new(ControllerConfig::default()).simulate(&trace(wl, 2));
            assert!(
                stats.avg_latency_ns >= t.min_read_latency() as f64 * t.clock_ns - 1e-9,
                "{:?}: {} ns below device floor",
                wl,
                stats.avg_latency_ns
            );
        }
    }

    #[test]
    fn stream_hits_rows_random_does_not() {
        let open = with(|c| c.page_policy = PagePolicy::Open);
        let stream = MemoryController::new(open.clone()).simulate(&trace(DramWorkload::Stream, 3));
        let random = MemoryController::new(open).simulate(&trace(DramWorkload::Random, 3));
        assert!(
            stream.hit_rate() > 0.7,
            "stream hit rate {}",
            stream.hit_rate()
        );
        assert!(
            random.hit_rate() < 0.2,
            "random hit rate {}",
            random.hit_rate()
        );
    }

    #[test]
    fn open_policy_beats_closed_on_streaming() {
        let open = MemoryController::new(with(|c| c.page_policy = PagePolicy::Open))
            .simulate(&trace(DramWorkload::Stream, 4));
        let closed = MemoryController::new(with(|c| c.page_policy = PagePolicy::Closed))
            .simulate(&trace(DramWorkload::Stream, 4));
        assert!(
            open.avg_latency_ns < closed.avg_latency_ns,
            "open {} vs closed {}",
            open.avg_latency_ns,
            closed.avg_latency_ns
        );
        // Closed pays an activate per access on a streaming trace.
        assert!(closed.counts.activates > open.counts.activates * 5);
    }

    #[test]
    fn frfcfs_not_worse_than_fifo_on_mixed_trace() {
        let fifo = MemoryController::new(with(|c| {
            c.scheduler = Scheduler::Fifo;
            c.arbiter = Arbiter::Fifo;
        }))
        .simulate(&trace(DramWorkload::Cloud2, 5));
        let frfcfs = MemoryController::new(with(|c| {
            c.scheduler = Scheduler::FrFcfs;
            c.arbiter = Arbiter::Reorder;
        }))
        .simulate(&trace(DramWorkload::Cloud2, 5));
        assert!(
            frfcfs.avg_latency_ns <= fifo.avg_latency_ns * 1.05,
            "frfcfs {} vs fifo {}",
            frfcfs.avg_latency_ns,
            fifo.avg_latency_ns
        );
        assert!(frfcfs.row_hits >= fifo.row_hits);
    }

    #[test]
    fn no_refresh_saves_power_and_never_refreshes() {
        let on = MemoryController::new(with(|c| c.refresh_policy = RefreshPolicy::AllBank))
            .simulate(&trace(DramWorkload::Random, 6));
        let off = MemoryController::new(with(|c| c.refresh_policy = RefreshPolicy::NoRefresh))
            .simulate(&trace(DramWorkload::Random, 6));
        assert_eq!(off.counts.refreshes, 0);
        assert!(on.counts.refreshes > 0, "long random trace must refresh");
        assert!(off.energy_uj < on.energy_uj);
    }

    #[test]
    fn fifo_resp_queue_never_faster_than_reorder() {
        for wl in DramWorkload::ALL {
            let fifo = MemoryController::new(with(|c| c.resp_queue = RespQueue::Fifo))
                .simulate(&trace(wl, 7));
            let reorder = MemoryController::new(with(|c| c.resp_queue = RespQueue::Reorder))
                .simulate(&trace(wl, 7));
            assert!(
                reorder.avg_latency_ns <= fifo.avg_latency_ns + 1e-9,
                "{wl:?}: reorder {} vs fifo {}",
                reorder.avg_latency_ns,
                fifo.avg_latency_ns
            );
        }
    }

    #[test]
    fn wider_transaction_window_helps_bursty_traffic() {
        let narrow = MemoryController::new(with(|c| {
            c.max_active_transactions = 1;
            c.request_buffer_size = 1;
        }))
        .simulate(&trace(DramWorkload::Cloud2, 8));
        let wide = MemoryController::new(with(|c| {
            c.max_active_transactions = 64;
            c.request_buffer_size = 8;
        }))
        .simulate(&trace(DramWorkload::Cloud2, 8));
        assert!(
            wide.avg_latency_ns < narrow.avg_latency_ns,
            "wide {} vs narrow {}",
            wide.avg_latency_ns,
            narrow.avg_latency_ns
        );
        // ... but the wide window costs static power.
        let narrow_static = PowerModel::ddr3().static_power_w(&with(|c| {
            c.max_active_transactions = 1;
            c.request_buffer_size = 1;
        }));
        let wide_static = PowerModel::ddr3().static_power_w(&with(|c| {
            c.max_active_transactions = 64;
            c.request_buffer_size = 8;
        }));
        assert!(wide_static > narrow_static);
    }

    #[test]
    fn readwrite_buffer_drains_reads_before_writes() {
        // Two requests arrive together: a write first, then a read. The
        // ReadWrite queue organization must serve the read first.
        let trace = vec![
            MemoryRequest {
                arrival: 0,
                addr: 0,
                is_write: true,
            },
            MemoryRequest {
                arrival: 0,
                addr: 1 << 20,
                is_write: false,
            },
        ];
        let mk = |buffer: SchedulerBuffer| {
            let cfg = with(|c| {
                c.scheduler_buffer = buffer;
                c.scheduler = Scheduler::Fifo;
                c.arbiter = Arbiter::Fifo;
                c.resp_queue = RespQueue::Reorder;
                c.refresh_policy = RefreshPolicy::NoRefresh;
            });
            MemoryController::new(cfg).simulate(&trace)
        };
        let rw = mk(SchedulerBuffer::ReadWrite);
        let shared = mk(SchedulerBuffer::Shared);
        // Under Shared+FIFO the write (older) goes first and the read
        // waits; under ReadWrite the read jumps the queue, so its
        // latency — and with only one read, the p95 tail — shrinks.
        assert!(
            rw.avg_latency_ns < shared.avg_latency_ns + 1e-9,
            "ReadWrite {} vs Shared {}",
            rw.avg_latency_ns,
            shared.avg_latency_ns
        );
    }

    #[test]
    fn bankwise_buffer_round_robins_across_banks() {
        // Four requests to two banks; Bankwise must alternate banks while
        // Shared+Fifo serves in arrival order. Observable via bank-level
        // parallelism: alternation overlaps activates, lowering latency
        // on a conflict-heavy pattern.
        let bank_stride = 64 << 7; // flips the bank bits
        let trace: Vec<MemoryRequest> = (0..8)
            .map(|i| MemoryRequest {
                arrival: 0,
                // Same bank twice, then the other bank twice, with
                // different rows to force conflicts within a bank.
                addr: (i / 2 % 2) as u64 * bank_stride + (i as u64) * (1 << 20),
                is_write: false,
            })
            .collect();
        let mk = |buffer: SchedulerBuffer| {
            let cfg = with(|c| {
                c.scheduler_buffer = buffer;
                c.scheduler = Scheduler::Fifo;
                c.arbiter = Arbiter::Fifo;
                c.request_buffer_size = 8;
                c.max_active_transactions = 8;
                c.refresh_policy = RefreshPolicy::NoRefresh;
            });
            MemoryController::new(cfg).simulate(&trace)
        };
        let bankwise = mk(SchedulerBuffer::Bankwise);
        let shared = mk(SchedulerBuffer::Shared);
        assert!(
            bankwise.avg_latency_ns <= shared.avg_latency_ns + 1e-9,
            "bankwise {} vs shared {}",
            bankwise.avg_latency_ns,
            shared.avg_latency_ns
        );
    }

    #[test]
    fn refresh_postpone_budget_is_respected() {
        // A long idle-free trace with AllBank refresh: with a generous
        // postpone budget, refreshes can slide; the total count over the
        // trace still tracks elapsed tREFI intervals.
        let cfg_tight = with(|c| {
            c.refresh_policy = RefreshPolicy::AllBank;
            c.refresh_max_postponed = 1;
        });
        let cfg_loose = with(|c| {
            c.refresh_policy = RefreshPolicy::AllBank;
            c.refresh_max_postponed = 8;
        });
        let tr = trace(DramWorkload::Random, 12);
        let tight = MemoryController::new(cfg_tight).simulate(&tr);
        let loose = MemoryController::new(cfg_loose).simulate(&tr);
        // Both must refresh roughly every tREFI; postponement shifts
        // timing, not long-run counts (within the postpone window).
        let diff = tight.counts.refreshes.abs_diff(loose.counts.refreshes);
        assert!(diff <= 8, "refresh counts diverged: {tight:?} vs {loose:?}");
        assert!(tight.counts.refreshes > 0);
    }

    #[test]
    fn deterministic_for_same_config_and_trace() {
        let tr = trace(DramWorkload::Cloud1, 9);
        let a = MemoryController::new(ControllerConfig::default()).simulate(&tr);
        let b = MemoryController::new(ControllerConfig::default()).simulate(&tr);
        assert_eq!(a, b);
    }

    #[test]
    fn ddr4_grade_runs_and_uses_all_sixteen_banks() {
        let tr = trace(DramWorkload::Random, 15);
        let ddr4 = MemoryController::new(ControllerConfig::default())
            .timing(DeviceTiming::ddr4_2400())
            .simulate(&tr);
        let ddr3 = MemoryController::new(ControllerConfig::default()).simulate(&tr);
        assert_eq!(ddr4.counts.reads + ddr4.counts.writes, 768);
        assert!(ddr4.avg_latency_ns > 0.0 && ddr4.avg_latency_ns < 1e5);
        // Random pointer chasing: similar absolute latency band across
        // grades; DDR4 must not be pathologically slower.
        assert!(
            ddr4.avg_latency_ns < ddr3.avg_latency_ns * 1.5,
            "ddr4 {} vs ddr3 {}",
            ddr4.avg_latency_ns,
            ddr3.avg_latency_ns
        );
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_panics() {
        let _ = MemoryController::new(ControllerConfig::default()).simulate(&[]);
    }

    #[test]
    fn engine_equivalence_on_canonical_workloads() {
        // Every engine bit-identical to the linear-scan reference on
        // every canonical workload, across a spread of
        // scheduler/arbiter/buffer organizations that exercise each
        // visibility and tie-break path.
        let configs = [
            ControllerConfig::default(),
            with(|c| {
                c.scheduler = Scheduler::FrFcfsGrp;
                c.scheduler_buffer = SchedulerBuffer::Bankwise;
                c.arbiter = Arbiter::Reorder;
            }),
            with(|c| {
                c.scheduler = Scheduler::Fifo;
                c.scheduler_buffer = SchedulerBuffer::ReadWrite;
                c.arbiter = Arbiter::Reorder;
                c.page_policy = PagePolicy::ClosedAdaptive;
            }),
            with(|c| {
                c.scheduler_buffer = SchedulerBuffer::Bankwise;
                c.arbiter = Arbiter::Simple;
                c.request_buffer_size = 8;
                c.max_active_transactions = 64;
                c.refresh_policy = RefreshPolicy::NoRefresh;
            }),
        ];
        for wl in DramWorkload::ALL {
            let tr = trace(wl, 21);
            for cfg in &configs {
                let controller = MemoryController::new(cfg.clone());
                let oracle = controller.simulate_linear_scan(&tr);
                for kind in EngineKind::ALL {
                    assert_eq!(
                        controller.simulate_with(kind, &tr),
                        oracle,
                        "{} on {wl:?} / {cfg:?}",
                        kind.name()
                    );
                }
                // The default dispatch must agree with whatever it picks.
                assert_eq!(controller.simulate(&tr), oracle, "{wl:?} / {cfg:?}");
            }
        }
    }

    #[test]
    fn engine_equivalence_on_ddr4() {
        let tr = trace(DramWorkload::Cloud2, 22);
        let controller = MemoryController::new(with(|c| {
            c.scheduler_buffer = SchedulerBuffer::Bankwise;
            c.arbiter = Arbiter::Reorder;
        }))
        .timing(DeviceTiming::ddr4_2400());
        let oracle = controller.simulate_linear_scan(&tr);
        for kind in EngineKind::ALL {
            assert_eq!(
                controller.simulate_with(kind, &tr),
                oracle,
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn engine_equivalence_on_multichannel_topologies() {
        // Same bit-identity requirement with the topology axes engaged:
        // every engine must agree on the merged multi-channel stats.
        let tr = trace(DramWorkload::Cloud1, 23);
        for (channels, ranks) in [(2, 1), (4, 1), (1, 2), (2, 2)] {
            let controller = MemoryController::new(ControllerConfig::default())
                .topology(Topology::new(channels, ranks));
            let oracle = controller.simulate_linear_scan(&tr);
            for kind in EngineKind::ALL {
                assert_eq!(
                    controller.simulate_with(kind, &tr),
                    oracle,
                    "{} on {channels}ch x {ranks}rk",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn ranks_multiply_the_visible_bank_count() {
        // Two ranks double the banks one channel's controller schedules
        // across; a random trace then spreads over 16 banks instead of 8
        // and bank-level parallelism improves latency (never hurts).
        let tr = trace(DramWorkload::Random, 24);
        let single = MemoryController::new(ControllerConfig::default()).simulate(&tr);
        let dual = MemoryController::new(ControllerConfig::default())
            .topology(Topology::new(1, 2))
            .simulate(&tr);
        assert_eq!(
            dual.counts.reads + dual.counts.writes,
            single.counts.reads + single.counts.writes
        );
        assert!(
            dual.avg_latency_ns <= single.avg_latency_ns * 1.02,
            "dual-rank {} vs single-rank {}",
            dual.avg_latency_ns,
            single.avg_latency_ns
        );
    }

    #[test]
    fn multichannel_simulation_equals_independent_channel_simulations() {
        // A channel is a fully independent lane: simulating the whole
        // trace on N channels must give each request the same completion
        // accounting as simulating that channel's partition alone on a
        // single-channel controller.
        let tr = trace(DramWorkload::Cloud2, 25);
        let topo = Topology::new(4, 1);
        let whole = MemoryController::new(ControllerConfig::default())
            .topology(topo)
            .simulate(&tr);

        let single = MemoryController::new(ControllerConfig::default());
        let mut counts = OpCounts::default();
        let mut hits = 0u64;
        let mut total_cycles = 0u64;
        let mut energy = 0.0f64;
        for ch in 0..topo.channels {
            let part: Vec<MemoryRequest> = tr
                .iter()
                .copied()
                .filter(|r| topo.channel_of(r.addr) == ch)
                .collect();
            if part.is_empty() {
                continue;
            }
            let stats = single.simulate(&part);
            counts.add(&stats.counts);
            hits += stats.row_hits;
            total_cycles = total_cycles.max(stats.total_cycles);
            energy += stats.energy_uj;
        }
        assert_eq!(whole.counts, counts);
        assert_eq!(whole.row_hits, hits);
        assert_eq!(whole.total_cycles, total_cycles);
        assert_eq!(whole.energy_uj, energy);
    }

    #[test]
    fn latency_stats_are_exact_order_statistics() {
        // avg is the exact integer-sum mean; p95 is the order statistic
        // at index floor((n-1) * 0.95) of the sorted diffs.
        let mut diffs: Vec<u64> = (1..=100u64).rev().collect();
        let total = diffs.iter().map(|&d| u128::from(d)).sum();
        let (avg, p95) = latency_stats(total, &mut diffs, 2.0);
        assert_eq!(avg, 5050.0 * 2.0 / 100.0);
        assert_eq!(p95, 95.0 * 2.0); // index 94 of sorted 1..=100
        let mut one = vec![7u64];
        let (avg, p95) = latency_stats(7, &mut one, 0.5);
        assert_eq!(avg, 3.5);
        assert_eq!(p95, 3.5);
    }

    fn arbitrary_config(seed: u64) -> ControllerConfig {
        use rand::Rng;
        let mut rng = seeded_rng(seed);
        ControllerConfig {
            refresh_max_postponed: rng.gen_range(1..=8),
            refresh_max_pulled_in: rng.gen_range(1..=8),
            request_buffer_size: rng.gen_range(1..=8),
            max_active_transactions: 1usize << rng.gen_range(0..=7u32),
            page_policy: PagePolicy::ALL[rng.gen_range(0..4usize)],
            scheduler: Scheduler::ALL[rng.gen_range(0..3usize)],
            scheduler_buffer: SchedulerBuffer::ALL[rng.gen_range(0..3usize)],
            arbiter: Arbiter::ALL[rng.gen_range(0..3usize)],
            resp_queue: RespQueue::ALL[rng.gen_range(0..2usize)],
            refresh_policy: RefreshPolicy::ALL[rng.gen_range(0..2usize)],
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_any_config_completes_with_sane_stats(cfg_seed in 0u64..5000, wl_idx in 0usize..4) {
            let cfg = arbitrary_config(cfg_seed);
            let tr = generate(
                DramWorkload::ALL[wl_idx],
                &TraceConfig { length: 200, ..TraceConfig::default() },
                &mut seeded_rng(cfg_seed),
            );
            let stats = MemoryController::new(cfg).simulate(&tr);
            prop_assert_eq!(stats.counts.reads + stats.counts.writes, 200);
            prop_assert!(stats.avg_latency_ns.is_finite() && stats.avg_latency_ns > 0.0);
            prop_assert!(stats.p95_latency_ns >= stats.avg_latency_ns * 0.2);
            prop_assert!(stats.power_w > 0.1 && stats.power_w < 20.0);
            prop_assert!(stats.energy_uj > 0.0);
        }

        #[test]
        fn prop_engine_equivalence_any_config(cfg_seed in 0u64..5000, wl_idx in 0usize..4) {
            let cfg = arbitrary_config(cfg_seed);
            let tr = generate(
                DramWorkload::ALL[wl_idx],
                &TraceConfig { length: 200, ..TraceConfig::default() },
                &mut seeded_rng(cfg_seed.wrapping_mul(31).wrapping_add(7)),
            );
            let controller = MemoryController::new(cfg);
            let oracle = controller.simulate_linear_scan(&tr);
            for kind in EngineKind::ALL {
                prop_assert_eq!(&controller.simulate_with(kind, &tr), &oracle, "{}", kind.name());
            }
        }

        #[test]
        fn prop_engine_equivalence_multichannel(
            cfg_seed in 0u64..5000,
            wl_idx in 0usize..4,
            ch_pow in 1u32..3,
            rk_pow in 0u32..2,
        ) {
            let cfg = arbitrary_config(cfg_seed);
            let tr = generate(
                DramWorkload::ALL[wl_idx],
                &TraceConfig { length: 200, ..TraceConfig::default() },
                &mut seeded_rng(cfg_seed.wrapping_mul(17).wrapping_add(3)),
            );
            let controller = MemoryController::new(cfg)
                .topology(Topology::new(1 << ch_pow, 1 << rk_pow));
            let oracle = controller.simulate_linear_scan(&tr);
            for kind in EngineKind::ALL {
                prop_assert_eq!(&controller.simulate_with(kind, &tr), &oracle, "{}", kind.name());
            }
        }

        #[test]
        fn prop_multichannel_conserves_work_and_energy(
            cfg_seed in 0u64..5000,
            wl_idx in 0usize..4,
            ch_pow in 1u32..3,
        ) {
            // Conservation invariants: the N-channel simulation is the
            // exact union of N independent single-channel simulations of
            // the address-partitioned trace — integer counters sum
            // exactly, cycles take the max, energy sums bit-exactly
            // (channel-order accumulation), and mean latency matches up
            // to float re-association across the merge.
            let cfg = arbitrary_config(cfg_seed);
            let topo = Topology::new(1 << ch_pow, 1);
            let tr = generate(
                DramWorkload::ALL[wl_idx],
                &TraceConfig { length: 200, ..TraceConfig::default() },
                &mut seeded_rng(cfg_seed.wrapping_mul(13).wrapping_add(11)),
            );
            let whole = MemoryController::new(cfg.clone()).topology(topo).simulate(&tr);
            let single = MemoryController::new(cfg);

            let mut counts = OpCounts::default();
            let mut hits = 0u64;
            let mut misses = 0u64;
            let mut conflicts = 0u64;
            let mut total_cycles = 0u64;
            let mut energy = 0.0f64;
            let mut latency_weighted = 0.0f64;
            let mut served = 0usize;
            for ch in 0..topo.channels {
                let part: Vec<MemoryRequest> = tr
                    .iter()
                    .copied()
                    .filter(|r| topo.channel_of(r.addr) == ch)
                    .collect();
                if part.is_empty() {
                    continue;
                }
                let stats = single.simulate(&part);
                counts.add(&stats.counts);
                hits += stats.row_hits;
                misses += stats.row_misses;
                conflicts += stats.row_conflicts;
                total_cycles = total_cycles.max(stats.total_cycles);
                energy += stats.energy_uj;
                latency_weighted += stats.avg_latency_ns * part.len() as f64;
                served += part.len();
            }
            prop_assert_eq!(whole.counts, counts);
            prop_assert_eq!(whole.row_hits, hits);
            prop_assert_eq!(whole.row_misses, misses);
            prop_assert_eq!(whole.row_conflicts, conflicts);
            prop_assert_eq!(whole.total_cycles, total_cycles);
            prop_assert_eq!(whole.energy_uj, energy);
            prop_assert_eq!(served, tr.len());
            let merged_avg = latency_weighted / served as f64;
            prop_assert!(
                (whole.avg_latency_ns - merged_avg).abs() <= merged_avg.abs() * 1e-9 + 1e-9,
                "avg latency diverged: {} vs {}", whole.avg_latency_ns, merged_avg
            );
        }
    }
}
