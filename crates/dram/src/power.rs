//! DRAM energy and power accounting.
//!
//! Per-operation energies follow DDR3 DIMM ballpark figures (activate /
//! precharge / read / write / refresh), plus *structural* power for the
//! controller's own machinery: bigger request buffers, deeper transaction
//! windows, CAM-based FR-FCFS search and reorder logic all cost static
//! power. The structural terms are what make the paper's Table 4
//! observation reproducible — agents chasing a 1 W target learn to keep
//! `MaxActiveTransactions` minimal.

use crate::controller::ControllerConfig;
use serde::{Deserialize, Serialize};

/// Counters of DRAM operations accumulated over a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OpCounts {
    /// Row activations issued.
    pub activates: u64,
    /// Precharges issued.
    pub precharges: u64,
    /// Read bursts transferred.
    pub reads: u64,
    /// Write bursts transferred.
    pub writes: u64,
    /// All-bank refresh operations performed.
    pub refreshes: u64,
}

impl OpCounts {
    /// Accumulate another channel's counters into this one.
    pub fn add(&mut self, other: &OpCounts) {
        self.activates += other.activates;
        self.precharges += other.precharges;
        self.reads += other.reads;
        self.writes += other.writes;
        self.refreshes += other.refreshes;
    }
}

/// Per-operation energies (nanojoules) and static power terms (watts).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Energy per row activation (nJ).
    pub e_act_nj: f64,
    /// Energy per precharge (nJ).
    pub e_pre_nj: f64,
    /// Energy per read burst (nJ).
    pub e_rd_nj: f64,
    /// Energy per write burst (nJ).
    pub e_wr_nj: f64,
    /// Energy per all-bank refresh (nJ).
    pub e_ref_nj: f64,
    /// Device background power (W).
    pub p_background_w: f64,
    /// Static power per request-buffer entry (W).
    pub p_buffer_entry_w: f64,
    /// Static power per log2 step of the transaction window (W).
    pub p_mat_step_w: f64,
    /// Static power per buffer entry of FR-FCFS CAM search (W).
    pub p_frfcfs_cam_w: f64,
    /// Static power per buffer entry of grouped FR-FCFS search (W).
    pub p_frfcfs_grp_cam_w: f64,
    /// Static power of a reordering arbiter (W).
    pub p_arbiter_reorder_w: f64,
    /// Static power of a FIFO arbiter (W).
    pub p_arbiter_fifo_w: f64,
    /// Static power of a reordering response queue (W).
    pub p_resp_reorder_w: f64,
    /// Static power of a FIFO response queue (W).
    pub p_resp_fifo_w: f64,
    /// Static power of an adaptive page-policy predictor (W).
    pub p_adaptive_w: f64,
}

impl PowerModel {
    /// DDR3-DIMM-scale defaults.
    pub fn ddr3() -> Self {
        PowerModel {
            e_act_nj: 8.0,
            e_pre_nj: 4.0,
            e_rd_nj: 10.0,
            e_wr_nj: 11.0,
            e_ref_nj: 120.0,
            p_background_w: 0.35,
            p_buffer_entry_w: 0.018,
            p_mat_step_w: 0.028,
            p_frfcfs_cam_w: 0.009,
            p_frfcfs_grp_cam_w: 0.006,
            p_arbiter_reorder_w: 0.025,
            p_arbiter_fifo_w: 0.006,
            p_resp_reorder_w: 0.018,
            p_resp_fifo_w: 0.006,
            p_adaptive_w: 0.012,
        }
    }

    /// Static (time-proportional) power of the controller + device for a
    /// given configuration, in watts.
    pub fn static_power_w(&self, cfg: &ControllerConfig) -> f64 {
        use crate::controller::{Arbiter, PagePolicy, RespQueue, Scheduler};
        let mut p = self.p_background_w;
        p += self.p_buffer_entry_w * cfg.request_buffer_size as f64;
        p += self.p_mat_step_w * (cfg.max_active_transactions as f64).log2();
        p += match cfg.scheduler {
            Scheduler::Fifo => 0.0,
            Scheduler::FrFcfsGrp => self.p_frfcfs_grp_cam_w * cfg.request_buffer_size as f64,
            Scheduler::FrFcfs => self.p_frfcfs_cam_w * cfg.request_buffer_size as f64,
        };
        p += match cfg.arbiter {
            Arbiter::Simple => 0.0,
            Arbiter::Fifo => self.p_arbiter_fifo_w,
            Arbiter::Reorder => self.p_arbiter_reorder_w,
        };
        p += match cfg.resp_queue {
            RespQueue::Fifo => self.p_resp_fifo_w,
            RespQueue::Reorder => self.p_resp_reorder_w,
        };
        if matches!(
            cfg.page_policy,
            PagePolicy::OpenAdaptive | PagePolicy::ClosedAdaptive
        ) {
            p += self.p_adaptive_w;
        }
        p
    }

    /// Dynamic energy of the counted operations, in microjoules.
    pub fn dynamic_energy_uj(&self, counts: &OpCounts) -> f64 {
        (counts.activates as f64 * self.e_act_nj
            + counts.precharges as f64 * self.e_pre_nj
            + counts.reads as f64 * self.e_rd_nj
            + counts.writes as f64 * self.e_wr_nj
            + counts.refreshes as f64 * self.e_ref_nj)
            / 1e3
    }

    /// Total `(energy_uj, avg_power_w)` over a simulation of
    /// `total_cycles` cycles at `clock_ns` per cycle.
    pub fn evaluate(
        &self,
        counts: &OpCounts,
        cfg: &ControllerConfig,
        total_cycles: u64,
        clock_ns: f64,
    ) -> (f64, f64) {
        let seconds = (total_cycles.max(1) as f64) * clock_ns * 1e-9;
        let dynamic_uj = self.dynamic_energy_uj(counts);
        let static_uj = self.static_power_w(cfg) * seconds * 1e6;
        let energy_uj = dynamic_uj + static_uj;
        let power_w = energy_uj * 1e-6 / seconds;
        (energy_uj, power_w)
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::ddr3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{
        Arbiter, ControllerConfig, PagePolicy, RefreshPolicy, RespQueue, Scheduler, SchedulerBuffer,
    };

    fn minimal_cfg() -> ControllerConfig {
        ControllerConfig {
            refresh_max_postponed: 1,
            refresh_max_pulled_in: 1,
            request_buffer_size: 1,
            max_active_transactions: 1,
            page_policy: PagePolicy::Open,
            scheduler: Scheduler::Fifo,
            scheduler_buffer: SchedulerBuffer::Shared,
            arbiter: Arbiter::Simple,
            resp_queue: RespQueue::Fifo,
            refresh_policy: RefreshPolicy::NoRefresh,
        }
    }

    fn maximal_cfg() -> ControllerConfig {
        ControllerConfig {
            refresh_max_postponed: 8,
            refresh_max_pulled_in: 8,
            request_buffer_size: 8,
            max_active_transactions: 128,
            page_policy: PagePolicy::OpenAdaptive,
            scheduler: Scheduler::FrFcfs,
            scheduler_buffer: SchedulerBuffer::Shared,
            arbiter: Arbiter::Reorder,
            resp_queue: RespQueue::Reorder,
            refresh_policy: RefreshPolicy::AllBank,
        }
    }

    #[test]
    fn bigger_structures_cost_more_static_power() {
        let model = PowerModel::ddr3();
        let small = model.static_power_w(&minimal_cfg());
        let large = model.static_power_w(&maximal_cfg());
        assert!(large > small + 0.2, "large {large} vs small {small}");
        assert!(small >= model.p_background_w);
    }

    #[test]
    fn dynamic_energy_scales_with_counts() {
        let model = PowerModel::ddr3();
        let few = OpCounts {
            activates: 10,
            precharges: 10,
            reads: 100,
            writes: 0,
            refreshes: 1,
        };
        let many = OpCounts {
            activates: 100,
            precharges: 100,
            reads: 1000,
            writes: 0,
            refreshes: 10,
        };
        assert!(model.dynamic_energy_uj(&many) > 9.0 * model.dynamic_energy_uj(&few));
        assert_eq!(model.dynamic_energy_uj(&OpCounts::default()), 0.0);
    }

    #[test]
    fn evaluate_is_consistent_energy_power_time() {
        let model = PowerModel::ddr3();
        let counts = OpCounts {
            activates: 500,
            precharges: 500,
            reads: 700,
            writes: 68,
            refreshes: 2,
        };
        let cfg = minimal_cfg();
        let cycles = 8000u64;
        let (energy_uj, power_w) = model.evaluate(&counts, &cfg, cycles, 1.25);
        let seconds = cycles as f64 * 1.25e-9;
        assert!((power_w * seconds * 1e6 - energy_uj).abs() < 1e-9);
        // Sanity band: a busy DDR3 DIMM should land near ~1 W.
        assert!(
            power_w > 0.3 && power_w < 5.0,
            "power {power_w} out of band"
        );
    }
}
