//! [`DramEnv`] — the DRAMGym environment.
//!
//! Wraps the memory-controller simulator behind the standardized ArchGym
//! interface: actions are points of the Fig. 3(a) space, observations are
//! `<latency, power, energy>`, and the reward follows Table 3's
//! `r_x = X_target / |X_target − X_obs|` formulation.

use crate::controller::{
    Arbiter, ControllerConfig, MemoryController, PagePolicy, RefreshPolicy, RespQueue, Scheduler,
    SchedulerBuffer,
};
use crate::device::Topology;
use crate::trace::{generate, DramWorkload, MemoryRequest, TraceConfig};
use archgym_core::env::{Environment, Observation, StepResult};
use archgym_core::reward::RewardSpec;
use archgym_core::seeded_rng;
use archgym_core::space::{Action, ParamSpace};
use archgym_core::telemetry::{Counter, Phase, Recorder};
use std::sync::{Arc, OnceLock};

/// Observation metric indices for DRAMGym.
pub mod metric {
    /// Mean request latency in nanoseconds.
    pub const LATENCY: usize = 0;
    /// Average power in watts.
    pub const POWER: usize = 1;
    /// Total energy in microjoules.
    pub const ENERGY: usize = 2;
}

/// Build the ten-dimensional DRAM memory-controller space of Fig. 3(a).
///
/// ```
/// let space = archgym_dram::dram_space();
/// assert_eq!(space.len(), 10);
/// assert_eq!(space.cardinality(), 1_769_472.0);
/// ```
pub fn dram_space() -> ParamSpace {
    ParamSpace::builder()
        .int("RefreshMaxPostponed", 1, 8, 1)
        .int("RefreshMaxPulledIn", 1, 8, 1)
        .int("RequestBufferSize", 1, 8, 1)
        .pow2("MaxActiveTransactions", 1, 128)
        .categorical(
            "PagePolicy",
            ["Open", "OpenAdaptive", "Closed", "ClosedAdaptive"],
        )
        .categorical("Scheduler", ["Fifo", "FrFcfsGrp", "FrFcfs"])
        .categorical("SchedulerBuffer", ["Bankwise", "ReadWrite", "Shared"])
        .categorical("Arbiter", ["Simple", "Fifo", "Reorder"])
        .categorical("RespQueue", ["Fifo", "Reorder"])
        .categorical("RefreshPolicy", ["NoRefresh", "AllBank"])
        .build()
        .expect("static space definition is valid")
}

/// Build the widened twelve-dimensional space: Fig. 3(a)'s ten controller
/// parameters plus the channel/rank topology axes of the multi-channel
/// engine.
///
/// ```
/// let space = archgym_dram::dram_space_extended();
/// assert_eq!(space.len(), 12);
/// assert_eq!(space.cardinality(), 10_616_832.0);
/// ```
pub fn dram_space_extended() -> ParamSpace {
    ParamSpace::builder()
        .int("RefreshMaxPostponed", 1, 8, 1)
        .int("RefreshMaxPulledIn", 1, 8, 1)
        .int("RequestBufferSize", 1, 8, 1)
        .pow2("MaxActiveTransactions", 1, 128)
        .categorical(
            "PagePolicy",
            ["Open", "OpenAdaptive", "Closed", "ClosedAdaptive"],
        )
        .categorical("Scheduler", ["Fifo", "FrFcfsGrp", "FrFcfs"])
        .categorical("SchedulerBuffer", ["Bankwise", "ReadWrite", "Shared"])
        .categorical("Arbiter", ["Simple", "Fifo", "Reorder"])
        .categorical("RespQueue", ["Fifo", "Reorder"])
        .categorical("RefreshPolicy", ["NoRefresh", "AllBank"])
        .pow2("Channels", 1, 4)
        .pow2("Ranks", 1, 2)
        .build()
        .expect("static space definition is valid")
}

/// Decode the channel/rank topology from an action, if the space carries
/// the extended axes; the plain Fig. 3(a) space maps to the
/// single-channel, single-rank baseline.
pub fn decode_topology(space: &ParamSpace, action: &Action) -> Topology {
    if space.dim_of("Channels").is_none() {
        return Topology::single();
    }
    let int = |name: &str| space.decode_one(action, name).as_int().unwrap();
    Topology::new(int("Channels") as usize, int("Ranks") as usize)
}

/// Decode a DRAMGym action into a [`ControllerConfig`].
///
/// # Panics
///
/// Panics if `action` does not validate against [`dram_space`].
pub fn decode_config(space: &ParamSpace, action: &Action) -> ControllerConfig {
    space.validate(action).expect("action fits the DRAM space");
    let int = |name: &str| space.decode_one(action, name).as_int().unwrap();
    let idx = |name: &str| action.index(space.dim_of(name).unwrap());
    ControllerConfig {
        refresh_max_postponed: int("RefreshMaxPostponed") as u32,
        refresh_max_pulled_in: int("RefreshMaxPulledIn") as u32,
        request_buffer_size: int("RequestBufferSize") as usize,
        max_active_transactions: int("MaxActiveTransactions") as usize,
        page_policy: PagePolicy::ALL[idx("PagePolicy")],
        scheduler: Scheduler::ALL[idx("Scheduler")],
        scheduler_buffer: SchedulerBuffer::ALL[idx("SchedulerBuffer")],
        arbiter: Arbiter::ALL[idx("Arbiter")],
        resp_queue: RespQueue::ALL[idx("RespQueue")],
        refresh_policy: RefreshPolicy::ALL[idx("RefreshPolicy")],
    }
}

/// A DRAMGym optimization objective (the three targets of Fig. 4).
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    name: String,
    spec: RewardSpec,
}

impl Objective {
    /// Target a power envelope of `watts` (Fig. 4 "low power"; Table 4
    /// uses a 1 W goal).
    pub fn low_power(watts: f64) -> Self {
        Objective {
            name: format!("low-power({watts}W)"),
            spec: RewardSpec::TargetRatio {
                terms: vec![(metric::POWER, watts)],
            },
        }
    }

    /// Target a mean latency of `ns` (Fig. 4 "low latency").
    pub fn low_latency(ns: f64) -> Self {
        Objective {
            name: format!("low-latency({ns}ns)"),
            spec: RewardSpec::TargetRatio {
                terms: vec![(metric::LATENCY, ns)],
            },
        }
    }

    /// Jointly target latency and power (Fig. 4 "latency & power").
    pub fn joint(latency_ns: f64, power_w: f64) -> Self {
        Objective {
            name: format!("joint({latency_ns}ns,{power_w}W)"),
            spec: RewardSpec::TargetRatio {
                terms: vec![(metric::LATENCY, latency_ns), (metric::POWER, power_w)],
            },
        }
    }

    /// The objective's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying reward formulation.
    pub fn spec(&self) -> &RewardSpec {
        &self.spec
    }
}

/// The DRAMGym environment: one workload trace + one objective.
#[derive(Debug, Clone)]
pub struct DramEnv {
    space: ParamSpace,
    workload: DramWorkload,
    objective: Objective,
    /// Shared, immutable: cloning the env (one clone per `Executor`
    /// worker in a sweep) bumps a refcount instead of deep-copying the
    /// trace.
    trace: Arc<[MemoryRequest]>,
    name: String,
    /// Run telemetry sink; a disabled no-op recorder until the search
    /// loop installs a live one via [`Environment::set_telemetry`].
    telemetry: Recorder,
}

/// The canonical trace of each workload (default [`TraceConfig`], fixed
/// seed), generated once per process and shared by every env built from
/// it — parallel sweep workers all point at the same allocation.
fn canonical_trace(workload: DramWorkload) -> Arc<[MemoryRequest]> {
    static CACHE: [OnceLock<Arc<[MemoryRequest]>>; DramWorkload::ALL.len()] =
        [const { OnceLock::new() }; DramWorkload::ALL.len()];
    let slot = DramWorkload::ALL
        .iter()
        .position(|w| *w == workload)
        .expect("every workload is in ALL");
    CACHE[slot]
        .get_or_init(|| generate(workload, &TraceConfig::default(), &mut seeded_rng(0xD7A3)).into())
        .clone()
}

impl DramEnv {
    /// Create an environment with the default trace configuration and the
    /// canonical trace seed (so every agent optimizes the *same* trace).
    pub fn new(workload: DramWorkload, objective: Objective) -> Self {
        Self::with_trace_config(workload, objective, &TraceConfig::default())
    }

    /// Create an environment with a custom trace configuration (length,
    /// footprint, arrival intensity).
    pub fn with_trace_config(
        workload: DramWorkload,
        objective: Objective,
        config: &TraceConfig,
    ) -> Self {
        // The trace seed is fixed: the workload is part of the problem
        // statement, not of the agent's stochasticity.
        let trace = if *config == TraceConfig::default() {
            canonical_trace(workload)
        } else {
            generate(workload, config, &mut seeded_rng(0xD7A3)).into()
        };
        DramEnv {
            space: dram_space(),
            workload,
            objective,
            trace,
            name: format!("dram/{}", workload.name()),
            telemetry: Recorder::default(),
        }
    }

    /// Create an environment over the widened [`dram_space_extended`]
    /// design space (Fig. 3(a) plus channel/rank topology axes). The
    /// environment is named `dramx/<workload>` to keep result histories
    /// from the two spaces separate.
    pub fn extended(workload: DramWorkload, objective: Objective) -> Self {
        let mut env = Self::new(workload, objective);
        env.space = dram_space_extended();
        env.name = format!("dramx/{}", workload.name());
        env
    }

    /// Create an environment around an explicit trace (e.g. one loaded
    /// with [`crate::trace::read_trace`] from a real application's memory
    /// trace file).
    ///
    /// # Panics
    ///
    /// Panics if `trace` is empty.
    pub fn with_trace(label: &str, trace: Vec<MemoryRequest>, objective: Objective) -> Self {
        assert!(
            !trace.is_empty(),
            "cannot build an environment around an empty trace"
        );
        DramEnv {
            space: dram_space(),
            workload: DramWorkload::Random, // nominal; the trace is custom
            objective,
            trace: trace.into(),
            name: format!("dram/{label}"),
            telemetry: Recorder::default(),
        }
    }

    /// The memory trace this environment simulates against.
    pub fn trace(&self) -> &[MemoryRequest] {
        &self.trace
    }

    /// The workload this environment evaluates.
    pub fn workload(&self) -> DramWorkload {
        self.workload
    }

    /// The optimization objective.
    pub fn objective(&self) -> &Objective {
        &self.objective
    }

    /// Evaluate a raw controller configuration, bypassing action encoding.
    pub fn evaluate_config(&self, config: ControllerConfig) -> crate::controller::SimStats {
        MemoryController::new(config).simulate(&self.trace)
    }
}

impl Environment for DramEnv {
    fn name(&self) -> &str {
        &self.name
    }

    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn observation_labels(&self) -> Vec<String> {
        vec!["latency_ns".into(), "power_w".into(), "energy_uj".into()]
    }

    fn step(&mut self, action: &Action) -> StepResult {
        let config = decode_config(&self.space, action);
        let topology = decode_topology(&self.space, action);
        let stats = {
            let _span = self.telemetry.span(Phase::Simulate);
            MemoryController::new(config)
                .topology(topology)
                .simulate(&self.trace)
        };
        self.telemetry.add(Counter::DramRowHits, stats.row_hits);
        self.telemetry.add(Counter::DramRowMisses, stats.row_misses);
        self.telemetry
            .add(Counter::DramRowConflicts, stats.row_conflicts);
        self.telemetry.add(
            Counter::DramDecisions,
            stats.row_hits + stats.row_misses + stats.row_conflicts,
        );
        let observation =
            Observation::new(vec![stats.avg_latency_ns, stats.power_w, stats.energy_uj]);
        let reward = self.objective.spec.reward(&observation);
        StepResult::terminal(observation, reward)
            .with_info("row_hit_rate", stats.hit_rate())
            .with_info("total_cycles", stats.total_cycles as f64)
            .with_info("p95_latency_ns", stats.p95_latency_ns)
    }

    fn set_telemetry(&mut self, recorder: &Recorder) {
        self.telemetry = recorder.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archgym_core::agent::RandomWalker;
    use archgym_core::search::{RunConfig, SearchLoop};

    #[test]
    fn space_matches_fig3a() {
        let space = dram_space();
        assert_eq!(space.len(), 10);
        let cards = space.cardinalities();
        assert_eq!(cards, vec![8, 8, 8, 8, 4, 3, 3, 3, 2, 2]);
        // The exact product of Fig. 3(a)'s domains. The paper reports
        // "1.9e7", which corresponds to counting MaxActiveTransactions
        // linearly; we implement the printed (1, 128, 2^x) domain.
        assert_eq!(space.cardinality(), 1_769_472.0);
    }

    #[test]
    fn extended_space_widens_fig3a_with_topology_axes() {
        let space = dram_space_extended();
        assert_eq!(space.len(), 12);
        let cards = space.cardinalities();
        assert_eq!(cards, vec![8, 8, 8, 8, 4, 3, 3, 3, 2, 2, 3, 2]);
        // Fig. 3(a)'s 1,769,472 designs × 3 channel options × 2 rank
        // options.
        assert_eq!(space.cardinality(), 10_616_832.0);
        // The original space is untouched.
        assert_eq!(dram_space().cardinality(), 1_769_472.0);
    }

    #[test]
    fn decode_topology_defaults_to_single_on_plain_space() {
        let space = dram_space();
        let action = Action::new(vec![0; 10]);
        assert_eq!(decode_topology(&space, &action), Topology::single());
    }

    #[test]
    fn extended_env_baseline_action_matches_plain_env() {
        // Appending the topology axes at their baseline (1 channel,
        // 1 rank) must not change any observation: the extended space
        // strictly contains Fig. 3(a).
        let objective = Objective::joint(30.0, 1.0);
        let mut plain = DramEnv::new(DramWorkload::Cloud1, objective.clone());
        let mut extended = DramEnv::extended(DramWorkload::Cloud1, objective);
        assert_eq!(extended.name(), "dramx/cloud-1");
        let mut rng = seeded_rng(41);
        for _ in 0..8 {
            let base = plain.space().sample(&mut rng);
            let mut widened = base.clone().into_inner();
            widened.extend([0, 0]); // Channels = 1, Ranks = 1
            assert_eq!(plain.step(&base), extended.step(&Action::new(widened)));
        }
    }

    #[test]
    fn extended_env_steps_multichannel_points() {
        let mut env = DramEnv::extended(DramWorkload::Stream, Objective::low_power(1.0));
        let mut rng = seeded_rng(42);
        for _ in 0..8 {
            let action = env.space().sample(&mut rng);
            let topo = decode_topology(env.space(), &action);
            let result = env.step(&action);
            assert_eq!(result.observation.len(), 3);
            assert!(result.reward > 0.0, "{topo:?}");
        }
    }

    #[test]
    fn decode_config_maps_every_dimension() {
        let space = dram_space();
        let action = Action::new(vec![3, 7, 0, 5, 1, 2, 0, 2, 1, 0]);
        let cfg = decode_config(&space, &action);
        assert_eq!(cfg.refresh_max_postponed, 4);
        assert_eq!(cfg.refresh_max_pulled_in, 8);
        assert_eq!(cfg.request_buffer_size, 1);
        assert_eq!(cfg.max_active_transactions, 32);
        assert_eq!(cfg.page_policy, PagePolicy::OpenAdaptive);
        assert_eq!(cfg.scheduler, Scheduler::FrFcfs);
        assert_eq!(cfg.scheduler_buffer, SchedulerBuffer::Bankwise);
        assert_eq!(cfg.arbiter, Arbiter::Reorder);
        assert_eq!(cfg.resp_queue, RespQueue::Reorder);
        assert_eq!(cfg.refresh_policy, RefreshPolicy::NoRefresh);
    }

    #[test]
    #[should_panic(expected = "action fits the DRAM space")]
    fn decode_rejects_invalid_action() {
        let space = dram_space();
        let _ = decode_config(&space, &Action::new(vec![0; 3]));
    }

    #[test]
    fn step_reports_three_metrics_and_positive_reward() {
        let mut env = DramEnv::new(DramWorkload::Stream, Objective::low_power(1.0));
        let mut rng = seeded_rng(4);
        let action = env.space().sample(&mut rng);
        let result = env.step(&action);
        assert_eq!(result.observation.len(), 3);
        assert!(result.reward > 0.0);
        assert!(result.info.contains_key("row_hit_rate"));
        assert!(result.feasible);
    }

    #[test]
    fn same_action_same_result() {
        let mut env = DramEnv::new(DramWorkload::Cloud1, Objective::low_latency(30.0));
        let action = Action::new(vec![0, 0, 3, 4, 0, 2, 2, 1, 1, 1]);
        let a = env.step(&action);
        let b = env.step(&action);
        assert_eq!(a, b);
    }

    #[test]
    fn objective_names_are_informative() {
        assert_eq!(Objective::low_power(1.0).name(), "low-power(1W)");
        assert_eq!(Objective::low_latency(30.0).name(), "low-latency(30ns)");
        assert!(Objective::joint(30.0, 1.0).name().starts_with("joint("));
    }

    #[test]
    fn random_search_improves_reward_toward_power_target() {
        let mut env = DramEnv::new(DramWorkload::Random, Objective::low_power(1.0));
        let mut agent = RandomWalker::new(env.space().clone(), 17);
        let result = SearchLoop::new(RunConfig::with_budget(40)).run(&mut agent, &mut env);
        // A configuration within 50% of the 1 W target exists and random
        // search over 40 designs should get at least that close.
        assert!(
            result.best_reward > 2.0,
            "best reward {} too low",
            result.best_reward
        );
        let power = result.best_observation[metric::POWER];
        assert!(
            (0.5..=1.5).contains(&power),
            "best power {power} far from target"
        );
    }

    #[test]
    fn cached_env_is_bit_identical_across_workloads() {
        use archgym_core::cache::{CachedEnv, EvalCache};

        for workload in DramWorkload::ALL {
            let objective = Objective::joint(30.0, 1.0);
            let mut plain = DramEnv::new(workload, objective.clone());
            let cache = Arc::new(EvalCache::new());
            let mut cached =
                CachedEnv::new(DramEnv::new(workload, objective.clone()), cache.clone());
            let mut rng = seeded_rng(99);
            let mut actions: Vec<Action> =
                (0..12).map(|_| plain.space().sample(&mut rng)).collect();
            // Replay every action a second time so the cached wrapper
            // must serve hits — those too must be bit-identical.
            actions.extend(actions.clone());
            for action in &actions {
                assert_eq!(
                    plain.step(action),
                    cached.step(action),
                    "{}",
                    workload.name()
                );
            }
            let stats = cache.stats();
            assert_eq!(stats.hits + stats.misses, 24, "{}", workload.name());
            assert!(stats.hits >= 12, "{}", workload.name());
        }
    }

    #[test]
    fn canonical_traces_share_one_allocation() {
        let a = DramEnv::new(DramWorkload::Stream, Objective::low_power(1.0));
        let b = DramEnv::new(DramWorkload::Stream, Objective::low_latency(30.0));
        // Same workload, default trace config: both envs point at the
        // process-wide canonical trace, not private copies.
        assert!(std::ptr::eq(a.trace().as_ptr(), b.trace().as_ptr()));
        let c = a.clone();
        assert!(std::ptr::eq(a.trace().as_ptr(), c.trace().as_ptr()));
    }

    #[test]
    fn env_name_includes_workload() {
        let env = DramEnv::new(DramWorkload::Cloud2, Objective::low_power(1.0));
        assert_eq!(env.name(), "dram/cloud-2");
    }
}
