//! Task dependency graphs — the FARSIGym workload representation.
//!
//! Each task carries a compute demand in operations and an
//! accelerability factor (how much a domain accelerator speeds it up
//! relative to a general-purpose core); each edge carries the bytes
//! produced by its source for its destination. The two bundled workloads
//! mirror the audio and image pipelines FARSI ships for AR/VR.

use archgym_core::error::{ArchGymError, Result};
use serde::{Deserialize, Serialize};

/// One task of a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Task name, unique within its graph.
    pub name: String,
    /// Compute demand in operations.
    pub ops: f64,
    /// Speedup a domain accelerator achieves over a general-purpose core
    /// for this task (1.0 = no benefit).
    pub accel_speedup: f64,
}

/// A directed acyclic task graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskGraph {
    name: String,
    tasks: Vec<Task>,
    /// `(src, dst, bytes)` edges.
    edges: Vec<(usize, usize, f64)>,
}

impl TaskGraph {
    /// Create a graph, validating indices and acyclicity.
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::InvalidConfig`] for out-of-range edge
    /// indices or cycles.
    pub fn new(name: &str, tasks: Vec<Task>, edges: Vec<(usize, usize, f64)>) -> Result<Self> {
        let n = tasks.len();
        for &(src, dst, bytes) in &edges {
            if src >= n || dst >= n {
                return Err(ArchGymError::InvalidConfig(format!(
                    "edge ({src}, {dst}) out of range for {n} tasks"
                )));
            }
            if bytes < 0.0 {
                return Err(ArchGymError::InvalidConfig(
                    "edge byte counts must be non-negative".into(),
                ));
            }
        }
        let graph = TaskGraph {
            name: name.to_owned(),
            tasks,
            edges,
        };
        graph.topo_order()?; // validates acyclicity
        Ok(graph)
    }

    /// The graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tasks, index-addressed by the edges.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The `(src, dst, bytes)` edges.
    pub fn edges(&self) -> &[(usize, usize, f64)] {
        &self.edges
    }

    /// Incoming edges of task `i` as `(src, bytes)` pairs.
    pub fn predecessors(&self, i: usize) -> Vec<(usize, f64)> {
        self.edges
            .iter()
            .filter(|&&(_, dst, _)| dst == i)
            .map(|&(src, _, bytes)| (src, bytes))
            .collect()
    }

    /// Total operations over all tasks.
    pub fn total_ops(&self) -> f64 {
        self.tasks.iter().map(|t| t.ops).sum()
    }

    /// Total bytes over all edges.
    pub fn total_bytes(&self) -> f64 {
        self.edges.iter().map(|&(_, _, b)| b).sum()
    }

    /// A topological order of task indices (Kahn's algorithm).
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::InvalidConfig`] if the graph has a cycle.
    pub fn topo_order(&self) -> Result<Vec<usize>> {
        let n = self.tasks.len();
        let mut indegree = vec![0usize; n];
        for &(_, dst, _) in &self.edges {
            indegree[dst] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            order.push(i);
            for &(src, dst, _) in &self.edges {
                if src == i {
                    indegree[dst] -= 1;
                    if indegree[dst] == 0 {
                        queue.push(dst);
                    }
                }
            }
        }
        if order.len() != n {
            return Err(ArchGymError::InvalidConfig(format!(
                "task graph `{}` contains a cycle",
                self.name
            )));
        }
        Ok(order)
    }
}

fn task(name: &str, mops: f64, accel_speedup: f64) -> Task {
    Task {
        name: name.to_owned(),
        ops: mops * 1e6,
        accel_speedup,
    }
}

/// The audio-decoder pipeline (FARSI's AR/VR audio workload): a mostly
/// serial chain of decode / transform / filter stages over audio frames.
pub fn audio_decoder() -> TaskGraph {
    const KB: f64 = 1024.0;
    TaskGraph::new(
        "audio-decoder",
        vec![
            task("demux", 2.0, 1.2),
            task("huffman", 12.0, 2.0),
            task("dequant", 6.0, 4.0),
            task("imdct", 40.0, 8.0),
            task("filterbank", 30.0, 8.0),
            task("spatializer", 55.0, 10.0),
            task("limiter", 8.0, 3.0),
            task("resample", 18.0, 6.0),
            task("mix", 5.0, 2.0),
        ],
        vec![
            (0, 1, 64.0 * KB),
            (1, 2, 96.0 * KB),
            (2, 3, 96.0 * KB),
            (3, 4, 192.0 * KB),
            (4, 5, 192.0 * KB),
            (5, 6, 192.0 * KB),
            (5, 7, 192.0 * KB),
            (6, 8, 96.0 * KB),
            (7, 8, 96.0 * KB),
        ],
    )
    .expect("static graph is valid")
}

/// The edge-detection pipeline (FARSI's AR/VR image workload): a diamond
/// of blur → Sobel-x/Sobel-y → magnitude → threshold over camera frames.
pub fn edge_detection() -> TaskGraph {
    const MB: f64 = 1024.0 * 1024.0;
    TaskGraph::new(
        "edge-detection",
        vec![
            task("debayer", 60.0, 6.0),
            task("gaussian", 140.0, 12.0),
            task("sobel_x", 90.0, 12.0),
            task("sobel_y", 90.0, 12.0),
            task("magnitude", 70.0, 10.0),
            task("nms", 45.0, 5.0),
            task("threshold", 20.0, 4.0),
        ],
        vec![
            (0, 1, 2.0 * MB),
            (1, 2, 2.0 * MB),
            (1, 3, 2.0 * MB),
            (2, 4, 2.0 * MB),
            (3, 4, 2.0 * MB),
            (4, 5, 2.0 * MB),
            (5, 6, 1.0 * MB),
        ],
    )
    .expect("static graph is valid")
}

/// A SLAM-lite visual-inertial tracking pipeline: a camera path
/// (feature detection → description → matching) and an IMU path converge
/// in a pose solver and map update. Unlike the image pipeline, a large
/// fraction of the work (pose optimization) accelerates poorly, so the
/// best SoCs mix allocation generosity with restraint.
pub fn slam_lite() -> TaskGraph {
    const KB: f64 = 1024.0;
    const MB: f64 = 1024.0 * 1024.0;
    TaskGraph::new(
        "slam-lite",
        vec![
            task("camera_in", 10.0, 4.0),
            task("feature_detect", 120.0, 10.0),
            task("feature_describe", 80.0, 8.0),
            task("feature_match", 60.0, 6.0),
            task("imu_integrate", 5.0, 1.5),
            task("pose_solve", 90.0, 2.0),
            task("fuse", 15.0, 2.0),
            task("map_update", 40.0, 3.0),
        ],
        vec![
            (0, 1, 1.0 * MB),
            (1, 2, 512.0 * KB),
            (2, 3, 256.0 * KB),
            (3, 5, 128.0 * KB),
            (4, 6, 16.0 * KB),
            (5, 6, 64.0 * KB),
            (6, 7, 128.0 * KB),
        ],
    )
    .expect("static graph is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundled_graphs_are_valid_dags() {
        for g in [audio_decoder(), edge_detection(), slam_lite()] {
            let order = g.topo_order().unwrap();
            assert_eq!(order.len(), g.tasks().len());
            // Every edge goes forward in the order.
            let pos: Vec<usize> = {
                let mut pos = vec![0; order.len()];
                for (rank, &i) in order.iter().enumerate() {
                    pos[i] = rank;
                }
                pos
            };
            for &(src, dst, _) in g.edges() {
                assert!(
                    pos[src] < pos[dst],
                    "edge ({src},{dst}) violates topo order"
                );
            }
        }
    }

    #[test]
    fn cycle_detection() {
        let err = TaskGraph::new(
            "cyclic",
            vec![task("a", 1.0, 1.0), task("b", 1.0, 1.0)],
            vec![(0, 1, 1.0), (1, 0, 1.0)],
        )
        .unwrap_err();
        assert!(matches!(err, ArchGymError::InvalidConfig(_)));
    }

    #[test]
    fn edge_index_validation() {
        assert!(TaskGraph::new("bad", vec![task("a", 1.0, 1.0)], vec![(0, 5, 1.0)]).is_err());
        assert!(TaskGraph::new("bad", vec![task("a", 1.0, 1.0)], vec![(0, 0, -1.0)]).is_err());
    }

    #[test]
    fn predecessors_query() {
        let g = edge_detection();
        let magnitude = 4;
        let preds = g.predecessors(magnitude);
        assert_eq!(preds.len(), 2); // sobel_x and sobel_y
        assert!(preds.iter().all(|&(src, _)| src == 2 || src == 3));
    }

    #[test]
    fn workload_scales_are_plausible() {
        let audio = audio_decoder();
        let edge = edge_detection();
        // Audio frames are small; camera frames are megabytes.
        assert!(audio.total_bytes() < edge.total_bytes());
        assert!(audio.total_ops() > 1e8 && audio.total_ops() < 1e9);
        assert!(edge.total_ops() > 1e8 && edge.total_ops() < 1e9);
    }

    #[test]
    fn accelerability_varies_across_tasks() {
        let g = audio_decoder();
        let speedups: Vec<f64> = g.tasks().iter().map(|t| t.accel_speedup).collect();
        let min = speedups.iter().copied().fold(f64::INFINITY, f64::min);
        let max = speedups.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max / min > 3.0,
            "workload should mix accelerable and control tasks"
        );
    }
}
