//! [`SocEnv`] — the FARSIGym environment.
//!
//! Observations are `<power, performance, area>` (Table 3) and the reward
//! is the negated distance-to-budget `Σ_m α·max(0, (D_m − B_m)/B_m)`; a
//! design meeting every budget scores exactly `0`, the best possible.

use crate::soc::{decode_config, SocEvaluator};
use crate::taskgraph::{audio_decoder, edge_detection, slam_lite, TaskGraph};
use archgym_core::env::{Environment, Observation, StepResult};
use archgym_core::reward::{BudgetTerm, RewardSpec};
use archgym_core::space::{Action, ParamSpace};

/// Observation metric indices for FARSIGym.
pub mod metric {
    /// Average power in milliwatts.
    pub const POWER: usize = 0;
    /// Workload latency in milliseconds.
    pub const LATENCY: usize = 1;
    /// SoC area in mm².
    pub const AREA: usize = 2;
}

/// Build the 13-dimensional SoC space of Fig. 3(c).
///
/// ```
/// let space = archgym_soc::soc_space();
/// assert_eq!(space.len(), 13);
/// assert!(space.cardinality() > 1e14);
/// ```
pub fn soc_space() -> ParamSpace {
    ParamSpace::builder()
        .categorical("PE_Type", ["GeneralPurposeProcessor", "Accelerator"])
        .int("PE_Freq", 100, 800, 200)
        .int("PE_Count", 0, 3, 1)
        .int("PE_Unrolling_Type", 0, 3, 1)
        .int("PE_Unrolling_Arithmetic", 1, 1 << 17, 2)
        .pow2("PE_Unrolling_Geometric", 1, 1 << 17)
        .int("NoC_Freq", 100, 800, 200)
        .int("NoC_Count", 0, 3, 1)
        .int("NoC_BusWidth", 4, 256, 4)
        .categorical("Mem_Type", ["DRAM", "SRAM"])
        .int("Mem_Freq", 100, 800, 200)
        .int("Mem_Count", 0, 3, 1)
        .int("Mem_BusWidth", 4, 256, 4)
        .build()
        .expect("static space definition is valid")
}

/// The AR/VR workloads bundled with FARSIGym, with their budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SocWorkload {
    /// Audio decoding pipeline (small frames, mostly serial).
    AudioDecoder,
    /// Edge-detection pipeline (camera frames, diamond parallelism).
    EdgeDetection,
    /// SLAM-lite visual-inertial tracking (two converging sensor paths,
    /// poorly-accelerable pose optimization).
    SlamLite,
}

impl SocWorkload {
    /// All bundled workloads (the paper's two plus SLAM-lite).
    pub const ALL: [SocWorkload; 3] = [
        SocWorkload::AudioDecoder,
        SocWorkload::EdgeDetection,
        SocWorkload::SlamLite,
    ];

    /// Short identifier.
    pub fn name(&self) -> &'static str {
        match self {
            SocWorkload::AudioDecoder => "audio-decoder",
            SocWorkload::EdgeDetection => "edge-detection",
            SocWorkload::SlamLite => "slam-lite",
        }
    }

    /// The task graph.
    pub fn graph(&self) -> TaskGraph {
        match self {
            SocWorkload::AudioDecoder => audio_decoder(),
            SocWorkload::EdgeDetection => edge_detection(),
            SocWorkload::SlamLite => slam_lite(),
        }
    }

    /// `(latency_ms, power_mw, area_mm2)` budgets. Chosen so that a
    /// well-tuned allocation meets all three while a random one usually
    /// overshoots at least one.
    pub fn budgets(&self) -> (f64, f64, f64) {
        match self {
            SocWorkload::AudioDecoder => (4.0, 300.0, 8.0),
            SocWorkload::EdgeDetection => (8.0, 300.0, 10.0),
            SocWorkload::SlamLite => (14.0, 350.0, 10.0),
        }
    }
}

/// The FARSIGym environment: one task graph + distance-to-budget reward.
#[derive(Debug, Clone)]
pub struct SocEnv {
    space: ParamSpace,
    workload: SocWorkload,
    evaluator: SocEvaluator,
    spec: RewardSpec,
    name: String,
}

impl SocEnv {
    /// Create an environment with the workload's default budgets and
    /// uniform budget weights (α = 1).
    pub fn new(workload: SocWorkload) -> Self {
        let (lat, pow, area) = workload.budgets();
        Self::with_budgets(workload, lat, pow, area)
    }

    /// Create an environment with explicit budgets.
    pub fn with_budgets(
        workload: SocWorkload,
        latency_ms: f64,
        power_mw: f64,
        area_mm2: f64,
    ) -> Self {
        let spec = RewardSpec::DistanceToBudget {
            terms: vec![
                BudgetTerm {
                    metric: metric::POWER,
                    budget: power_mw,
                    alpha: 1.0,
                },
                BudgetTerm {
                    metric: metric::LATENCY,
                    budget: latency_ms,
                    alpha: 1.0,
                },
                BudgetTerm {
                    metric: metric::AREA,
                    budget: area_mm2,
                    alpha: 1.0,
                },
            ],
        };
        SocEnv {
            space: soc_space(),
            workload,
            evaluator: SocEvaluator::new(workload.graph()),
            spec,
            name: format!("farsi/{}", workload.name()),
        }
    }

    /// The workload.
    pub fn workload(&self) -> SocWorkload {
        self.workload
    }

    /// Distance-to-budget of a step (the paper plots this, lower is
    /// better): simply the negated reward.
    pub fn distance(result: &StepResult) -> f64 {
        -result.reward
    }
}

impl Environment for SocEnv {
    fn name(&self) -> &str {
        &self.name
    }

    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn observation_labels(&self) -> Vec<String> {
        vec!["power_mw".into(), "latency_ms".into(), "area_mm2".into()]
    }

    fn step(&mut self, action: &Action) -> StepResult {
        let config = match decode_config(&self.space, action) {
            Ok(cfg) => cfg,
            Err(_) => return StepResult::infeasible(Observation::new(vec![0.0; 3]), -100.0),
        };
        match self.evaluator.evaluate(&config) {
            Ok(cost) => {
                let observation =
                    Observation::new(vec![cost.power_mw, cost.latency_ms, cost.area_mm2]);
                let reward = self.spec.reward(&observation);
                StepResult::terminal(observation, reward).with_info("energy_mj", cost.energy_mj)
            }
            // Zero-count allocations: a large fixed distance penalty.
            Err(_) => StepResult::infeasible(Observation::new(vec![0.0; 3]), -100.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archgym_core::agent::RandomWalker;
    use archgym_core::search::{RunConfig, SearchLoop};
    use archgym_core::seeded_rng;

    #[test]
    fn space_matches_fig3c() {
        let space = soc_space();
        assert_eq!(space.len(), 13);
        let cards = space.cardinalities();
        assert_eq!(cards, vec![2, 4, 4, 4, 65536, 18, 4, 4, 64, 2, 4, 4, 64]);
        // Exact product ≈ 3.2e14 (the paper rounds its variant to 1.6e17).
        assert!(space.cardinality() > 1e14);
    }

    #[test]
    fn rewards_are_non_positive_distances() {
        let mut env = SocEnv::new(SocWorkload::AudioDecoder);
        let mut rng = seeded_rng(8);
        for _ in 0..50 {
            let action = env.space().sample(&mut rng);
            let result = env.step(&action);
            assert!(result.reward <= 0.0);
            assert_eq!(SocEnv::distance(&result), -result.reward);
        }
    }

    #[test]
    fn zero_count_allocations_are_infeasible() {
        let mut env = SocEnv::new(SocWorkload::EdgeDetection);
        // PE_Count is dimension 2; index 0 decodes to count 0.
        let mut rng = seeded_rng(1);
        let mut action = env.space().sample(&mut rng);
        action.as_mut_slice()[2] = 0;
        let result = env.step(&action);
        assert!(!result.feasible);
        assert_eq!(result.reward, -100.0);
    }

    #[test]
    fn random_search_approaches_budget_on_every_workload() {
        for workload in SocWorkload::ALL {
            let mut env = SocEnv::new(workload);
            let mut agent = RandomWalker::new(env.space().clone(), 21);
            let result = SearchLoop::new(RunConfig::with_budget(300)).run(&mut agent, &mut env);
            let best_distance = -result.best_reward;
            assert!(
                best_distance < 1.0,
                "{}: best distance {best_distance} too far from budgets",
                workload.name()
            );
        }
    }

    #[test]
    fn slam_pose_solver_limits_acceleration() {
        // SLAM's pose solver accelerates poorly, so an all-accelerator
        // allocation gains less over a GPP one than on edge detection.
        use crate::soc::{evaluate, MemKind, PeKind, SocConfig};
        let cfg = |kind: PeKind| SocConfig {
            pe_kind: kind,
            pe_freq_mhz: 500,
            pe_count: 2,
            unrolling_type: 2,
            unroll_arith: 1,
            unroll_geom: 16,
            noc_freq_mhz: 500,
            noc_count: 2,
            noc_bus_width: 64,
            mem_kind: MemKind::Sram,
            mem_freq_mhz: 500,
            mem_count: 2,
            mem_bus_width: 64,
        };
        let ratio = |workload: SocWorkload| {
            let g = workload.graph();
            let gpp = evaluate(&cfg(PeKind::Gpp), &g).unwrap().latency_ms;
            let accel = evaluate(&cfg(PeKind::Accelerator), &g).unwrap().latency_ms;
            gpp / accel
        };
        assert!(
            ratio(SocWorkload::EdgeDetection) > ratio(SocWorkload::SlamLite),
            "SLAM should benefit less from acceleration"
        );
    }

    #[test]
    fn budget_meeting_designs_exist() {
        // A hand-tuned allocation should meet every budget (distance 0):
        // accelerator cluster, moderate clocks, SRAM-backed.
        let mut env = SocEnv::new(SocWorkload::EdgeDetection);
        let space = env.space().clone();
        use archgym_core::space::ParamValue;
        let action = space
            .encode(&[
                ("PE_Type".into(), ParamValue::Cat("Accelerator".into())),
                ("PE_Freq".into(), ParamValue::Int(100)),
                ("PE_Count".into(), ParamValue::Int(2)),
                ("PE_Unrolling_Type".into(), ParamValue::Int(2)),
                ("PE_Unrolling_Arithmetic".into(), ParamValue::Int(1)),
                ("PE_Unrolling_Geometric".into(), ParamValue::Int(256)),
                ("NoC_Freq".into(), ParamValue::Int(500)),
                ("NoC_Count".into(), ParamValue::Int(2)),
                ("NoC_BusWidth".into(), ParamValue::Int(64)),
                ("Mem_Type".into(), ParamValue::Cat("SRAM".into())),
                ("Mem_Freq".into(), ParamValue::Int(500)),
                ("Mem_Count".into(), ParamValue::Int(2)),
                ("Mem_BusWidth".into(), ParamValue::Int(64)),
            ])
            .unwrap();
        let result = env.step(&action);
        assert!(result.feasible);
        assert!(
            result.reward > -0.1,
            "tuned design distance {} should be near 0 (obs {})",
            -result.reward,
            result.observation
        );
    }

    #[test]
    fn env_name_and_labels() {
        let env = SocEnv::new(SocWorkload::AudioDecoder);
        assert_eq!(env.name(), "farsi/audio-decoder");
        assert_eq!(env.observation_labels().len(), 3);
    }
}
