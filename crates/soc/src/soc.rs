//! The SoC allocation model and list scheduler.
//!
//! A design instantiates one PE cluster, one NoC bus group and one memory
//! group (type, frequency, count, width/unrolling each — Fig. 3(c)). A
//! topological list scheduler maps tasks to the earliest-available PE
//! instance and edge transfers to the earliest-available NoC channel,
//! bounded by memory bandwidth — a discrete-event rendition of FARSI's
//! roofline estimates. Counts of zero are *infeasible by construction*
//! (the domain deliberately includes them, mirroring FARSI's invalid
//! allocations).

use crate::taskgraph::TaskGraph;
use archgym_core::error::Result;
use archgym_core::space::{Action, ParamSpace};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Processing-element type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PeKind {
    /// General-purpose processor: runs everything, accelerates nothing.
    Gpp,
    /// Domain accelerator: exploits each task's `accel_speedup`.
    Accelerator,
}

impl PeKind {
    /// All variants in the paper's order.
    pub const ALL: [PeKind; 2] = [PeKind::Gpp, PeKind::Accelerator];
}

/// Memory type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemKind {
    /// Off-chip DRAM: high capacity, high access latency and energy.
    Dram,
    /// On-chip SRAM: fast and efficient, area-hungry.
    Sram,
}

impl MemKind {
    /// All variants in the paper's order.
    pub const ALL: [MemKind; 2] = [MemKind::Dram, MemKind::Sram];
}

/// The 13-parameter SoC configuration of Fig. 3(c).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SocConfig {
    /// PE type.
    pub pe_kind: PeKind,
    /// PE clock in MHz.
    pub pe_freq_mhz: u64,
    /// Number of PE instances (0 is infeasible).
    pub pe_count: u64,
    /// Which unrolling knob applies: 0 none, 1 arithmetic, 2 geometric,
    /// 3 the larger of both.
    pub unrolling_type: u64,
    /// Arithmetic unrolling factor.
    pub unroll_arith: u64,
    /// Geometric unrolling factor.
    pub unroll_geom: u64,
    /// NoC clock in MHz.
    pub noc_freq_mhz: u64,
    /// Number of NoC channels (0 is infeasible).
    pub noc_count: u64,
    /// NoC bus width in bytes.
    pub noc_bus_width: u64,
    /// Memory type.
    pub mem_kind: MemKind,
    /// Memory clock in MHz.
    pub mem_freq_mhz: u64,
    /// Number of memory channels (0 is infeasible).
    pub mem_count: u64,
    /// Memory bus width in bytes.
    pub mem_bus_width: u64,
}

impl SocConfig {
    /// The effective unrolling factor selected by `unrolling_type`.
    pub fn unroll(&self) -> u64 {
        match self.unrolling_type {
            0 => 1,
            1 => self.unroll_arith,
            2 => self.unroll_geom,
            _ => self.unroll_arith.max(self.unroll_geom),
        }
    }

    /// Throughput multiplier from unrolling: square-root scaling with a
    /// kind-dependent cap (GPPs cannot exploit deep unrolling).
    pub fn unroll_speedup(&self) -> f64 {
        let cap = match self.pe_kind {
            PeKind::Gpp => 4.0,
            PeKind::Accelerator => 32.0,
        };
        (self.unroll() as f64).sqrt().min(cap)
    }
}

/// Why a SoC allocation cannot execute the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SocInfeasible {
    /// No processing elements were allocated.
    NoPes,
    /// No NoC channels were allocated.
    NoNoc,
    /// No memory channels were allocated.
    NoMemory,
}

impl fmt::Display for SocInfeasible {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocInfeasible::NoPes => write!(f, "allocation has zero processing elements"),
            SocInfeasible::NoNoc => write!(f, "allocation has zero NoC channels"),
            SocInfeasible::NoMemory => write!(f, "allocation has zero memory channels"),
        }
    }
}

/// Evaluation outputs — the FARSIGym observation source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SocCost {
    /// Workload makespan in milliseconds.
    pub latency_ms: f64,
    /// Average power in milliwatts.
    pub power_mw: f64,
    /// SoC area in mm².
    pub area_mm2: f64,
    /// Total energy in millijoules.
    pub energy_mj: f64,
}

// --- calibration constants -------------------------------------------------

/// Instructions per cycle of a general-purpose core.
const GPP_IPC: f64 = 2.0;
/// Operations per cycle of an accelerator lane.
const ACCEL_IPC: f64 = 4.0;
/// Compute energy of a GPP in pJ/op at 100 MHz.
const GPP_PJ_PER_OP: f64 = 40.0;
/// Compute energy of an accelerator in pJ/op at 100 MHz.
const ACCEL_PJ_PER_OP: f64 = 2.0;
/// NoC transfer energy in pJ/byte.
const NOC_PJ_PER_BYTE: f64 = 2.0;
/// Memory transfer energy in pJ/byte.
fn mem_pj_per_byte(kind: MemKind) -> f64 {
    match kind {
        MemKind::Dram => 50.0,
        MemKind::Sram => 5.0,
    }
}
/// Fixed per-transfer memory latency in seconds.
fn mem_latency_s(kind: MemKind) -> f64 {
    match kind {
        MemKind::Dram => 100e-9,
        MemKind::Sram => 10e-9,
    }
}

/// Static power of one PE instance in mW.
fn pe_static_mw(kind: PeKind) -> f64 {
    match kind {
        PeKind::Gpp => 30.0,
        PeKind::Accelerator => 12.0,
    }
}

/// A reusable evaluator for one task graph.
///
/// The list schedule walks the same topological order and predecessor
/// lists on every call, so this precomputes both at construction and
/// keeps the per-call availability/finish vectors as scratch — a search
/// agent issuing thousands of [`SocEvaluator::evaluate`] calls against
/// one workload allocates nothing per call.
#[derive(Debug, Clone)]
pub struct SocEvaluator {
    graph: TaskGraph,
    order: Vec<usize>,
    /// `preds[i]` is task `i`'s incoming `(src, bytes)` edges, in edge
    /// declaration order (matching [`TaskGraph::predecessors`]).
    preds: Vec<Vec<(usize, f64)>>,
    pe_avail: Vec<f64>,
    noc_avail: Vec<f64>,
    mem_avail: Vec<f64>,
    finish: Vec<f64>,
}

impl SocEvaluator {
    /// Precompute the schedule-invariant parts of `graph`.
    pub fn new(graph: TaskGraph) -> Self {
        let order = graph
            .topo_order()
            .expect("graphs are validated at construction");
        let preds = (0..graph.tasks().len())
            .map(|i| graph.predecessors(i))
            .collect();
        let n = graph.tasks().len();
        SocEvaluator {
            graph,
            order,
            preds,
            pe_avail: Vec::new(),
            noc_avail: Vec::new(),
            mem_avail: Vec::new(),
            finish: vec![0.0; n],
        }
    }

    /// The task graph this evaluator schedules.
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }

    /// Evaluate a SoC allocation on the evaluator's task graph.
    ///
    /// # Errors
    ///
    /// Returns a [`SocInfeasible`] when any block count is zero.
    pub fn evaluate(&mut self, cfg: &SocConfig) -> std::result::Result<SocCost, SocInfeasible> {
        if cfg.pe_count == 0 {
            return Err(SocInfeasible::NoPes);
        }
        if cfg.noc_count == 0 {
            return Err(SocInfeasible::NoNoc);
        }
        if cfg.mem_count == 0 {
            return Err(SocInfeasible::NoMemory);
        }
        let graph = &self.graph;

        let pe_hz = cfg.pe_freq_mhz as f64 * 1e6;
        let base_rate = match cfg.pe_kind {
            PeKind::Gpp => GPP_IPC,
            PeKind::Accelerator => ACCEL_IPC,
        } * pe_hz
            * cfg.unroll_speedup();
        let noc_bw = cfg.noc_bus_width as f64 * cfg.noc_freq_mhz as f64 * 1e6; // B/s per channel
        let mem_bw = cfg.mem_bus_width as f64 * cfg.mem_freq_mhz as f64 * 1e6;
        let mem_lat = mem_latency_s(cfg.mem_kind);

        self.pe_avail.clear();
        self.pe_avail.resize(cfg.pe_count as usize, 0.0);
        self.noc_avail.clear();
        self.noc_avail.resize(cfg.noc_count as usize, 0.0);
        self.mem_avail.clear();
        self.mem_avail.resize(cfg.mem_count as usize, 0.0);
        self.finish.clear();
        self.finish.resize(graph.tasks().len(), 0.0);
        let pe_avail = &mut self.pe_avail;
        let noc_avail = &mut self.noc_avail;
        let mem_avail = &mut self.mem_avail;
        let finish = &mut self.finish;
        let mut compute_energy_pj = 0.0;
        let mut transfer_energy_pj = 0.0;

        for &i in &self.order {
            let task = &graph.tasks()[i];
            // Gather inputs over NoC + memory channels.
            let mut ready = 0.0f64;
            for &(src, bytes) in &self.preds[i] {
                // Earliest-available NoC channel carries the transfer; the
                // memory channel gates it as well (data is staged in memory).
                let (noc_idx, noc_free) = argmin(noc_avail);
                let (mem_idx, mem_free) = argmin(mem_avail);
                let start = finish[src].max(noc_free).max(mem_free);
                let duration = (bytes / noc_bw).max(bytes / mem_bw) + mem_lat;
                let end = start + duration;
                noc_avail[noc_idx] = end;
                mem_avail[mem_idx] = end;
                transfer_energy_pj += bytes * (NOC_PJ_PER_BYTE + mem_pj_per_byte(cfg.mem_kind));
                ready = ready.max(end);
            }
            // Execute on the earliest-available PE instance.
            let rate = base_rate
                * match cfg.pe_kind {
                    PeKind::Gpp => 1.0,
                    PeKind::Accelerator => task.accel_speedup,
                };
            let (pe_idx, pe_free) = argmin(pe_avail);
            let start = ready.max(pe_free);
            let duration = task.ops / rate;
            finish[i] = start + duration;
            pe_avail[pe_idx] = finish[i];
            // Energy: per-op cost rises with voltage (∝ freq^0.5 here) and
            // mildly with unrolling depth.
            let pj_per_op = match cfg.pe_kind {
                PeKind::Gpp => GPP_PJ_PER_OP,
                PeKind::Accelerator => ACCEL_PJ_PER_OP,
            } * (cfg.pe_freq_mhz as f64 / 100.0).powf(0.5)
                * (1.0 + 0.03 * (cfg.unroll() as f64 + 1.0).log2());
            compute_energy_pj += task.ops * pj_per_op;
        }

        let makespan_s = finish.iter().copied().fold(0.0f64, f64::max).max(1e-12);
        let dynamic_mw = (compute_energy_pj + transfer_energy_pj) / 1e9 / makespan_s;
        let static_mw = pe_static_mw(cfg.pe_kind) * cfg.pe_count as f64
            + 4.0 * cfg.noc_count as f64 * (cfg.noc_bus_width as f64 / 32.0).max(0.25)
            + match cfg.mem_kind {
                MemKind::Dram => 60.0,
                MemKind::Sram => 10.0,
            } * cfg.mem_count as f64;
        let power_mw = dynamic_mw + static_mw;
        let energy_mj = power_mw * makespan_s; // mW·s = mJ

        // Area grows with the *exploited* unrolling (the speedup cap also
        // caps the duplicated datapath).
        let pe_area = match cfg.pe_kind {
            PeKind::Gpp => 1.5 * (1.0 + 0.2 * cfg.unroll_speedup()),
            PeKind::Accelerator => 0.4 * (1.0 + 0.15 * cfg.unroll_speedup()),
        } * cfg.pe_count as f64;
        let noc_area = 0.05 * cfg.noc_count as f64 * (cfg.noc_bus_width as f64 / 32.0).max(0.25);
        let mem_area = match cfg.mem_kind {
            MemKind::Dram => 1.2,
            MemKind::Sram => 2.5,
        } * cfg.mem_count as f64;

        Ok(SocCost {
            latency_ms: makespan_s * 1e3,
            power_mw,
            area_mm2: pe_area + noc_area + mem_area,
            energy_mj,
        })
    }
}

/// Evaluate a SoC allocation on a task graph.
///
/// One-shot convenience over [`SocEvaluator`]; hot loops stepping one
/// graph thousands of times should hold a `SocEvaluator` instead.
///
/// # Errors
///
/// Returns a [`SocInfeasible`] when any block count is zero.
pub fn evaluate(cfg: &SocConfig, graph: &TaskGraph) -> std::result::Result<SocCost, SocInfeasible> {
    SocEvaluator::new(graph.clone()).evaluate(cfg)
}

fn argmin(values: &[f64]) -> (usize, f64) {
    let mut idx = 0;
    let mut min = values[0];
    for (i, &v) in values.iter().enumerate().skip(1) {
        if v < min {
            idx = i;
            min = v;
        }
    }
    (idx, min)
}

/// Decode a FARSIGym action into a [`SocConfig`].
///
/// # Errors
///
/// Returns [`archgym_core::ArchGymError::InvalidAction`] if the action
/// does not fit the space.
pub fn decode_config(space: &ParamSpace, action: &Action) -> Result<SocConfig> {
    space.validate(action)?;
    let int = |name: &str| -> u64 {
        space
            .decode_one(action, name)
            .as_int()
            .expect("numeric dimension") as u64
    };
    let idx = |name: &str| action.index(space.dim_of(name).expect("known dimension"));
    Ok(SocConfig {
        pe_kind: PeKind::ALL[idx("PE_Type")],
        pe_freq_mhz: int("PE_Freq"),
        pe_count: int("PE_Count"),
        unrolling_type: int("PE_Unrolling_Type"),
        unroll_arith: int("PE_Unrolling_Arithmetic"),
        unroll_geom: int("PE_Unrolling_Geometric"),
        noc_freq_mhz: int("NoC_Freq"),
        noc_count: int("NoC_Count"),
        noc_bus_width: int("NoC_BusWidth"),
        mem_kind: MemKind::ALL[idx("Mem_Type")],
        mem_freq_mhz: int("Mem_Freq"),
        mem_count: int("Mem_Count"),
        mem_bus_width: int("Mem_BusWidth"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taskgraph::{audio_decoder, edge_detection};

    fn baseline() -> SocConfig {
        SocConfig {
            pe_kind: PeKind::Accelerator,
            pe_freq_mhz: 500,
            pe_count: 2,
            unrolling_type: 2,
            unroll_arith: 1,
            unroll_geom: 16,
            noc_freq_mhz: 500,
            noc_count: 2,
            noc_bus_width: 64,
            mem_kind: MemKind::Sram,
            mem_freq_mhz: 500,
            mem_count: 2,
            mem_bus_width: 64,
        }
    }

    #[test]
    fn baseline_costs_are_plausible() {
        for g in [audio_decoder(), edge_detection()] {
            let cost = evaluate(&baseline(), &g).unwrap();
            assert!(
                cost.latency_ms > 0.001 && cost.latency_ms < 100.0,
                "{}: {} ms",
                g.name(),
                cost.latency_ms
            );
            assert!(
                cost.power_mw > 10.0 && cost.power_mw < 5000.0,
                "{}: {} mW",
                g.name(),
                cost.power_mw
            );
            assert!(
                cost.area_mm2 > 1.0 && cost.area_mm2 < 100.0,
                "{}: {} mm²",
                g.name(),
                cost.area_mm2
            );
            assert!(cost.energy_mj > 0.0);
        }
    }

    #[test]
    fn zero_counts_are_infeasible() {
        let g = audio_decoder();
        let mut cfg = baseline();
        cfg.pe_count = 0;
        assert_eq!(evaluate(&cfg, &g).unwrap_err(), SocInfeasible::NoPes);
        let mut cfg = baseline();
        cfg.noc_count = 0;
        assert_eq!(evaluate(&cfg, &g).unwrap_err(), SocInfeasible::NoNoc);
        let mut cfg = baseline();
        cfg.mem_count = 0;
        assert_eq!(evaluate(&cfg, &g).unwrap_err(), SocInfeasible::NoMemory);
    }

    #[test]
    fn accelerator_outruns_gpp_on_accelerable_work() {
        let g = edge_detection();
        let accel = evaluate(&baseline(), &g).unwrap();
        let mut gpp_cfg = baseline();
        gpp_cfg.pe_kind = PeKind::Gpp;
        let gpp = evaluate(&gpp_cfg, &g).unwrap();
        assert!(
            accel.latency_ms < gpp.latency_ms / 2.0,
            "accel {} ms vs gpp {} ms",
            accel.latency_ms,
            gpp.latency_ms
        );
    }

    #[test]
    fn higher_frequency_is_faster_but_hungrier() {
        let g = audio_decoder();
        let mut slow = baseline();
        slow.pe_freq_mhz = 100;
        let mut fast = baseline();
        fast.pe_freq_mhz = 700;
        let c_slow = evaluate(&slow, &g).unwrap();
        let c_fast = evaluate(&fast, &g).unwrap();
        assert!(c_fast.latency_ms < c_slow.latency_ms);
        assert!(c_fast.energy_mj < c_slow.energy_mj * 2.0); // race-to-idle
    }

    #[test]
    fn narrow_noc_throttles_frame_pipelines() {
        let g = edge_detection(); // megabyte transfers
        let mut narrow = baseline();
        narrow.noc_bus_width = 4;
        narrow.noc_freq_mhz = 100;
        narrow.mem_bus_width = 4;
        narrow.mem_freq_mhz = 100;
        let c_narrow = evaluate(&narrow, &g).unwrap();
        let c_wide = evaluate(&baseline(), &g).unwrap();
        assert!(
            c_narrow.latency_ms > c_wide.latency_ms * 3.0,
            "narrow {} vs wide {}",
            c_narrow.latency_ms,
            c_wide.latency_ms
        );
    }

    #[test]
    fn unrolling_semantics() {
        let mut cfg = baseline();
        cfg.unrolling_type = 0;
        assert_eq!(cfg.unroll(), 1);
        cfg.unrolling_type = 1;
        cfg.unroll_arith = 9;
        assert_eq!(cfg.unroll(), 9);
        cfg.unrolling_type = 2;
        assert_eq!(cfg.unroll(), 16);
        cfg.unrolling_type = 3;
        assert_eq!(cfg.unroll(), 16);
        // GPPs cap their exploitable unrolling.
        cfg.pe_kind = PeKind::Gpp;
        cfg.unroll_geom = 1 << 17;
        assert_eq!(cfg.unroll_speedup(), 4.0);
        cfg.pe_kind = PeKind::Accelerator;
        assert_eq!(cfg.unroll_speedup(), 32.0);
    }

    #[test]
    fn more_pes_help_parallel_stages() {
        let g = edge_detection(); // sobel_x ∥ sobel_y
        let mut one = baseline();
        one.pe_count = 1;
        let mut three = baseline();
        three.pe_count = 3;
        let c_one = evaluate(&one, &g).unwrap();
        let c_three = evaluate(&three, &g).unwrap();
        assert!(c_three.latency_ms <= c_one.latency_ms);
        assert!(c_three.area_mm2 > c_one.area_mm2);
    }

    #[test]
    fn sram_memory_cuts_transfer_energy_but_costs_area() {
        let g = edge_detection();
        let mut dram = baseline();
        dram.mem_kind = MemKind::Dram;
        let c_dram = evaluate(&dram, &g).unwrap();
        let c_sram = evaluate(&baseline(), &g).unwrap();
        assert!(c_sram.area_mm2 > c_dram.area_mm2);
        // Same speed settings: SRAM saves transfer energy.
        assert!(c_sram.energy_mj < c_dram.energy_mj * 1.2);
    }

    #[test]
    fn infeasible_display() {
        assert!(SocInfeasible::NoPes.to_string().contains("zero processing"));
    }

    mod properties {
        use super::*;
        use crate::env::soc_space;
        use crate::taskgraph::audio_decoder;
        use archgym_core::seeded_rng;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn prop_feasible_allocations_respect_physical_floors(seed in 0u64..10_000) {
                let space = soc_space();
                let mut rng = seeded_rng(seed);
                let action = space.sample(&mut rng);
                let cfg = crate::soc::decode_config(&space, &action).unwrap();
                let g = audio_decoder();
                if let Ok(cost) = evaluate(&cfg, &g) {
                    // The makespan can never beat total ops over the peak
                    // aggregate compute rate.
                    let peak_rate = match cfg.pe_kind {
                        PeKind::Gpp => GPP_IPC,
                        PeKind::Accelerator => ACCEL_IPC,
                    } * cfg.pe_freq_mhz as f64
                        * 1e6
                        * cfg.unroll_speedup()
                        * cfg.pe_count as f64
                        * 16.0; // max accel_speedup headroom
                    let floor_ms = g.total_ops() / peak_rate * 1e3;
                    prop_assert!(cost.latency_ms >= floor_ms * 0.99);
                    // Power includes at least the static floor.
                    let static_floor = pe_static_mw(cfg.pe_kind) * cfg.pe_count as f64;
                    prop_assert!(cost.power_mw >= static_floor);
                    prop_assert!(cost.area_mm2 > 0.0);
                    prop_assert!(cost.energy_mj > 0.0);
                } else {
                    prop_assert!(
                        cfg.pe_count == 0 || cfg.noc_count == 0 || cfg.mem_count == 0,
                        "feasible allocation rejected"
                    );
                }
            }
        }
    }
}
