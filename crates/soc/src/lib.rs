//! # archgym-soc — FARSIGym
//!
//! An AR/VR SoC design-space-exploration environment for ArchGym,
//! standing in for the FARSI early-stage roofline simulator used by the
//! paper.
//!
//! A workload is a **task dependency graph** (audio decoding, edge
//! detection — the AR/VR pipelines of Table 3); a design is an allocation
//! of processing elements, NoC buses and memories with type, frequency,
//! count, bus width and unrolling knobs — the 13 parameters of Fig. 3(c).
//! A list scheduler maps tasks to PE instances and edge transfers to
//! NoC/memory channels; the outputs are `<power, performance, area>` and
//! the reward is the negated *distance to budget*
//! `Σ_m α·max(0, (D_m − B_m)/B_m)` of Table 3.
//!
//! # Example
//!
//! ```
//! use archgym_core::prelude::*;
//! use archgym_soc::{SocEnv, SocWorkload};
//!
//! let mut env = SocEnv::new(SocWorkload::EdgeDetection);
//! let mut rng = archgym_core::seeded_rng(5);
//! let action = env.space().sample(&mut rng);
//! let result = env.step(&action);
//! assert_eq!(result.observation.len(), 3); // <power, latency, area>
//! assert!(result.reward <= 0.0); // distance-to-budget is non-positive
//! ```

pub mod env;
pub mod soc;
pub mod taskgraph;

pub use env::{soc_space, SocEnv, SocWorkload};
pub use soc::{
    decode_config, evaluate, MemKind, PeKind, SocConfig, SocCost, SocEvaluator, SocInfeasible,
};
pub use taskgraph::{Task, TaskGraph};
