//! The CLI subcommands. Each returns its report as a `String` so the
//! logic is unit-testable; the binary just prints it.

use crate::args::Args;
use crate::spec::{known_envs, make_env};
use archgym_agents::factory::{build_agent, default_grid, race_roster, AgentKind};
use archgym_core::env::Environment;
use archgym_core::error::{ArchGymError, Result};
use archgym_core::fault::{FaultPlan, FaultStats, FaultyEnv};
use archgym_core::race::{lane_journal, Race, RaceLane};
use archgym_core::screen::ScreenPolicy;
use archgym_core::search::{RetryPolicy, RunConfig, RunResult, SearchLoop};
use archgym_core::seeded_rng;
use archgym_core::stats::summarize;
use archgym_core::telemetry::Recorder;
use archgym_core::trajectory::Dataset;
use std::fmt::Write as _;
use std::fs::File;
use std::sync::{Arc, Mutex};

/// Dispatch a parsed command line.
///
/// # Errors
///
/// Returns [`ArchGymError::InvalidConfig`] for unknown subcommands and
/// propagates each subcommand's errors.
pub fn run(args: &Args) -> Result<String> {
    match args.command() {
        "list" => Ok(list()),
        "search" => search(args),
        "compare" => compare(args),
        "sweep" => sweep(args),
        "halving" => halving(args),
        "trace" => trace(args),
        "proxy" => proxy(args),
        "serve" => serve(args),
        "submit" => submit(args),
        "status" => status(args),
        "watch" => watch(args),
        "cancel" => cancel(args),
        "ping" => ping(args),
        "shutdown" => shutdown(args),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(ArchGymError::InvalidConfig(format!(
            "unknown subcommand `{other}`\n\n{}",
            usage()
        ))),
    }
}

/// The help text.
pub fn usage() -> String {
    "archgym — ML-assisted architecture design space exploration

USAGE:
  archgym list
  archgym search --env <spec> --agent <aco|bo|ga|rl|rw|sa> [--objective <spec>]
                 [--budget N] [--seed N] [--batch N] [--jobs N] [--dataset out.jsonl] [--csv out.csv]
                 [--journal run.jsonl] [--resume true] [--retries N] [--backoff-ms N]
                 [--fault-seed N] [--fault-transient P] [--fault-latched P]
                 [--fault-corrupt P] [--fault-stall P]
                 [--proxy true] [--proxy-topk N] [--proxy-explore F] [--proxy-oversample N]
                 [--proxy-warmup N] [--proxy-refit N] [--proxy-revalidate N]
                 [--metrics out.json] [--trace out.jsonl] [--target R]
  archgym search --auto true --env <spec> [--objective <spec>] [--budget N] [--seed N]
                 [--batch N] [--jobs N] [--eta N] [--roster-cap N] [--ensemble true]
                 [--agents aco,ga,...] [--target R] [--journal PREFIX] [--resume true]
                 [--retries N] [--backoff-ms N] [--proxy true ...]
                 [--metrics out.json] [--trace out.jsonl]
  archgym compare --env <spec> [--agents aco,ga,sa,...] [--objective <spec>]
                 [--budget N] [--seed N] [--batch N] [--jobs N] [--retries N] [--backoff-ms N]
                 [--proxy true] [--proxy-topk N] [--proxy-explore F]
                 [--metrics out.json] [--trace out.jsonl]
  archgym sweep  --env <spec> --agent <kind> [--objective <spec>] [--budget N] [--seeds N] [--grid N] [--jobs N] [--cache true]
                 [--metrics out.json] [--trace out.jsonl]
  archgym halving --env <spec> --agent <kind> [--objective <spec>] [--budget N] [--eta N] [--jobs N] [--cache true]
  archgym trace  --workload <stream|random|cloud-1|cloud-2> [--length N] [--seed N] [--out file] [--stats true]
  archgym proxy  --dataset in.jsonl --metric N [--search N] [--seed N]
  archgym serve  [--addr HOST:PORT] [--state-dir DIR] [--workers N] [--port-file PATH]
                 [--max-running N] [--max-queued N] [--queue-capacity N] [--retry-after-ms MS]
                 [--durability none|batch|always] [--max-connections N] [--stall-after-ms MS]
  archgym submit --addr HOST:PORT --env <spec> [--kind search|sweep|compare|race] [--tenant NAME]
                 [--name JOB] [--agent <kind>] [--agents a,b,...] [--objective <spec>]
                 [--budget N] [--seed N] [--batch N] [--jobs N] [--seeds N] [--deadline-ms MS]
                 [--race-eta N] [--race-cap N] [--race-ensemble true]
                 [--proxy true] [--proxy-topk N] [--proxy-explore F]
  archgym status --addr HOST:PORT --job job-N
  archgym watch  --addr HOST:PORT --job job-N [--reconnect-attempts N] [--seed N]
  archgym cancel --addr HOST:PORT --job job-N
  archgym ping   --addr HOST:PORT
  archgym shutdown --addr HOST:PORT [--drain true] [--drain-deadline-ms MS]

For `sweep`/`halving`, `--jobs N` fans independent runs over N worker
threads (default: all cores; 1 = serial). For `search`/`compare`,
`--jobs N` fans each proposed batch across N environment replicas
inside a single run, and `--batch 0` lets the agent pick its natural
batch (GA population, ACO ant cohort). Results are deterministic and
bit-identical regardless of thread count.
`--cache true` memoizes design-point evaluations in a shared in-memory
cache, so configurations revisited by any run cost a hash lookup instead
of a simulation; results are identical with or without it.

TELEMETRY:
`--metrics FILE` enables the run recorder and writes a JSON snapshot of
every counter (samples, retries, cache traffic, DRAM row outcomes) and
per-phase latency histogram (p50/p95/p99) to FILE; the same data is
printed as a table. For `compare`, FILE holds per-agent stable counters
that are byte-identical across reruns and `--jobs` settings. `--trace
FILE` streams one JSON object per settled batch to FILE as the run
executes. Without either flag the recorder is a no-op and costs nothing.

RACING:
`search --auto true` skips picking an agent: it launches the full
agent × hyperparameter roster (up to `--roster-cap N` tickets per
family, default 4, from the lottery grids of aco|bo|ga|rl|sa|ppo) as
concurrent lanes on one `--budget` and eliminates the weakest
`1 - 1/eta` of lanes at successive-halving rung boundaries (`--eta N`,
default 3) until one survives; freed `--jobs` workers are reallocated
to the survivors. `--ensemble true` keeps the final rung's survivors
and races them as a reward-weighted voting committee instead of
eliminating down to one. `--agents a,b,...` restricts the roster to
those families; `--target R` reports how many true evaluations the
race needed to first reach reward R. With `--journal PREFIX` every
lane's every rung is write-ahead journaled (`PREFIX-lNNN-rNN.jsonl`);
rerunning with `--resume true` after a crash replays the finished
prefix and continues, bit-identical to an uninterrupted race. Races
compose with `--proxy` (each lane gets its own screener) and are
deterministic per seed regardless of `--jobs`.

PROXY SCREENING:
`--proxy true` puts a random-forest surrogate in the loop: after
`--proxy-warmup N` true samples (default 64) the proxy trains on the
run's own results, each proposal batch is over-sampled by
`--proxy-oversample N` (default 4), and only the `--proxy-topk N`
(default 4) candidates with the best predicted reward — plus an
exploration slice of `ceil(--proxy-explore F × topk)` high-uncertainty
picks (default 0.25) — are admitted to the true simulator. The model
refits every `--proxy-refit N` new samples (default 32); every
`--proxy-revalidate N`-th screened batch (default 8) bypasses the
screen to measure drift, which triggers refits and, if persistent,
disables screening. Screened runs are deterministic per seed and
journal/resume-safe; runs without `--proxy` are bit-identical to
builds without the feature.

FAILURE SEMANTICS:
Failed evaluations are retried up to `--retries N` times (default 2)
with exponential backoff starting at `--backoff-ms N` (default 0, i.e.
immediate); a design that keeps failing degrades to an infeasible
penalty instead of aborting the run. `search --journal run.jsonl`
write-ahead-logs every proposed batch and settled result; after a crash
or SIGKILL, rerunning the same command with `--resume true` replays the
journal and continues from the last completed evaluation, bit-identical
to an uninterrupted run. The `--fault-*` knobs inject seeded,
deterministic faults (transient errors, latched crashes needing reset,
NaN corruption, timeouts) for testing resilience.

ENVIRONMENT SPECS:
  dram/<trace>            objectives: power:<W> latency:<ns> joint:<ns>,<W>
  timeloop/<model>        objectives: latency:<ms> energy:<mJ> area:<mm2> joint:<ms>,<mJ>
  farsi/<workload>        objectives: budgets:<ms>,<mW>,<mm2> (default: built-in budgets)
  maestro/<model>/<layer> objectives: runtime energy
"
    .to_owned()
}

fn list() -> String {
    let mut out = String::from("environments:\n");
    for spec in known_envs() {
        let _ = writeln!(out, "  {spec}");
    }
    out.push_str("\nagents:\n");
    for kind in AgentKind::EXTENDED {
        let _ = writeln!(
            out,
            "  {:<4} (default grid: {} assignments)",
            kind.name(),
            default_grid(kind).len()
        );
    }
    out
}

/// A clonable trace sink: several recorders (one per `compare` roster
/// entry) append whole lines to the same `--trace` file.
#[derive(Clone)]
struct SharedSink(Arc<Mutex<File>>);

impl SharedSink {
    fn create(path: &str) -> Result<Self> {
        Ok(SharedSink(Arc::new(Mutex::new(File::create(path)?))))
    }
}

impl std::io::Write for SharedSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("trace sink poisoned").write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.0.lock().expect("trace sink poisoned").flush()
    }
}

/// The `--metrics`/`--trace` observability knobs: a live recorder when
/// either flag is present (with the JSONL event sink already attached),
/// `None` — i.e. free no-op telemetry — otherwise.
fn telemetry_sink(args: &Args) -> Result<Option<Recorder>> {
    if args.get("metrics").is_none() && args.get("trace").is_none() {
        return Ok(None);
    }
    let rec = Recorder::new();
    if let Some(path) = args.get("trace") {
        rec.set_trace(SharedSink::create(path)?);
    }
    Ok(Some(rec))
}

/// Write the recorder's snapshot to `--metrics FILE` (canonical JSON) and
/// append the human-readable table plus file pointers to the report.
fn write_metrics(out: &mut String, args: &Args, rec: &Recorder) -> Result<()> {
    if let Some(report) = rec.report() {
        if let Some(path) = args.get("metrics") {
            std::fs::write(path, report.encode() + "\n")?;
            let _ = writeln!(out, "telemetry:\n{}", report.human_table());
            let _ = writeln!(out, "metrics: {path}");
        }
    }
    if let Some(path) = args.get("trace") {
        let _ = writeln!(out, "trace: {path}");
    }
    Ok(())
}

/// The `--retries`/`--backoff-ms` knobs shared by `search` and `compare`.
fn retry_policy(args: &Args) -> Result<RetryPolicy> {
    Ok(RetryPolicy::new(args.u64_or("retries", 2)? as u32)
        .backoff_ms(args.u64_or("backoff-ms", 0)?))
}

/// The `--fault-*` injection knobs: `None` when every rate is zero.
fn fault_plan(args: &Args, default_seed: u64) -> Result<Option<FaultPlan>> {
    let rates = [
        ("fault-transient", args.f64_or("fault-transient", 0.0)?),
        ("fault-latched", args.f64_or("fault-latched", 0.0)?),
        ("fault-corrupt", args.f64_or("fault-corrupt", 0.0)?),
        ("fault-stall", args.f64_or("fault-stall", 0.0)?),
    ];
    for (name, rate) in rates {
        if !(0.0..=1.0).contains(&rate) {
            return Err(ArchGymError::InvalidConfig(format!(
                "`--{name}` expects a probability in [0, 1], got `{rate}`"
            )));
        }
    }
    if rates.iter().all(|&(_, rate)| rate == 0.0) {
        return Ok(None);
    }
    let seed = args.u64_or("fault-seed", default_seed)?;
    Ok(Some(
        FaultPlan::new(seed)
            .transient(rates[0].1)
            .latched(rates[1].1)
            .corrupt(rates[2].1)
            .stall(rates[3].1),
    ))
}

/// The `--proxy*` screening knobs: `Some(policy)` when `--proxy true`.
/// Knob flags without `--proxy true` are an error, not silently inert.
fn screen_policy(args: &Args) -> Result<Option<ScreenPolicy>> {
    let knobs = [
        "proxy-topk",
        "proxy-explore",
        "proxy-oversample",
        "proxy-warmup",
        "proxy-refit",
        "proxy-revalidate",
    ];
    if !args.bool_or("proxy", false)? {
        if let Some(name) = knobs.iter().find(|name| args.get(name).is_some()) {
            return Err(ArchGymError::InvalidConfig(format!(
                "`--{name}` needs `--proxy true`"
            )));
        }
        return Ok(None);
    }
    let defaults = ScreenPolicy::default();
    let policy = ScreenPolicy::default()
        .top_k(args.u64_or("proxy-topk", defaults.top_k as u64)? as usize)
        .explore_frac(args.f64_or("proxy-explore", defaults.explore_frac)?)
        .oversample(args.u64_or("proxy-oversample", defaults.oversample as u64)? as usize)
        .warmup(args.u64_or("proxy-warmup", defaults.warmup)?)
        .refit_every(args.u64_or("proxy-refit", defaults.refit_every)?)
        .revalidate_every(args.u64_or("proxy-revalidate", defaults.revalidate_every)?);
    policy.validate().map_err(ArchGymError::InvalidConfig)?;
    Ok(Some(policy))
}

/// Append the proxy layer's accounting to a report when it screened.
fn write_proxy_line(out: &mut String, result: &RunResult) {
    if result.proxy_screened > 0 {
        let _ = writeln!(
            out,
            "proxy: {} candidates screened | {} admitted to simulation | {} model fits",
            result.proxy_screened, result.proxy_admitted, result.proxy_refits
        );
    }
}

/// The `--journal`/`--resume` knobs. Refuses to silently extend an
/// existing journal unless resuming was requested explicitly.
fn journal_path(args: &Args) -> Result<Option<String>> {
    let resume = args.bool_or("resume", false)?;
    match args.get("journal") {
        Some(path) => {
            if !resume && std::path::Path::new(path).exists() {
                return Err(ArchGymError::InvalidConfig(format!(
                    "journal `{path}` already exists; pass `--resume true` to \
                     continue it or remove the file to start fresh"
                )));
            }
            Ok(Some(path.to_owned()))
        }
        None if resume => Err(ArchGymError::InvalidConfig(
            "`--resume true` needs `--journal <path>`".into(),
        )),
        None => Ok(None),
    }
}

/// Append the run's fault-recovery counters to a report, if any fired.
fn write_fault_lines(out: &mut String, result: &RunResult, injected: Option<&FaultStats>) {
    if result.eval_failures > 0 || result.eval_retries > 0 || result.degraded_samples > 0 {
        let _ = writeln!(
            out,
            "fault recovery: {} failures observed | {} retries | {} samples degraded",
            result.eval_failures, result.eval_retries, result.degraded_samples
        );
    }
    if let Some(stats) = injected {
        let _ = writeln!(
            out,
            "injected faults: {} transient | {} latched | {} corrupt | {} stall | {} crashed rejections",
            stats.transient, stats.latched, stats.corrupt, stats.stall, stats.crashed_rejections
        );
    }
}

fn search(args: &Args) -> Result<String> {
    if args.bool_or("auto", false)? {
        return search_auto(args);
    }
    // Racing knobs without `--auto true` are an error, not silently inert
    // (mirrors the `--proxy` knob guard above).
    for name in ["eta", "roster-cap", "ensemble"] {
        if args.get(name).is_some() {
            return Err(ArchGymError::InvalidConfig(format!(
                "`--{name}` needs `--auto true`"
            )));
        }
    }
    let env = make_env(args.require("env")?, args.get("objective"))?;
    let kind = AgentKind::parse(args.require("agent")?)?;
    let budget = args.u64_or("budget", 1_000)?;
    let seed = args.u64_or("seed", 0)?;
    let batch = args.u64_or("batch", 16)? as usize;
    let jobs = args.u64_or("jobs", 1)? as usize;
    let plan = fault_plan(args, seed)?;
    let journal = journal_path(args)?;
    let telemetry = telemetry_sink(args)?;
    let mut screener = match screen_policy(args)? {
        Some(policy) => Some(archgym_proxy::OnlineProxy::with_defaults(policy, seed)?),
        None => None,
    };
    let mut agent = build_agent(kind, env.space(), &Default::default(), seed)?;
    let config = RunConfig::with_budget(budget)
        .batch(batch)
        .jobs(jobs)
        .retry(retry_policy(args)?);
    let mut driver = SearchLoop::new(config);
    if let Some(rec) = &telemetry {
        driver = driver.with_telemetry(rec.clone());
    }
    let (result, injected) = match plan {
        Some(plan) => {
            let faulty = FaultyEnv::new(env.clone(), plan);
            // Clones share fault counters, so this handle sees the run's.
            let stats_handle = faulty.clone();
            let result = match (&journal, screener.as_mut()) {
                (Some(path), Some(s)) => {
                    driver.run_screened_resumable_pooled(&mut agent, faulty, s, path)?
                }
                (Some(path), None) => driver.run_resumable_pooled(&mut agent, faulty, path)?,
                (None, Some(s)) => driver.run_screened_pooled(&mut agent, faulty, s),
                (None, None) => driver.run_pooled(&mut agent, faulty),
            };
            (result, Some(stats_handle.stats()))
        }
        None => {
            let result = match (&journal, screener.as_mut()) {
                (Some(path), Some(s)) => {
                    driver.run_screened_resumable_pooled(&mut agent, env.clone(), s, path)?
                }
                (Some(path), None) => driver.run_resumable_pooled(&mut agent, env.clone(), path)?,
                (None, Some(s)) => driver.run_screened_pooled(&mut agent, env.clone(), s),
                (None, None) => driver.run_pooled(&mut agent, env.clone()),
            };
            (result, None)
        }
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} on {}: {} samples in {:.2}s",
        result.agent, result.env, result.samples_used, result.wall_seconds
    );
    let _ = writeln!(out, "best reward: {:.6}", result.best_reward);
    let labels = env.observation_labels();
    for (label, value) in labels.iter().zip(&result.best_observation) {
        let _ = writeln!(out, "  {label:<20} = {value:.6}");
    }
    let _ = writeln!(out, "best design:");
    for (name, value) in env.space().decode(&result.best_action)? {
        let _ = writeln!(out, "  {name:<34} = {value}");
    }
    write_target_line(&mut out, args, |t| result.samples_to_reach(t))?;
    write_fault_lines(&mut out, &result, injected.as_ref());
    write_proxy_line(&mut out, &result);
    if let Some(path) = &journal {
        let _ = writeln!(out, "journal: {path}");
    }
    if let Some(path) = args.get("dataset") {
        result.dataset.write_jsonl(File::create(path)?)?;
        let _ = writeln!(out, "wrote {} transitions to {path}", result.dataset.len());
    }
    if let Some(path) = args.get("csv") {
        result.dataset.write_csv(File::create(path)?)?;
        let _ = writeln!(out, "wrote {} transitions to {path}", result.dataset.len());
    }
    if let Some(rec) = &telemetry {
        write_metrics(&mut out, args, rec)?;
    }
    Ok(out)
}

/// The `--target R` knob: report how many true evaluations a run needed
/// to first reach reward `R` (the wall-clock-to-target metric of the
/// racing experiments), or that it never got there.
fn write_target_line(
    out: &mut String,
    args: &Args,
    samples_to_reach: impl Fn(f64) -> Option<u64>,
) -> Result<()> {
    if args.get("target").is_none() {
        return Ok(());
    }
    let threshold = args.f64_or("target", 0.0)?;
    match samples_to_reach(threshold) {
        Some(n) => {
            let _ = writeln!(out, "samples to target {threshold}: {n}");
        }
        None => {
            let _ = writeln!(out, "target {threshold} not reached");
        }
    }
    Ok(())
}

/// `search --auto true`: race the full agent × hyperparameter roster
/// under one budget with successive-halving elimination
/// ([`archgym_core::race`]) instead of committing to a single `--agent`.
fn search_auto(args: &Args) -> Result<String> {
    if args.get("agent").is_some() {
        return Err(ArchGymError::InvalidConfig(
            "`--agent` conflicts with `--auto true` (the race runs the full \
             roster; restrict families with `--agents aco,ga,...`)"
                .into(),
        ));
    }
    let env = make_env(args.require("env")?, args.get("objective"))?;
    let budget = args.u64_or("budget", 1_000)?;
    let seed = args.u64_or("seed", 0)?;
    let batch = args.u64_or("batch", 16)? as usize;
    let jobs = args.u64_or("jobs", 1)? as usize;
    let eta = args.u64_or("eta", 3)? as usize;
    if eta < 2 {
        return Err(ArchGymError::InvalidConfig(format!(
            "`--eta` must be at least 2, got `{eta}`"
        )));
    }
    let cap = args.u64_or("roster-cap", 4)? as usize;
    let ensemble = args.bool_or("ensemble", false)?;
    let telemetry = telemetry_sink(args)?;
    let policy = screen_policy(args)?;

    let mut roster = race_roster(cap);
    if let Some(list) = args.get("agents") {
        let kinds: Vec<AgentKind> = list
            .split(',')
            .map(|name| AgentKind::parse(name.trim()))
            .collect::<Result<_>>()?;
        roster.retain(|entry| kinds.contains(&entry.kind));
        if roster.is_empty() {
            return Err(ArchGymError::InvalidConfig(
                "`--agents` filtered out every race lane (the roster races \
                 aco|bo|ga|rl|sa|ppo)"
                    .into(),
            ));
        }
    }
    let mut lanes = Vec::with_capacity(roster.len());
    for entry in &roster {
        let mut lane = RaceLane::new(
            entry.name.clone(),
            build_agent(entry.kind, env.space(), &entry.hyper, seed)?,
        );
        if let Some(policy) = policy {
            lane = lane.screened(Box::new(archgym_proxy::OnlineProxy::with_defaults(
                policy, seed,
            )?));
        }
        lanes.push(lane);
    }

    // `--journal` names a *prefix* here: the race writes one journal per
    // lane per rung (`{prefix}-lNNN-rNN.jsonl`). Same refusal semantics
    // as plain search: an existing race journal needs `--resume true`.
    let resume = args.bool_or("resume", false)?;
    let journal_prefix = match args.get("journal") {
        Some(path) => {
            let prefix = std::path::PathBuf::from(path);
            if !resume && lane_journal(&prefix, 0, 0).exists() {
                return Err(ArchGymError::InvalidConfig(format!(
                    "race journal prefix `{path}` already has lane files; pass \
                     `--resume true` to continue or remove them to start fresh"
                )));
            }
            Some(prefix)
        }
        None if resume => {
            return Err(ArchGymError::InvalidConfig(
                "`--resume true` needs `--journal <prefix>`".into(),
            ))
        }
        None => None,
    };

    let mut race = Race::new(budget, eta)
        .batch(batch)
        .jobs(jobs)
        .ensemble(ensemble)
        .retry(retry_policy(args)?);
    if let Some(rec) = &telemetry {
        race = race.with_telemetry(rec.clone());
    }
    if let Some(prefix) = &journal_prefix {
        race = race.with_journal_prefix(prefix.clone());
    }
    let result = race.run(lanes, env.clone())?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "race on {}: {} lanes (eta {eta}), {} samples in {:.2}s",
        result.env,
        result.lanes.len(),
        result.samples_used,
        result.wall_seconds
    );
    for rung in &result.rungs {
        let _ = writeln!(
            out,
            "  rung {}: {} lanes × {} samples/lane ({} workers/lane), eliminated {}",
            rung.rung,
            rung.lanes,
            rung.slice,
            rung.workers_per_lane,
            rung.eliminated.len()
        );
    }
    if let Some(ensemble) = &result.ensemble {
        let members: Vec<&str> = ensemble
            .members
            .iter()
            .map(|&lane| result.lanes[lane].name.as_str())
            .collect();
        let _ = writeln!(
            out,
            "  ensemble rung: {} voting on {} samples (best {:.6})",
            members.join("+"),
            ensemble.samples_used,
            ensemble.best_reward
        );
    }
    let _ = writeln!(out, "winner: {}", result.winner);
    let _ = writeln!(out, "best reward: {:.6}", result.best_reward);
    let labels = env.observation_labels();
    for (label, value) in labels.iter().zip(&result.best_observation) {
        let _ = writeln!(out, "  {label:<20} = {value:.6}");
    }
    let _ = writeln!(out, "best design:");
    for (name, value) in env.space().decode(&result.best_action)? {
        let _ = writeln!(out, "  {name:<34} = {value}");
    }
    write_target_line(&mut out, args, |t| result.samples_to_reach(t))?;
    if let Some(prefix) = &journal_prefix {
        let _ = writeln!(out, "journal prefix: {}", prefix.display());
    }
    if let Some(rec) = &telemetry {
        if let Some(report) = rec.report() {
            if let Some(path) = args.get("metrics") {
                // Stable counters only (no timings, no job-dependent cache
                // traffic): the file is byte-identical across reruns and
                // `--jobs` settings, same discipline as `compare`.
                std::fs::write(path, report.stable_json() + "\n")?;
                let _ = writeln!(out, "telemetry:\n{}", report.human_table());
                let _ = writeln!(out, "metrics: {path}");
            }
        }
        if let Some(path) = args.get("trace") {
            let _ = writeln!(out, "trace: {path}");
        }
    }
    Ok(out)
}

/// Race several agents on one environment under a shared sample budget
/// and report a leaderboard (paper §6: no single agent dominates).
fn compare(args: &Args) -> Result<String> {
    let env = make_env(args.require("env")?, args.get("objective"))?;
    let budget = args.u64_or("budget", 500)?;
    let seed = args.u64_or("seed", 0)?;
    let batch = args.u64_or("batch", 0)? as usize;
    let jobs = args.u64_or("jobs", 1)? as usize;
    let kinds: Vec<AgentKind> = match args.get("agents") {
        None => AgentKind::EXTENDED.to_vec(),
        Some(list) => list
            .split(',')
            .map(|name| AgentKind::parse(name.trim()))
            .collect::<Result<_>>()?,
    };
    let config = RunConfig::with_budget(budget)
        .batch(batch)
        .record(false)
        .jobs(jobs)
        .retry(retry_policy(args)?);
    let batch_label = if batch == 0 {
        "auto".to_owned()
    } else {
        batch.to_string()
    };
    let observe = args.get("metrics").is_some() || args.get("trace").is_some();
    let trace_sink = match args.get("trace") {
        Some(path) => Some(SharedSink::create(path)?),
        None => None,
    };
    let policy = screen_policy(args)?;
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for kind in &kinds {
        let mut agent = build_agent(*kind, env.space(), &Default::default(), seed)?;
        let mut driver = SearchLoop::new(config.clone());
        // Each roster entry gets its own recorder so the metrics file
        // breaks counters down per agent; the trace sink is shared.
        let rec = observe.then(Recorder::new);
        if let Some(rec) = &rec {
            if let Some(sink) = &trace_sink {
                rec.set_trace(sink.clone());
            }
            driver = driver.with_telemetry(rec.clone());
        }
        // Under `--proxy` every roster entry gets its own fresh screener
        // (same policy, same seed) so the race stays apples-to-apples.
        let result = match policy {
            Some(policy) => {
                let mut screener = archgym_proxy::OnlineProxy::with_defaults(policy, seed)?;
                driver.run_screened_pooled(&mut agent, env.clone(), &mut screener)
            }
            None => driver.run_pooled(&mut agent, env.clone()),
        };
        if let Some(report) = rec.as_ref().and_then(Recorder::report) {
            reports.push((kind.name().to_owned(), report));
        }
        rows.push((kind.name().to_owned(), result));
    }
    rows.sort_by(|a, b| {
        b.1.best_reward
            .partial_cmp(&a.1.best_reward)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} agents on {} ({budget} samples each, batch {batch_label}, jobs {jobs}):",
        rows.len(),
        env.name(),
    );
    for (rank, (name, result)) in rows.iter().enumerate() {
        let mut recovery = String::new();
        if result.eval_failures > 0 || result.degraded_samples > 0 {
            recovery = format!(
                " | {} failures / {} retries / {} degraded",
                result.eval_failures, result.eval_retries, result.degraded_samples
            );
        }
        if result.proxy_screened > 0 {
            let _ = write!(
                recovery,
                " | proxy {}→{}",
                result.proxy_screened, result.proxy_admitted
            );
        }
        let _ = writeln!(
            out,
            "  {:>2}. {name:<4} best {:.6} | {:>6} samples | {:.2}s{recovery}",
            rank + 1,
            result.best_reward,
            result.samples_used,
            result.wall_seconds
        );
    }
    if let Some(path) = args.get("metrics") {
        // Per-agent *stable* counters only (no timings, no job-dependent
        // cache traffic), keyed in roster-name order: the file is
        // byte-identical across reruns and `--jobs` settings.
        reports.sort_by(|a, b| a.0.cmp(&b.0));
        let mut body = String::from("{\"agents\":{");
        for (i, (name, report)) in reports.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            archgym_core::codec::push_json_str(&mut body, name);
            body.push(':');
            body.push_str(&report.stable_json());
        }
        body.push_str("}}\n");
        std::fs::write(path, body)?;
        let _ = writeln!(out, "metrics: {path}");
    }
    if let Some(path) = args.get("trace") {
        let _ = writeln!(out, "trace: {path}");
    }
    Ok(out)
}

fn sweep(args: &Args) -> Result<String> {
    use archgym_core::agent::HyperMap;
    use archgym_core::cache::EvalCache;
    use archgym_core::sweep::Sweep;
    use std::sync::Arc;
    let env_spec = args.require("env")?.to_owned();
    let objective = args.get("objective").map(str::to_owned);
    let kind = AgentKind::parse(args.require("agent")?)?;
    let budget = args.u64_or("budget", 500)?;
    let seeds = args.u64_or("seeds", 2)?;
    let grid_cap = args.u64_or("grid", 9)? as usize;
    let jobs = args.u64_or("jobs", 0)? as usize;
    let use_cache = args.bool_or("cache", false)?;

    // Build the environment once; the factory clones it per run, so a
    // bad spec fails here with an error instead of panicking mid-sweep.
    let proto = make_env(&env_spec, objective.as_deref())?;
    let space = proto.space().clone();

    let telemetry = telemetry_sink(args)?;
    let assignments: Vec<HyperMap> = default_grid(kind).iter().take(grid_cap).collect();
    let mut sweep = Sweep::new(RunConfig::with_budget(budget).record(false))
        .seeds(0..seeds)
        .jobs(jobs);
    if let Some(rec) = &telemetry {
        sweep = sweep.telemetry(rec);
    }
    let cache = use_cache.then(|| Arc::new(EvalCache::new()));
    if let Some(cache) = &cache {
        sweep = sweep.cache(cache.clone());
    }
    let result = sweep.run_assignments(
        kind.name(),
        &assignments,
        || proto.clone(),
        |hyper, seed| build_agent(kind, &space, hyper, seed),
    )?;
    let rewards = result.best_rewards();
    let stats = summarize(&rewards);
    let winner = result.winner();
    let (best_reward, winning) = (winner.result.best_reward, winner.hyper.summary());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} on {}: {} runs × {budget} samples",
        kind.name(),
        result.env,
        rewards.len()
    );
    let _ = writeln!(
        out,
        "best reward  min {:.4} | q1 {:.4} | median {:.4} | q3 {:.4} | max {:.4}",
        stats.min, stats.q1, stats.median, stats.q3, stats.max
    );
    let _ = writeln!(
        out,
        "IQR spread {:.1}% of max | winning ticket: {winning} (reward {best_reward:.4})",
        stats.relative_spread() * 100.0
    );
    if let Some(cache) = &cache {
        let s = cache.stats();
        let _ = writeln!(
            out,
            "cache: {} hits / {} lookups ({:.1}% hit rate, {} distinct designs)",
            s.hits,
            s.hits + s.misses,
            s.hit_rate() * 100.0,
            s.entries
        );
    }
    if let Some(rec) = &telemetry {
        write_metrics(&mut out, args, rec)?;
    }
    Ok(out)
}

fn halving(args: &Args) -> Result<String> {
    use archgym_core::cache::EvalCache;
    use archgym_core::sweep::SuccessiveHalving;
    use std::sync::Arc;
    let env_spec = args.require("env")?.to_owned();
    let objective = args.get("objective").map(str::to_owned);
    let kind = AgentKind::parse(args.require("agent")?)?;
    let initial_budget = args.u64_or("budget", 64)?;
    let eta = args.u64_or("eta", 2)? as usize;
    let seed = args.u64_or("seed", 0)?;
    let jobs = args.u64_or("jobs", 0)? as usize;
    let use_cache = args.bool_or("cache", false)?;

    // Build the environment once; the factory clones it per run, so a
    // bad spec fails here with an error instead of panicking mid-tune.
    let proto = make_env(&env_spec, objective.as_deref())?;
    let space = proto.space().clone();

    let mut tuner = SuccessiveHalving::new(initial_budget, eta)
        .seed(seed)
        .jobs(jobs);
    let cache = use_cache.then(|| Arc::new(EvalCache::new()));
    if let Some(cache) = &cache {
        tuner = tuner.cache(cache.clone());
    }
    let result = tuner.run(
        kind.name(),
        &default_grid(kind),
        || proto.clone(),
        |hyper, seed| build_agent(kind, &space, hyper, seed),
    )?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} on {}: successive halving over {} assignments",
        result.agent,
        result.env,
        result.rounds.first().map_or(0, |r| r.survivors.len())
    );
    for (i, round) in result.rounds.iter().enumerate() {
        let best = round.survivors.first().map(|(_, r)| *r).unwrap_or(f64::NAN);
        let _ = writeln!(
            out,
            "  round {i}: {} candidates × {} samples, best reward {best:.4}",
            round.survivors.len(),
            round.budget
        );
    }
    let _ = writeln!(
        out,
        "winner: {} (reward {:.4})",
        result.winner_hyper.summary(),
        result.winner_result.best_reward
    );
    let _ = writeln!(
        out,
        "spent {} samples vs {} for a flat final-budget sweep ({:.1}× saving)",
        result.total_samples,
        result.flat_sweep_samples,
        result.savings_factor()
    );
    if let Some(cache) = &cache {
        let s = cache.stats();
        let _ = writeln!(
            out,
            "cache: {} hits / {} lookups ({:.1}% hit rate, {} distinct designs)",
            s.hits,
            s.hits + s.misses,
            s.hit_rate() * 100.0,
            s.entries
        );
    }
    Ok(out)
}

fn trace(args: &Args) -> Result<String> {
    use archgym_dram::{trace::generate, DramWorkload, TraceConfig};
    let name = args.require("workload")?;
    let workload = DramWorkload::ALL
        .into_iter()
        .find(|w| w.name() == name)
        .ok_or_else(|| ArchGymError::InvalidConfig(format!("unknown workload `{name}`")))?;
    let config = TraceConfig {
        length: args.u64_or("length", 1_000)? as usize,
        ..TraceConfig::default()
    };
    let seed = args.u64_or("seed", 0)?;
    let trace = generate(workload, &config, &mut seeded_rng(seed));
    let mut out = String::new();
    if args.get("stats").is_some() {
        let stats = archgym_dram::characterize(&trace);
        let _ = writeln!(out, "trace `{name}` ({} requests):", stats.requests);
        let _ = writeln!(out, "  write fraction     {:.3}", stats.write_fraction);
        let _ = writeln!(out, "  mean gap (cycles)  {:.2}", stats.mean_gap_cycles);
        let _ = writeln!(out, "  row-hit potential  {:.3}", stats.row_hit_potential);
        let _ = writeln!(out, "  banks touched      {}", stats.banks_touched);
        let _ = writeln!(out, "  unique 64B lines   {}", stats.unique_lines);
        return Ok(out);
    }
    match args.get("out") {
        Some(path) => {
            archgym_dram::write_trace(&trace, File::create(path)?)?;
            let _ = writeln!(out, "wrote {} requests to {path}", trace.len());
        }
        None => {
            let mut bytes = Vec::new();
            archgym_dram::write_trace(&trace, &mut bytes)?;
            out.push_str(
                &String::from_utf8(bytes).map_err(|_| {
                    ArchGymError::Io("trace renderer produced non-UTF-8 text".into())
                })?,
            );
        }
    }
    Ok(out)
}

fn proxy(args: &Args) -> Result<String> {
    use archgym_proxy::pipeline::train_proxy;
    let path = args.require("dataset")?;
    let metric = args.u64_or("metric", 0)? as usize;
    let search_budget = args.u64_or("search", 6)? as usize;
    let seed = args.u64_or("seed", 0)?;
    let dataset = Dataset::read_jsonl(File::open(path)?)?;
    let mut rng = seeded_rng(seed);
    let (train, test) = dataset.split(0.8, &mut rng);
    let model = train_proxy(&train, metric, search_budget, seed)?;
    let report = model.report(&test)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trained on {} transitions, evaluated on {}",
        train.len(),
        test.len()
    );
    let _ = writeln!(
        out,
        "metric {metric}: RMSE {:.6} ({:.3}% of mean) | correlation {:.4}",
        report.rmse,
        report.relative_rmse * 100.0,
        report.correlation
    );
    Ok(out)
}

// ---------------------------------------------------------------------
// archgymd daemon subcommands: `serve` hosts the service in-process;
// `submit`/`status`/`watch`/`cancel`/`ping` are thin protocol clients.

/// Shared `--addr` flag for the client subcommands.
fn daemon_addr(args: &Args) -> Result<&str> {
    args.require("addr")
}

/// Map a daemon `error` frame (or an unexpected frame) to a CLI error.
fn unexpected(response: archgymd::protocol::Response) -> ArchGymError {
    use archgymd::protocol::Response;
    match response {
        Response::Error {
            code,
            message,
            retry_after_ms,
        } => {
            let hint = retry_after_ms
                .map(|ms| format!(" (retry after {ms}ms)"))
                .unwrap_or_default();
            ArchGymError::InvalidConfig(format!("daemon error [{}]: {message}{hint}", code.name()))
        }
        other => {
            ArchGymError::InvalidConfig(format!("unexpected daemon reply: {}", other.to_line()))
        }
    }
}

fn parse_job_id(args: &Args) -> Result<archgym_core::jobs::JobId> {
    let text = args.require("job")?;
    archgym_core::jobs::JobId::parse(text).ok_or_else(|| {
        ArchGymError::InvalidConfig(format!("`--job` expects `job-N`, got `{text}`"))
    })
}

/// Render a status frame the same way `search` reports a finished run,
/// so scripts can diff the two (`best reward: ...` lines match).
fn render_status(status: &archgymd::protocol::JobStatus) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} ({}): {} | {} / {} samples",
        status.job,
        status.tenant,
        status.state.name(),
        status.samples,
        status.budget
    );
    if let Some(best) = status.best_reward {
        let _ = writeln!(out, "best reward: {best:.6}");
    }
    if let Some(error) = &status.error {
        let _ = writeln!(out, "error: {error}");
    }
    out
}

/// Run the daemon in the foreground until a `shutdown` request.
fn serve(args: &Args) -> Result<String> {
    use archgymd::server::{DaemonConfig, Server};
    let mut config = DaemonConfig::new(
        args.get("addr").unwrap_or("127.0.0.1:7170"),
        args.get("state-dir").unwrap_or("archgymd-state"),
    );
    config.workers = args.u64_or("workers", 2)? as usize;
    config.quota.max_running_per_tenant =
        args.u64_or("max-running", config.quota.max_running_per_tenant as u64)? as usize;
    config.quota.max_queued_per_tenant =
        args.u64_or("max-queued", config.quota.max_queued_per_tenant as u64)? as usize;
    config.quota.queue_capacity =
        args.u64_or("queue-capacity", config.quota.queue_capacity as u64)? as usize;
    config.quota.retry_after_ms = args.u64_or("retry-after-ms", config.quota.retry_after_ms)?;
    if let Some(value) = args.get("durability") {
        config.durability = archgym_core::storeio::Durability::parse(value).ok_or_else(|| {
            ArchGymError::InvalidConfig(format!(
                "`--durability` expects none|batch|always, got `{value}`"
            ))
        })?;
    }
    config.max_connections =
        args.u64_or("max-connections", config.max_connections as u64)? as usize;
    config.stall_after_ms = args.u64_or("stall-after-ms", config.stall_after_ms)?;
    let server = Server::bind(config)?;
    let addr = server.local_addr();
    if let Some(path) = args.get("port-file") {
        // Write-then-rename so pollers never observe a half-written file.
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, format!("{addr}\n"))?;
        std::fs::rename(&tmp, path)?;
    }
    // Print eagerly: the report string below is only shown on shutdown.
    println!("archgymd listening on {addr}");
    server.run()?;
    Ok(format!("archgymd on {addr} stopped\n"))
}

fn submit(args: &Args) -> Result<String> {
    use archgym_core::jobs::{JobKind, JobSpec};
    use archgymd::protocol::{Request, Response};
    let addr = daemon_addr(args)?;
    let kind = match args.get("kind").unwrap_or("search") {
        "search" => JobKind::Search,
        "sweep" => JobKind::Sweep,
        "compare" => JobKind::Compare,
        "race" => JobKind::Race,
        other => {
            return Err(ArchGymError::InvalidConfig(format!(
                "`--kind` expects search|sweep|compare|race, got `{other}`"
            )))
        }
    };
    // A race has no single agent — the daemon builds the full roster.
    let agent = match kind {
        JobKind::Race => "",
        _ => args.get("agent").unwrap_or("ga"),
    };
    let mut spec = JobSpec::search(
        args.require("env")?,
        agent,
        args.u64_or("budget", 1_000)?,
        args.u64_or("seed", 0)?,
    );
    spec.kind = kind;
    spec.race_eta = args.u64_or("race-eta", 0)? as usize;
    spec.race_cap = args.u64_or("race-cap", 0)? as usize;
    spec.race_ensemble = args.bool_or("race-ensemble", false)?;
    if let Some(objective) = args.get("objective") {
        spec.objective = objective.to_owned();
    }
    spec.batch = args.u64_or("batch", 0)? as usize;
    spec.eval_jobs = args.u64_or("jobs", 1)? as usize;
    spec.sweep_seeds = args.u64_or("seeds", spec.sweep_seeds)?;
    spec.deadline_ms = args.u64_or("deadline-ms", 0)?;
    if let Some(list) = args.get("agents") {
        spec.agents = list.split(',').map(|name| name.trim().to_owned()).collect();
    }
    spec.proxy = screen_policy(args)?;
    let request = Request::Submit {
        tenant: args.get("tenant").unwrap_or("default").to_owned(),
        name: args.get("name").map(str::to_owned),
        spec,
    };
    match archgymd::client::request_one(addr, &request)? {
        Response::Accepted { job, position } => {
            Ok(format!("accepted {job} at queue position {position}\n"))
        }
        Response::Rejected {
            reason,
            retry_after_ms,
        } => Err(ArchGymError::InvalidConfig(format!(
            "rejected: {reason} (retry after {retry_after_ms}ms)"
        ))),
        other => Err(unexpected(other)),
    }
}

fn status(args: &Args) -> Result<String> {
    use archgymd::protocol::{Request, Response};
    let request = Request::Status {
        job: parse_job_id(args)?,
    };
    match archgymd::client::request_one(daemon_addr(args)?, &request)? {
        Response::Status(status) => Ok(render_status(&status)),
        other => Err(unexpected(other)),
    }
}

/// Stream a job's events to stdout as they arrive; returns once the job
/// reaches a terminal state. Rides out connection drops and daemon
/// restarts via [`archgymd::client::WatchStream`], which replays the
/// backlog on reconnect and deduplicates already-seen events.
fn watch(args: &Args) -> Result<String> {
    use archgymd::client::{ConnectOptions, WatchItem, WatchStream};
    let job = parse_job_id(args)?;
    let mut stream = WatchStream::open(
        daemon_addr(args)?,
        job,
        ConnectOptions::default(),
        args.u64_or("seed", 0)?,
        args.u64_or("reconnect-attempts", 8)? as u32,
    );
    loop {
        match stream.next_item()? {
            WatchItem::Event(data) => {
                println!("{}", data.encode());
            }
            WatchItem::Done {
                state,
                best_reward,
                samples,
            } => {
                let mut out = format!("{job} {}: {samples} samples\n", state.name());
                if let Some(best) = best_reward {
                    let _ = writeln!(out, "best reward: {best:.6}");
                }
                return Ok(out);
            }
        }
    }
}

fn cancel(args: &Args) -> Result<String> {
    use archgymd::protocol::{Request, Response};
    let request = Request::Cancel {
        job: parse_job_id(args)?,
    };
    match archgymd::client::request_one(daemon_addr(args)?, &request)? {
        Response::Status(status) => Ok(format!("cancelling:\n{}", render_status(&status))),
        other => Err(unexpected(other)),
    }
}

fn ping(args: &Args) -> Result<String> {
    use archgymd::protocol::{Request, Response};
    match archgymd::client::request_one(daemon_addr(args)?, &Request::Ping)? {
        Response::Pong { version } => Ok(format!("pong (protocol v{version})\n")),
        other => Err(unexpected(other)),
    }
}

/// Ask the daemon to stop. Plain shutdown interrupts in-flight jobs at
/// a batch boundary (they stay journaled and resume on the next
/// start); `--drain true` closes admission and waits for every
/// admitted job to finish (bounded by `--drain-deadline-ms`) before
/// stopping.
fn shutdown(args: &Args) -> Result<String> {
    use archgymd::protocol::{Request, Response};
    let drain = matches!(args.get("drain"), Some("true" | "1" | "yes"));
    let request = Request::Shutdown {
        drain,
        deadline_ms: args.u64_or("drain-deadline-ms", 0)?,
    };
    match archgymd::client::request_one(daemon_addr(args)?, &request)? {
        Response::Stopping => Ok(if drain {
            "daemon drained and stopping\n".to_owned()
        } else {
            "daemon stopping\n".to_owned()
        }),
        other => Err(unexpected(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_line(line: &[&str]) -> Result<String> {
        run(&Args::parse(line.iter().copied())?)
    }

    #[test]
    fn list_names_every_family() {
        let out = run_line(&["list"]).unwrap();
        for needle in [
            "dram/stream",
            "timeloop/resnet50",
            "farsi/edge-detection",
            "aco",
            "sa",
        ] {
            assert!(out.contains(needle), "missing {needle} in:\n{out}");
        }
    }

    #[test]
    fn search_reports_a_decoded_design() {
        let out = run_line(&[
            "search",
            "--env",
            "dram/stream",
            "--agent",
            "rw",
            "--objective",
            "power:1.0",
            "--budget",
            "32",
        ])
        .unwrap();
        assert!(out.contains("best reward"));
        assert!(out.contains("PagePolicy"));
        assert!(out.contains("power_w"));
    }

    #[test]
    fn search_with_jobs_matches_serial_bit_for_bit() {
        let line = |jobs: &str| {
            run_line(&[
                "search",
                "--env",
                "dram/stream",
                "--agent",
                "ga",
                "--objective",
                "power:1.0",
                "--budget",
                "48",
                "--jobs",
                jobs,
            ])
            .unwrap()
        };
        let serial = line("1");
        let pooled = line("4");
        // Everything but the wall-clock line must match exactly.
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("samples in"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&serial), strip(&pooled));
    }

    #[test]
    fn compare_ranks_the_requested_agents() {
        let out = run_line(&[
            "compare",
            "--env",
            "dram/stream",
            "--agents",
            "rw,sa,ga",
            "--objective",
            "power:1.0",
            "--budget",
            "48",
            "--jobs",
            "2",
        ])
        .unwrap();
        assert!(out.contains("3 agents on dram"), "{out}");
        for agent in ["rw", "sa", "ga"] {
            assert!(out.contains(agent), "missing {agent} in:\n{out}");
        }
        assert!(out.contains(" 1. "), "{out}");
        // Leaderboard is sorted: first listed reward >= last listed.
        let rewards: Vec<f64> = out
            .lines()
            .filter_map(|l| l.split("best ").nth(1))
            .filter_map(|rest| rest.split_whitespace().next())
            .map(|v| v.parse().unwrap())
            .collect();
        assert_eq!(rewards.len(), 3, "{out}");
        assert!(rewards[0] >= rewards[2], "{out}");
    }

    #[test]
    fn compare_defaults_to_the_extended_roster() {
        let out = run_line(&[
            "compare",
            "--env",
            "maestro/resnet18/stage2",
            "--budget",
            "24",
        ])
        .unwrap();
        assert!(out.contains("7 agents on maestro"), "{out}");
        assert!(run_line(&["compare", "--env", "dram/stream", "--agents", "dqn"]).is_err());
    }

    #[test]
    fn sweep_reports_quartiles_and_ticket() {
        let out = run_line(&[
            "sweep",
            "--env",
            "maestro/resnet18/stage2",
            "--agent",
            "ga",
            "--budget",
            "64",
            "--seeds",
            "1",
            "--grid",
            "2",
        ])
        .unwrap();
        assert!(out.contains("median"));
        assert!(out.contains("winning ticket"));
    }

    #[test]
    fn cached_sweep_matches_uncached_and_reports_stats() {
        let line = |cache: &str| {
            run_line(&[
                "sweep",
                "--env",
                "dram/stream",
                "--agent",
                "ga",
                "--objective",
                "power:1.0",
                "--budget",
                "48",
                "--seeds",
                "1",
                "--grid",
                "2",
                "--jobs",
                "1",
                "--cache",
                cache,
            ])
            .unwrap()
        };
        let plain = line("false");
        let cached = line("true");
        assert!(!plain.contains("cache:"), "{plain}");
        assert!(cached.contains("cache:"), "{cached}");
        assert!(cached.contains("hit rate"), "{cached}");
        // Identical search outcome, cache or not.
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("cache:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&plain), strip(&cached));
    }

    #[test]
    fn halving_reports_rounds_and_a_winner() {
        let out = run_line(&[
            "halving",
            "--env",
            "maestro/resnet18/stage4",
            "--agent",
            "sa",
            "--budget",
            "16",
            "--eta",
            "3",
        ])
        .unwrap();
        assert!(out.contains("round 0"), "{out}");
        assert!(out.contains("winner:"), "{out}");
        assert!(out.contains("saving"), "{out}");
    }

    #[test]
    fn trace_prints_requests_without_out_file() {
        let out = run_line(&["trace", "--workload", "random", "--length", "5"]).unwrap();
        assert_eq!(out.lines().count(), 5);
        assert!(out.contains("read 0x"));
    }

    #[test]
    fn trace_stats_mode_characterizes() {
        let out = run_line(&[
            "trace",
            "--workload",
            "cloud-2",
            "--length",
            "500",
            "--stats",
            "true",
        ])
        .unwrap();
        assert!(out.contains("row-hit potential"), "{out}");
        assert!(out.contains("500 requests"), "{out}");
    }

    #[test]
    fn search_dataset_export_feeds_proxy_training() {
        let dir = std::env::temp_dir().join("archgym-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let path = path.to_str().unwrap();
        run_line(&[
            "search",
            "--env",
            "dram/random",
            "--agent",
            "ga",
            "--budget",
            "200",
            "--dataset",
            path,
        ])
        .unwrap();
        let out =
            run_line(&["proxy", "--dataset", path, "--metric", "1", "--search", "2"]).unwrap();
        assert!(out.contains("correlation"), "{out}");
    }

    #[test]
    fn helpful_errors() {
        assert!(run_line(&["destroy"]).is_err());
        assert!(run_line(&["search", "--agent", "ga"]).is_err()); // missing env
        assert!(run_line(&["search", "--env", "dram/stream", "--agent", "dqn"]).is_err());
        assert!(run_line(&["trace", "--workload", "spec2017"]).is_err());
        let help = run_line(&["help"]).unwrap();
        assert!(help.contains("USAGE"));
    }

    #[test]
    fn bad_inputs_are_errors_not_panics() {
        // Unknown environment name.
        let err = run_line(&["search", "--env", "gem5/spec2006", "--agent", "ga"]).unwrap_err();
        assert!(
            err.to_string().contains("unknown environment family"),
            "{err}"
        );
        // Malformed option values.
        let base = ["search", "--env", "dram/stream", "--agent", "ga"];
        let with = |extra: &[&str]| {
            let mut line = base.to_vec();
            line.extend_from_slice(extra);
            run_line(&line)
        };
        assert!(with(&["--budget", "many"]).is_err());
        assert!(with(&["--fault-transient", "1.5"]).is_err());
        assert!(with(&["--fault-latched", "-0.1"]).is_err());
        assert!(with(&["--fault-corrupt", "lots"]).is_err());
        assert!(with(&["--resume", "maybe"]).is_err());
        // --resume without a journal path is a usage error.
        assert!(with(&["--resume", "true"]).is_err());
        // Unreadable input file.
        let err = run_line(&["proxy", "--dataset", "/no/such/dir/run.jsonl"]).unwrap_err();
        assert!(matches!(err, ArchGymError::Io(_)), "{err}");
    }

    #[test]
    fn screened_search_reports_proxy_accounting() {
        let out = run_line(&[
            "search",
            "--env",
            "dram/stream",
            "--agent",
            "ga",
            "--objective",
            "power:1.0",
            "--budget",
            "96",
            "--proxy",
            "true",
            "--proxy-warmup",
            "32",
        ])
        .unwrap();
        assert!(out.contains("best reward"), "{out}");
        assert!(out.contains("proxy: "), "{out}");
        assert!(out.contains("candidates screened"), "{out}");
        let grab = |tag: &str| -> u64 {
            out.lines()
                .find(|l| l.starts_with("proxy: "))
                .and_then(|l| l.split(" | ").find(|part| part.contains(tag)))
                .and_then(|part| part.split_whitespace().find_map(|w| w.parse().ok()))
                .unwrap_or_else(|| panic!("no `{tag}` in:\n{out}"))
        };
        let screened = grab("screened");
        let admitted = grab("admitted");
        assert!(screened > 0, "{out}");
        assert!(admitted < screened, "{out}");
    }

    #[test]
    fn screened_search_is_deterministic_across_job_counts() {
        let line = |jobs: &str| {
            run_line(&[
                "search",
                "--env",
                "dram/stream",
                "--agent",
                "ga",
                "--objective",
                "power:1.0",
                "--budget",
                "80",
                "--proxy",
                "true",
                "--proxy-warmup",
                "32",
                "--jobs",
                jobs,
            ])
            .unwrap()
        };
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("samples in"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&line("1")), strip(&line("4")));
    }

    #[test]
    fn unscreened_search_output_has_no_proxy_line() {
        let out = run_line(&[
            "search",
            "--env",
            "dram/stream",
            "--agent",
            "sa",
            "--objective",
            "power:1.0",
            "--budget",
            "32",
        ])
        .unwrap();
        assert!(!out.contains("proxy:"), "{out}");
    }

    #[test]
    fn proxy_knobs_require_the_proxy_flag_and_sane_values() {
        let base = [
            "search",
            "--env",
            "dram/stream",
            "--agent",
            "ga",
            "--budget",
            "32",
        ];
        let with = |extra: &[&str]| {
            let mut line = base.to_vec();
            line.extend_from_slice(extra);
            run_line(&line)
        };
        let err = with(&["--proxy-topk", "8"]).unwrap_err();
        assert!(err.to_string().contains("--proxy true"), "{err}");
        let err = with(&["--proxy", "true", "--proxy-explore", "1.5"]).unwrap_err();
        assert!(err.to_string().contains("explore_frac"), "{err}");
        assert!(with(&["--proxy", "true", "--proxy-oversample", "1"]).is_err());
    }

    #[test]
    fn screened_compare_marks_every_row() {
        let out = run_line(&[
            "compare",
            "--env",
            "dram/stream",
            "--agents",
            "rw,ga",
            "--objective",
            "power:1.0",
            "--budget",
            "80",
            "--proxy",
            "true",
            "--proxy-warmup",
            "32",
        ])
        .unwrap();
        assert!(out.contains("2 agents on dram"), "{out}");
        let marked = out.lines().filter(|l| l.contains("| proxy ")).count();
        assert_eq!(marked, 2, "{out}");
    }

    #[test]
    fn search_survives_injected_faults_and_reports_them() {
        let out = run_line(&[
            "search",
            "--env",
            "dram/stream",
            "--agent",
            "ga",
            "--objective",
            "power:1.0",
            "--budget",
            "48",
            "--fault-transient",
            "0.2",
            "--fault-seed",
            "7",
            "--retries",
            "3",
        ])
        .unwrap();
        assert!(out.contains("best reward"), "{out}");
        assert!(out.contains("fault recovery:"), "{out}");
        assert!(out.contains("injected faults:"), "{out}");
    }

    #[test]
    fn faultless_search_output_is_unchanged_by_fault_flags_at_zero() {
        let line = |extra: &[&str]| {
            let mut cmd = vec![
                "search",
                "--env",
                "dram/stream",
                "--agent",
                "sa",
                "--objective",
                "power:1.0",
                "--budget",
                "32",
            ];
            cmd.extend_from_slice(extra);
            run_line(&cmd).unwrap()
        };
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("samples in"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let plain = line(&[]);
        let zeroed = line(&["--fault-transient", "0.0", "--retries", "5"]);
        assert_eq!(strip(&plain), strip(&zeroed));
        assert!(!plain.contains("fault recovery:"), "{plain}");
    }

    #[test]
    fn search_metrics_and_trace_files_hold_the_run_accounting() {
        let dir = std::env::temp_dir().join("archgym-cli-metrics-test");
        std::fs::create_dir_all(&dir).unwrap();
        let metrics = dir.join("run-metrics.json");
        let trace = dir.join("run-trace.jsonl");
        let out = run_line(&[
            "search",
            "--env",
            "dram/stream",
            "--agent",
            "ga",
            "--objective",
            "power:1.0",
            "--budget",
            "48",
            "--metrics",
            metrics.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("telemetry:"), "{out}");
        assert!(out.contains("metrics: "), "{out}");
        assert!(out.contains("trace: "), "{out}");
        let report =
            archgym_core::telemetry::RunReport::parse(&std::fs::read_to_string(&metrics).unwrap())
                .unwrap();
        assert_eq!(report.counters["samples_settled"], 48);
        assert_eq!(report.counters["dram_decisions"] % 48, 0);
        assert!(report.phases.contains_key("simulate"), "{report:?}");
        let trace_lines = std::fs::read_to_string(&trace).unwrap();
        let batches: Vec<_> = trace_lines.lines().collect();
        assert_eq!(batches.len() as u64, report.counters["batches"]);
        assert!(batches[0].contains("\"event\":\"batch\""), "{trace_lines}");
        let _ = std::fs::remove_file(&metrics);
        let _ = std::fs::remove_file(&trace);
    }

    #[test]
    fn compare_metrics_are_stable_across_job_counts() {
        let dir = std::env::temp_dir().join("archgym-cli-metrics-test");
        std::fs::create_dir_all(&dir).unwrap();
        let run = |jobs: &str, file: &str| {
            let path = dir.join(file);
            run_line(&[
                "compare",
                "--env",
                "dram/stream",
                "--agents",
                "rw,sa",
                "--objective",
                "power:1.0",
                "--budget",
                "32",
                "--jobs",
                jobs,
                "--metrics",
                path.to_str().unwrap(),
            ])
            .unwrap();
            let body = std::fs::read_to_string(&path).unwrap();
            let _ = std::fs::remove_file(&path);
            body
        };
        let serial = run("1", "cmp-serial.json");
        let pooled = run("4", "cmp-pooled.json");
        assert_eq!(serial, pooled);
        assert!(serial.contains("\"rw\""), "{serial}");
        assert!(serial.contains("\"samples_settled\":32"), "{serial}");
    }

    #[test]
    fn sweep_metrics_aggregate_every_run() {
        let dir = std::env::temp_dir().join("archgym-cli-metrics-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep-metrics.json");
        run_line(&[
            "sweep",
            "--env",
            "dram/stream",
            "--agent",
            "ga",
            "--objective",
            "power:1.0",
            "--budget",
            "24",
            "--seeds",
            "2",
            "--grid",
            "2",
            "--jobs",
            "1",
            "--metrics",
            path.to_str().unwrap(),
        ])
        .unwrap();
        let report =
            archgym_core::telemetry::RunReport::parse(&std::fs::read_to_string(&path).unwrap())
                .unwrap();
        // 2 assignments × 2 seeds × 24 samples, summed into one recorder.
        assert_eq!(report.counters["samples_settled"], 2 * 2 * 24);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journaled_search_matches_plain_and_refuses_stale_journals() {
        let dir = std::env::temp_dir().join("archgym-cli-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(dir.join("run.jsonl.snap"));
        let path = path.to_str().unwrap();
        let line = |extra: &[&str]| {
            let mut cmd = vec![
                "search",
                "--env",
                "dram/stream",
                "--agent",
                "ga",
                "--objective",
                "power:1.0",
                "--budget",
                "48",
            ];
            cmd.extend_from_slice(extra);
            run_line(&cmd)
        };
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("samples in") && !l.starts_with("journal:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let plain = line(&[]).unwrap();
        let journaled = line(&["--journal", path]).unwrap();
        assert!(journaled.contains("journal: "), "{journaled}");
        assert_eq!(strip(&plain), strip(&journaled));
        // A second run against the finished journal must not silently
        // extend it...
        let err = line(&["--journal", path]).unwrap_err();
        assert!(err.to_string().contains("--resume"), "{err}");
        // ...but an explicit resume replays it to the same report.
        let resumed = line(&["--journal", path, "--resume", "true"]).unwrap();
        assert_eq!(strip(&plain), strip(&resumed));
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(dir.join("run.jsonl.snap"));
    }
}
