//! # archgym-cli
//!
//! The command-line front end for ArchGym. Everything the library can do
//! from Rust, scripted from a shell:
//!
//! ```sh
//! archgym list
//! archgym search --env dram/stream --agent ga --objective power:1.0 --budget 1000
//! archgym sweep  --env farsi/edge-detection --agent rl --budget 500 --seeds 2
//! archgym trace  --workload cloud-1 --length 2000 --out trace.stl
//! archgym proxy  --dataset explored.jsonl --metric 1
//! ```
//!
//! The crate splits into [`args`] (a tiny `--key value` parser), [`spec`]
//! (string specs for environments, objectives and agents — shared with
//! the `archgymd` daemon, which owns the module), and [`cmd`] (one
//! function per subcommand, all returning their report as a string so
//! they are unit-testable without a terminal).
//!
//! Daemon client subcommands (`serve`, `submit`, `status`, `watch`,
//! `cancel`) live in [`cmd`] too and speak the [`archgymd`] protocol.

pub mod args;
pub mod cmd;
pub use archgymd::spec;

pub use args::Args;
pub use cmd::run;
