//! A minimal `--key value` argument parser (no external dependencies).

use archgym_core::error::{ArchGymError, Result};
use std::collections::BTreeMap;

/// Parsed command line: one subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Args {
    command: String,
    options: BTreeMap<String, String>,
}

impl Args {
    /// Parse from an iterator of argument strings (excluding the program
    /// name).
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::InvalidConfig`] for missing subcommands,
    /// options without values, or positional arguments after the
    /// subcommand.
    pub fn parse<I, S>(args: I) -> Result<Args>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut iter = args.into_iter().map(Into::into);
        let command = iter
            .next()
            .ok_or_else(|| ArchGymError::InvalidConfig("missing subcommand".into()))?;
        if command.starts_with("--") {
            return Err(ArchGymError::InvalidConfig(format!(
                "expected a subcommand before `{command}`"
            )));
        }
        let mut options = BTreeMap::new();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(ArchGymError::InvalidConfig(format!(
                    "unexpected positional argument `{arg}`"
                )));
            };
            // Support both `--key value` and `--key=value`.
            if let Some((k, v)) = key.split_once('=') {
                options.insert(k.to_owned(), v.to_owned());
            } else {
                let value = iter.next().ok_or_else(|| {
                    ArchGymError::InvalidConfig(format!("option `--{key}` needs a value"))
                })?;
                options.insert(key.to_owned(), value);
            }
        }
        Ok(Args { command, options })
    }

    /// The subcommand name.
    pub fn command(&self) -> &str {
        &self.command
    }

    /// A required string option.
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::InvalidConfig`] when absent.
    pub fn require(&self, key: &str) -> Result<&str> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| ArchGymError::InvalidConfig(format!("missing required `--{key}`")))
    }

    /// An optional string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// An optional integer with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::InvalidConfig`] on unparsable values.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| {
                ArchGymError::InvalidConfig(format!("`--{key}` expects an integer, got `{v}`"))
            }),
        }
    }

    /// An optional float with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::InvalidConfig`] on unparsable values.
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| {
                ArchGymError::InvalidConfig(format!("`--{key}` expects a number, got `{v}`"))
            }),
        }
    }

    /// An optional boolean with a default (`true`/`false`).
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::InvalidConfig`] on unparsable values.
    pub fn bool_or(&self, key: &str, default: bool) -> Result<bool> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| {
                ArchGymError::InvalidConfig(format!(
                    "`--{key}` expects `true` or `false`, got `{v}`"
                ))
            }),
        }
    }

    /// Every option key, for unknown-flag diagnostics.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.options.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_subcommand_and_options() {
        let args = Args::parse(["search", "--env", "dram/stream", "--budget", "500"]).unwrap();
        assert_eq!(args.command(), "search");
        assert_eq!(args.require("env").unwrap(), "dram/stream");
        assert_eq!(args.u64_or("budget", 0).unwrap(), 500);
        assert_eq!(args.u64_or("seed", 7).unwrap(), 7);
    }

    #[test]
    fn supports_equals_style() {
        let args = Args::parse(["sweep", "--env=farsi/audio-decoder", "--seeds=3"]).unwrap();
        assert_eq!(args.require("env").unwrap(), "farsi/audio-decoder");
        assert_eq!(args.u64_or("seeds", 1).unwrap(), 3);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Args::parse(Vec::<String>::new()).is_err());
        assert!(Args::parse(["--env", "x"]).is_err());
        assert!(Args::parse(["search", "stray"]).is_err());
        assert!(Args::parse(["search", "--env"]).is_err());
        let args = Args::parse(["search", "--budget", "many"]).unwrap();
        assert!(args.u64_or("budget", 1).is_err());
        assert!(args.f64_or("budget", 1.0).is_err());
        assert!(args.bool_or("budget", false).is_err());
    }

    #[test]
    fn bool_flags_parse_and_default() {
        let args = Args::parse(["sweep", "--cache", "true"]).unwrap();
        assert!(args.bool_or("cache", false).unwrap());
        assert!(!args.bool_or("other", false).unwrap());
    }

    #[test]
    fn require_reports_the_flag_name() {
        let args = Args::parse(["search"]).unwrap();
        let err = args.require("env").unwrap_err();
        assert!(err.to_string().contains("--env"));
    }
}
