//! The `archgym` command-line tool. See `archgym help`.

use archgym_cli::{run, Args};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(err) => {
            eprintln!("error: {err}\n\n{}", archgym_cli::cmd::usage());
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
