//! Flattened forest inference: contiguous node lanes, zero-alloc batches.
//!
//! A fitted [`RandomForest`] stores each tree as boxed recursive nodes —
//! fine for training, cache-hostile for the screening hot path where a
//! search loop predicts thousands of candidates per batch. [`FlatForest`]
//! re-lays every tree into shared structure-of-arrays lanes (feature
//! index, threshold, child offsets) in depth-first order, so a traversal
//! walks mostly-forward through two parallel arrays instead of chasing
//! heap pointers. Leaves reuse the threshold lane for their value and
//! mark the feature lane with a sentinel, keeping the per-node footprint
//! at 20 bytes.
//!
//! Flattening changes the memory layout only: predictions are
//! bit-identical to the recursive walk (same comparisons, same
//! accumulation order), which the tests pin down.

use crate::forest::RandomForest;
use crate::tree::FlatLanes;
use archgym_core::space::Action;

/// A [`RandomForest`] compiled to contiguous node arrays for inference.
///
/// Built once per (re)fit via [`FlatForest::from_forest`]; prediction
/// never allocates when the caller reuses its output buffers.
#[derive(Debug, Clone)]
pub struct FlatForest {
    lanes: FlatLanes,
    /// Root node offset of each tree.
    roots: Vec<u32>,
    n_features: usize,
}

impl FlatForest {
    /// Flatten a fitted forest.
    ///
    /// # Panics
    ///
    /// Panics if the forest is empty or holds more than `u32::MAX` nodes
    /// (far beyond any configuration this crate can fit).
    pub fn from_forest(forest: &RandomForest) -> Self {
        let trees = forest.trees();
        assert!(!trees.is_empty(), "cannot flatten an empty forest");
        let mut lanes = FlatLanes::default();
        let roots: Vec<u32> = trees.iter().map(|t| t.flatten_into(&mut lanes)).collect();
        FlatForest {
            lanes,
            roots,
            n_features: trees[0].n_features(),
        }
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.roots.len()
    }

    /// Whether the forest has zero trees (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Total flattened nodes across all trees.
    pub fn node_count(&self) -> usize {
        self.lanes.len()
    }

    /// Feature width each prediction expects.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Predict one row: the mean over all trees. Bit-identical to
    /// [`RandomForest::predict`] on the source forest.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong number of features.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n_features, "feature width mismatch");
        let sum: f64 = self.roots.iter().map(|&r| self.lanes.eval(r, x)).sum();
        sum / self.roots.len() as f64
    }

    /// Predict one row with ensemble mean and per-tree population
    /// variance. Bit-identical to [`RandomForest::predict_stats`].
    pub fn predict_stats(&self, x: &[f64]) -> (f64, f64) {
        assert_eq!(x.len(), self.n_features, "feature width mismatch");
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for &root in &self.roots {
            let p = self.lanes.eval(root, x);
            sum += p;
            sum_sq += p * p;
        }
        let n = self.roots.len() as f64;
        let mean = sum / n;
        (mean, (sum_sq / n - mean * mean).max(0.0))
    }

    /// Batch mean/variance over [`Action`]s into caller-owned buffers,
    /// using `scratch` to hold the feature row — zero allocation once
    /// all three buffers have warmed to size.
    ///
    /// Each action's indices become the feature row (`index as f64`),
    /// matching how the online proxy trains.
    pub fn predict_action_stats(
        &self,
        candidates: &[Action],
        means: &mut Vec<f64>,
        vars: &mut Vec<f64>,
        scratch: &mut Vec<f64>,
    ) {
        means.clear();
        vars.clear();
        means.reserve(candidates.len());
        vars.reserve(candidates.len());
        for action in candidates {
            scratch.clear();
            scratch.extend(action.as_slice().iter().map(|&i| i as f64));
            let (mean, var) = self.predict_stats(scratch);
            means.push(mean);
            vars.push(var);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::ForestConfig;
    use rand::Rng;

    fn friedman_like(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = archgym_core::seeded_rng(seed);
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..4).map(|_| rng.gen_range(0.0..8.0)).collect())
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 10.0 * x[0] + 5.0 * x[1] * x[1] + 2.0 * x[2] - x[3])
            .collect();
        (xs, ys)
    }

    #[test]
    fn flat_predict_is_bitwise_equal_to_recursive() {
        let (xs, ys) = friedman_like(200, 21);
        let forest = RandomForest::fit(&xs, &ys, &ForestConfig::default(), 7).unwrap();
        let flat = FlatForest::from_forest(&forest);
        assert_eq!(flat.len(), forest.len());
        for x in &xs {
            assert_eq!(
                flat.predict(x).to_bits(),
                forest.predict(x).to_bits(),
                "flat and recursive walks must agree bit-for-bit"
            );
        }
    }

    #[test]
    fn flat_stats_are_bitwise_equal_to_recursive() {
        let (xs, ys) = friedman_like(150, 23);
        let forest = RandomForest::fit(&xs, &ys, &ForestConfig::default(), 9).unwrap();
        let flat = FlatForest::from_forest(&forest);
        for x in &xs {
            let (fm, fv) = forest.predict_stats(x);
            let (gm, gv) = flat.predict_stats(x);
            assert_eq!(fm.to_bits(), gm.to_bits());
            assert_eq!(fv.to_bits(), gv.to_bits());
        }
    }

    #[test]
    fn node_count_matches_leaf_and_split_totals() {
        let (xs, ys) = friedman_like(100, 25);
        let forest = RandomForest::fit(&xs, &ys, &ForestConfig::default(), 11).unwrap();
        let flat = FlatForest::from_forest(&forest);
        // A binary tree with L leaves has 2L-1 nodes.
        let expected: usize = forest.trees().iter().map(|t| 2 * t.leaf_count() - 1).sum();
        assert_eq!(flat.node_count(), expected);
        assert!(flat.n_features() == 4);
    }

    #[test]
    fn action_stats_reuse_buffers_without_allocating_per_sample() {
        let (xs, ys) = friedman_like(120, 27);
        let forest = RandomForest::fit(&xs, &ys, &ForestConfig::default(), 13).unwrap();
        let flat = FlatForest::from_forest(&forest);
        let candidates: Vec<Action> = (0..32)
            .map(|i| Action::new(vec![i % 8, (i * 3) % 8, (i * 5) % 8, (i * 7) % 8]))
            .collect();
        let mut means = Vec::new();
        let mut vars = Vec::new();
        let mut scratch = Vec::new();
        flat.predict_action_stats(&candidates, &mut means, &mut vars, &mut scratch);
        assert_eq!(means.len(), 32);
        assert_eq!(vars.len(), 32);
        let cap = (means.capacity(), vars.capacity(), scratch.capacity());
        // Second pass with warmed buffers: capacities must not grow.
        flat.predict_action_stats(&candidates, &mut means, &mut vars, &mut scratch);
        assert_eq!(cap, (means.capacity(), vars.capacity(), scratch.capacity()));
        // And the rows must match a hand-built feature evaluation.
        for (action, &mean) in candidates.iter().zip(&means) {
            let row: Vec<f64> = action.as_slice().iter().map(|&i| i as f64).collect();
            assert_eq!(mean.to_bits(), flat.predict(&row).to_bits());
        }
    }
}
