//! CART regression trees with variance-reduction splits.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A binary regression-tree node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A CART regression tree.
///
/// Splits minimize the weighted variance of the two children (equivalent
/// to maximizing variance reduction); growth stops at `max_depth`, at
/// `min_samples_leaf`, or when a node is pure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    root: Node,
    n_features: usize,
}

/// Tree growth limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TreeConfig {
    pub max_depth: usize,
    pub min_samples_leaf: usize,
    /// Features examined per split (`None` = all).
    pub features_per_split: Option<usize>,
}

impl RegressionTree {
    /// Fit a tree on the full feature set (no subsampling).
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty, lengths mismatch, or rows are ragged.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], max_depth: usize, min_samples_leaf: usize) -> Self {
        let cfg = TreeConfig {
            max_depth,
            min_samples_leaf: min_samples_leaf.max(1),
            features_per_split: None,
        };
        let mut rng = archgym_core::seeded_rng(0);
        Self::fit_with(xs, ys, &cfg, &mut rng)
    }

    pub(crate) fn fit_with<R: Rng + ?Sized>(
        xs: &[Vec<f64>],
        ys: &[f64],
        cfg: &TreeConfig,
        rng: &mut R,
    ) -> Self {
        assert!(!xs.is_empty(), "cannot fit on an empty dataset");
        assert_eq!(xs.len(), ys.len(), "feature/target length mismatch");
        let n_features = xs[0].len();
        assert!(
            xs.iter().all(|x| x.len() == n_features),
            "ragged feature rows"
        );
        let indices: Vec<usize> = (0..xs.len()).collect();
        let root = grow(xs, ys, &indices, 0, cfg, rng);
        RegressionTree { root, n_features }
    }

    /// Predict the target for one feature row.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong number of features.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n_features, "feature width mismatch");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Number of leaves (diagnostic).
    pub fn leaf_count(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }

    /// Maximum depth actually grown (diagnostic).
    pub fn depth(&self) -> usize {
        fn depth(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + depth(left).max(depth(right)),
            }
        }
        depth(&self.root)
    }

    /// Append this tree's nodes to the flat SoA lanes and return the
    /// root's offset. Leaves store [`FLAT_LEAF`] in the feature lane and
    /// reuse the threshold lane for the leaf value, so traversal touches
    /// only two cache lines per level.
    pub(crate) fn flatten_into(&self, lanes: &mut FlatLanes) -> u32 {
        flatten(&self.root, lanes)
    }

    pub(crate) fn n_features(&self) -> usize {
        self.n_features
    }
}

/// Feature-lane sentinel marking a leaf node in flattened storage.
pub(crate) const FLAT_LEAF: u32 = u32::MAX;

/// Parallel node lanes shared by all trees of a flattened forest.
#[derive(Debug, Clone, Default)]
pub(crate) struct FlatLanes {
    /// Split feature index, or [`FLAT_LEAF`] for leaves.
    pub feature: Vec<u32>,
    /// Split threshold; doubles as the leaf value for leaves.
    pub threshold: Vec<f64>,
    /// Offset of the `<=` child (unused for leaves).
    pub left: Vec<u32>,
    /// Offset of the `>` child (unused for leaves).
    pub right: Vec<u32>,
}

impl FlatLanes {
    pub(crate) fn len(&self) -> usize {
        self.feature.len()
    }

    /// Walk one tree from `root` for feature row `x`.
    #[inline]
    pub(crate) fn eval(&self, root: u32, x: &[f64]) -> f64 {
        let mut at = root as usize;
        loop {
            let feature = self.feature[at];
            if feature == FLAT_LEAF {
                return self.threshold[at];
            }
            at = if x[feature as usize] <= self.threshold[at] {
                self.left[at] as usize
            } else {
                self.right[at] as usize
            };
        }
    }
}

fn flatten(node: &Node, lanes: &mut FlatLanes) -> u32 {
    let at = u32::try_from(lanes.len()).expect("flat forest exceeds u32 node offsets");
    match node {
        Node::Leaf { value } => {
            lanes.feature.push(FLAT_LEAF);
            lanes.threshold.push(*value);
            lanes.left.push(0);
            lanes.right.push(0);
        }
        Node::Split {
            feature,
            threshold,
            left,
            right,
        } => {
            lanes
                .feature
                .push(u32::try_from(*feature).expect("feature index exceeds u32"));
            lanes.threshold.push(*threshold);
            // Reserve the child slots, then patch them once the
            // subtrees have claimed their offsets.
            lanes.left.push(0);
            lanes.right.push(0);
            let left_at = flatten(left, lanes);
            let right_at = flatten(right, lanes);
            lanes.left[at as usize] = left_at;
            lanes.right[at as usize] = right_at;
        }
    }
    at
}

fn mean_of(ys: &[f64], indices: &[usize]) -> f64 {
    indices.iter().map(|&i| ys[i]).sum::<f64>() / indices.len() as f64
}

fn sse_of(ys: &[f64], indices: &[usize]) -> f64 {
    let m = mean_of(ys, indices);
    indices.iter().map(|&i| (ys[i] - m).powi(2)).sum()
}

fn grow<R: Rng + ?Sized>(
    xs: &[Vec<f64>],
    ys: &[f64],
    indices: &[usize],
    depth: usize,
    cfg: &TreeConfig,
    rng: &mut R,
) -> Node {
    let leaf = || Node::Leaf {
        value: mean_of(ys, indices),
    };
    if depth >= cfg.max_depth || indices.len() < 2 * cfg.min_samples_leaf {
        return leaf();
    }
    let parent_sse = sse_of(ys, indices);
    if parent_sse <= 1e-12 {
        return leaf(); // pure node
    }

    let n_features = xs[0].len();
    let mut features: Vec<usize> = (0..n_features).collect();
    if let Some(k) = cfg.features_per_split {
        features.shuffle(rng);
        features.truncate(k.clamp(1, n_features));
    }

    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
    for &f in &features {
        // Candidate thresholds: midpoints between consecutive distinct
        // sorted values.
        let mut values: Vec<f64> = indices.iter().map(|&i| xs[i][f]).collect();
        values.sort_by(|a, b| a.partial_cmp(b).expect("NaN feature"));
        values.dedup();
        if values.len() < 2 {
            continue;
        }
        for w in values.windows(2) {
            let threshold = (w[0] + w[1]) / 2.0;
            let (left, right): (Vec<usize>, Vec<usize>) =
                indices.iter().partition(|&&i| xs[i][f] <= threshold);
            if left.len() < cfg.min_samples_leaf || right.len() < cfg.min_samples_leaf {
                continue;
            }
            let sse = sse_of(ys, &left) + sse_of(ys, &right);
            if best.is_none_or(|(_, _, b)| sse < b) {
                best = Some((f, threshold, sse));
            }
        }
    }

    match best {
        Some((feature, threshold, sse)) if sse < parent_sse => {
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                indices.iter().partition(|&&i| xs[i][feature] <= threshold);
            Node::Split {
                feature,
                threshold,
                left: Box::new(grow(xs, ys, &left_idx, depth + 1, cfg, rng)),
                right: Box::new(grow(xs, ys, &right_idx, depth + 1, cfg, rng)),
            }
        }
        _ => leaf(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archgym_core::stats::rmse;

    fn step_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 1 if x0 > 5 else 0 — a single split suffices.
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..20).map(|i| f64::from(i > 5)).collect();
        (xs, ys)
    }

    #[test]
    fn learns_a_step_function_exactly() {
        let (xs, ys) = step_data();
        let tree = RegressionTree::fit(&xs, &ys, 4, 1);
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(tree.predict(x), y);
        }
        assert!(tree.leaf_count() >= 2);
    }

    #[test]
    fn depth_zero_tree_predicts_the_mean() {
        let (xs, ys) = step_data();
        let tree = RegressionTree::fit(&xs, &ys, 0, 1);
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        assert_eq!(tree.predict(&[3.0]), mean);
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.depth(), 0);
    }

    #[test]
    fn respects_min_samples_leaf() {
        let (xs, ys) = step_data();
        let tree = RegressionTree::fit(&xs, &ys, 10, 10);
        // With min leaf 10 on 20 points, at most one split is possible.
        assert!(tree.leaf_count() <= 2);
    }

    #[test]
    fn fits_a_smooth_function_approximately() {
        let xs: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 20.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0]).sin()).collect();
        let tree = RegressionTree::fit(&xs, &ys, 8, 2);
        let preds: Vec<f64> = xs.iter().map(|x| tree.predict(x)).collect();
        assert!(rmse(&preds, &ys) < 0.05);
    }

    #[test]
    fn uses_the_informative_feature() {
        // Feature 1 is noise; feature 0 carries the signal.
        let xs: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i / 10) as f64, ((i * 7919) % 13) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 10.0).collect();
        let tree = RegressionTree::fit(&xs, &ys, 6, 1);
        let preds: Vec<f64> = xs.iter().map(|x| tree.predict(x)).collect();
        assert!(rmse(&preds, &ys) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_fit_panics() {
        let _ = RegressionTree::fit(&[], &[], 3, 1);
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn wrong_width_predict_panics() {
        let (xs, ys) = step_data();
        let tree = RegressionTree::fit(&xs, &ys, 3, 1);
        let _ = tree.predict(&[1.0, 2.0]);
    }
}
