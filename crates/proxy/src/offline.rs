//! A data-driven offline optimizer (PRIME-flavored), built on the proxy
//! pipeline.
//!
//! The paper motivates offline methods repeatedly (Kumar et al.'s PRIME
//! appears as the "data-driven offline learning" row of Table 1, and
//! Section 8 names offline RL as a consumer of ArchGym datasets). The
//! agent here implements the core recipe without a neural network:
//!
//! 1. fit proxy models to a *logged* dataset (no simulator access);
//! 2. optimize the acquisition offline — a large random sweep plus
//!    hill-climbing over the proxy;
//! 3. spend the scarce simulator budget only on the top-ranked
//!    candidates, feeding validations back into the proxy.
//!
//! It implements [`Agent`], so the standard [`SearchLoop`] drives it and
//! its trajectories land in the standard dataset format like everyone
//! else's.
//!
//! [`SearchLoop`]: archgym_core::search::SearchLoop

use crate::forest::ForestConfig;
use crate::pipeline::train_proxy_fixed;
use crate::pipeline::ProxyModel;
use archgym_core::agent::Agent;
use archgym_core::env::StepResult;
use archgym_core::error::Result;
use archgym_core::reward::RewardSpec;
use archgym_core::seeded_rng;
use archgym_core::space::{Action, ParamSpace};
use archgym_core::trajectory::{Dataset, Transition};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;

/// Offline model-based optimizer over a logged dataset.
#[derive(Debug)]
pub struct OfflineOptimizer {
    space: ParamSpace,
    spec: RewardSpec,
    n_metrics: usize,
    dataset: Dataset,
    proxies: Vec<ProxyModel>,
    forest_config: ForestConfig,
    rng: StdRng,
    /// Offline proxy evaluations per proposal round.
    sweep_size: usize,
    /// Hill-climbing refinement steps per candidate.
    climb_steps: usize,
    /// Retrain the proxies after this many new simulator validations.
    retrain_every: usize,
    since_retrain: usize,
    seen: HashSet<Vec<usize>>,
}

impl OfflineOptimizer {
    /// Create an optimizer from a logged dataset.
    ///
    /// `spec` must evaluate rewards from the same observation layout the
    /// dataset's transitions carry; `n_metrics` is that layout's width.
    ///
    /// # Errors
    ///
    /// Propagates proxy-training failures (e.g. too little data).
    pub fn new(
        space: ParamSpace,
        dataset: Dataset,
        n_metrics: usize,
        spec: RewardSpec,
        seed: u64,
    ) -> Result<Self> {
        let forest_config = ForestConfig::default();
        let proxies = Self::train_all(&dataset, n_metrics, &forest_config, seed)?;
        let seen = dataset
            .iter()
            .map(|t| t.action.as_slice().to_vec())
            .collect();
        Ok(OfflineOptimizer {
            space,
            spec,
            n_metrics,
            dataset,
            proxies,
            forest_config,
            rng: seeded_rng(seed),
            sweep_size: 2_048,
            climb_steps: 64,
            retrain_every: 32,
            since_retrain: 0,
            seen,
        })
    }

    fn train_all(
        dataset: &Dataset,
        n_metrics: usize,
        config: &ForestConfig,
        seed: u64,
    ) -> Result<Vec<ProxyModel>> {
        (0..n_metrics)
            .map(|m| train_proxy_fixed(dataset, m, config, seed ^ (m as u64) << 8))
            .collect()
    }

    /// Predicted reward of an action under the current proxies.
    pub fn predicted_reward(&self, action: &Action) -> f64 {
        let observation = archgym_core::env::Observation::new(
            self.proxies
                .iter()
                .map(|p| p.predict(action.as_slice()))
                .collect(),
        );
        self.spec.reward(&observation)
    }

    /// The number of transitions currently backing the proxies.
    pub fn dataset_len(&self) -> usize {
        self.dataset.len()
    }

    fn hill_climb(&mut self, start: Action) -> Action {
        let cards = self.space.cardinalities();
        let mut best = start;
        let mut best_score = self.predicted_reward(&best);
        for _ in 0..self.climb_steps {
            let mut candidate = best.clone();
            let d = self.rng.gen_range(0..cards.len());
            let delta_local = self.rng.gen_bool(0.5);
            let genes = candidate.as_mut_slice();
            genes[d] = if delta_local && cards[d] > 1 {
                if self.rng.gen_bool(0.5) {
                    (genes[d] + 1).min(cards[d] - 1)
                } else {
                    genes[d].saturating_sub(1)
                }
            } else {
                self.rng.gen_range(0..cards[d])
            };
            let score = self.predicted_reward(&candidate);
            if score > best_score {
                best = candidate;
                best_score = score;
            }
        }
        best
    }
}

impl Agent for OfflineOptimizer {
    fn name(&self) -> &str {
        "offline"
    }

    fn propose(&mut self, max_batch: usize) -> Vec<Action> {
        // Offline sweep: rank random designs by proxy reward.
        let mut scored: Vec<(f64, Action)> = (0..self.sweep_size)
            .map(|_| {
                let a = self.space.sample(&mut self.rng);
                (self.predicted_reward(&a), a)
            })
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("NaN proxy reward"));
        let mut out = Vec::new();
        for (_, action) in scored {
            if out.len() >= max_batch.max(1) {
                break;
            }
            let refined = self.hill_climb(action);
            if !self.seen.contains(refined.as_slice()) && !out.contains(&refined) {
                out.push(refined);
            }
        }
        if out.is_empty() {
            out.push(self.space.sample(&mut self.rng));
        }
        out
    }

    fn observe(&mut self, results: &[(Action, StepResult)]) {
        for (action, result) in results {
            self.seen.insert(action.as_slice().to_vec());
            self.dataset.push(Transition::new(
                "offline-validated",
                self.name(),
                action.clone(),
                result,
            ));
            self.since_retrain += 1;
        }
        if self.since_retrain >= self.retrain_every {
            self.since_retrain = 0;
            if let Ok(proxies) = Self::train_all(
                &self.dataset,
                self.n_metrics,
                &self.forest_config,
                self.dataset.len() as u64,
            ) {
                self.proxies = proxies;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archgym_core::agent::RandomWalker;
    use archgym_core::env::Environment;
    use archgym_core::search::{RunConfig, SearchLoop};
    use archgym_core::toy::PeakEnv;

    fn offline_setup() -> (PeakEnv, OfflineOptimizer) {
        let mut env = PeakEnv::new(&[16, 16], vec![11, 4]);
        let mut walker = RandomWalker::new(env.space().clone(), 3);
        let logged = SearchLoop::new(RunConfig::with_budget(300))
            .run(&mut walker, &mut env)
            .dataset;
        let spec = RewardSpec::WeightedSum {
            weights: vec![(0, 1.0)], // minimize distance
        };
        let agent = OfflineOptimizer::new(env.space().clone(), logged, 1, spec, 5).unwrap();
        (env, agent)
    }

    #[test]
    fn offline_optimizer_needs_very_few_simulator_samples() {
        let (mut env, mut agent) = offline_setup();
        let result = SearchLoop::new(RunConfig::with_budget(12).batch(4)).run(&mut agent, &mut env);
        // 12 simulator queries, guided by 300 logged points: should land
        // within 3 of the peak (reward 1/(1+d) ≥ 0.25).
        assert!(
            result.best_reward >= 0.25,
            "offline agent reward {} too low",
            result.best_reward
        );
    }

    #[test]
    fn proposals_avoid_logged_and_validated_points() {
        let (_, mut agent) = offline_setup();
        let batch = agent.propose(8);
        for action in &batch {
            assert!(!agent.seen.contains(action.as_slice()));
        }
    }

    #[test]
    fn validations_grow_the_dataset_and_trigger_retraining() {
        let (mut env, mut agent) = offline_setup();
        let before = agent.dataset_len();
        let batch = agent.propose(40);
        let results: Vec<(Action, StepResult)> = batch
            .into_iter()
            .map(|a| {
                let r = env.step(&a);
                (a, r)
            })
            .collect();
        let n = results.len();
        agent.observe(&results);
        assert_eq!(agent.dataset_len(), before + n);
    }

    #[test]
    fn predicted_rewards_track_the_landscape() {
        let (_, agent) = offline_setup();
        let near = agent.predicted_reward(&Action::new(vec![11, 4]));
        let far = agent.predicted_reward(&Action::new(vec![0, 15]));
        assert!(
            near > far,
            "proxy does not rank the peak above the corner: {near} vs {far}"
        );
    }
}
