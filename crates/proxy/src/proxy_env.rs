//! Proxy cost models behind the standard environment interface.
//!
//! Section 8 of the paper: "by utilizing an accurate and high-speed proxy
//! model, we can augment conventional slower architectural simulators
//! *while retaining their original interfaces*". [`ProxyEnv`] does exactly
//! that — it trains one regressor per observation metric from a logged
//! [`Dataset`] and then serves `step()` calls thousands of times faster
//! than the simulator, so sample-hungry agents (RL, offline methods) can
//! explore freely.

use crate::forest::ForestConfig;
use crate::pipeline::{train_proxy_fixed, ProxyModel};
use archgym_core::env::{Environment, Observation, StepResult};
use archgym_core::error::{ArchGymError, Result};
use archgym_core::reward::RewardSpec;
use archgym_core::space::{Action, ParamSpace};
use archgym_core::trajectory::Dataset;

/// An [`Environment`] whose cost model is a set of trained proxies (one
/// per observation metric) instead of a simulator.
#[derive(Debug, Clone)]
pub struct ProxyEnv {
    name: String,
    space: ParamSpace,
    labels: Vec<String>,
    proxies: Vec<ProxyModel>,
    spec: RewardSpec,
}

impl ProxyEnv {
    /// Assemble from already-trained proxies. `proxies[i]` must predict
    /// observation metric `i`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::InvalidConfig`] if a proxy's metric index
    /// does not match its position or label count mismatches.
    pub fn new(
        name: &str,
        space: ParamSpace,
        labels: Vec<String>,
        proxies: Vec<ProxyModel>,
        spec: RewardSpec,
    ) -> Result<Self> {
        if labels.len() != proxies.len() {
            return Err(ArchGymError::InvalidConfig(format!(
                "{} labels but {} proxies",
                labels.len(),
                proxies.len()
            )));
        }
        for (i, p) in proxies.iter().enumerate() {
            if p.metric() != i {
                return Err(ArchGymError::InvalidConfig(format!(
                    "proxy at position {i} predicts metric {}",
                    p.metric()
                )));
            }
        }
        Ok(ProxyEnv {
            name: format!("proxy/{name}"),
            space,
            labels,
            proxies,
            spec,
        })
    }

    /// Train a full proxy environment from a logged dataset: one forest
    /// per observation metric.
    ///
    /// # Errors
    ///
    /// Propagates training failures (e.g. a dataset that is too small).
    pub fn train(
        name: &str,
        space: ParamSpace,
        labels: Vec<String>,
        dataset: &Dataset,
        spec: RewardSpec,
        config: &ForestConfig,
        seed: u64,
    ) -> Result<Self> {
        let proxies = (0..labels.len())
            .map(|metric| train_proxy_fixed(dataset, metric, config, seed ^ metric as u64))
            .collect::<Result<Vec<ProxyModel>>>()?;
        ProxyEnv::new(name, space, labels, proxies, spec)
    }

    /// The per-metric proxies.
    pub fn proxies(&self) -> &[ProxyModel] {
        &self.proxies
    }
}

impl Environment for ProxyEnv {
    fn name(&self) -> &str {
        &self.name
    }

    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn observation_labels(&self) -> Vec<String> {
        self.labels.clone()
    }

    fn step(&mut self, action: &Action) -> StepResult {
        let observation = Observation::new(
            self.proxies
                .iter()
                .map(|p| p.predict(action.as_slice()))
                .collect(),
        );
        let reward = self.spec.reward(&observation);
        StepResult::terminal(observation, reward)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archgym_core::agent::RandomWalker;
    use archgym_core::search::{RunConfig, SearchLoop};
    use archgym_core::seeded_rng;
    use archgym_core::toy::PeakEnv;

    /// Log a dataset from the toy peak environment.
    fn logged_peak() -> (PeakEnv, Dataset) {
        let mut env = PeakEnv::new(&[12, 12], vec![8, 3]);
        let mut walker = RandomWalker::new(env.space().clone(), 7);
        let run = SearchLoop::new(RunConfig::with_budget(400)).run(&mut walker, &mut env);
        (env, run.dataset)
    }

    fn spec() -> RewardSpec {
        // The peak env's observation is the L1 distance; minimize it.
        RewardSpec::WeightedSum {
            weights: vec![(0, 1.0)],
        }
    }

    #[test]
    fn trained_proxy_env_serves_the_same_interface() {
        let (env, dataset) = logged_peak();
        let mut proxy_env = ProxyEnv::train(
            "peak",
            env.space().clone(),
            vec!["distance".into()],
            &dataset,
            spec(),
            &ForestConfig::default(),
            1,
        )
        .unwrap();
        assert_eq!(proxy_env.name(), "proxy/peak");
        assert_eq!(proxy_env.observation_labels(), ["distance"]);
        let mut rng = seeded_rng(2);
        let action = proxy_env.space().sample(&mut rng);
        let result = proxy_env.step(&action);
        assert_eq!(result.observation.len(), 1);
        assert!(result.feasible && result.done);
    }

    #[test]
    fn search_on_the_proxy_finds_a_design_good_on_the_simulator() {
        // The Section 8 loop: explore cheaply on the proxy, validate the
        // winner on the real cost model.
        let (mut env, dataset) = logged_peak();
        let mut proxy_env = ProxyEnv::train(
            "peak",
            env.space().clone(),
            vec!["distance".into()],
            &dataset,
            spec(),
            &ForestConfig::default(),
            3,
        )
        .unwrap();
        let mut walker = RandomWalker::new(proxy_env.space().clone(), 9);
        let run = SearchLoop::new(RunConfig::with_budget(2_000)).run(&mut walker, &mut proxy_env);
        // Validate on the ground-truth environment.
        let truth = env.step(&run.best_action);
        assert!(
            truth.observation.get(0) <= 4.0,
            "proxy-guided design is {} steps from the peak",
            truth.observation.get(0)
        );
    }

    #[test]
    fn construction_validates_metric_alignment() {
        let (env, dataset) = logged_peak();
        let proxy = train_proxy_fixed(&dataset, 0, &ForestConfig::default(), 1).unwrap();
        // Labels/proxies count mismatch.
        assert!(ProxyEnv::new(
            "peak",
            env.space().clone(),
            vec!["a".into(), "b".into()],
            vec![proxy],
            spec()
        )
        .is_err());
    }
}
