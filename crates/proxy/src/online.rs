//! The online proxy: a forest screener trained from the run's own
//! settled samples.
//!
//! This is the concrete [`Screener`] behind `SearchLoop`'s proxy layer
//! (the paper's Part 3 surrogate, moved *into* the loop). It trains a
//! [`RandomForest`] on the (action indices → reward) pairs the search
//! has already paid true simulations for, flattens it to a
//! [`FlatForest`] for allocation-free batch inference, and retrains on
//! a deterministic cadence as more samples settle.
//!
//! Life-cycle:
//!
//! 1. **Warm-up** — until `policy.warmup` samples have been observed the
//!    proxy reports not-ready and the driver runs plain batches.
//! 2. **Screening** — after the first fit, every proposal batch is
//!    ranked and pruned by the driver; each admitted sample's true
//!    reward feeds back through [`Screener::observe`], and every
//!    `policy.refit_every` new samples trigger a refit.
//! 3. **Re-validation** — the driver periodically bypasses the screen
//!    and hands the full batch's (predicted, actual) pairs to
//!    [`Screener::revalidate`]. Drift — prediction RMSE at or above the
//!    spread of the true rewards — forces an immediate refit; three
//!    consecutive drifting re-validations disable screening for the
//!    rest of the run (the run completes unscreened rather than chase a
//!    surrogate that cannot track the objective).
//!
//! Determinism: every fit uses seed `base_seed ^ fit_count`, training
//! data is the exact observed sample stream, and nothing reads a clock
//! or an unseeded RNG — so proxy state is a pure function of the seed
//! and the call sequence, which is what lets journaled screened runs
//! replay bit-identically.

use crate::flat::FlatForest;
use crate::forest::{ForestConfig, RandomForest};
use archgym_core::error::{ArchGymError, Result};
use archgym_core::screen::{ScreenPolicy, Screener};
use archgym_core::space::Action;
use archgym_core::stats::{rmse, std_dev};
use archgym_core::telemetry::{Counter, Recorder};

/// Most recent samples kept for training; older ones age out so refit
/// cost stays bounded on long runs.
const MAX_TRAIN: usize = 4096;

/// Consecutive drifting re-validations before screening is disabled.
const MAX_DRIFT_STRIKES: u32 = 3;

/// Forest hyperparameters sized for in-loop refits: fewer, shallower
/// trees than the offline default so a refit costs milliseconds.
pub fn online_forest_config() -> ForestConfig {
    ForestConfig {
        n_trees: 12,
        max_depth: 8,
        min_samples_leaf: 2,
        feature_frac: 0.7,
    }
}

/// A [`RandomForest`]-backed online [`Screener`].
#[derive(Debug, Clone)]
pub struct OnlineProxy {
    policy: ScreenPolicy,
    config: ForestConfig,
    seed: u64,
    /// Training rows: one action's indices as `f64`s per row.
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
    /// Flattened model for inference; `None` until the first fit.
    flat: Option<FlatForest>,
    fits: u64,
    samples_seen: u64,
    samples_at_fit: u64,
    drift_strikes: u32,
    disabled: bool,
    recorder: Recorder,
    scratch: Vec<f64>,
}

impl OnlineProxy {
    /// Build a proxy with explicit forest hyperparameters.
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::InvalidConfig`] for a degenerate policy.
    pub fn new(policy: ScreenPolicy, config: ForestConfig, seed: u64) -> Result<Self> {
        policy.validate().map_err(ArchGymError::InvalidConfig)?;
        Ok(OnlineProxy {
            policy,
            config,
            seed,
            xs: Vec::new(),
            ys: Vec::new(),
            flat: None,
            fits: 0,
            samples_seen: 0,
            samples_at_fit: 0,
            drift_strikes: 0,
            disabled: false,
            recorder: Recorder::disabled(),
            scratch: Vec::new(),
        })
    }

    /// Build a proxy with the in-loop forest sizing
    /// ([`online_forest_config`]).
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::InvalidConfig`] for a degenerate policy.
    pub fn with_defaults(policy: ScreenPolicy, seed: u64) -> Result<Self> {
        Self::new(policy, online_forest_config(), seed)
    }

    /// Samples observed so far (including aged-out ones).
    pub fn samples_seen(&self) -> u64 {
        self.samples_seen
    }

    /// Whether persistent drift has permanently disabled screening.
    pub fn is_disabled(&self) -> bool {
        self.disabled
    }

    /// Train on everything observed and flatten for inference.
    fn fit(&mut self) {
        let fit_seed = self.seed ^ self.fits;
        let forest = RandomForest::fit(&self.xs, &self.ys, &self.config, fit_seed)
            .expect("online proxy fits only on non-empty data");
        self.flat = Some(FlatForest::from_forest(&forest));
        self.fits += 1;
        self.samples_at_fit = self.samples_seen;
        self.recorder.incr(Counter::ProxyRefits);
    }
}

impl Screener for OnlineProxy {
    fn policy(&self) -> ScreenPolicy {
        self.policy
    }

    fn set_telemetry(&mut self, recorder: &Recorder) {
        self.recorder = recorder.clone();
    }

    fn observe(&mut self, actions: &[Action], rewards: &[f64]) {
        debug_assert_eq!(actions.len(), rewards.len());
        for (action, &reward) in actions.iter().zip(rewards) {
            self.xs
                .push(action.as_slice().iter().map(|&i| i as f64).collect());
            self.ys.push(reward);
        }
        self.samples_seen += actions.len() as u64;
        if self.xs.len() > MAX_TRAIN {
            let drop = self.xs.len() - MAX_TRAIN;
            self.xs.drain(..drop);
            self.ys.drain(..drop);
        }
        if self.disabled {
            return;
        }
        let due = match self.flat {
            None => self.samples_seen >= self.policy.warmup,
            Some(_) => self.samples_seen - self.samples_at_fit >= self.policy.refit_every,
        };
        if due {
            self.fit();
        }
    }

    fn is_ready(&self) -> bool {
        !self.disabled && self.flat.is_some()
    }

    fn predict(&mut self, candidates: &[Action], means: &mut Vec<f64>, vars: &mut Vec<f64>) {
        match &self.flat {
            Some(flat) => flat.predict_action_stats(candidates, means, vars, &mut self.scratch),
            None => {
                // Defensive: the driver only predicts when ready.
                means.clear();
                vars.clear();
                means.resize(candidates.len(), 0.0);
                vars.resize(candidates.len(), 0.0);
            }
        }
    }

    fn revalidate(&mut self, predicted: &[f64], actual: &[f64]) {
        debug_assert_eq!(predicted.len(), actual.len());
        // A one-sample batch has no spread to compare against.
        if self.disabled || actual.len() < 2 {
            return;
        }
        let err = rmse(predicted, actual);
        let spread = std_dev(actual);
        // Drift: the proxy's error is as large as the signal itself. A
        // perfectly flat batch (spread 0) cannot convict a proxy whose
        // error is also ~0, hence the epsilon floor.
        if err >= spread.max(1e-12) {
            self.drift_strikes += 1;
            if self.drift_strikes >= MAX_DRIFT_STRIKES {
                self.disabled = true;
                self.flat = None;
            } else {
                self.fit();
            }
        } else {
            self.drift_strikes = 0;
        }
    }

    fn refits(&self) -> u64 {
        self.fits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> ScreenPolicy {
        ScreenPolicy::default().warmup(16).refit_every(8)
    }

    /// actions over a 2-d space; reward = planted quadratic peak.
    fn sample(i: usize) -> (Action, f64) {
        let a = (i * 7) % 12;
        let b = (i * 5) % 12;
        let reward = 24.0 - ((a as f64 - 6.0).powi(2) + (b as f64 - 3.0).powi(2));
        (Action::new(vec![a, b]), reward)
    }

    fn feed(proxy: &mut OnlineProxy, from: usize, to: usize) {
        let (actions, rewards): (Vec<Action>, Vec<f64>) = (from..to).map(sample).unzip();
        proxy.observe(&actions, &rewards);
    }

    #[test]
    fn warms_up_then_fits_and_refits_on_cadence() {
        let mut proxy = OnlineProxy::with_defaults(policy(), 42).unwrap();
        assert!(!proxy.is_ready());
        feed(&mut proxy, 0, 15);
        assert!(!proxy.is_ready(), "below warmup");
        feed(&mut proxy, 15, 16);
        assert!(proxy.is_ready(), "warmup reached");
        assert_eq!(proxy.refits(), 1);
        feed(&mut proxy, 16, 23);
        assert_eq!(proxy.refits(), 1, "below refit cadence");
        feed(&mut proxy, 23, 24);
        assert_eq!(proxy.refits(), 2, "refit_every new samples");
    }

    #[test]
    fn predictions_rank_good_candidates_above_bad_ones() {
        let mut proxy = OnlineProxy::with_defaults(policy(), 7).unwrap();
        feed(&mut proxy, 0, 48);
        let candidates = vec![
            Action::new(vec![6, 3]), // the planted peak
            Action::new(vec![0, 11]),
        ];
        let mut means = Vec::new();
        let mut vars = Vec::new();
        proxy.predict(&candidates, &mut means, &mut vars);
        assert!(
            means[0] > means[1],
            "peak {} vs corner {}",
            means[0],
            means[1]
        );
        assert!(vars.iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn proxy_state_is_deterministic_in_the_call_stream() {
        let run = || {
            let mut proxy = OnlineProxy::with_defaults(policy(), 9).unwrap();
            feed(&mut proxy, 0, 40);
            let candidates: Vec<Action> = (40..56).map(|i| sample(i).0).collect();
            let mut means = Vec::new();
            let mut vars = Vec::new();
            proxy.predict(&candidates, &mut means, &mut vars);
            (proxy.refits(), means, vars)
        };
        let (fits_a, means_a, vars_a) = run();
        let (fits_b, means_b, vars_b) = run();
        assert_eq!(fits_a, fits_b);
        assert_eq!(
            means_a.iter().map(|m| m.to_bits()).collect::<Vec<_>>(),
            means_b.iter().map(|m| m.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(
            vars_a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            vars_b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn drift_refits_then_persistent_drift_disables() {
        let mut proxy = OnlineProxy::with_defaults(policy(), 3).unwrap();
        feed(&mut proxy, 0, 20);
        assert!(proxy.is_ready());
        let fits_before = proxy.refits();
        // Predictions wildly off a wide-spread batch → drift strike + refit.
        proxy.revalidate(&[100.0, -100.0, 50.0], &[0.0, 1.0, 2.0]);
        assert!(proxy.is_ready());
        assert_eq!(proxy.refits(), fits_before + 1);
        proxy.revalidate(&[100.0, -100.0, 50.0], &[0.0, 1.0, 2.0]);
        assert!(proxy.is_ready());
        proxy.revalidate(&[100.0, -100.0, 50.0], &[0.0, 1.0, 2.0]);
        assert!(proxy.is_disabled(), "three strikes disable the screen");
        assert!(!proxy.is_ready());
        // Disabled is latched: more data never re-enables.
        feed(&mut proxy, 20, 60);
        assert!(!proxy.is_ready());
    }

    #[test]
    fn accurate_revalidation_clears_the_strike_count() {
        let mut proxy = OnlineProxy::with_defaults(policy(), 5).unwrap();
        feed(&mut proxy, 0, 20);
        proxy.revalidate(&[100.0, -100.0, 50.0], &[0.0, 1.0, 2.0]); // strike 1
        proxy.revalidate(&[100.0, -100.0, 50.0], &[0.0, 1.0, 2.0]); // strike 2
                                                                    // Near-perfect predictions on a wide-spread batch: strikes reset.
        proxy.revalidate(&[0.1, 10.0, 20.1], &[0.0, 10.0, 20.0]);
        proxy.revalidate(&[100.0, -100.0, 50.0], &[0.0, 1.0, 2.0]); // strike 1 again
        proxy.revalidate(&[100.0, -100.0, 50.0], &[0.0, 1.0, 2.0]); // strike 2
        assert!(!proxy.is_disabled(), "reset prevented the third strike");
    }

    #[test]
    fn refit_counter_reaches_telemetry() {
        let rec = Recorder::new();
        let mut proxy = OnlineProxy::with_defaults(policy(), 11).unwrap();
        proxy.set_telemetry(&rec);
        feed(&mut proxy, 0, 16);
        feed(&mut proxy, 16, 32);
        assert_eq!(rec.get(Counter::ProxyRefits), proxy.refits());
        assert!(proxy.refits() >= 2);
    }

    #[test]
    fn rejects_a_degenerate_policy() {
        let bad = ScreenPolicy::default().oversample(1);
        assert!(OnlineProxy::with_defaults(bad, 0).is_err());
    }

    #[test]
    fn training_window_is_bounded() {
        let mut proxy = OnlineProxy::with_defaults(
            ScreenPolicy::default().warmup(10_000).refit_every(10_000),
            13,
        )
        .unwrap();
        feed(&mut proxy, 0, MAX_TRAIN + 500);
        assert_eq!(proxy.xs.len(), MAX_TRAIN);
        assert_eq!(proxy.ys.len(), MAX_TRAIN);
        assert_eq!(proxy.samples_seen(), (MAX_TRAIN + 500) as u64);
    }
}
