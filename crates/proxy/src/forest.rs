//! Bagged random forests with per-split feature subsampling.

use crate::tree::{RegressionTree, TreeConfig};
use archgym_core::error::{ArchGymError, Result};
use archgym_core::stats::rmse;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Forest hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Fraction of features examined at each split, in `(0, 1]`.
    pub feature_frac: f64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 24,
            max_depth: 10,
            min_samples_leaf: 2,
            feature_frac: 0.7,
        }
    }
}

/// A bagged random-forest regressor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
}

impl RandomForest {
    /// Fit a forest: each tree trains on a bootstrap resample with
    /// per-split feature subsampling.
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::Dataset`] for empty or mismatched data or
    /// degenerate hyperparameters.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], config: &ForestConfig, seed: u64) -> Result<Self> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(ArchGymError::Dataset(format!(
                "bad training set: {} rows, {} targets",
                xs.len(),
                ys.len()
            )));
        }
        if config.n_trees == 0
            || !(0.0..=1.0).contains(&config.feature_frac)
            || config.feature_frac <= 0.0
        {
            return Err(ArchGymError::Dataset(
                "forest needs n_trees >= 1 and feature_frac in (0, 1]".into(),
            ));
        }
        let n_features = xs[0].len();
        let features_per_split =
            ((n_features as f64 * config.feature_frac).ceil() as usize).clamp(1, n_features);
        let tree_cfg = TreeConfig {
            max_depth: config.max_depth,
            min_samples_leaf: config.min_samples_leaf.max(1),
            features_per_split: Some(features_per_split),
        };
        // Each tree gets its own deterministic sub-seed, so training is
        // bit-identical whether it runs on one thread or many.
        let n = xs.len();
        let fit_one = |tree_idx: usize| -> RegressionTree {
            let mut rng = archgym_core::seeded_rng(
                seed ^ (tree_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let mut bx = Vec::with_capacity(n);
            let mut by = Vec::with_capacity(n);
            for _ in 0..n {
                let i = rng.gen_range(0..n);
                bx.push(xs[i].clone());
                by.push(ys[i]);
            }
            RegressionTree::fit_with(&bx, &by, &tree_cfg, &mut rng)
        };
        let workers = std::thread::available_parallelism()
            .map(|w| w.get())
            .unwrap_or(1)
            .min(config.n_trees);
        let trees: Vec<RegressionTree> = if workers <= 1 {
            (0..config.n_trees).map(fit_one).collect()
        } else {
            let mut slots: Vec<Option<RegressionTree>> = Vec::new();
            slots.resize_with(config.n_trees, || None);
            let chunk = config.n_trees.div_ceil(workers);
            std::thread::scope(|scope| {
                for (c, slot_chunk) in slots.chunks_mut(chunk).enumerate() {
                    let fit_one = &fit_one;
                    scope.spawn(move || {
                        for (off, slot) in slot_chunk.iter_mut().enumerate() {
                            *slot = Some(fit_one(c * chunk + off));
                        }
                    });
                }
            });
            slots
                .into_iter()
                .map(|s| s.expect("worker filled every slot"))
                .collect()
        };
        Ok(RandomForest { trees })
    }

    /// Predict: the mean over all trees.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(x)).sum::<f64>() / self.trees.len() as f64
    }

    /// Predict a batch.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        let mut out = Vec::new();
        self.predict_batch_into(xs, &mut out);
        out
    }

    /// Predict a batch into a caller-owned buffer. The buffer is cleared
    /// and refilled, so a caller in a hot loop pays zero allocation once
    /// the buffer has reached the batch size.
    pub fn predict_batch_into(&self, xs: &[Vec<f64>], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(xs.len());
        out.extend(xs.iter().map(|x| self.predict(x)));
    }

    /// Predict one row with its ensemble disagreement: the mean over
    /// trees and the population variance of the per-tree predictions.
    /// High variance marks regions the forest has not learned — the
    /// screening layer samples them for exploration.
    pub fn predict_stats(&self, x: &[f64]) -> (f64, f64) {
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for tree in &self.trees {
            let p = tree.predict(x);
            sum += p;
            sum_sq += p * p;
        }
        let n = self.trees.len() as f64;
        let mean = sum / n;
        (mean, (sum_sq / n - mean * mean).max(0.0))
    }

    /// Batch [`predict_stats`](Self::predict_stats) into caller-owned
    /// buffers (cleared and refilled; zero steady-state allocation).
    pub fn predict_stats_into(&self, xs: &[Vec<f64>], means: &mut Vec<f64>, vars: &mut Vec<f64>) {
        means.clear();
        vars.clear();
        means.reserve(xs.len());
        vars.reserve(xs.len());
        for x in xs {
            let (mean, var) = self.predict_stats(x);
            means.push(mean);
            vars.push(var);
        }
    }

    pub(crate) fn trees(&self) -> &[RegressionTree] {
        &self.trees
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the forest has zero trees (never true after `fit`).
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Random hyperparameter search (the paper's Section 7.2 protocol):
    /// try `budget` random configurations, return the forest with the
    /// lowest RMSE on the validation split along with that RMSE.
    ///
    /// # Errors
    ///
    /// Propagates fit errors; errors if any split is empty.
    pub fn fit_best(
        train: (&[Vec<f64>], &[f64]),
        valid: (&[Vec<f64>], &[f64]),
        budget: usize,
        seed: u64,
    ) -> Result<(RandomForest, ForestConfig, f64)> {
        if valid.0.is_empty() {
            return Err(ArchGymError::Dataset("empty validation split".into()));
        }
        let mut rng = archgym_core::seeded_rng(seed);
        let mut best: Option<(RandomForest, ForestConfig, f64)> = None;
        for trial in 0..budget.max(1) {
            let config = ForestConfig {
                n_trees: [8, 16, 24, 32][rng.gen_range(0..4usize)],
                max_depth: rng.gen_range(6..=16),
                min_samples_leaf: rng.gen_range(1..=4),
                feature_frac: rng.gen_range(0.4..=1.0),
            };
            let forest = RandomForest::fit(train.0, train.1, &config, seed ^ trial as u64)?;
            let err = rmse(&forest.predict_batch(valid.0), valid.1);
            if best.as_ref().is_none_or(|(_, _, b)| err < *b) {
                best = Some((forest, config, err));
            }
        }
        Ok(best.expect("budget >= 1"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn friedman_like(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        use rand::Rng;
        let mut rng = archgym_core::seeded_rng(seed);
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..4).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 10.0 * x[0] + 5.0 * x[1] * x[1] + 2.0 * x[2] - x[3])
            .collect();
        (xs, ys)
    }

    #[test]
    fn forest_beats_a_stump_on_nonlinear_data() {
        let (xs, ys) = friedman_like(300, 1);
        let (tx, ty) = (&xs[..200], &ys[..200]);
        let (vx, vy) = (&xs[200..], &ys[200..]);
        let forest = RandomForest::fit(tx, ty, &ForestConfig::default(), 2).unwrap();
        let forest_err = rmse(&forest.predict_batch(vx), vy);
        let stump = RandomForest::fit(
            tx,
            ty,
            &ForestConfig {
                n_trees: 1,
                max_depth: 1,
                ..ForestConfig::default()
            },
            2,
        )
        .unwrap();
        let stump_err = rmse(&stump.predict_batch(vx), vy);
        assert!(
            forest_err < stump_err / 2.0,
            "forest {forest_err} vs stump {stump_err}"
        );
        assert!(forest_err < 1.0, "forest RMSE {forest_err}");
    }

    #[test]
    fn more_training_data_reduces_error() {
        // The Fig. 10 "dataset size matters" trend, in miniature.
        let (xs, ys) = friedman_like(600, 3);
        let (vx, vy) = (&xs[500..], &ys[500..]);
        let small = RandomForest::fit(&xs[..50], &ys[..50], &ForestConfig::default(), 4).unwrap();
        let large = RandomForest::fit(&xs[..500], &ys[..500], &ForestConfig::default(), 4).unwrap();
        let small_err = rmse(&small.predict_batch(vx), vy);
        let large_err = rmse(&large.predict_batch(vx), vy);
        assert!(
            large_err < small_err,
            "large {large_err} vs small {small_err}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let (xs, ys) = friedman_like(100, 5);
        let a = RandomForest::fit(&xs, &ys, &ForestConfig::default(), 9).unwrap();
        let b = RandomForest::fit(&xs, &ys, &ForestConfig::default(), 9).unwrap();
        assert_eq!(a, b);
        let c = RandomForest::fit(&xs, &ys, &ForestConfig::default(), 10).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn fit_rejects_bad_inputs() {
        assert!(RandomForest::fit(&[], &[], &ForestConfig::default(), 0).is_err());
        let xs = vec![vec![1.0]];
        assert!(RandomForest::fit(&xs, &[1.0, 2.0], &ForestConfig::default(), 0).is_err());
        let bad = ForestConfig {
            n_trees: 0,
            ..ForestConfig::default()
        };
        assert!(RandomForest::fit(&xs, &[1.0], &bad, 0).is_err());
    }

    #[test]
    fn batch_into_matches_the_allocating_batch() {
        let (xs, ys) = friedman_like(120, 13);
        let forest =
            RandomForest::fit(&xs[..100], &ys[..100], &ForestConfig::default(), 3).unwrap();
        let allocated = forest.predict_batch(&xs[100..]);
        let mut reused = vec![f64::NAN; 3]; // dirty, wrong-sized scratch
        forest.predict_batch_into(&xs[100..], &mut reused);
        assert_eq!(allocated, reused);
    }

    #[test]
    fn stats_mean_matches_predict_and_variance_is_sane() {
        let (xs, ys) = friedman_like(150, 17);
        let forest =
            RandomForest::fit(&xs[..120], &ys[..120], &ForestConfig::default(), 5).unwrap();
        let mut means = Vec::new();
        let mut vars = Vec::new();
        forest.predict_stats_into(&xs[120..], &mut means, &mut vars);
        for (x, (&mean, &var)) in xs[120..].iter().zip(means.iter().zip(&vars)) {
            let (m, v) = forest.predict_stats(x);
            assert_eq!(mean, m);
            assert_eq!(var, v);
            assert!(var >= 0.0);
            // Same accumulation order as predict(): bit-identical mean.
            assert_eq!(mean, forest.predict(x));
        }
        // Far outside the training hull the trees disagree more than at
        // the training centroid — the exploration signal.
        let (_, var_out) = forest.predict_stats(&[50.0, -50.0, 50.0, -50.0]);
        assert!(var_out > 0.0, "out-of-hull variance {var_out}");
    }

    #[test]
    fn fit_best_returns_lowest_validation_error() {
        let (xs, ys) = friedman_like(240, 7);
        let (forest, config, err) =
            RandomForest::fit_best((&xs[..180], &ys[..180]), (&xs[180..], &ys[180..]), 6, 11)
                .unwrap();
        assert!(err < 1.5, "tuned RMSE {err}");
        assert!(config.n_trees >= 8);
        assert!(!forest.is_empty());
    }
}
