//! Dataset → proxy-model training pipeline (the paper's Fig. 9).
//!
//! Utilities for building the Fig. 10 dataset tiers — fixed-size samples
//! drawn either from a *single agent* ("ACO-only") or blended across all
//! agents ("diverse") — training one random forest per target metric,
//! and reporting RMSE / correlation against held-out simulator truth.

use crate::forest::{ForestConfig, RandomForest};
use archgym_core::error::{ArchGymError, Result};
use archgym_core::stats::{pearson, rmse};
use archgym_core::trajectory::Dataset;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A trained proxy for one observation metric of one environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProxyModel {
    metric: usize,
    forest: RandomForest,
}

impl ProxyModel {
    /// The observation-metric index this proxy predicts.
    pub fn metric(&self) -> usize {
        self.metric
    }

    /// Predict the metric from raw action indices.
    pub fn predict(&self, action_indices: &[usize]) -> f64 {
        let x: Vec<f64> = action_indices.iter().map(|&i| i as f64).collect();
        self.forest.predict(&x)
    }

    /// Evaluate on a held-out dataset.
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::Dataset`] on empty or malformed data.
    pub fn report(&self, test: &Dataset) -> Result<ProxyReport> {
        let (xs, ys) = test.features_targets(self.metric)?;
        let preds: Vec<f64> = xs.iter().map(|x| self.forest.predict(x)).collect();
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let err = rmse(&preds, &ys);
        Ok(ProxyReport {
            metric: self.metric,
            rmse: err,
            relative_rmse: if mean.abs() < f64::EPSILON {
                f64::INFINITY
            } else {
                err / mean.abs()
            },
            correlation: pearson(&preds, &ys),
            n_test: ys.len(),
        })
    }
}

/// Held-out accuracy of a proxy model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProxyReport {
    /// Metric index predicted.
    pub metric: usize,
    /// Root-mean-square error in the metric's units.
    pub rmse: f64,
    /// RMSE divided by the mean target magnitude (the paper quotes
    /// percentages like "0.61 %").
    pub relative_rmse: f64,
    /// Pearson correlation of predicted vs actual (Fig. 11).
    pub correlation: f64,
    /// Held-out sample count.
    pub n_test: usize,
}

/// Train a proxy for `metric` on a training dataset, tuning forest
/// hyperparameters with a small random search against a validation
/// fraction of the training data (the paper's protocol).
///
/// # Errors
///
/// Returns [`ArchGymError::Dataset`] when the dataset is too small to
/// split (fewer than 8 transitions) or malformed.
pub fn train_proxy(
    train: &Dataset,
    metric: usize,
    search_budget: usize,
    seed: u64,
) -> Result<ProxyModel> {
    if train.len() < 8 {
        return Err(ArchGymError::Dataset(format!(
            "need at least 8 transitions to train a proxy, got {}",
            train.len()
        )));
    }
    let mut rng = archgym_core::seeded_rng(seed);
    let (fit_split, valid_split) = train.split(0.8, &mut rng);
    let (fx, fy) = fit_split.features_targets(metric)?;
    let (vx, vy) = valid_split.features_targets(metric)?;
    let (forest, _config, _err) =
        RandomForest::fit_best((&fx, &fy), (&vx, &vy), search_budget.max(1), seed)?;
    Ok(ProxyModel { metric, forest })
}

/// Train a proxy with fixed hyperparameters (no search).
///
/// # Errors
///
/// Propagates dataset and fit errors.
pub fn train_proxy_fixed(
    train: &Dataset,
    metric: usize,
    config: &ForestConfig,
    seed: u64,
) -> Result<ProxyModel> {
    let (xs, ys) = train.features_targets(metric)?;
    Ok(ProxyModel {
        metric,
        forest: RandomForest::fit(&xs, &ys, config, seed)?,
    })
}

/// The Fig. 10 dataset tiers: for each requested size, a single-source
/// sample and a diverse (all-agents) sample.
#[derive(Debug, Clone)]
pub struct DatasetTiers {
    /// `(size, single-source dataset, diverse dataset)` triples.
    pub tiers: Vec<(usize, Dataset, Dataset)>,
}

impl DatasetTiers {
    /// Build tiers from a pooled dataset. `single_agent` names the
    /// single-source agent (the paper uses ACO); each tier samples
    /// `size` transitions (clamped to availability) from the respective
    /// pool.
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::Dataset`] when the pool holds no
    /// transitions from `single_agent`.
    pub fn build<R: Rng + ?Sized>(
        pool: &Dataset,
        single_agent: &str,
        sizes: &[usize],
        rng: &mut R,
    ) -> Result<DatasetTiers> {
        let single_pool = pool.filter_agent(single_agent);
        if single_pool.is_empty() {
            return Err(ArchGymError::Dataset(format!(
                "no transitions from agent `{single_agent}` in the pool"
            )));
        }
        let tiers = sizes
            .iter()
            .map(|&size| (size, single_pool.sample(size, rng), pool.sample(size, rng)))
            .collect();
        Ok(DatasetTiers { tiers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archgym_core::env::{Observation, StepResult};
    use archgym_core::seeded_rng;
    use archgym_core::space::Action;
    use archgym_core::trajectory::Transition;

    /// Synthetic "simulator": metric 0 = 2·a₀ + a₁² (deterministic in the
    /// action), logged by two different agents over different regions.
    fn synthetic_pool() -> Dataset {
        let mut pool = Dataset::new();
        let mut push = |agent: &str, a0: usize, a1: usize| {
            let y = 2.0 * a0 as f64 + (a1 as f64).powi(2);
            let result = StepResult::terminal(Observation::new(vec![y]), -y);
            pool.push(Transition::new(
                "toy",
                agent,
                Action::new(vec![a0, a1]),
                &result,
            ));
        };
        // "aco" explores only the low corner; "ga"/"rw" cover the rest —
        // the diversity effect in miniature.
        for a0 in 0..4 {
            for a1 in 0..4 {
                push("aco", a0, a1);
            }
        }
        for a0 in 0..16 {
            for a1 in 0..16 {
                if a0 >= 4 || a1 >= 4 {
                    push(if a0 % 2 == 0 { "ga" } else { "rw" }, a0, a1);
                }
            }
        }
        pool
    }

    fn uniform_test_set() -> Dataset {
        let mut d = Dataset::new();
        for a0 in (0..16).step_by(3) {
            for a1 in (0..16).step_by(3) {
                let y = 2.0 * a0 as f64 + (a1 as f64).powi(2);
                let result = StepResult::terminal(Observation::new(vec![y]), -y);
                d.push(Transition::new(
                    "toy",
                    "test",
                    Action::new(vec![a0, a1]),
                    &result,
                ));
            }
        }
        d
    }

    #[test]
    fn trained_proxy_predicts_held_out_points() {
        let pool = synthetic_pool();
        let proxy = train_proxy(&pool, 0, 4, 1).unwrap();
        let report = proxy.report(&uniform_test_set()).unwrap();
        assert!(report.rmse < 12.0, "rmse {}", report.rmse);
        assert!(report.correlation > 0.95, "corr {}", report.correlation);
        assert!(report.relative_rmse < 0.2);
    }

    #[test]
    fn diverse_data_beats_single_source_out_of_distribution() {
        // The paper's core Section 7 claim, in miniature: the ACO-only
        // dataset covers a corner, so it extrapolates poorly.
        let pool = synthetic_pool();
        let mut rng = seeded_rng(2);
        let tiers = DatasetTiers::build(&pool, "aco", &[16, 64], &mut rng).unwrap();
        let test = uniform_test_set();
        let (_, single, diverse) = &tiers.tiers[1];
        let p_single = train_proxy_fixed(single, 0, &ForestConfig::default(), 3).unwrap();
        let p_diverse = train_proxy_fixed(diverse, 0, &ForestConfig::default(), 3).unwrap();
        let r_single = p_single.report(&test).unwrap();
        let r_diverse = p_diverse.report(&test).unwrap();
        assert!(
            r_diverse.rmse < r_single.rmse / 2.0,
            "diverse {} vs single {}",
            r_diverse.rmse,
            r_single.rmse
        );
    }

    #[test]
    fn tiers_have_requested_sizes() {
        let pool = synthetic_pool();
        let mut rng = seeded_rng(4);
        let tiers = DatasetTiers::build(&pool, "aco", &[8, 1000], &mut rng).unwrap();
        assert_eq!(tiers.tiers[0].1.len(), 8);
        assert_eq!(tiers.tiers[0].2.len(), 8);
        // Clamped to availability: ACO has only 16 transitions.
        assert_eq!(tiers.tiers[1].1.len(), 16);
        assert!(tiers.tiers[1].2.len() > 16);
    }

    #[test]
    fn tiers_reject_unknown_single_agent() {
        let pool = synthetic_pool();
        let mut rng = seeded_rng(5);
        assert!(DatasetTiers::build(&pool, "bo", &[8], &mut rng).is_err());
    }

    #[test]
    fn train_proxy_needs_enough_data() {
        let mut tiny = Dataset::new();
        let result = StepResult::terminal(Observation::new(vec![1.0]), 0.0);
        tiny.push(Transition::new("toy", "rw", Action::new(vec![0]), &result));
        assert!(train_proxy(&tiny, 0, 2, 0).is_err());
    }

    #[test]
    fn proxy_metric_accessor() {
        let pool = synthetic_pool();
        let proxy = train_proxy(&pool, 0, 2, 6).unwrap();
        assert_eq!(proxy.metric(), 0);
        let y = proxy.predict(&[2, 3]);
        assert!((y - 13.0).abs() < 10.0);
    }
}
