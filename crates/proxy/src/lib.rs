//! # archgym-proxy
//!
//! Random-forest **proxy cost models** trained from ArchGym exploration
//! datasets (the paper's Section 7).
//!
//! Because every agent logs through the same standardized interface, the
//! per-run datasets can be merged (for *size*) or blended across agents
//! (for *diversity*) and used to train a regressor that predicts a
//! simulator metric — latency, power, energy — directly from design
//! parameters. The paper reports an RMSE of 0.61 % for its power model
//! and a ~2,000× speedup over the cycle-accurate simulator; the Fig. 10
//! experiments show diversity is worth up to 42× in RMSE.
//!
//! * [`tree`] — CART regression trees (variance-reduction splits).
//! * [`forest`] — bagged forests with per-split feature subsampling and a
//!   random hyperparameter search (the paper tunes its forests the same
//!   way).
//! * [`flat`] — forests compiled to contiguous node lanes for
//!   allocation-free batch inference.
//! * [`online`] — the in-loop screener ([`OnlineProxy`]) that trains from
//!   a run's own settled samples and prunes proposal batches.
//! * [`pipeline`] — dataset → proxy training/evaluation utilities.
//!
//! # Example
//!
//! ```
//! use archgym_proxy::forest::{ForestConfig, RandomForest};
//!
//! // y = 3·x₀ (+ noise-free), learnable by a depth-limited forest.
//! let xs: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64, (i % 7) as f64]).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0]).collect();
//! let forest = RandomForest::fit(&xs, &ys, &ForestConfig::default(), 7).unwrap();
//! let pred = forest.predict(&[10.0, 3.0]);
//! assert!((pred - 30.0).abs() < 6.0);
//! ```

pub mod flat;
pub mod forest;
pub mod offline;
pub mod online;
pub mod pipeline;
pub mod proxy_env;
pub mod tree;

pub use flat::FlatForest;
pub use forest::{ForestConfig, RandomForest};
pub use offline::OfflineOptimizer;
pub use online::{online_forest_config, OnlineProxy};
pub use pipeline::{train_proxy, DatasetTiers, ProxyModel, ProxyReport};
pub use proxy_env::ProxyEnv;
pub use tree::RegressionTree;
