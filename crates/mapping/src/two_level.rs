//! Two-level (L1 + L2) mapping — the full space the paper's Table 3
//! names ("L1 and L2 mapping").
//!
//! The single-level space of [`crate::space::mapping_space`] tiles each
//! layer once; its VGG16-conv1_2 cardinality is ≈6.8e14. Squaring the
//! tile dimensions for a second level — an inner per-PE (L1) tile inside
//! the buffer-resident (L2) tile — gives ≈1.26e24, matching the paper's
//! quoted 1e24 for that layer. This module provides that full space:
//!
//! * **L2 tiles** stage data in the shared on-chip buffer (1 MiB), and
//!   the loop order over L2 tiles governs DRAM re-fetch exactly as in the
//!   single-level analysis.
//! * **L1 tiles** live in each PE's register file (4 KiB); the number of
//!   L1 tiles inside one L2 tile bounds the exploitable PE parallelism,
//!   and L2→L1 traffic pays the buffer access energy.
//! * L1 tile dimensions exceeding their L2 counterparts are infeasible —
//!   a second, plentiful source of the invalid mappings the paper
//!   discusses.

use crate::cost::{
    Mapping, MappingCost, MappingInfeasible, BUFFER_BYTES, BUF_PJ_PER_BYTE, CLOCK_GHZ,
    DRAM_BYTES_PER_CYCLE, DRAM_PJ_PER_BYTE, MAC_PJ, PE_AREA_MM2,
};
use crate::space::{loop_orders, parse_order};
use archgym_core::error::Result;
use archgym_core::space::{Action, ParamSpace};
use archgym_models::ConvLayer;
use serde::{Deserialize, Serialize};

/// Per-PE L1 (register-file) capacity in bytes.
pub const L1_BYTES: u64 = 4 << 10;
/// Energy of one L1 (register) access in pJ per byte.
pub const L1_PJ_PER_BYTE: f64 = 0.06;
/// Area of one PE's L1 storage in mm².
pub const L1_AREA_MM2: f64 = L1_BYTES as f64 * 8.0 * 1.2e-6;

/// A two-level mapping: an L2 tiling (as in [`Mapping`]) plus an inner
/// L1 tiling of the same six dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping2L {
    /// The outer (buffer-level) mapping, including loop order and PEs.
    pub l2: Mapping,
    /// Inner L1 tile sizes `(s, r, x, y, c, k)`.
    pub l1: [u64; 6],
}

/// Build the 14-dimensional two-level space for a layer.
///
/// ```
/// let net = archgym_models::vgg16();
/// let space = archgym_mapping::two_level::mapping_space_two_level(
///     net.layer("conv1_2").unwrap(),
/// );
/// assert_eq!(space.len(), 14);
/// // The paper's quoted 1e24 for this layer.
/// assert!(space.cardinality() > 1e24);
/// ```
pub fn mapping_space_two_level(layer: &ConvLayer) -> ParamSpace {
    ParamSpace::builder()
        .int("L2_Filter_X", 1, layer.s as i64, 1)
        .int("L2_Filter_Y", 1, layer.r as i64, 1)
        .int("L2_Input_X", 1, layer.x as i64, 1)
        .int("L2_Input_Y", 1, layer.y as i64, 1)
        .int("L2_Input_Channels", 1, layer.c as i64, 1)
        .int("L2_Num_Filters", 1, layer.k as i64, 1)
        .int("L1_Filter_X", 1, layer.s as i64, 1)
        .int("L1_Filter_Y", 1, layer.r as i64, 1)
        .int("L1_Input_X", 1, layer.x as i64, 1)
        .int("L1_Input_Y", 1, layer.y as i64, 1)
        .int("L1_Input_Channels", 1, layer.c as i64, 1)
        .int("L1_Num_Filters", 1, layer.k as i64, 1)
        .categorical("LoopOrder", loop_orders())
        .int("Num_PE", 1, 1024, 2)
        .build()
        .expect("layer dimensions are positive")
}

/// Decode a two-level action into a [`Mapping2L`].
///
/// # Errors
///
/// Returns [`archgym_core::ArchGymError::InvalidAction`] if the action
/// does not fit the space.
pub fn decode_mapping_two_level(space: &ParamSpace, action: &Action) -> Result<Mapping2L> {
    space.validate(action)?;
    let int = |name: &str| -> u64 {
        space
            .decode_one(action, name)
            .as_int()
            .expect("numeric dimension") as u64
    };
    let order_name = space
        .decode_one(action, "LoopOrder")
        .as_cat()
        .expect("categorical dimension")
        .to_owned();
    Ok(Mapping2L {
        l2: Mapping {
            tile_s: int("L2_Filter_X"),
            tile_r: int("L2_Filter_Y"),
            tile_x: int("L2_Input_X"),
            tile_y: int("L2_Input_Y"),
            tile_c: int("L2_Input_Channels"),
            tile_k: int("L2_Num_Filters"),
            order: parse_order(&order_name),
            num_pe: int("Num_PE"),
        },
        l1: [
            int("L1_Filter_X"),
            int("L1_Filter_Y"),
            int("L1_Input_X"),
            int("L1_Input_Y"),
            int("L1_Input_Channels"),
            int("L1_Num_Filters"),
        ],
    })
}

/// Evaluate a two-level mapping of one layer.
///
/// # Errors
///
/// Returns a [`MappingInfeasible`] when L1 tiles exceed their L2
/// counterparts, the L1 tile overflows the register file, or the L2 tile
/// overflows the buffer.
pub fn evaluate_mapping_two_level(
    mapping: &Mapping2L,
    layer: &ConvLayer,
) -> std::result::Result<MappingCost, MappingInfeasible> {
    let l2 = &mapping.l2;
    let l2_dims = [
        l2.tile_s, l2.tile_r, l2.tile_x, l2.tile_y, l2.tile_c, l2.tile_k,
    ];
    for (l1, l2d) in mapping.l1.iter().zip(&l2_dims) {
        if *l1 == 0 || l1 > l2d {
            return Err(MappingInfeasible::TileOutOfRange);
        }
    }
    // L1 tile working set in the per-PE register file.
    let [s1, r1, x1, y1, c1, k1] = mapping.l1;
    let in_x1 = (x1 - 1) * layer.stride + s1;
    let in_y1 = (y1 - 1) * layer.stride + r1;
    let l1_bytes = k1 * c1 * r1 * s1 + c1 * in_x1 * in_y1 + k1 * x1 * y1 * 4;
    if l1_bytes > L1_BYTES {
        return Err(MappingInfeasible::BufferOverflow {
            required: l1_bytes,
            capacity: L1_BYTES,
        });
    }

    // The outer analysis (DRAM traffic, L2 feasibility) is the
    // single-level model over the L2 tiles.
    let outer = crate::cost::evaluate_mapping(l2, layer)?;

    // Parallelism: PEs work on distinct L1 tiles inside one L2 tile.
    let l1_tiles_in_l2: u64 = l2_dims
        .iter()
        .zip(&mapping.l1)
        .map(|(&l2d, &l1d)| l2d.div_ceil(l1d))
        .product();
    let pe_used = l2.num_pe.min(l1_tiles_in_l2).max(1);
    let edge_eff = l1_tiles_in_l2 as f64 / (l1_tiles_in_l2.div_ceil(pe_used) * pe_used) as f64;
    let macs = layer.macs();
    let compute_cycles = macs as f64 / (pe_used as f64 * edge_eff);
    let dram_cycles = outer.dram_mb * 1024.0 * 1024.0 / DRAM_BYTES_PER_CYCLE;
    let latency_cycles = compute_cycles.max(dram_cycles);

    // Traffic: DRAM from the outer analysis; L2→L1 pays buffer energy per
    // L1-tile load; L1→MAC pays register energy.
    let macs_per_l1_tile = (k1 * c1 * r1 * s1 * x1 * y1).max(1);
    let l1_tile_loads = macs as f64 / macs_per_l1_tile as f64;
    let l2_to_l1_bytes = l1_tile_loads * l1_bytes as f64;
    let l1_to_mac_bytes = 2.0 * macs as f64;
    let dram_bytes = outer.dram_mb * 1024.0 * 1024.0;
    let energy_pj = macs as f64 * MAC_PJ
        + l1_to_mac_bytes * L1_PJ_PER_BYTE
        + l2_to_l1_bytes * BUF_PJ_PER_BYTE
        + dram_bytes * DRAM_PJ_PER_BYTE;

    let runtime_s = latency_cycles / (CLOCK_GHZ * 1e9);
    Ok(MappingCost {
        runtime_ms: runtime_s * 1e3,
        throughput_gmacs: macs as f64 / runtime_s / 1e9,
        energy_mj: energy_pj / 1e9,
        area_mm2: l2.num_pe as f64 * (PE_AREA_MM2 + L1_AREA_MM2)
            + BUFFER_BYTES as f64 * crate::cost::BUF_AREA_PER_BYTE,
        dram_mb: outer.dram_mb,
        compute_bound: compute_cycles >= dram_cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer() -> ConvLayer {
        archgym_models::resnet18().layer("stage2").unwrap().clone()
    }

    fn base() -> Mapping2L {
        Mapping2L {
            l2: Mapping {
                tile_s: 3,
                tile_r: 3,
                tile_x: 14,
                tile_y: 14,
                tile_c: 32,
                tile_k: 16,
                order: parse_order("KCYXRS"),
                num_pe: 256,
            },
            l1: [3, 3, 2, 2, 8, 2],
        }
    }

    #[test]
    fn vgg16_conv1_2_cardinality_matches_the_papers_1e24() {
        let net = archgym_models::vgg16();
        let space = mapping_space_two_level(net.layer("conv1_2").unwrap());
        let single = 3.0 * 3.0 * 224.0 * 224.0 * 64.0 * 64.0;
        let expected = single * single * 720.0 * 512.0;
        assert_eq!(space.cardinality(), expected);
        assert!((1.0e24..2.0e24).contains(&space.cardinality()));
    }

    #[test]
    fn base_two_level_mapping_is_feasible() {
        let cost = evaluate_mapping_two_level(&base(), &layer()).unwrap();
        assert!(cost.runtime_ms > 0.0);
        assert!(cost.energy_mj > 0.0);
        assert!(cost.area_mm2 > 1.0);
    }

    #[test]
    fn l1_exceeding_l2_is_infeasible() {
        let mut m = base();
        m.l1[4] = 64; // c tile > L2's 32
        assert_eq!(
            evaluate_mapping_two_level(&m, &layer()).unwrap_err(),
            MappingInfeasible::TileOutOfRange
        );
    }

    #[test]
    fn oversized_l1_tile_overflows_the_register_file() {
        let mut m = base();
        m.l2.tile_x = 28;
        m.l2.tile_y = 28;
        m.l1 = [3, 3, 28, 28, 32, 16]; // ≈ register-file blowout
        let err = evaluate_mapping_two_level(&m, &layer()).unwrap_err();
        assert!(matches!(
            err,
            MappingInfeasible::BufferOverflow {
                capacity: L1_BYTES,
                ..
            }
        ));
    }

    #[test]
    fn finer_l1_tiles_expose_more_parallelism() {
        let coarse = base(); // 1×1×7×7×4×8 = a few hundred L1 tiles
        let mut fine = base();
        fine.l1 = [1, 1, 1, 1, 4, 1];
        let c_coarse = evaluate_mapping_two_level(&coarse, &layer()).unwrap();
        let c_fine = evaluate_mapping_two_level(&fine, &layer()).unwrap();
        assert!(
            c_fine.runtime_ms <= c_coarse.runtime_ms,
            "fine {} vs coarse {}",
            c_fine.runtime_ms,
            c_coarse.runtime_ms
        );
        // ... but finer tiles reload the register file more often.
        assert!(c_fine.energy_mj >= c_coarse.energy_mj * 0.9);
    }

    #[test]
    fn decode_roundtrip_of_sampled_actions() {
        use archgym_core::seeded_rng;
        let l = layer();
        let space = mapping_space_two_level(&l);
        let mut rng = seeded_rng(8);
        let mut feasible = 0;
        const N: usize = 20_000;
        for _ in 0..N {
            let action = space.sample(&mut rng);
            let m = decode_mapping_two_level(&space, &action).unwrap();
            assert!(m.l2.num_pe % 2 == 1);
            if evaluate_mapping_two_level(&m, &l).is_ok() {
                feasible += 1;
            }
        }
        // The two-level space is overwhelmingly infeasible (each L1 tile
        // must nest inside its L2 tile, and both levels must fit their
        // storage) — the paper's "numerous infeasible design points",
        // magnified.
        assert!(feasible > 0, "no feasible two-level mapping in {N} samples");
        assert!(
            (feasible as f64) < 0.05 * N as f64,
            "suspiciously many feasible mappings: {feasible}/{N}"
        );
    }
}
