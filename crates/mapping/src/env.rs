//! [`MappingEnv`] — the MaestroGym environment.

use crate::cost::evaluate_mapping;
use crate::space::{decode_mapping, mapping_space};
use archgym_core::env::{Environment, Observation, StepResult};
use archgym_core::error::{ArchGymError, Result};
use archgym_core::reward::RewardSpec;
use archgym_core::space::{Action, ParamSpace};
use archgym_models::{ConvLayer, Network};

/// Observation metric indices for MaestroGym.
pub mod metric {
    /// Layer runtime in milliseconds.
    pub const RUNTIME: usize = 0;
    /// Throughput in GMACs/s.
    pub const THROUGHPUT: usize = 1;
    /// Energy in millijoules.
    pub const ENERGY: usize = 2;
    /// Area in mm².
    pub const AREA: usize = 3;
}

/// A MaestroGym optimization objective — the paper's `r = 1/X`
/// minimization form (Table 3).
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    name: String,
    spec: RewardSpec,
}

impl Objective {
    /// Minimize layer runtime (the Fig. 6 latency objective).
    pub fn runtime() -> Self {
        Objective {
            name: "runtime".into(),
            spec: RewardSpec::Inverse {
                metric: metric::RUNTIME,
            },
        }
    }

    /// Minimize energy.
    pub fn energy() -> Self {
        Objective {
            name: "energy".into(),
            spec: RewardSpec::Inverse {
                metric: metric::ENERGY,
            },
        }
    }

    /// Minimize an energy-delay-like weighted sum of runtime and energy.
    pub fn edp(runtime_weight: f64, energy_weight: f64) -> Self {
        Objective {
            name: "edp".into(),
            spec: RewardSpec::WeightedSum {
                weights: vec![
                    (metric::RUNTIME, runtime_weight),
                    (metric::ENERGY, energy_weight),
                ],
            },
        }
    }

    /// The objective's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying reward formulation.
    pub fn spec(&self) -> &RewardSpec {
        &self.spec
    }
}

/// The MaestroGym environment: one layer's mapping space + one objective.
#[derive(Debug, Clone)]
pub struct MappingEnv {
    space: ParamSpace,
    layer: ConvLayer,
    objective: Objective,
    name: String,
    two_level: bool,
}

impl MappingEnv {
    /// Create an environment for one layer of a network.
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::InvalidConfig`] for unknown layer names.
    pub fn for_layer(network: &Network, layer_name: &str, objective: Objective) -> Result<Self> {
        let layer = network
            .layer(layer_name)
            .ok_or_else(|| {
                ArchGymError::InvalidConfig(format!(
                    "network `{}` has no layer `{layer_name}`",
                    network.name()
                ))
            })?
            .clone();
        Ok(Self::new(network.name(), layer, objective))
    }

    /// Create an environment directly from a layer.
    pub fn new(network_name: &str, layer: ConvLayer, objective: Objective) -> Self {
        let name = format!("maestro/{network_name}/{}", layer.name);
        MappingEnv {
            space: mapping_space(&layer),
            layer,
            objective,
            name,
            two_level: false,
        }
    }

    /// Create a **two-level** (L1 + L2) environment for one layer — the
    /// full 14-dimensional space the paper's Table 3 names ("L1 and L2
    /// mapping"; ≈1e24 points for VGG16's second layer).
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::InvalidConfig`] for unknown layer names.
    pub fn two_level_for_layer(
        network: &Network,
        layer_name: &str,
        objective: Objective,
    ) -> Result<Self> {
        let mut env = Self::for_layer(network, layer_name, objective)?;
        env.space = crate::two_level::mapping_space_two_level(&env.layer);
        env.name = format!("{}/2level", env.name);
        env.two_level = true;
        Ok(env)
    }

    /// The layer being mapped.
    pub fn layer(&self) -> &ConvLayer {
        &self.layer
    }

    /// The optimization objective.
    pub fn objective(&self) -> &Objective {
        &self.objective
    }
}

impl Environment for MappingEnv {
    fn name(&self) -> &str {
        &self.name
    }

    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn observation_labels(&self) -> Vec<String> {
        vec![
            "runtime_ms".into(),
            "throughput_gmacs".into(),
            "energy_mj".into(),
            "area_mm2".into(),
        ]
    }

    fn step(&mut self, action: &Action) -> StepResult {
        let evaluated = if self.two_level {
            match crate::two_level::decode_mapping_two_level(&self.space, action) {
                Ok(m) => crate::two_level::evaluate_mapping_two_level(&m, &self.layer),
                Err(_) => return StepResult::infeasible(Observation::new(vec![0.0; 4]), -1.0),
            }
        } else {
            match decode_mapping(&self.space, action) {
                Ok(m) => evaluate_mapping(&m, &self.layer),
                Err(_) => return StepResult::infeasible(Observation::new(vec![0.0; 4]), -1.0),
            }
        };
        match evaluated {
            Ok(cost) => {
                let observation = Observation::new(vec![
                    cost.runtime_ms,
                    cost.throughput_gmacs,
                    cost.energy_mj,
                    cost.area_mm2,
                ]);
                let reward = self.objective.spec.reward(&observation);
                StepResult::terminal(observation, reward)
                    .with_info("dram_mb", cost.dram_mb)
                    .with_info("compute_bound", f64::from(cost.compute_bound))
            }
            Err(_) => StepResult::infeasible(Observation::new(vec![0.0; 4]), -1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archgym_core::agent::RandomWalker;
    use archgym_core::search::{RunConfig, SearchLoop};
    use archgym_core::seeded_rng;

    #[test]
    fn for_layer_rejects_unknown_names() {
        let net = archgym_models::resnet18();
        assert!(MappingEnv::for_layer(&net, "nope", Objective::runtime()).is_err());
        let env = MappingEnv::for_layer(&net, "stage1", Objective::runtime()).unwrap();
        assert_eq!(env.name(), "maestro/resnet18/stage1");
    }

    #[test]
    fn step_reports_four_metrics() {
        let net = archgym_models::resnet18();
        let mut env = MappingEnv::for_layer(&net, "stage2", Objective::runtime()).unwrap();
        let mut rng = seeded_rng(4);
        for _ in 0..50 {
            let action = env.space().sample(&mut rng);
            let result = env.step(&action);
            if result.feasible {
                assert_eq!(result.observation.len(), 4);
                assert!(result.reward > 0.0);
                return;
            }
        }
        panic!("no feasible mapping in 50 samples");
    }

    #[test]
    fn infeasible_mappings_penalized() {
        let net = archgym_models::vgg16();
        let mut env = MappingEnv::for_layer(&net, "conv1_2", Objective::runtime()).unwrap();
        // Max tiles on a 224×224×64×64 layer blow the 1 MiB buffer.
        let space = env.space().clone();
        let maxed = Action::new(
            space
                .cardinalities()
                .iter()
                .map(|&c| c - 1)
                .collect::<Vec<usize>>(),
        );
        let result = env.step(&maxed);
        assert!(!result.feasible);
        assert!(result.reward < 0.0);
    }

    #[test]
    fn random_search_improves_runtime() {
        let net = archgym_models::resnet18();
        let mut env = MappingEnv::for_layer(&net, "stage3", Objective::runtime()).unwrap();
        let mut agent = RandomWalker::new(env.space().clone(), 13);
        let result = SearchLoop::new(RunConfig::with_budget(256)).run(&mut agent, &mut env);
        assert!(result.best_reward > 0.0);
        let best_runtime = result.best_observation[metric::RUNTIME];
        // 256 random mappings should find something under 10 ms for this
        // ~0.15 GMAC layer.
        assert!(best_runtime < 10.0, "best runtime {best_runtime} ms");
    }

    #[test]
    fn two_level_env_serves_the_same_interface() {
        let net = archgym_models::resnet18();
        let mut env =
            MappingEnv::two_level_for_layer(&net, "stage2", Objective::runtime()).unwrap();
        assert_eq!(env.name(), "maestro/resnet18/stage2/2level");
        assert_eq!(env.space().len(), 14);
        let mut rng = seeded_rng(9);
        let mut feasible = 0usize;
        for _ in 0..20_000 {
            let action = env.space().sample(&mut rng);
            let result = env.step(&action);
            if result.feasible {
                assert_eq!(result.observation.len(), 4);
                assert!(result.reward > 0.0);
                feasible += 1;
                if feasible > 3 {
                    return;
                }
            } else {
                assert!(result.reward < 0.0);
            }
        }
        panic!("no feasible two-level mapping sampled");
    }

    #[test]
    fn objectives_have_names() {
        assert_eq!(Objective::runtime().name(), "runtime");
        assert_eq!(Objective::energy().name(), "energy");
        assert_eq!(Objective::edp(1.0, 1.0).name(), "edp");
    }

    #[test]
    fn deterministic_steps() {
        let net = archgym_models::alexnet();
        let mut env = MappingEnv::for_layer(&net, "conv3", Objective::energy()).unwrap();
        let mut rng = seeded_rng(5);
        let action = env.space().sample(&mut rng);
        assert_eq!(env.step(&action), env.step(&action));
    }
}
