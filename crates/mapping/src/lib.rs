//! # archgym-mapping — MaestroGym
//!
//! A data-centric DNN-mapping cost model environment for ArchGym,
//! standing in for the MAESTRO evaluator used by the paper.
//!
//! A *mapping* for one convolution layer is a per-dimension tile size
//! (`Filter_X/Y`, `Input_X/Y`, `Input Channels`, `Number of Filters`), a
//! loop order over `<S, R, X, Y, C, K>`, and a PE count — exactly the
//! Fig. 3(d) space. The cost model performs classic tiling reuse
//! analysis: the loop order decides which tensors are re-fetched from
//! DRAM across outer tiles, tile sizes decide buffer pressure and
//! parallelism, and the observation is `<runtime, throughput, energy,
//! area>` (Table 3) with the reward `r = 1/X` minimization formulation.
//!
//! # Example
//!
//! ```
//! use archgym_core::prelude::*;
//! use archgym_mapping::{MappingEnv, Objective};
//!
//! let net = archgym_models::resnet18();
//! let mut env = MappingEnv::for_layer(&net, "stage1", Objective::runtime()).unwrap();
//! let mut rng = archgym_core::seeded_rng(2);
//! let action = env.space().sample(&mut rng);
//! let result = env.step(&action);
//! assert_eq!(result.observation.len(), 4);
//! ```

pub mod cost;
pub mod env;
pub mod space;
pub mod two_level;

pub use cost::{evaluate_mapping, Mapping, MappingCost, MappingInfeasible, TensorDim};
pub use env::{MappingEnv, Objective};
pub use space::{decode_mapping, loop_orders, mapping_space};
pub use two_level::{
    decode_mapping_two_level, evaluate_mapping_two_level, mapping_space_two_level, Mapping2L,
};
