//! Data-centric mapping cost analysis (MAESTRO-flavored).
//!
//! Classic tiling reuse analysis: the loop nest iterates over tiles of
//! each dimension (outermost first per the mapping's loop order). Each
//! tensor — weights `(K,C,R,S)`, inputs `(C,X,Y)` (plus halo), outputs
//! `(K,X,Y)` — must be re-fetched from DRAM once per iteration of every
//! loop it does *not* depend on that sits **outside** its innermost
//! dependent loop; tensors that fit on-chip in their entirety are fetched
//! once. Compute parallelism comes from intra-tile output parallelism
//! across `Num_PE` processing elements.

use archgym_models::ConvLayer;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A loop dimension of the convolution nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TensorDim {
    /// Filter width.
    S,
    /// Filter height.
    R,
    /// Output width.
    X,
    /// Output height.
    Y,
    /// Input channels.
    C,
    /// Output channels (filters).
    K,
}

/// One candidate mapping of a layer (decoded Fig. 3(d) action).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    /// Filter-width tile.
    pub tile_s: u64,
    /// Filter-height tile.
    pub tile_r: u64,
    /// Output-width tile.
    pub tile_x: u64,
    /// Output-height tile.
    pub tile_y: u64,
    /// Input-channel tile.
    pub tile_c: u64,
    /// Output-channel tile.
    pub tile_k: u64,
    /// Loop order, outermost first.
    pub order: [TensorDim; 6],
    /// Number of processing elements.
    pub num_pe: u64,
}

/// Why a mapping is infeasible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MappingInfeasible {
    /// The tile working set exceeds the on-chip buffer.
    BufferOverflow {
        /// Bytes required by one tile.
        required: u64,
        /// On-chip capacity.
        capacity: u64,
    },
    /// A tile dimension exceeds its layer dimension.
    TileOutOfRange,
}

impl fmt::Display for MappingInfeasible {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingInfeasible::BufferOverflow { required, capacity } => {
                write!(
                    f,
                    "tile needs {required} B on-chip, capacity is {capacity} B"
                )
            }
            MappingInfeasible::TileOutOfRange => write!(f, "tile exceeds layer dimension"),
        }
    }
}

/// Evaluation outputs — the MaestroGym observation source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingCost {
    /// Layer runtime in milliseconds.
    pub runtime_ms: f64,
    /// Throughput in GMACs per second.
    pub throughput_gmacs: f64,
    /// Energy in millijoules.
    pub energy_mj: f64,
    /// Area in mm² (PEs plus the on-chip buffer).
    pub area_mm2: f64,
    /// DRAM traffic in megabytes.
    pub dram_mb: f64,
    /// Whether the layer was compute-bound.
    pub compute_bound: bool,
}

/// Accelerator clock in GHz.
pub const CLOCK_GHZ: f64 = 1.0;
/// On-chip buffer capacity in bytes (a MAESTRO-scale L2).
pub const BUFFER_BYTES: u64 = 1 << 20;
/// DRAM bandwidth in bytes per cycle.
pub const DRAM_BYTES_PER_CYCLE: f64 = 16.0;
/// Energy constants (pJ).
pub const MAC_PJ: f64 = 0.4;
/// On-chip buffer access energy per byte (pJ).
pub const BUF_PJ_PER_BYTE: f64 = 0.8;
/// DRAM access energy per byte (pJ).
pub const DRAM_PJ_PER_BYTE: f64 = 50.0;
/// PE area (mm²).
pub const PE_AREA_MM2: f64 = 0.008;
/// Buffer area per byte (mm²).
pub const BUF_AREA_PER_BYTE: f64 = 3.0e-7 * 8.0;

fn dep_dims(tensor: &str) -> &'static [TensorDim] {
    match tensor {
        "weights" => &[TensorDim::K, TensorDim::C, TensorDim::R, TensorDim::S],
        "inputs" => &[
            TensorDim::C,
            TensorDim::X,
            TensorDim::Y,
            TensorDim::R,
            TensorDim::S,
        ],
        "outputs" => &[TensorDim::K, TensorDim::X, TensorDim::Y],
        other => panic!("unknown tensor `{other}`"),
    }
}

/// Evaluate one mapping of one layer.
///
/// # Errors
///
/// Returns a [`MappingInfeasible`] when the tile working set overflows
/// the on-chip buffer or a tile exceeds its dimension.
pub fn evaluate_mapping(
    mapping: &Mapping,
    layer: &ConvLayer,
) -> Result<MappingCost, MappingInfeasible> {
    let dims = [
        (TensorDim::S, layer.s, mapping.tile_s),
        (TensorDim::R, layer.r, mapping.tile_r),
        (TensorDim::X, layer.x, mapping.tile_x),
        (TensorDim::Y, layer.y, mapping.tile_y),
        (TensorDim::C, layer.c, mapping.tile_c),
        (TensorDim::K, layer.k, mapping.tile_k),
    ];
    for &(_, full, tile) in &dims {
        if tile == 0 || tile > full {
            return Err(MappingInfeasible::TileOutOfRange);
        }
    }
    let trip = |d: TensorDim| -> u64 {
        let &(_, full, tile) = dims.iter().find(|&&(dd, _, _)| dd == d).unwrap();
        full.div_ceil(tile)
    };

    // Tile working set (halo'd inputs, 4-byte partial sums).
    let in_x = (mapping.tile_x - 1) * layer.stride + mapping.tile_s;
    let in_y = (mapping.tile_y - 1) * layer.stride + mapping.tile_r;
    let w_tile = mapping.tile_k * mapping.tile_c * mapping.tile_r * mapping.tile_s;
    let i_tile = mapping.tile_c * in_x * in_y;
    let o_tile = mapping.tile_k * mapping.tile_x * mapping.tile_y * 4;
    let tile_bytes = w_tile + i_tile + o_tile;
    if tile_bytes > BUFFER_BYTES {
        return Err(MappingInfeasible::BufferOverflow {
            required: tile_bytes,
            capacity: BUFFER_BYTES,
        });
    }

    // DRAM traffic per tensor: size × Π trips of irrelevant loops outer
    // to the tensor's innermost dependent loop; capped at one fetch when
    // the whole tensor fits on-chip beside the active tile.
    let tensor_traffic = |tensor: &str, size: u64| -> f64 {
        if size + tile_bytes <= BUFFER_BYTES {
            return size as f64; // fully resident
        }
        let deps = dep_dims(tensor);
        let innermost_dep = mapping
            .order
            .iter()
            .rposition(|d| deps.contains(d))
            .unwrap_or(0);
        let refetch: u64 = mapping.order[..innermost_dep]
            .iter()
            .filter(|d| !deps.contains(d))
            .map(|&d| trip(d))
            .product();
        size as f64 * refetch.max(1) as f64
    };
    let w_size = layer.weight_elems();
    let i_size = layer.input_elems();
    let o_size = layer.output_elems();
    let dram_bytes = tensor_traffic("weights", w_size)
        + tensor_traffic("inputs", i_size)
        + 2.0 * tensor_traffic("outputs", o_size); // read-modify-write

    // Compute: intra-tile output parallelism across PEs.
    let macs = layer.macs();
    let tile_outputs = mapping.tile_k * mapping.tile_x * mapping.tile_y;
    let pe_used = mapping.num_pe.min(tile_outputs).max(1);
    let edge_eff = tile_outputs as f64 / (tile_outputs.div_ceil(pe_used) * pe_used) as f64;
    let compute_cycles = macs as f64 / (pe_used as f64 * edge_eff);
    let dram_cycles = dram_bytes / DRAM_BYTES_PER_CYCLE;
    let latency_cycles = compute_cycles.max(dram_cycles);

    // Buffer traffic: every tile loaded once per its loop iteration.
    let total_tiles: u64 = [
        TensorDim::S,
        TensorDim::R,
        TensorDim::X,
        TensorDim::Y,
        TensorDim::C,
        TensorDim::K,
    ]
    .iter()
    .map(|&d| trip(d))
    .product();
    let buf_bytes = total_tiles as f64 * tile_bytes as f64;

    let energy_pj =
        macs as f64 * MAC_PJ + buf_bytes * BUF_PJ_PER_BYTE + dram_bytes * DRAM_PJ_PER_BYTE;
    let runtime_s = latency_cycles / (CLOCK_GHZ * 1e9);

    Ok(MappingCost {
        runtime_ms: runtime_s * 1e3,
        throughput_gmacs: macs as f64 / runtime_s / 1e9,
        energy_mj: energy_pj / 1e9,
        area_mm2: mapping.num_pe as f64 * PE_AREA_MM2 + BUFFER_BYTES as f64 * BUF_AREA_PER_BYTE,
        dram_mb: dram_bytes / (1024.0 * 1024.0),
        compute_bound: compute_cycles >= dram_cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::parse_order;

    fn layer() -> ConvLayer {
        archgym_models::resnet18().layer("stage2").unwrap().clone()
    }

    fn base_mapping() -> Mapping {
        Mapping {
            tile_s: 3,
            tile_r: 3,
            tile_x: 14,
            tile_y: 14,
            tile_c: 32,
            tile_k: 16,
            order: parse_order("KCYXRS"),
            num_pe: 256,
        }
    }

    #[test]
    fn base_mapping_is_feasible_and_sane() {
        let cost = evaluate_mapping(&base_mapping(), &layer()).unwrap();
        assert!(cost.runtime_ms > 0.0);
        assert!(cost.throughput_gmacs > 0.0);
        assert!(cost.energy_mj > 0.0);
        assert!(cost.area_mm2 > 1.0);
        assert!(cost.dram_mb > 0.0);
    }

    #[test]
    fn more_pes_reduce_compute_bound_runtime() {
        let mut few = base_mapping();
        few.num_pe = 16;
        let mut many = base_mapping();
        many.num_pe = 1024;
        let c_few = evaluate_mapping(&few, &layer()).unwrap();
        let c_many = evaluate_mapping(&many, &layer()).unwrap();
        assert!(c_many.runtime_ms <= c_few.runtime_ms);
        assert!(c_many.area_mm2 > c_few.area_mm2);
    }

    #[test]
    fn loop_order_changes_dram_traffic() {
        // Weights-innermost order re-fetches weights across X/Y tiles;
        // weights-outermost keeps them resident per K/C tile.
        let l = archgym_models::vgg16().layer("conv4_1").unwrap().clone();
        let mut weights_thrash = base_mapping();
        weights_thrash.tile_c = 64;
        weights_thrash.tile_k = 64;
        weights_thrash.tile_x = 7;
        weights_thrash.tile_y = 7;
        weights_thrash.order = parse_order("XYKCRS"); // X/Y outer, weights deps inner
        let mut weights_friendly = weights_thrash;
        weights_friendly.order = parse_order("KCRSXY"); // weights deps outer
        let c_thrash = evaluate_mapping(&weights_thrash, &l).unwrap();
        let c_friendly = evaluate_mapping(&weights_friendly, &l).unwrap();
        assert!(
            c_friendly.dram_mb < c_thrash.dram_mb,
            "friendly {} MB vs thrash {} MB",
            c_friendly.dram_mb,
            c_thrash.dram_mb
        );
    }

    #[test]
    fn oversized_tile_overflows_buffer() {
        let l = archgym_models::vgg16().layer("conv1_2").unwrap().clone();
        let huge = Mapping {
            tile_s: 3,
            tile_r: 3,
            tile_x: 224,
            tile_y: 224,
            tile_c: 64,
            tile_k: 64,
            order: parse_order("SRXYCK"),
            num_pe: 256,
        };
        let err = evaluate_mapping(&huge, &l).unwrap_err();
        assert!(matches!(err, MappingInfeasible::BufferOverflow { .. }));
    }

    #[test]
    fn tile_out_of_range_is_rejected() {
        let mut m = base_mapping();
        m.tile_k = 4096; // layer has 128 filters
        assert_eq!(
            evaluate_mapping(&m, &layer()).unwrap_err(),
            MappingInfeasible::TileOutOfRange
        );
        m.tile_k = 0;
        assert_eq!(
            evaluate_mapping(&m, &layer()).unwrap_err(),
            MappingInfeasible::TileOutOfRange
        );
    }

    #[test]
    fn tiny_tiles_waste_buffer_bandwidth() {
        let mut tiny = base_mapping();
        tiny.tile_x = 1;
        tiny.tile_y = 1;
        tiny.tile_c = 1;
        tiny.tile_k = 1;
        let c_tiny = evaluate_mapping(&tiny, &layer()).unwrap();
        let c_base = evaluate_mapping(&base_mapping(), &layer()).unwrap();
        assert!(
            c_tiny.energy_mj > c_base.energy_mj,
            "tiny {} mJ vs base {} mJ",
            c_tiny.energy_mj,
            c_base.energy_mj
        );
    }

    #[test]
    fn fully_resident_tensors_are_fetched_once() {
        // A small layer whose tensors all fit in 1 MiB: traffic equals
        // the compulsory footprint.
        let l = archgym_models::resnet18()
            .layer("stage4_down")
            .unwrap()
            .clone();
        let small_enough =
            (l.weight_elems() + l.input_elems() + l.output_elems()) < BUFFER_BYTES / 2;
        if small_enough {
            let m = Mapping {
                tile_s: 1,
                tile_r: 1,
                tile_x: 7,
                tile_y: 7,
                tile_c: 64,
                tile_k: 64,
                order: parse_order("SRXYCK"),
                num_pe: 128,
            };
            let cost = evaluate_mapping(&m, &l).unwrap();
            let compulsory =
                (l.weight_elems() + l.input_elems() + 2 * l.output_elems()) as f64 / 1048576.0;
            assert!((cost.dram_mb - compulsory).abs() < 1e-9);
        }
    }

    #[test]
    fn infeasible_display() {
        let err = MappingInfeasible::BufferOverflow {
            required: 2048,
            capacity: 1024,
        };
        assert!(err.to_string().contains("2048"));
    }

    mod properties {
        use super::*;
        use crate::space::{decode_mapping, mapping_space};
        use archgym_core::seeded_rng;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn prop_feasible_mappings_respect_physical_floors(seed in 0u64..10_000) {
                let net = archgym_models::resnet18();
                let l = net.layer("stage2").unwrap();
                let space = mapping_space(l);
                let mut rng = seeded_rng(seed);
                let action = space.sample(&mut rng);
                let mapping = decode_mapping(&space, &action).unwrap();
                if let Ok(cost) = evaluate_mapping(&mapping, l) {
                    // DRAM traffic can never drop below the compulsory
                    // footprint (each tensor touched at least once).
                    let compulsory =
                        (l.weight_elems() + l.input_elems() + 2 * l.output_elems()) as f64
                            / (1024.0 * 1024.0);
                    prop_assert!(
                        cost.dram_mb >= compulsory - 1e-9,
                        "traffic {} MB below compulsory {} MB",
                        cost.dram_mb,
                        compulsory
                    );
                    // Energy can never drop below the pure-MAC floor.
                    let mac_floor = l.macs() as f64 * MAC_PJ / 1e9;
                    prop_assert!(cost.energy_mj >= mac_floor);
                    // Runtime can never beat one MAC per PE per cycle.
                    let compute_floor_ms =
                        l.macs() as f64 / (mapping.num_pe as f64) / (CLOCK_GHZ * 1e9) * 1e3;
                    prop_assert!(cost.runtime_ms >= compute_floor_ms * 0.999);
                    prop_assert!(cost.throughput_gmacs > 0.0);
                }
            }
        }
    }
}
