//! The Fig. 3(d) mapping space, instantiated per layer.
//!
//! Tile dimensions range over `[1:D:1]` for each layer dimension `D`; the
//! loop order is a categorical over all 720 permutations of
//! `<S, R, X, Y, C, K>`; the PE count ranges over `1:1024:2`.

use crate::cost::{Mapping, TensorDim};
use archgym_core::error::Result;
use archgym_core::space::{Action, ParamSpace};
use archgym_models::ConvLayer;

/// All 720 permutations of `SRXYCK`, lexicographically ordered, rendered
/// as 6-character strings (e.g. `"SRXYCK"`).
pub fn loop_orders() -> Vec<String> {
    let dims = ['S', 'R', 'X', 'Y', 'C', 'K'];
    let mut orders = Vec::with_capacity(720);
    permute(&dims, &mut Vec::new(), &mut orders);
    orders
}

fn permute(remaining: &[char], prefix: &mut Vec<char>, out: &mut Vec<String>) {
    if remaining.is_empty() {
        out.push(prefix.iter().collect());
        return;
    }
    for (i, &c) in remaining.iter().enumerate() {
        let mut rest = remaining.to_vec();
        rest.remove(i);
        prefix.push(c);
        permute(&rest, prefix, out);
        prefix.pop();
    }
}

/// Parse a 6-character order string into [`TensorDim`]s, outermost first.
///
/// # Panics
///
/// Panics on malformed strings; only strings from [`loop_orders`] are
/// expected here.
pub fn parse_order(order: &str) -> [TensorDim; 6] {
    let mut dims = [TensorDim::S; 6];
    for (i, ch) in order.chars().enumerate() {
        dims[i] = match ch {
            'S' => TensorDim::S,
            'R' => TensorDim::R,
            'X' => TensorDim::X,
            'Y' => TensorDim::Y,
            'C' => TensorDim::C,
            'K' => TensorDim::K,
            other => panic!("unknown loop dimension `{other}`"),
        };
    }
    dims
}

/// Build the mapping space for one layer.
///
/// ```
/// let net = archgym_models::vgg16();
/// let space = archgym_mapping::mapping_space(net.layer("conv1_2").unwrap());
/// assert_eq!(space.len(), 8);
/// // 3·3·224·224·64·64·720·512 ≈ 6.8e14 candidate mappings.
/// assert!(space.cardinality() > 1e14);
/// ```
pub fn mapping_space(layer: &ConvLayer) -> ParamSpace {
    ParamSpace::builder()
        .int("Filter_X", 1, layer.s as i64, 1)
        .int("Filter_Y", 1, layer.r as i64, 1)
        .int("Input_X", 1, layer.x as i64, 1)
        .int("Input_Y", 1, layer.y as i64, 1)
        .int("Input_Channels", 1, layer.c as i64, 1)
        .int("Num_Filters", 1, layer.k as i64, 1)
        .categorical("LoopOrder", loop_orders())
        .int("Num_PE", 1, 1024, 2)
        .build()
        .expect("layer dimensions are positive")
}

/// Decode a MaestroGym action into a [`Mapping`].
///
/// # Errors
///
/// Returns [`archgym_core::ArchGymError::InvalidAction`] if the action
/// does not fit the space.
pub fn decode_mapping(space: &ParamSpace, action: &Action) -> Result<Mapping> {
    space.validate(action)?;
    let int = |name: &str| -> u64 {
        space
            .decode_one(action, name)
            .as_int()
            .expect("numeric dimension") as u64
    };
    let order_name = space
        .decode_one(action, "LoopOrder")
        .as_cat()
        .expect("categorical dimension")
        .to_owned();
    Ok(Mapping {
        tile_s: int("Filter_X"),
        tile_r: int("Filter_Y"),
        tile_x: int("Input_X"),
        tile_y: int("Input_Y"),
        tile_c: int("Input_Channels"),
        tile_k: int("Num_Filters"),
        order: parse_order(&order_name),
        num_pe: int("Num_PE"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use archgym_core::seeded_rng;

    #[test]
    fn there_are_720_unique_loop_orders() {
        let orders = loop_orders();
        assert_eq!(orders.len(), 720);
        let mut sorted = orders.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 720);
        assert_eq!(orders[0], "SRXYCK"); // lexicographic first
        assert!(orders.iter().all(|o| o.len() == 6));
    }

    #[test]
    fn space_bounds_follow_the_layer() {
        let net = archgym_models::resnet18();
        let layer = net.layer("stage4").unwrap(); // 512×512×3×3 @ 7×7
        let space = mapping_space(layer);
        let cards = space.cardinalities();
        assert_eq!(cards, vec![3, 3, 7, 7, 512, 512, 720, 512]);
    }

    #[test]
    fn vgg16_second_layer_cardinality() {
        let net = archgym_models::vgg16();
        let space = mapping_space(net.layer("conv1_2").unwrap());
        // The exact product of the printed Fig. 3(d) domains (the paper
        // quotes 1e24, which counts two tiling levels; we map one level).
        let expected = 3.0 * 3.0 * 224.0 * 224.0 * 64.0 * 64.0 * 720.0 * 512.0;
        assert_eq!(space.cardinality(), expected);
    }

    #[test]
    fn decode_sampled_actions() {
        let net = archgym_models::alexnet();
        let layer = net.layer("conv2").unwrap();
        let space = mapping_space(layer);
        let mut rng = seeded_rng(6);
        for _ in 0..40 {
            let action = space.sample(&mut rng);
            let m = decode_mapping(&space, &action).unwrap();
            assert!(m.tile_s >= 1 && m.tile_s <= layer.s);
            assert!(m.tile_k >= 1 && m.tile_k <= layer.k);
            assert!(m.num_pe >= 1 && m.num_pe <= 1023);
            assert!(m.num_pe % 2 == 1); // 1:1024:2 arithmetic steps
        }
    }

    #[test]
    fn parse_order_maps_characters() {
        let dims = parse_order("KCYXRS");
        assert_eq!(dims[0], TensorDim::K);
        assert_eq!(dims[5], TensorDim::S);
    }
}
