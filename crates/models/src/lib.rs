//! # archgym-models
//!
//! The CNN workload zoo shared by ArchGym's DNN-accelerator
//! (`archgym-accel`) and DNN-mapping (`archgym-mapping`) environments.
//! The paper's stand-ins: Pytorch2Timeloop conversions for Timeloop and
//! the model files bundled with MAESTRO.
//!
//! Layer shapes follow the original publications (AlexNet, VGG-16,
//! ResNet-18/50, MobileNetV1); repeated bottlenecks carry a `repeat`
//! count instead of being written out. Dimensions use the MAESTRO-style
//! naming the paper's Fig. 3(d) uses: `K` output channels, `C` input
//! channels, `R×S` filter, `X×Y` **output** feature map.

use serde::{Deserialize, Serialize};

/// One convolutional layer in MAESTRO-style dimensions.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvLayer {
    /// Layer name, unique within its network.
    pub name: String,
    /// Output channels (number of filters).
    pub k: u64,
    /// Input channels per filter (1 for depthwise).
    pub c: u64,
    /// Filter height.
    pub r: u64,
    /// Filter width.
    pub s: u64,
    /// Output feature-map width.
    pub x: u64,
    /// Output feature-map height.
    pub y: u64,
    /// Stride (same in both dimensions).
    pub stride: u64,
    /// How many times this exact shape repeats consecutively.
    pub repeat: u64,
}

impl ConvLayer {
    /// Multiply-accumulates for **one** instance of the layer.
    pub fn macs(&self) -> u64 {
        self.k * self.c * self.r * self.s * self.x * self.y
    }

    /// Weight footprint in elements.
    pub fn weight_elems(&self) -> u64 {
        self.k * self.c * self.r * self.s
    }

    /// Input feature-map footprint in elements (with filter halo).
    pub fn input_elems(&self) -> u64 {
        let x_in = (self.x - 1) * self.stride + self.s;
        let y_in = (self.y - 1) * self.stride + self.r;
        x_in * y_in * self.c
    }

    /// Output feature-map footprint in elements.
    pub fn output_elems(&self) -> u64 {
        self.x * self.y * self.k
    }
}

/// A named stack of convolutional layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    name: String,
    layers: Vec<ConvLayer>,
}

impl Network {
    /// Create a network from its layers.
    pub fn new(name: &str, layers: Vec<ConvLayer>) -> Self {
        Network {
            name: name.to_owned(),
            layers,
        }
    }

    /// The network's name (e.g. `"resnet50"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layers in execution order (repeats *not* expanded).
    pub fn layers(&self) -> &[ConvLayer] {
        &self.layers
    }

    /// Total MACs over the whole network, honoring repeats.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs() * l.repeat).sum()
    }

    /// Total weight elements over the whole network, honoring repeats.
    pub fn total_weight_elems(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.weight_elems() * l.repeat)
            .sum()
    }

    /// Look a layer up by name.
    pub fn layer(&self, name: &str) -> Option<&ConvLayer> {
        self.layers.iter().find(|l| l.name == name)
    }
}

fn conv(name: &str, k: u64, c: u64, rs: u64, xy: u64, stride: u64, repeat: u64) -> ConvLayer {
    ConvLayer {
        name: name.to_owned(),
        k,
        c,
        r: rs,
        s: rs,
        x: xy,
        y: xy,
        stride,
        repeat,
    }
}

/// AlexNet's five convolutional layers (grouping flattened).
pub fn alexnet() -> Network {
    Network::new(
        "alexnet",
        vec![
            conv("conv1", 96, 3, 11, 55, 4, 1),
            conv("conv2", 256, 96, 5, 27, 1, 1),
            conv("conv3", 384, 256, 3, 13, 1, 1),
            conv("conv4", 384, 384, 3, 13, 1, 1),
            conv("conv5", 256, 384, 3, 13, 1, 1),
        ],
    )
}

/// VGG-16's thirteen convolutional layers.
pub fn vgg16() -> Network {
    Network::new(
        "vgg16",
        vec![
            conv("conv1_1", 64, 3, 3, 224, 1, 1),
            conv("conv1_2", 64, 64, 3, 224, 1, 1),
            conv("conv2_1", 128, 64, 3, 112, 1, 1),
            conv("conv2_2", 128, 128, 3, 112, 1, 1),
            conv("conv3_1", 256, 128, 3, 56, 1, 1),
            conv("conv3_2", 256, 256, 3, 56, 1, 2),
            conv("conv4_1", 512, 256, 3, 28, 1, 1),
            conv("conv4_2", 512, 512, 3, 28, 1, 2),
            conv("conv5", 512, 512, 3, 14, 1, 3),
        ],
    )
}

/// ResNet-18: conv1 plus four basic-block stages.
pub fn resnet18() -> Network {
    Network::new(
        "resnet18",
        vec![
            conv("conv1", 64, 3, 7, 112, 2, 1),
            conv("stage1", 64, 64, 3, 56, 1, 4),
            conv("stage2_down", 128, 64, 3, 28, 2, 1),
            conv("stage2", 128, 128, 3, 28, 1, 3),
            conv("stage3_down", 256, 128, 3, 14, 2, 1),
            conv("stage3", 256, 256, 3, 14, 1, 3),
            conv("stage4_down", 512, 256, 3, 7, 2, 1),
            conv("stage4", 512, 512, 3, 7, 1, 3),
        ],
    )
}

/// ResNet-50: conv1 plus four bottleneck stages (1×1 / 3×3 / 1×1).
pub fn resnet50() -> Network {
    let bottleneck = |stage: &str, mid: u64, inp: u64, out: u64, xy: u64, n: u64| {
        vec![
            conv(&format!("{stage}_a1x1"), mid, inp, 1, xy, 1, n),
            conv(&format!("{stage}_b3x3"), mid, mid, 3, xy, 1, n),
            conv(&format!("{stage}_c1x1"), out, mid, 1, xy, 1, n),
        ]
    };
    let mut layers = vec![conv("conv1", 64, 3, 7, 112, 2, 1)];
    layers.extend(bottleneck("stage1", 64, 64, 256, 56, 3));
    layers.extend(bottleneck("stage2", 128, 256, 512, 28, 4));
    layers.extend(bottleneck("stage3", 256, 512, 1024, 14, 6));
    layers.extend(bottleneck("stage4", 512, 1024, 2048, 7, 3));
    Network::new("resnet50", layers)
}

/// MobileNetV1: depthwise-separable stacks (depthwise layers have `c = 1`).
pub fn mobilenet_v1() -> Network {
    let ds = |idx: u64, ch_in: u64, ch_out: u64, xy: u64, stride: u64, n: u64| {
        vec![
            ConvLayer {
                name: format!("dw{idx}"),
                k: ch_in,
                c: 1,
                r: 3,
                s: 3,
                x: xy,
                y: xy,
                stride,
                repeat: n,
            },
            conv(&format!("pw{idx}"), ch_out, ch_in, 1, xy, 1, n),
        ]
    };
    let mut layers = vec![conv("conv1", 32, 3, 3, 112, 2, 1)];
    layers.extend(ds(1, 32, 64, 112, 1, 1));
    layers.extend(ds(2, 64, 128, 56, 2, 1));
    layers.extend(ds(3, 128, 128, 56, 1, 1));
    layers.extend(ds(4, 128, 256, 28, 2, 1));
    layers.extend(ds(5, 256, 256, 28, 1, 1));
    layers.extend(ds(6, 256, 512, 14, 2, 1));
    layers.extend(ds(7, 512, 512, 14, 1, 5));
    layers.extend(ds(8, 512, 1024, 7, 2, 1));
    layers.extend(ds(9, 1024, 1024, 7, 1, 1));
    Network::new("mobilenet_v1", layers)
}

/// Look a network up by name (`alexnet`, `vgg16`, `resnet18`, `resnet50`,
/// `mobilenet_v1`).
pub fn by_name(name: &str) -> Option<Network> {
    match name {
        "alexnet" => Some(alexnet()),
        "vgg16" => Some(vgg16()),
        "resnet18" => Some(resnet18()),
        "resnet50" => Some(resnet50()),
        "mobilenet_v1" => Some(mobilenet_v1()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_arithmetic() {
        let l = conv("t", 64, 32, 3, 56, 1, 1);
        assert_eq!(l.macs(), 64 * 32 * 9 * 56 * 56);
        assert_eq!(l.weight_elems(), 64 * 32 * 9);
        assert_eq!(l.output_elems(), 56 * 56 * 64);
        assert_eq!(l.input_elems(), 58 * 58 * 32);
    }

    #[test]
    fn strided_layer_input_footprint() {
        let l = conv("t", 64, 3, 7, 112, 2, 1);
        // (112-1)*2 + 7 = 229 per side.
        assert_eq!(l.input_elems(), 229 * 229 * 3);
    }

    #[test]
    fn alexnet_macs_match_published_ballpark() {
        // AlexNet convs are ~0.66 GMACs (ungrouped conv2 variant ~1.07).
        let g = alexnet().total_macs() as f64 / 1e9;
        assert!((0.5..1.5).contains(&g), "alexnet GMACs {g}");
    }

    #[test]
    fn vgg16_macs_match_published_ballpark() {
        // VGG-16 is famously ~15.3 GMACs of conv work.
        let g = vgg16().total_macs() as f64 / 1e9;
        assert!((13.0..17.0).contains(&g), "vgg16 GMACs {g}");
    }

    #[test]
    fn resnet50_macs_match_published_ballpark() {
        // ResNet-50 convs ≈ 3.8 GMACs (excluding the FC layer).
        let g = resnet50().total_macs() as f64 / 1e9;
        assert!((3.0..4.5).contains(&g), "resnet50 GMACs {g}");
    }

    #[test]
    fn resnet18_macs_match_published_ballpark() {
        // ResNet-18 ≈ 1.8 GMACs.
        let g = resnet18().total_macs() as f64 / 1e9;
        assert!((1.4..2.2).contains(&g), "resnet18 GMACs {g}");
    }

    #[test]
    fn mobilenet_macs_match_published_ballpark() {
        // MobileNetV1 ≈ 0.57 GMACs.
        let g = mobilenet_v1().total_macs() as f64 / 1e9;
        assert!((0.4..0.8).contains(&g), "mobilenet GMACs {g}");
    }

    #[test]
    fn depthwise_layers_have_unit_input_channels() {
        let net = mobilenet_v1();
        for l in net.layers() {
            if l.name.starts_with("dw") {
                assert_eq!(l.c, 1, "{} should be depthwise", l.name);
            }
        }
    }

    #[test]
    fn by_name_roundtrip_and_unknown() {
        for name in ["alexnet", "vgg16", "resnet18", "resnet50", "mobilenet_v1"] {
            assert_eq!(by_name(name).unwrap().name(), name);
        }
        assert!(by_name("lenet").is_none());
    }

    #[test]
    fn layer_lookup_by_name() {
        let net = resnet50();
        assert!(net.layer("conv1").is_some());
        assert!(net.layer("stage3_b3x3").is_some());
        assert!(net.layer("missing").is_none());
    }

    #[test]
    fn layer_names_are_unique_within_networks() {
        for net in [alexnet(), vgg16(), resnet18(), resnet50(), mobilenet_v1()] {
            let mut names: Vec<&str> = net.layers().iter().map(|l| l.name.as_str()).collect();
            let before = names.len();
            names.sort_unstable();
            names.dedup();
            assert_eq!(
                names.len(),
                before,
                "duplicate layer names in {}",
                net.name()
            );
        }
    }
}
