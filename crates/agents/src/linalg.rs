//! Minimal dense linear algebra for the Gaussian-process surrogate.
//!
//! Only what Bayesian optimization needs: symmetric positive-definite
//! systems solved via Cholesky factorization. Matrices are row-major
//! `Vec<f64>` wrappers; everything is `O(n³)` and fine for the few hundred
//! observations a BO history holds (the paper itself notes BO's cubic
//! sample cost, Section 2).

// Indexed loops here mirror the textbook formulations of the numeric
// kernels; iterator rewrites would obscure them.
#![allow(clippy::needless_range_loop)]

use std::fmt;

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |r, c| f64::from(r == c))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|r| {
                (0..self.cols)
                    .map(|c| self.data[r * self.cols + c] * v[c])
                    .sum()
            })
            .collect()
    }

    /// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite
    /// matrix, returning lower-triangular `L`.
    ///
    /// Returns `None` if the matrix is not positive definite (a
    /// non-positive pivot is encountered).
    pub fn cholesky(&self) -> Option<Cholesky> {
        assert_eq!(self.rows, self.cols, "cholesky needs a square matrix");
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 {
                        return None;
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Some(Cholesky { l })
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{:>10.4}", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A Cholesky factor `L` with triangular solves.
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// The lower-triangular factor.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solve `L·x = b` (forward substitution).
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match.
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(b.len(), n, "dimension mismatch");
        let mut x = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l.get(i, k) * x[k];
            }
            x[i] = sum / self.l.get(i, i);
        }
        x
    }

    /// Solve `Lᵀ·x = b` (back substitution).
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match.
    pub fn solve_upper(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(b.len(), n, "dimension mismatch");
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = b[i];
            for k in (i + 1)..n {
                sum -= self.l.get(k, i) * x[k];
            }
            x[i] = sum / self.l.get(i, i);
        }
        x
    }

    /// Solve the full system `A·x = b` where `A = L·Lᵀ`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        self.solve_upper(&self.solve_lower(b))
    }

    /// Log-determinant of `A`: `2·Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows())
            .map(|i| self.l.get(i, i).ln())
            .sum::<f64>()
            * 2.0
    }
}

/// Euclidean distance squared between two equal-length vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
}

/// Dot product.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spd(n: usize, seed: u64) -> Matrix {
        // A·Aᵀ + n·I is SPD for any A.
        use rand::Rng;
        let mut rng = archgym_core::seeded_rng(seed);
        let a = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        Matrix::from_fn(n, n, |i, j| {
            let mut s = 0.0;
            for k in 0..n {
                s += a.get(i, k) * a.get(j, k);
            }
            s + if i == j { n as f64 } else { 0.0 }
        })
    }

    #[test]
    fn cholesky_of_identity_is_identity() {
        let chol = Matrix::identity(4).cholesky().unwrap();
        assert_eq!(chol.factor(), &Matrix::identity(4));
        assert_eq!(chol.log_det(), 0.0);
    }

    #[test]
    fn cholesky_reconstructs_known_matrix() {
        // A = [[4, 2], [2, 3]] → L = [[2, 0], [1, sqrt(2)]]
        let mut a = Matrix::zeros(2, 2);
        a.set(0, 0, 4.0);
        a.set(0, 1, 2.0);
        a.set(1, 0, 2.0);
        a.set(1, 1, 3.0);
        let chol = a.cholesky().unwrap();
        assert!((chol.factor().get(0, 0) - 2.0).abs() < 1e-12);
        assert!((chol.factor().get(1, 0) - 1.0).abs() < 1e-12);
        assert!((chol.factor().get(1, 1) - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_non_spd() {
        let mut a = Matrix::identity(2);
        a.set(0, 0, -1.0);
        assert!(a.cholesky().is_none());
    }

    #[test]
    fn solve_matches_direct_inverse_on_2x2() {
        let mut a = Matrix::zeros(2, 2);
        a.set(0, 0, 4.0);
        a.set(0, 1, 2.0);
        a.set(1, 0, 2.0);
        a.set(1, 1, 3.0);
        let x = a.cholesky().unwrap().solve(&[8.0, 7.0]);
        // Solution of 4x+2y=8, 2x+3y=7 → x=1.25, y=1.5
        assert!((x[0] - 1.25).abs() < 1e-12);
        assert!((x[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn mul_vec_and_dot() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        assert_eq!(m.mul_vec(&[1.0, 1.0, 1.0]), vec![3.0, 12.0]);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    proptest! {
        #[test]
        fn prop_cholesky_solve_is_inverse(n in 1usize..8, seed in 0u64..200) {
            let a = spd(n, seed);
            let chol = a.cholesky().expect("SPD by construction");
            let b: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
            let x = chol.solve(&b);
            let back = a.mul_vec(&x);
            for (u, v) in back.iter().zip(&b) {
                prop_assert!((u - v).abs() < 1e-8, "residual too large: {u} vs {v}");
            }
        }

        #[test]
        fn prop_log_det_positive_for_diagonally_dominant(n in 1usize..8, seed in 0u64..100) {
            let a = spd(n, seed);
            let chol = a.cholesky().unwrap();
            // Diagonal entries are ≥ n ≥ 1, so det ≥ 1 and log det ≥ 0 is
            // not guaranteed in general, but it must be finite.
            prop_assert!(chol.log_det().is_finite());
        }
    }
}
