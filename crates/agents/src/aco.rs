//! Ant colony optimization over index-encoded design spaces.
//!
//! The policy is a per-dimension **pheromone table** (Fig. 2): each ant
//! constructs a design by sampling a value for every dimension with
//! probability proportional to `τ^α`, or greedily taking the strongest
//! pheromone with probability `q₀` (the exploration/exploitation knob of
//! the paper's Q3). After a batch is evaluated, pheromone evaporates at
//! rate `ρ` and ants deposit in proportion to their *relative* fitness
//! within the batch (rank-robust against the huge dynamic range of
//! target-ratio rewards); the best-so-far ant re-deposits elitistically.

use archgym_core::agent::{Agent, HyperMap};
use archgym_core::env::StepResult;
use archgym_core::error::Result;
use archgym_core::seeded_rng;
use archgym_core::space::{Action, ParamSpace};
use rand::rngs::StdRng;
use rand::Rng;

/// Ant colony optimization agent.
#[derive(Debug)]
pub struct AntColony {
    cards: Vec<usize>,
    rng: StdRng,
    num_ants: usize,
    evaporation: f64,
    alpha: f64,
    greediness: f64,
    deposit: f64,
    pheromone: Vec<Vec<f64>>,
    best: Option<(Vec<usize>, f64)>,
}

impl AntColony {
    /// Construct with explicit hyperparameters.
    ///
    /// # Panics
    ///
    /// Panics if `num_ants == 0`, `evaporation` or `greediness` lie outside
    /// `[0, 1]`, or `alpha < 0`.
    pub fn new(
        space: ParamSpace,
        num_ants: usize,
        evaporation: f64,
        alpha: f64,
        greediness: f64,
        deposit: f64,
        seed: u64,
    ) -> Self {
        assert!(num_ants > 0, "need at least one ant");
        assert!(
            (0.0..=1.0).contains(&evaporation),
            "evaporation out of range"
        );
        assert!((0.0..=1.0).contains(&greediness), "greediness out of range");
        assert!(alpha >= 0.0, "alpha must be non-negative");
        let cards = space.cardinalities();
        let pheromone = cards.iter().map(|&c| vec![1.0; c]).collect();
        AntColony {
            cards,
            rng: seeded_rng(seed),
            num_ants,
            evaporation,
            alpha,
            greediness,
            deposit,
            pheromone,
            best: None,
        }
    }

    /// Sensible defaults: 16 ants, ρ = 0.1, α = 1, q₀ = 0.2.
    pub fn with_defaults(space: ParamSpace, seed: u64) -> Self {
        AntColony::new(space, 16, 0.1, 1.0, 0.2, 1.0, seed)
    }

    /// Build from a hyperparameter map. Recognized keys (all optional):
    /// `ants` (int), `evaporation` (float), `alpha` (float), `greediness`
    /// (float), `deposit` (float).
    ///
    /// # Errors
    ///
    /// Returns an error when a present key has the wrong type.
    pub fn from_hyper(space: ParamSpace, hyper: &HyperMap, seed: u64) -> Result<Self> {
        Ok(AntColony::new(
            space,
            hyper.int_or("ants", 16)? as usize,
            hyper.float_or("evaporation", 0.1)?,
            hyper.float_or("alpha", 1.0)?,
            hyper.float_or("greediness", 0.2)?,
            hyper.float_or("deposit", 1.0)?,
            seed,
        ))
    }

    /// The current pheromone table (dimension-major).
    pub fn pheromone(&self) -> &[Vec<f64>] {
        &self.pheromone
    }

    fn construct(&mut self) -> Vec<usize> {
        let mut genes = Vec::with_capacity(self.cards.len());
        for d in 0..self.cards.len() {
            let tau = &self.pheromone[d];
            let v = if self.rng.gen_bool(self.greediness) {
                // Exploit: strongest pheromone.
                tau.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN pheromone"))
                    .map(|(i, _)| i)
                    .expect("non-empty domain")
            } else {
                // Explore: sample ∝ τ^α.
                let weights: Vec<f64> = tau.iter().map(|&t| t.powf(self.alpha)).collect();
                let total: f64 = weights.iter().sum();
                let mut u = self.rng.gen::<f64>() * total;
                let mut pick = weights.len() - 1;
                for (i, w) in weights.iter().enumerate() {
                    u -= w;
                    if u <= 0.0 {
                        pick = i;
                        break;
                    }
                }
                pick
            };
            genes.push(v);
        }
        genes
    }

    fn deposit_on(&mut self, genes: &[usize], amount: f64) {
        for (d, &v) in genes.iter().enumerate() {
            self.pheromone[d][v] += amount;
        }
    }
}

impl Agent for AntColony {
    fn name(&self) -> &str {
        "aco"
    }

    fn propose(&mut self, max_batch: usize) -> Vec<Action> {
        let n = self.num_ants.min(max_batch).max(1);
        (0..n).map(|_| Action::new(self.construct())).collect()
    }

    /// An ant colony's natural batch is its cohort of ants per
    /// iteration.
    fn batch_hint(&self) -> Option<usize> {
        Some(self.num_ants)
    }

    fn observe(&mut self, results: &[(Action, StepResult)]) {
        if results.is_empty() {
            return;
        }
        // Evaporate.
        for tau in &mut self.pheromone {
            for t in tau.iter_mut() {
                *t = (*t * (1.0 - self.evaporation)).max(1e-6);
            }
        }
        // Relative-fitness deposits (robust to reward scale).
        let rewards: Vec<f64> = results.iter().map(|(_, r)| r.reward).collect();
        let min = rewards.iter().copied().fold(f64::INFINITY, f64::min);
        let max = rewards.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let span = (max - min).max(f64::EPSILON);
        let deposit = self.deposit;
        for (action, result) in results {
            let rel = (result.reward - min) / span;
            let genes = action.as_slice().to_vec();
            self.deposit_on(&genes, deposit * rel);
            let better = self.best.as_ref().is_none_or(|(_, b)| result.reward > *b);
            if better {
                self.best = Some((genes, result.reward));
            }
        }
        // Elitist reinforcement of the best-so-far trail.
        if let Some((genes, _)) = self.best.clone() {
            self.deposit_on(&genes, deposit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archgym_core::env::{Environment, Observation};
    use archgym_core::search::{RunConfig, SearchLoop};
    use archgym_core::toy::PeakEnv;

    fn space(cards: &[usize]) -> ParamSpace {
        let mut b = ParamSpace::builder();
        for (i, &c) in cards.iter().enumerate() {
            b = b.int(&format!("p{i}"), 0, c as i64 - 1, 1);
        }
        b.build().unwrap()
    }

    #[test]
    fn proposals_are_valid() {
        let s = space(&[4, 9, 2]);
        let mut aco = AntColony::with_defaults(s.clone(), 1);
        for a in aco.propose(16) {
            s.validate(&a).unwrap();
        }
    }

    #[test]
    fn pheromone_concentrates_on_rewarded_values() {
        let s = space(&[8]);
        let mut aco = AntColony::new(s, 8, 0.2, 1.0, 0.0, 1.0, 2);
        // Reward value 5 repeatedly.
        for _ in 0..20 {
            let batch = aco.propose(8);
            let results: Vec<(Action, StepResult)> = batch
                .into_iter()
                .map(|a| {
                    let r = f64::from(a.index(0) == 5);
                    let obs = Observation::new(vec![r]);
                    (a, StepResult::terminal(obs, r))
                })
                .collect();
            aco.observe(&results);
        }
        let tau = &aco.pheromone()[0];
        let best: usize = (0..8)
            .max_by(|&a, &b| tau[a].partial_cmp(&tau[b]).unwrap())
            .unwrap();
        assert_eq!(best, 5, "pheromone table {tau:?}");
        assert!(tau[5] > 2.0 * tau[0]);
    }

    #[test]
    fn aco_finds_peak() {
        let mut env = PeakEnv::new(&[12, 12, 12], vec![3, 10, 6]);
        let mut aco = AntColony::with_defaults(env.space().clone(), 7);
        let result = SearchLoop::new(RunConfig::with_budget(800).batch(16)).run(&mut aco, &mut env);
        assert!(
            result.best_reward > 0.45,
            "ACO best reward {} too low",
            result.best_reward
        );
    }

    #[test]
    fn full_greediness_repeats_the_argmax() {
        let s = space(&[5, 5]);
        let mut aco = AntColony::new(s, 4, 0.1, 1.0, 1.0, 1.0, 3);
        // With uniform pheromone every fully greedy ant picks the same
        // argmax, so the whole batch is identical.
        let batch = aco.propose(4);
        for a in &batch {
            assert_eq!(a, &batch[0]);
        }
    }

    #[test]
    fn evaporation_keeps_pheromone_positive() {
        let s = space(&[3]);
        let mut aco = AntColony::new(s, 2, 1.0, 1.0, 0.0, 0.0, 4);
        for _ in 0..50 {
            let batch = aco.propose(2);
            let results: Vec<(Action, StepResult)> = batch
                .into_iter()
                .map(|a| (a, StepResult::terminal(Observation::new(vec![0.0]), 0.0)))
                .collect();
            aco.observe(&results);
        }
        assert!(aco.pheromone()[0].iter().all(|&t| t > 0.0));
    }

    #[test]
    fn higher_alpha_exploits_pheromone_harder() {
        // α is ACO's Q3 knob: with stronger pheromone weighting the
        // colony's samples concentrate faster on the rewarded value.
        let run = |alpha: f64| {
            let s = space(&[10]);
            let mut aco = AntColony::new(s, 8, 0.1, alpha, 0.0, 1.0, 6);
            for _ in 0..15 {
                let batch = aco.propose(8);
                let results: Vec<(Action, StepResult)> = batch
                    .into_iter()
                    .map(|a| {
                        let r = f64::from(a.index(0) == 7);
                        (a, StepResult::terminal(Observation::new(vec![r]), r))
                    })
                    .collect();
                aco.observe(&results);
            }
            // Empirical hit rate of a fresh batch on the rewarded value.
            let batch = aco.propose(64);
            batch.iter().filter(|a| a.index(0) == 7).count()
        };
        let greedy = run(3.0);
        let flat = run(0.25);
        assert!(
            greedy > flat,
            "α=3 hit the target {greedy}/64, α=0.25 hit {flat}/64"
        );
    }

    #[test]
    fn from_hyper_and_validation() {
        let s = space(&[3]);
        let hyper = HyperMap::new()
            .with("ants", 5i64)
            .with("evaporation", 0.3)
            .with("greediness", 0.5);
        let aco = AntColony::from_hyper(s.clone(), &hyper, 0).unwrap();
        assert_eq!(aco.num_ants, 5);
        let bad = HyperMap::new().with("ants", "many");
        assert!(AntColony::from_hyper(s, &bad, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "evaporation out of range")]
    fn rejects_bad_evaporation() {
        let _ = AntColony::new(space(&[3]), 2, 1.5, 1.0, 0.0, 1.0, 0);
    }
}
