//! A tiny multilayer perceptron with Adam, for the RL policy.
//!
//! The paper's RL agent carries a neural-network policy (Fig. 2). This
//! module implements just enough of one: dense layers with tanh
//! activations, manual backpropagation, and the Adam optimizer. No
//! autograd, no BLAS — design spaces here have tens of dimensions, so a
//! few thousand parameters suffice.

// Indexed loops here mirror the textbook formulations of the numeric
// kernels; iterator rewrites would obscure them.
#![allow(clippy::needless_range_loop)]

use rand::Rng;

/// One dense layer `y = W·x + b` with an optional tanh activation.
#[derive(Debug, Clone)]
pub struct Dense {
    w: Vec<f64>, // row-major out_dim × in_dim
    b: Vec<f64>,
    in_dim: usize,
    out_dim: usize,
    tanh: bool,
    // forward caches
    last_x: Vec<f64>,
    last_y: Vec<f64>,
    // gradients
    gw: Vec<f64>,
    gb: Vec<f64>,
    // Adam state
    mw: Vec<f64>,
    vw: Vec<f64>,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Dense {
    /// Create a layer with Xavier-uniform initialization.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, tanh: bool, rng: &mut R) -> Self {
        let bound = (6.0 / (in_dim + out_dim) as f64).sqrt();
        let w = (0..in_dim * out_dim)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Dense {
            w,
            b: vec![0.0; out_dim],
            in_dim,
            out_dim,
            tanh,
            last_x: vec![0.0; in_dim],
            last_y: vec![0.0; out_dim],
            gw: vec![0.0; in_dim * out_dim],
            gb: vec![0.0; out_dim],
            mw: vec![0.0; in_dim * out_dim],
            vw: vec![0.0; in_dim * out_dim],
            mb: vec![0.0; out_dim],
            vb: vec![0.0; out_dim],
        }
    }

    /// Forward pass, caching activations for backprop.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    pub fn forward(&mut self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim, "input dimension mismatch");
        self.last_x.copy_from_slice(x);
        let mut y = vec![0.0; self.out_dim];
        for o in 0..self.out_dim {
            let mut sum = self.b[o];
            for i in 0..self.in_dim {
                sum += self.w[o * self.in_dim + i] * x[i];
            }
            y[o] = if self.tanh { sum.tanh() } else { sum };
        }
        self.last_y.copy_from_slice(&y);
        y
    }

    /// Backward pass: accumulate gradients, return `dL/dx`.
    ///
    /// # Panics
    ///
    /// Panics if `dy.len() != out_dim`.
    pub fn backward(&mut self, dy: &[f64]) -> Vec<f64> {
        assert_eq!(dy.len(), self.out_dim, "gradient dimension mismatch");
        let mut dx = vec![0.0; self.in_dim];
        for o in 0..self.out_dim {
            // Through the activation.
            let dz = if self.tanh {
                dy[o] * (1.0 - self.last_y[o] * self.last_y[o])
            } else {
                dy[o]
            };
            self.gb[o] += dz;
            for i in 0..self.in_dim {
                self.gw[o * self.in_dim + i] += dz * self.last_x[i];
                dx[i] += dz * self.w[o * self.in_dim + i];
            }
        }
        dx
    }

    fn adam_update(p: &mut [f64], g: &mut [f64], m: &mut [f64], v: &mut [f64], lr: f64, t: u64) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        let bias1 = 1.0 - B1.powi(t as i32);
        let bias2 = 1.0 - B2.powi(t as i32);
        for i in 0..p.len() {
            m[i] = B1 * m[i] + (1.0 - B1) * g[i];
            v[i] = B2 * v[i] + (1.0 - B2) * g[i] * g[i];
            let mh = m[i] / bias1;
            let vh = v[i] / bias2;
            p[i] += lr * mh / (vh.sqrt() + EPS);
            g[i] = 0.0;
        }
    }

    /// Apply one Adam **ascent** step (policy gradients maximize) and
    /// clear accumulated gradients. `t` is the 1-based step counter.
    pub fn step(&mut self, lr: f64, t: u64) {
        Self::adam_update(&mut self.w, &mut self.gw, &mut self.mw, &mut self.vw, lr, t);
        Self::adam_update(&mut self.b, &mut self.gb, &mut self.mb, &mut self.vb, lr, t);
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

/// A feed-forward stack of [`Dense`] layers.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
    steps: u64,
}

impl Mlp {
    /// Build an MLP with the given layer widths; all hidden layers use
    /// tanh, the output layer is linear.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new<R: Rng + ?Sized>(widths: &[usize], rng: &mut R) -> Self {
        assert!(widths.len() >= 2, "need at least input and output widths");
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| Dense::new(w[0], w[1], i + 2 < widths.len(), rng))
            .collect();
        Mlp { layers, steps: 0 }
    }

    /// Forward pass through all layers.
    pub fn forward(&mut self, x: &[f64]) -> Vec<f64> {
        let mut h = x.to_vec();
        for layer in &mut self.layers {
            h = layer.forward(&h);
        }
        h
    }

    /// Backward pass; accumulates gradients in every layer.
    pub fn backward(&mut self, dy: &[f64]) {
        let mut g = dy.to_vec();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
    }

    /// One Adam ascent step over all layers, clearing gradients.
    pub fn step(&mut self, lr: f64) {
        self.steps += 1;
        for layer in &mut self.layers {
            layer.step(lr, self.steps);
        }
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }
}

/// Numerically stable softmax.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&z| (z - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Sample an index from a probability distribution.
///
/// # Panics
///
/// Panics if `probs` is empty.
pub fn sample_categorical<R: Rng + ?Sized>(probs: &[f64], rng: &mut R) -> usize {
    assert!(!probs.is_empty(), "empty distribution");
    let mut u: f64 = rng.gen();
    for (i, &p) in probs.iter().enumerate() {
        u -= p;
        if u <= 0.0 {
            return i;
        }
    }
    probs.len() - 1
}

/// Shannon entropy of a distribution (natural log).
pub fn entropy(probs: &[f64]) -> f64 {
    -probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| p * p.ln())
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use archgym_core::seeded_rng;

    #[test]
    fn softmax_sums_to_one_and_orders_correctly() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Stability with huge logits.
        let q = softmax(&[1000.0, 1000.0]);
        assert!((q[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sample_categorical_respects_distribution() {
        let mut rng = seeded_rng(1);
        let probs = [0.1, 0.8, 0.1];
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[sample_categorical(&probs, &mut rng)] += 1;
        }
        assert!(counts[1] > 2000, "mode undersampled: {counts:?}");
        assert!(counts[0] > 100 && counts[2] > 100);
    }

    #[test]
    fn entropy_extremes() {
        assert_eq!(entropy(&[1.0, 0.0]), 0.0);
        let uniform = entropy(&[0.25; 4]);
        assert!(
            (uniform - 4.0f64.ln() / 1.0 * 1.0).abs() < 1e-12
                || (uniform - (4.0f64).ln()).abs() < 1e-12
        );
    }

    #[test]
    fn dense_forward_known_values() {
        let mut rng = seeded_rng(2);
        let mut layer = Dense::new(2, 1, false, &mut rng);
        // Overwrite weights for a deterministic check.
        layer.w = vec![2.0, -1.0];
        layer.b = vec![0.5];
        assert_eq!(layer.forward(&[1.0, 3.0]), vec![2.0 - 3.0 + 0.5]);
    }

    #[test]
    fn backward_gradient_matches_finite_difference() {
        let mut rng = seeded_rng(3);
        let mut mlp = Mlp::new(&[2, 4, 3], &mut rng);
        let x = [0.3, -0.7];
        // Loss = y[0]; dL/dy = (1, 0, 0).
        let y0 = mlp.forward(&x)[0];
        mlp.backward(&[1.0, 0.0, 0.0]);
        let analytic = mlp.layers[0].gw[0];
        // Finite difference on the first weight of layer 0.
        let eps = 1e-6;
        let mut probe = mlp.clone();
        probe.layers[0].w[0] += eps;
        let y1 = probe.forward(&x)[0];
        let numeric = (y1 - y0) / eps;
        assert!(
            (analytic - numeric).abs() < 1e-5,
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn adam_ascends_a_simple_objective() {
        // Maximize -(w·x - 2)² via its gradient; the MLP output should
        // approach 2 for the fixed input.
        let mut rng = seeded_rng(4);
        let mut mlp = Mlp::new(&[1, 8, 1], &mut rng);
        let x = [1.0];
        for _ in 0..500 {
            let y = mlp.forward(&x)[0];
            let dy = 2.0 * (2.0 - y); // d/dy of -(y-2)²
            mlp.backward(&[dy]);
            mlp.step(0.05);
        }
        let y = mlp.forward(&x)[0];
        assert!((y - 2.0).abs() < 0.05, "converged to {y}");
    }

    #[test]
    fn param_count_is_correct() {
        let mut rng = seeded_rng(5);
        let mlp = Mlp::new(&[3, 5, 2], &mut rng);
        assert_eq!(mlp.param_count(), (3 * 5 + 5) + (5 * 2 + 2));
    }
}
