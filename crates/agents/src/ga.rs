//! Genetic algorithm with optional GAMMA-style domain-specific operators.
//!
//! The policy is the population's *genome* (Fig. 2): an individual is an
//! index vector over the design space. Standard machinery: tournament
//! selection, uniform crossover, per-gene mutation, elitism. On top, the
//! three domain-specific operators GAMMA (Kao & Krishna, ICCAD 2020)
//! introduced for DNN-mapping search, which the paper ablates in Fig. 6:
//!
//! * **Reordering** (`GA+RO`) — swap the values of two compatible genes
//!   (for mapping spaces this permutes tiling dimensions / loop order).
//! * **Aging** (`GA+AG`) — individuals retire after `max_age`
//!   generations, preventing stale elites from dominating.
//! * **Growth** (`GA+GR`) — instead of uniform resampling, mutate a gene
//!   by ±1 step (hill-climbing-flavored local growth).

// Indexed loops here mirror the textbook formulations of the numeric
// kernels; iterator rewrites would obscure them.
#![allow(clippy::needless_range_loop)]

use archgym_core::agent::{Agent, HyperMap};
use archgym_core::env::StepResult;
use archgym_core::error::Result;
use archgym_core::seeded_rng;
use archgym_core::space::{Action, ParamSpace};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::VecDeque;

/// Which GAMMA-style operators are enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GaOperators {
    /// Enable the reordering operator.
    pub reordering: bool,
    /// Enable the aging operator.
    pub aging: bool,
    /// Enable the growth operator.
    pub growth: bool,
}

impl GaOperators {
    /// Vanilla GA: no domain-specific operators (the paper's "GA ArchGym").
    pub fn none() -> Self {
        GaOperators::default()
    }

    /// All three operators (the paper's "GA-V1", i.e. GAMMA).
    pub fn all() -> Self {
        GaOperators {
            reordering: true,
            aging: true,
            growth: true,
        }
    }
}

#[derive(Debug, Clone)]
struct Individual {
    genes: Vec<usize>,
    fitness: f64,
    age: u32,
}

/// Tournament-selection genetic algorithm over an index-encoded space.
#[derive(Debug)]
pub struct GeneticAlgorithm {
    cards: Vec<usize>,
    rng: StdRng,
    population_size: usize,
    mutation_prob: f64,
    crossover_prob: f64,
    tournament: usize,
    elites: usize,
    operators: GaOperators,
    max_age: u32,
    parents: Vec<Individual>,
    current: Vec<Individual>,
    pending: VecDeque<Vec<usize>>,
}

impl GeneticAlgorithm {
    /// Construct with explicit hyperparameters.
    ///
    /// # Panics
    ///
    /// Panics if `population_size == 0`, `tournament == 0`, probabilities
    /// are outside `[0, 1]`, or `elites >= population_size`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        space: ParamSpace,
        population_size: usize,
        mutation_prob: f64,
        crossover_prob: f64,
        tournament: usize,
        elites: usize,
        operators: GaOperators,
        max_age: u32,
        seed: u64,
    ) -> Self {
        assert!(population_size > 0, "population must be non-empty");
        assert!(tournament > 0, "tournament size must be positive");
        assert!(
            (0.0..=1.0).contains(&mutation_prob),
            "mutation_prob out of range"
        );
        assert!(
            (0.0..=1.0).contains(&crossover_prob),
            "crossover_prob out of range"
        );
        assert!(
            elites < population_size,
            "elites must leave room for offspring"
        );
        let cards = space.cardinalities();
        GeneticAlgorithm {
            cards,
            rng: seeded_rng(seed),
            population_size,
            mutation_prob,
            crossover_prob,
            tournament,
            elites,
            operators,
            max_age,
            parents: Vec::new(),
            current: Vec::new(),
            pending: VecDeque::new(),
        }
    }

    /// Sensible defaults: population 32, mutation 0.1, crossover 0.8,
    /// tournament 3, 2 elites, no domain-specific operators.
    pub fn with_defaults(space: ParamSpace, seed: u64) -> Self {
        GeneticAlgorithm::new(space, 32, 0.1, 0.8, 3, 2, GaOperators::none(), 8, seed)
    }

    /// Build from a hyperparameter map. Recognized keys (all optional):
    /// `population` (int), `mutation_prob` (float), `crossover_prob`
    /// (float), `tournament` (int), `elites` (int), `reordering` (bool),
    /// `aging` (bool), `growth` (bool), `max_age` (int).
    ///
    /// # Errors
    ///
    /// Returns an error when a present key has the wrong type.
    pub fn from_hyper(space: ParamSpace, hyper: &HyperMap, seed: u64) -> Result<Self> {
        Ok(GeneticAlgorithm::new(
            space,
            hyper.int_or("population", 32)? as usize,
            hyper.float_or("mutation_prob", 0.1)?,
            hyper.float_or("crossover_prob", 0.8)?,
            hyper.int_or("tournament", 3)? as usize,
            hyper.int_or("elites", 2)? as usize,
            GaOperators {
                reordering: hyper.bool_or("reordering", false)?,
                aging: hyper.bool_or("aging", false)?,
                growth: hyper.bool_or("growth", false)?,
            },
            hyper.int_or("max_age", 8)? as u32,
            seed,
        ))
    }

    /// The enabled domain-specific operators.
    pub fn operators(&self) -> GaOperators {
        self.operators
    }

    fn random_genes(&mut self) -> Vec<usize> {
        self.cards
            .iter()
            .map(|&c| self.rng.gen_range(0..c))
            .collect()
    }

    fn tournament_pick<'a>(&mut self, pool: &'a [Individual]) -> &'a Individual {
        let mut best: Option<&Individual> = None;
        for _ in 0..self.tournament {
            let cand = &pool[self.rng.gen_range(0..pool.len())];
            if best.is_none_or(|b| cand.fitness > b.fitness) {
                best = Some(cand);
            }
        }
        best.expect("tournament size > 0")
    }

    fn mutate(&mut self, genes: &mut [usize]) {
        for d in 0..genes.len() {
            if self.rng.gen_bool(self.mutation_prob) {
                if self.operators.growth && self.cards[d] > 1 && self.rng.gen_bool(0.5) {
                    // Growth: local ±1 step instead of uniform resample.
                    let up = self.rng.gen_bool(0.5);
                    genes[d] = if up {
                        (genes[d] + 1).min(self.cards[d] - 1)
                    } else {
                        genes[d].saturating_sub(1)
                    };
                } else {
                    genes[d] = self.rng.gen_range(0..self.cards[d]);
                }
            }
        }
        if self.operators.reordering && genes.len() >= 2 && self.rng.gen_bool(self.mutation_prob) {
            // Reordering: swap two genes with compatible domains.
            let a = self.rng.gen_range(0..genes.len());
            let compatible: Vec<usize> = (0..genes.len())
                .filter(|&b| b != a && self.cards[b] == self.cards[a])
                .collect();
            if let Some(&b) = compatible.get(
                self.rng
                    .gen_range(0..compatible.len().max(1))
                    .min(compatible.len().saturating_sub(1)),
            ) {
                genes.swap(a, b);
            }
        }
    }

    fn crossover(&mut self, a: &[usize], b: &[usize]) -> Vec<usize> {
        if self.rng.gen_bool(self.crossover_prob) {
            (0..a.len())
                .map(|d| if self.rng.gen_bool(0.5) { a[d] } else { b[d] })
                .collect()
        } else {
            a.to_vec()
        }
    }

    fn breed_generation(&mut self) {
        if self.parents.is_empty() {
            // Generation zero: uniform random.
            for _ in 0..self.population_size {
                let genes = self.random_genes();
                self.pending.push_back(genes);
            }
            return;
        }
        // Aging: retire individuals older than max_age (keep at least two).
        let pool: Vec<Individual> = if self.operators.aging {
            let mut alive: Vec<Individual> = self
                .parents
                .iter()
                .filter(|i| i.age <= self.max_age)
                .cloned()
                .collect();
            if alive.len() < 2 {
                alive = self.parents.clone();
            }
            alive
        } else {
            self.parents.clone()
        };

        // Elites survive unchanged (re-evaluated; envs are deterministic,
        // so this simply re-anchors them in the new generation).
        let mut ranked = pool.clone();
        ranked.sort_by(|a, b| b.fitness.partial_cmp(&a.fitness).expect("NaN fitness"));
        for elite in ranked.iter().take(self.elites) {
            self.pending.push_back(elite.genes.clone());
        }
        while self.pending.len() < self.population_size {
            let p1 = self.tournament_pick(&pool).genes.clone();
            let p2 = self.tournament_pick(&pool).genes.clone();
            let mut child = self.crossover(&p1, &p2);
            self.mutate(&mut child);
            self.pending.push_back(child);
        }
    }
}

impl Agent for GeneticAlgorithm {
    fn name(&self) -> &str {
        "ga"
    }

    fn propose(&mut self, max_batch: usize) -> Vec<Action> {
        if self.pending.is_empty() {
            self.breed_generation();
        }
        let n = max_batch
            .min(self.pending.len())
            .max(1)
            .min(self.pending.len());
        self.pending.drain(..n).map(Action::new).collect()
    }

    /// A GA's natural batch is its generation: proposing whole
    /// populations lets the search loop evaluate each generation in one
    /// (possibly pooled) sweep.
    fn batch_hint(&self) -> Option<usize> {
        Some(self.population_size)
    }

    fn observe(&mut self, results: &[(Action, StepResult)]) {
        for (action, result) in results {
            self.current.push(Individual {
                genes: action.as_slice().to_vec(),
                fitness: result.reward,
                age: 0,
            });
        }
        if self.current.len() >= self.population_size {
            for p in &mut self.parents {
                p.age += 1;
            }
            // Survivor selection: best of (old parents + new generation),
            // truncated to the population size.
            let mut pool = std::mem::take(&mut self.current);
            pool.append(&mut self.parents);
            pool.sort_by(|a, b| b.fitness.partial_cmp(&a.fitness).expect("NaN fitness"));
            pool.truncate(self.population_size);
            self.parents = pool;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archgym_core::env::Environment;
    use archgym_core::search::{RunConfig, SearchLoop};
    use archgym_core::toy::PeakEnv;

    fn space(cards: &[usize]) -> ParamSpace {
        let mut b = ParamSpace::builder();
        for (i, &c) in cards.iter().enumerate() {
            b = b.int(&format!("p{i}"), 0, c as i64 - 1, 1);
        }
        b.build().unwrap()
    }

    #[test]
    fn proposals_are_valid_actions() {
        let s = space(&[5, 7, 3]);
        let mut ga = GeneticAlgorithm::with_defaults(s.clone(), 1);
        for a in ga.propose(32) {
            s.validate(&a).unwrap();
        }
    }

    #[test]
    fn ga_finds_peak_of_separable_landscape() {
        let mut env = PeakEnv::new(&[16, 16, 16], vec![9, 2, 14]);
        let mut ga = GeneticAlgorithm::with_defaults(env.space().clone(), 3);
        let result = SearchLoop::new(RunConfig::with_budget(1500).batch(32)).run(&mut ga, &mut env);
        assert!(
            result.best_reward > 0.45,
            "GA best reward {} too low",
            result.best_reward
        );
    }

    #[test]
    fn ga_beats_its_own_first_generation() {
        let mut env = PeakEnv::new(&[32, 32], vec![20, 7]);
        let mut ga = GeneticAlgorithm::new(
            env.space().clone(),
            16,
            0.15,
            0.9,
            3,
            2,
            GaOperators::none(),
            8,
            5,
        );
        let result = SearchLoop::new(RunConfig::with_budget(640).batch(16)).run(&mut ga, &mut env);
        let history = &result.reward_history;
        let gen0: f64 = history[..16].iter().sum::<f64>() / 16.0;
        let last: f64 = history[history.len() - 16..].iter().sum::<f64>() / 16.0;
        assert!(
            last > gen0 * 1.5,
            "no generational improvement: first {gen0}, last {last}"
        );
    }

    #[test]
    fn operators_construct_and_run() {
        for ops in [
            GaOperators::none(),
            GaOperators {
                reordering: true,
                ..GaOperators::none()
            },
            GaOperators {
                aging: true,
                ..GaOperators::none()
            },
            GaOperators {
                growth: true,
                ..GaOperators::none()
            },
            GaOperators::all(),
        ] {
            let mut env = PeakEnv::new(&[8, 8, 8], vec![1, 6, 3]);
            let mut ga = GeneticAlgorithm::new(env.space().clone(), 8, 0.2, 0.8, 2, 1, ops, 4, 11);
            let result =
                SearchLoop::new(RunConfig::with_budget(160).batch(8)).run(&mut ga, &mut env);
            assert!(result.best_reward > 0.2, "{ops:?} failed to make progress");
        }
    }

    #[test]
    fn from_hyper_reads_all_keys() {
        let s = space(&[4, 4]);
        let hyper = HyperMap::new()
            .with("population", 10i64)
            .with("mutation_prob", 0.25)
            .with("crossover_prob", 0.5)
            .with("tournament", 2i64)
            .with("elites", 1i64)
            .with("aging", true)
            .with("growth", true)
            .with("reordering", true)
            .with("max_age", 3i64);
        let ga = GeneticAlgorithm::from_hyper(s, &hyper, 0).unwrap();
        assert_eq!(ga.population_size, 10);
        assert_eq!(ga.operators(), GaOperators::all());
        assert_eq!(ga.max_age, 3);
    }

    #[test]
    fn from_hyper_rejects_type_errors() {
        let s = space(&[4]);
        let hyper = HyperMap::new().with("population", 0.5); // float, not int
        assert!(GeneticAlgorithm::from_hyper(s, &hyper, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "elites must leave room")]
    fn rejects_degenerate_elitism() {
        let s = space(&[4]);
        let _ = GeneticAlgorithm::new(s, 4, 0.1, 0.8, 2, 4, GaOperators::none(), 8, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let s = space(&[9, 9]);
        let mut a = GeneticAlgorithm::with_defaults(s.clone(), 42);
        let mut b = GeneticAlgorithm::with_defaults(s, 42);
        assert_eq!(a.propose(8), b.propose(8));
    }
}
