//! # archgym-agents
//!
//! The five search-agent families the ArchGym paper seeds its gymnasium
//! with (Section 3.2), implemented from scratch:
//!
//! * [`RandomWalker`] — uniform random search (re-exported from core).
//! * [`GeneticAlgorithm`] — tournament-selection GA with optional
//!   GAMMA-style domain-specific operators (*aging*, *growth*,
//!   *reordering*) for the Fig. 6 ablation.
//! * [`AntColony`] — ant colony optimization with per-dimension pheromone
//!   tables, evaporation and elitist deposits.
//! * [`BayesOpt`] — Gaussian-process Bayesian optimization (RBF kernel,
//!   Cholesky factorization, EI/UCB/PI acquisitions).
//! * [`Reinforce`] — REINFORCE policy-gradient RL over a factored
//!   categorical policy, parameterized either tabularly or by a small
//!   multilayer perceptron trained with Adam.
//!
//! Every agent implements [`archgym_core::Agent`] and can be constructed
//! either with sensible defaults or from a [`HyperMap`] — the latter is
//! what the hyperparameter-lottery sweeps use. [`factory`] builds any
//! agent by name and supplies the default sweep grids.
//!
//! # Example
//!
//! ```
//! use archgym_agents::factory::{build_agent, AgentKind};
//! use archgym_core::prelude::*;
//!
//! let space = ParamSpace::builder().int("x", 0, 31, 1).build()?;
//! let hyper = HyperMap::new(); // defaults
//! let mut agent = build_agent(AgentKind::Ga, &space, &hyper, 7)?;
//! let batch = agent.propose(8);
//! assert_eq!(batch.len(), 8);
//! # Ok::<(), ArchGymError>(())
//! ```
//!
//! [`HyperMap`]: archgym_core::HyperMap

pub mod aco;
pub mod bo;
pub mod factory;
pub mod ga;
pub mod linalg;
pub mod nn;
pub mod ppo;
pub mod rl;
pub mod sa;

pub use aco::AntColony;
pub use archgym_core::agent::RandomWalker;
pub use bo::{Acquisition, BayesOpt};
pub use factory::{build_agent, default_grid, race_roster, AgentKind, RosterEntry, RACE_KINDS};
pub use ga::{GaOperators, GeneticAlgorithm};
pub use ppo::Ppo;
pub use rl::{PolicyKind, Reinforce};
pub use sa::SimulatedAnnealing;
