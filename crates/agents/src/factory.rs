//! Agent factory and default hyperparameter-lottery grids.
//!
//! The sweeps of Figs. 4–7 need to build many agents of every family from
//! string-keyed hyperparameter assignments; this module centralizes that
//! plumbing so experiment harnesses stay declarative.

use crate::aco::AntColony;
use crate::bo::BayesOpt;
use crate::ga::GeneticAlgorithm;
use crate::ppo::Ppo;
use crate::rl::Reinforce;
use crate::sa::SimulatedAnnealing;
use archgym_core::agent::{Agent, HyperGrid, HyperMap, RandomWalker};
use archgym_core::error::{ArchGymError, Result};
use archgym_core::space::ParamSpace;

/// The five agent families of the paper (Section 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AgentKind {
    /// Ant colony optimization.
    Aco,
    /// Bayesian optimization.
    Bo,
    /// Genetic algorithm.
    Ga,
    /// Reinforcement learning (REINFORCE).
    Rl,
    /// Random walker.
    Rw,
    /// Simulated annealing (a Section 4 integration example; not part of
    /// the paper's five-family studies).
    Sa,
    /// Proximal policy optimization (a second RL formulation; the paper
    /// names PPO among the algorithms a gymnasium must host).
    Ppo,
}

impl AgentKind {
    /// The paper's five families in plotting order (ACO, BO, GA, RL, RW).
    pub const ALL: [AgentKind; 5] = [
        AgentKind::Aco,
        AgentKind::Bo,
        AgentKind::Ga,
        AgentKind::Rl,
        AgentKind::Rw,
    ];

    /// The paper's families plus integrations added on top (Section 4).
    pub const EXTENDED: [AgentKind; 7] = [
        AgentKind::Aco,
        AgentKind::Bo,
        AgentKind::Ga,
        AgentKind::Rl,
        AgentKind::Rw,
        AgentKind::Sa,
        AgentKind::Ppo,
    ];

    /// Short identifier (`"aco"`, `"bo"`, ...).
    pub fn name(&self) -> &'static str {
        match self {
            AgentKind::Aco => "aco",
            AgentKind::Bo => "bo",
            AgentKind::Ga => "ga",
            AgentKind::Rl => "rl",
            AgentKind::Rw => "rw",
            AgentKind::Sa => "sa",
            AgentKind::Ppo => "ppo",
        }
    }

    /// Parse from the short identifier.
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::InvalidConfig`] for unknown names.
    pub fn parse(name: &str) -> Result<Self> {
        match name {
            "aco" => Ok(AgentKind::Aco),
            "bo" => Ok(AgentKind::Bo),
            "ga" => Ok(AgentKind::Ga),
            "rl" => Ok(AgentKind::Rl),
            "rw" => Ok(AgentKind::Rw),
            "sa" => Ok(AgentKind::Sa),
            "ppo" => Ok(AgentKind::Ppo),
            other => Err(ArchGymError::InvalidConfig(format!(
                "unknown agent `{other}` (expected aco|bo|ga|rl|rw|sa|ppo)"
            ))),
        }
    }
}

/// Build an agent of the given family over `space` from a hyperparameter
/// assignment. Unknown keys are ignored (grids may carry axes for several
/// families); missing keys fall back to each agent's defaults.
///
/// The box is `Send` so callers can race agents across lanes on worker
/// threads; it coerces to a plain `Box<dyn Agent>` everywhere else.
///
/// # Errors
///
/// Returns an error when a present key has the wrong type or an invalid
/// categorical value.
pub fn build_agent(
    kind: AgentKind,
    space: &ParamSpace,
    hyper: &HyperMap,
    seed: u64,
) -> Result<Box<dyn Agent + Send>> {
    Ok(match kind {
        AgentKind::Aco => Box::new(AntColony::from_hyper(space.clone(), hyper, seed)?),
        AgentKind::Bo => Box::new(BayesOpt::from_hyper(space.clone(), hyper, seed)?),
        AgentKind::Ga => Box::new(GeneticAlgorithm::from_hyper(space.clone(), hyper, seed)?),
        AgentKind::Rl => Box::new(Reinforce::from_hyper(space.clone(), hyper, seed)?),
        AgentKind::Rw => Box::new(RandomWalker::new(space.clone(), seed)),
        AgentKind::Sa => Box::new(SimulatedAnnealing::from_hyper(space.clone(), hyper, seed)?),
        AgentKind::Ppo => Box::new(Ppo::from_hyper(space.clone(), hyper, seed)?),
    })
}

/// The families that enter an online race
/// ([`archgym_core::race`](archgym_core::race)): every searching agent
/// of the paper's roster. The pure random walker is excluded — its
/// lottery grid is a dummy axis, so racing several copies of it would
/// only burn budget on identical tickets.
pub const RACE_KINDS: [AgentKind; 6] = [
    AgentKind::Aco,
    AgentKind::Bo,
    AgentKind::Ga,
    AgentKind::Rl,
    AgentKind::Sa,
    AgentKind::Ppo,
];

/// One ticket of the race roster: an agent family plus one
/// hyperparameter assignment from its lottery grid.
#[derive(Debug, Clone, PartialEq)]
pub struct RosterEntry {
    /// Agent family.
    pub kind: AgentKind,
    /// Hyperparameter assignment.
    pub hyper: HyperMap,
    /// Stable ticket name, `"{family}#{grid_index}"`.
    pub name: String,
}

/// The full agent × hyperparameter roster for an online race: for every
/// family in [`RACE_KINDS`], up to `per_family` assignments sampled
/// from its [`default_grid`] by even striding (so the picks spread over
/// the grid instead of clustering at one corner). Deterministic in
/// `per_family` alone; ticket names embed the grid index so the same
/// name always denotes the same configuration.
pub fn race_roster(per_family: usize) -> Vec<RosterEntry> {
    let per_family = per_family.max(1);
    let mut roster = Vec::new();
    for kind in RACE_KINDS {
        let grid = default_grid(kind);
        let configs: Vec<HyperMap> = grid.iter().collect();
        let take = per_family.min(configs.len());
        for i in 0..take {
            let index = i * configs.len() / take;
            roster.push(RosterEntry {
                kind,
                hyper: configs[index].clone(),
                name: format!("{}#{index}", kind.name()),
            });
        }
    }
    roster
}

/// The default lottery sweep grid for a family — the axes the paper
/// identifies as each algorithm's exploration/exploitation knobs (Q3 of
/// Table 2), sized so a full Fig. 4-style study stays tractable.
pub fn default_grid(kind: AgentKind) -> HyperGrid {
    match kind {
        AgentKind::Aco => HyperGrid::new()
            .axis("ants", [4i64, 16, 32])
            .axis("evaporation", [0.05, 0.25, 0.5])
            .axis("greediness", [0.0, 0.25, 0.5]),
        AgentKind::Bo => HyperGrid::new()
            .axis("length_scale", [0.1, 0.25, 0.5])
            .axis("acquisition", ["ei", "ucb", "pi"])
            .axis("kappa", [1.0, 2.0, 4.0]),
        AgentKind::Ga => HyperGrid::new()
            .axis("population", [8i64, 16, 32])
            .axis("mutation_prob", [0.01, 0.05, 0.2])
            .axis("crossover_prob", [0.5, 0.8, 0.95]),
        AgentKind::Rl => HyperGrid::new()
            .axis("lr", [0.005, 0.05, 0.2])
            .axis("entropy_coef", [0.0, 0.02, 0.1])
            .axis("policy", ["tabular", "mlp"]),
        // The random walker's only "hyperparameter" is its seed; sweeping
        // a dummy axis keeps the experiment shape uniform across agents.
        AgentKind::Rw => HyperGrid::new().axis("restart", [0i64, 1, 2]),
        AgentKind::Sa => HyperGrid::new()
            .axis("temperature", [0.25, 1.0, 4.0])
            .axis("cooling", [0.9, 0.98, 0.999]),
        AgentKind::Ppo => HyperGrid::new()
            .axis("lr", [0.02, 0.1, 0.3])
            .axis("clip", [0.1, 0.2, 0.4])
            .axis("entropy_coef", [0.0, 0.01, 0.05]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archgym_core::env::Environment;
    use archgym_core::search::{RunConfig, SearchLoop};
    use archgym_core::sweep::Sweep;
    use archgym_core::toy::PeakEnv;

    fn space() -> ParamSpace {
        ParamSpace::builder()
            .int("a", 0, 7, 1)
            .int("b", 0, 7, 1)
            .build()
            .unwrap()
    }

    #[test]
    fn every_family_builds_and_runs() {
        for kind in AgentKind::EXTENDED {
            let mut agent = build_agent(kind, &space(), &HyperMap::new(), 3).unwrap();
            assert_eq!(agent.name(), kind.name());
            let mut env = PeakEnv::new(&[8, 8], vec![5, 1]);
            let result =
                SearchLoop::new(RunConfig::with_budget(64).batch(8)).run(&mut agent, &mut env);
            assert_eq!(result.samples_used, 64, "{kind:?} under-sampled");
            assert!(result.best_reward > 0.1, "{kind:?} made no progress");
        }
    }

    #[test]
    fn parse_roundtrip() {
        for kind in AgentKind::EXTENDED {
            assert_eq!(AgentKind::parse(kind.name()).unwrap(), kind);
        }
        assert!(AgentKind::parse("dqn").is_err());
    }

    #[test]
    fn default_grids_are_nonempty_and_buildable() {
        for kind in AgentKind::EXTENDED {
            let grid = default_grid(kind);
            assert!(grid.len() >= 3, "{kind:?} grid too small");
            for hyper in grid.iter() {
                build_agent(kind, &space(), &hyper, 0)
                    .unwrap_or_else(|e| panic!("{kind:?} failed on {}: {e}", hyper.summary()));
            }
        }
    }

    #[test]
    fn factory_integrates_with_sweep() {
        let grid = HyperGrid::new().axis("population", [4i64, 8]);
        let sweep = Sweep::new(RunConfig::with_budget(40).batch(8)).seeds([0, 1]);
        let result = sweep
            .run(
                "ga",
                &grid,
                || PeakEnv::new(&[6, 6], vec![2, 4]),
                |hyper, seed| {
                    build_agent(
                        AgentKind::Ga,
                        PeakEnv::new(&[6, 6], vec![2, 4]).space(),
                        hyper,
                        seed,
                    )
                },
            )
            .unwrap();
        assert_eq!(result.points.len(), 4);
        assert!(result.summary().stats.max > 0.2);
    }

    #[test]
    fn race_roster_is_deterministic_strided_and_named_by_grid_index() {
        let roster = race_roster(4);
        assert_eq!(roster, race_roster(4));
        assert_eq!(roster.len(), 4 * RACE_KINDS.len());
        for entry in &roster {
            let grid: Vec<HyperMap> = default_grid(entry.kind).iter().collect();
            let index: usize = entry
                .name
                .split('#')
                .nth(1)
                .and_then(|i| i.parse().ok())
                .expect("name embeds the grid index");
            assert_eq!(grid[index], entry.hyper);
            build_agent(entry.kind, &space(), &entry.hyper, 0).unwrap();
        }
        // Per-family cap larger than a grid clamps to the grid.
        let big = race_roster(1000);
        for kind in RACE_KINDS {
            let grid_len = default_grid(kind).len();
            assert_eq!(big.iter().filter(|e| e.kind == kind).count(), grid_len);
        }
        // Strides spread: the 4 SA picks over its 9-point grid are distinct.
        let sa: Vec<&str> = roster
            .iter()
            .filter(|e| e.kind == AgentKind::Sa)
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(sa, ["sa#0", "sa#2", "sa#4", "sa#6"]);
    }

    #[test]
    fn bad_hyper_type_surfaces_as_error() {
        let hyper = HyperMap::new().with("lr", "fast");
        assert!(build_agent(AgentKind::Rl, &space(), &hyper, 0).is_err());
    }
}
